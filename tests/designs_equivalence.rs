//! Cross-design equivalence: the four index designs are different
//! *distributions* of the same logical B-link tree, so identical
//! operation sequences must produce identical results — and must agree
//! with a std::BTreeMap oracle.

use namdex::prelude::*;
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

type Shared<T> = Rc<RefCell<Vec<T>>>;

fn deploy(n_keys: u64) -> (Sim, NamCluster, Vec<Design>) {
    let sim = Sim::new();
    let nam = NamCluster::new(&sim, ClusterSpec::default());
    let data = Dataset::new(n_keys);
    let partition = PartitionMap::range_uniform(nam.num_servers(), data.domain());
    let designs = vec![
        Design::Cg(CoarseGrained::build(
            &nam,
            PageLayout::default(),
            partition.clone(),
            data.iter(),
            0.7,
        )),
        Design::Fg(FineGrained::build(
            &nam.rdma,
            FgConfig::default(),
            data.iter(),
        )),
        Design::Hybrid(Hybrid::build(
            &nam,
            FgConfig::default(),
            partition.clone(),
            data.iter(),
        )),
        Design::Learned(Learned::build(
            &nam,
            FgConfig::default(),
            partition,
            data.iter(),
        )),
    ];
    (sim, nam, designs)
}

#[test]
fn lookups_agree_across_designs() {
    let (sim, _nam, designs) = deploy(50_000);
    let results: Vec<Shared<Option<u64>>> = (0..designs.len())
        .map(|_| Rc::new(RefCell::new(Vec::new())))
        .collect();
    for (design, out) in designs.iter().zip(&results) {
        let design = design.clone();
        let out = out.clone();
        let ep = Endpoint::new(design_cluster(&design));
        sim.spawn(async move {
            for i in 0..500u64 {
                let key = (i * 97) % (50_000 * 8); // mix of hits and misses
                let got = design.lookup(&ep, key).await.unwrap();
                out.borrow_mut().push(got);
            }
        });
    }
    sim.run();
    let a = results[0].borrow();
    assert_eq!(*a, *results[1].borrow(), "CG vs FG disagree");
    assert_eq!(*a, *results[2].borrow(), "CG vs Hybrid disagree");
    assert_eq!(*a, *results[3].borrow(), "CG vs Learned disagree");
    // And against the oracle.
    for i in 0..500u64 {
        let key = (i * 97) % (50_000 * 8);
        let expect = if key % 8 == 0 { Some(key / 8) } else { None };
        assert_eq!(a[i as usize], expect, "key {key}");
    }
}

#[test]
fn ranges_agree_across_designs() {
    let (sim, _nam, designs) = deploy(20_000);
    let results: Vec<Shared<Vec<(u64, u64)>>> = (0..designs.len())
        .map(|_| Rc::new(RefCell::new(Vec::new())))
        .collect();
    for (design, out) in designs.iter().zip(&results) {
        let design = design.clone();
        let out = out.clone();
        let ep = Endpoint::new(design_cluster(&design));
        sim.spawn(async move {
            for i in 0..40u64 {
                let lo = i * 400 * 8;
                let hi = lo + 199 * 8;
                let rows = design.range(&ep, lo, hi).await.unwrap();
                out.borrow_mut().push(rows);
            }
        });
    }
    sim.run();
    let a = results[0].borrow();
    assert_eq!(*a, *results[1].borrow());
    assert_eq!(*a, *results[2].borrow());
    assert_eq!(*a, *results[3].borrow());
    for (i, rows) in a.iter().enumerate() {
        assert_eq!(rows.len(), 200, "scan {i}");
        assert!(
            rows.windows(2).all(|w| w[0].0 < w[1].0),
            "scan {i} unsorted"
        );
    }
}

#[test]
fn mixed_mutations_agree_with_oracle() {
    let (sim, _nam, designs) = deploy(5_000);
    // Deterministic op script: inserts of fresh odd keys, deletes of
    // loaded keys, lookups of both.
    let mut oracle: BTreeMap<u64, u64> = (0..5_000u64).map(|i| (i * 8, i)).collect();
    let mut script: Vec<(u8, u64, u64)> = Vec::new();
    let mut x = 12345u64;
    for step in 0..800u64 {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        match step % 4 {
            0 => {
                let key = (x % (5_000 * 8)) | 1;
                script.push((0, key, step)); // insert
                oracle.entry(key).or_insert(step);
            }
            1 => {
                let key = (x % 5_000) * 8;
                script.push((1, key, 0)); // delete
                oracle.remove(&key);
            }
            _ => {
                let key = x % (5_000 * 8 + 16);
                script.push((2, key, 0)); // lookup
            }
        }
    }

    for design in &designs {
        let design = design.clone();
        let script = script.clone();
        let oracle = oracle.clone();
        let ep = Endpoint::new(design_cluster(&design));
        let name = design.name();
        sim.spawn(async move {
            let mut local: BTreeMap<u64, u64> = (0..5_000u64).map(|i| (i * 8, i)).collect();
            for (op, key, val) in script {
                match op {
                    0 => {
                        // The index is non-unique; only insert fresh keys
                        // so the first-live-match lookup is predictable.
                        if let std::collections::btree_map::Entry::Vacant(e) = local.entry(key) {
                            e.insert(val);
                            design.insert(&ep, key, val).await.unwrap();
                        }
                    }
                    1 => {
                        let existed = local.remove(&key).is_some();
                        let deleted = design.delete(&ep, key).await.unwrap();
                        assert_eq!(deleted, existed, "{name}: delete {key}");
                    }
                    _ => {
                        let got = design.lookup(&ep, key).await.unwrap();
                        assert_eq!(got, local.get(&key).copied(), "{name}: lookup {key}");
                    }
                }
            }
            assert_eq!(local, oracle, "{name}: final state");
        });
        sim.run();
    }
}

/// Designs carry their own cluster handle; fetch it for endpoints.
fn design_cluster(design: &Design) -> &Cluster {
    match design {
        Design::Cg(d) => d.cluster(),
        Design::Fg(d) => d.cluster(),
        Design::Hybrid(d) => d.cluster(),
        Design::Learned(d) => d.tree().cluster(),
    }
}
