//! Cache-coherence tests for the engine's client-side cache layer
//! (`Cached` over a `NodeSource`): a cached entry made stale by a
//! concurrent split must be *detected* (the fresh page's fence check
//! fails) and *invalidated*, never produce a wrong lookup — and a server
//! restart must flush the whole cache before any hit is served.
//!
//! Staleness here is only ever a too-far-LEFT route (splits move keys
//! right; leaves are never merged or reused), so the B-link sibling
//! chase corrects every stale hit; these tests pin that contract for
//! both cache policies — FG's inner-page cache and Hybrid's leaf-route
//! cache — and for the learned design's client-resident model, whose
//! stale predictions obey the same route-left discipline and whose
//! restart-epoch flush drops the whole model at once.

use namdex::prelude::*;
use std::cell::Cell;
use std::rc::Rc;

const KEYS: u64 = 4_000;

fn cached_cfg() -> FgConfig {
    FgConfig {
        layout: PageLayout::new(256), // small pages: deep tree, easy splits
        fill: 0.7,
        head_stride: 4,
        cache_capacity: Some(0), // unbounded
    }
}

fn cluster() -> (Sim, NamCluster) {
    let sim = Sim::new();
    let nam = NamCluster::new(&sim, ClusterSpec::default());
    (sim, nam)
}

/// Warm `reader`'s cache with lookups, split a band of leaves out from
/// under it with `writer` inserts, then re-read through the (now stale)
/// cache. Returns the number of wrong lookups (must be 0).
fn stale_split_scenario(design: Design, nam: &NamCluster, sim: &Sim) -> u64 {
    let reader = Endpoint::new(&nam.rdma);
    let writer = Endpoint::new(&nam.rdma);

    // Phase 1: the reader warms its cache across the key space.
    {
        let design = design.clone();
        let ep = reader.clone();
        sim.spawn(async move {
            for i in (0..KEYS).step_by(8) {
                assert_eq!(design.lookup(&ep, i * 8).await.unwrap(), Some(i));
            }
        });
    }
    sim.run();

    // Phase 2: a different client splits a band of leaves (fresh keys at
    // odd offsets). The reader's cached inner pages / routes still
    // describe the pre-split world.
    {
        let design = design.clone();
        let ep = writer.clone();
        sim.spawn(async move {
            for i in 1_000..1_600u64 {
                design.insert(&ep, i * 8 + 1, i).await.unwrap();
            }
        });
    }
    sim.run();

    // Phase 3: the reader re-reads the split band through its stale
    // cache. Every answer must be correct (stale hits self-correct via
    // the sibling chase) — a wrong result here is cache incoherence.
    let wrong = Rc::new(Cell::new(0u64));
    {
        let design = design.clone();
        let ep = reader.clone();
        let wrong = wrong.clone();
        sim.spawn(async move {
            for i in 1_000..1_600u64 {
                if design.lookup(&ep, i * 8 + 1).await.unwrap() != Some(i) {
                    wrong.set(wrong.get() + 1);
                }
                if design.lookup(&ep, i * 8).await.unwrap() != Some(i) {
                    wrong.set(wrong.get() + 1);
                }
            }
        });
    }
    sim.run();
    wrong.get()
}

#[test]
fn fg_stale_inner_page_is_detected_and_invalidated() {
    let (sim, nam) = cluster();
    let idx = FineGrained::build(&nam.rdma, cached_cfg(), (0..KEYS).map(|i| (i * 8, i)));
    let design = Design::Fg(idx);
    assert_eq!(stale_split_scenario(design.clone(), &nam, &sim), 0);
    let stats = design.cache_stats().expect("cache is attached");
    assert!(stats.hits > 0, "warmed cache must serve hits: {stats:?}");
    assert!(
        stats.invalidations > 0,
        "stale inner pages must be invalidated when detected: {stats:?}"
    );
}

#[test]
fn hybrid_stale_route_is_detected_and_invalidated() {
    let (sim, nam) = cluster();
    let partition = PartitionMap::range_uniform(nam.num_servers(), KEYS * 8);
    let idx = Hybrid::build(&nam, cached_cfg(), partition, (0..KEYS).map(|i| (i * 8, i)));
    let design = Design::Hybrid(idx);
    assert_eq!(stale_split_scenario(design.clone(), &nam, &sim), 0);
    let stats = design.cache_stats().expect("cache is attached");
    assert!(
        stats.hits > 0,
        "warmed route cache must serve hits: {stats:?}"
    );
    assert!(
        stats.invalidations > 0,
        "stale leaf routes must be invalidated when detected: {stats:?}"
    );
}

/// Server restart invalidation: a crash/restart bumps the server's
/// restart epoch; the cache layer must flush *everything* before serving
/// another hit (remote state may have been rebuilt arbitrarily), and
/// lookups after the restart must still be correct.
fn restart_flush_scenario(design: Design, nam: &NamCluster, sim: &Sim) {
    let ep = Endpoint::new(&nam.rdma);

    // Warm the cache.
    {
        let design = design.clone();
        let ep = ep.clone();
        sim.spawn(async move {
            for i in (0..KEYS).step_by(4) {
                assert_eq!(design.lookup(&ep, i * 8).await.unwrap(), Some(i));
            }
        });
    }
    sim.run();
    let warmed = design.cache_stats().expect("cache is attached");
    assert!(warmed.hits > 0, "cache must be warm before the restart");

    // Crash and immediately restart a server between operations (NAM
    // memory survives; the restart epoch is what matters to the cache).
    nam.rdma.fail_server(1);
    nam.rdma.restart_server(1);

    // Every post-restart answer must be correct, and the first access
    // must have flushed the cache rather than serve a pre-restart hit.
    {
        let design = design.clone();
        let ep = ep.clone();
        sim.spawn(async move {
            for i in (0..KEYS).step_by(4) {
                assert_eq!(design.lookup(&ep, i * 8).await.unwrap(), Some(i));
            }
        });
    }
    sim.run();
    let stats = design.cache_stats().expect("cache is attached");
    assert!(
        stats.restart_flushes >= 1,
        "server restart must flush the client cache: {stats:?}"
    );
    assert!(
        stats.hits > warmed.hits,
        "cache must re-warm after the flush: {stats:?}"
    );
}

/// The learned design's analogue of a stale cache is a stale *model*:
/// its leaf table predates phase 2's splits, so phase-3 predictions
/// land at-or-left of the covering leaf and must self-correct through
/// the B-link chase (counted as mispredicts), never answer wrong. The
/// accumulated drift must also have triggered at least one retrain
/// beyond the one at build time.
#[test]
fn learned_stale_model_after_split_self_corrects() {
    let (sim, nam) = cluster();
    let partition = PartitionMap::range_uniform(nam.num_servers(), KEYS * 8);
    let idx = Learned::build(&nam, cached_cfg(), partition, (0..KEYS).map(|i| (i * 8, i)));
    let design = Design::Learned(idx);
    assert_eq!(stale_split_scenario(design.clone(), &nam, &sim), 0);
    let stats = design.learned_stats().expect("learned design");
    assert!(stats.predictions > 0, "lookups must route via the model");
    assert!(
        stats.mispredicts > 0,
        "post-split predictions must be detected as stale: {stats:?}"
    );
    assert!(
        stats.retrains >= 2,
        "split drift must trigger retraining: {stats:?}"
    );
    assert_eq!(stats.fallbacks, 0, "model never vanished: {stats:?}");
}

/// Restart-epoch coherence for the model: a crash/restart bumps the
/// summed restart epoch, the next descent must drop the model wholesale
/// (like the cache layer's restart flush) and retrain it before serving
/// another prediction — with every post-restart answer correct.
#[test]
fn learned_model_flushes_on_server_restart() {
    let (sim, nam) = cluster();
    let partition = PartitionMap::range_uniform(nam.num_servers(), KEYS * 8);
    let idx = Learned::build(&nam, cached_cfg(), partition, (0..KEYS).map(|i| (i * 8, i)));
    let design = Design::Learned(idx);
    let ep = Endpoint::new(&nam.rdma);

    // Warm the model's prediction counters.
    {
        let design = design.clone();
        let ep = ep.clone();
        sim.spawn(async move {
            for i in (0..KEYS).step_by(4) {
                assert_eq!(design.lookup(&ep, i * 8).await.unwrap(), Some(i));
            }
        });
    }
    sim.run();
    let warmed = design.learned_stats().expect("learned design");
    assert!(warmed.predictions > 0, "model must be serving predictions");
    assert_eq!(warmed.epoch_flushes, 0);

    nam.rdma.fail_server(1);
    nam.rdma.restart_server(1);

    {
        let design = design.clone();
        let ep = ep.clone();
        sim.spawn(async move {
            for i in (0..KEYS).step_by(4) {
                assert_eq!(design.lookup(&ep, i * 8).await.unwrap(), Some(i));
            }
        });
    }
    sim.run();
    let stats = design.learned_stats().expect("learned design");
    assert_eq!(
        stats.epoch_flushes, 1,
        "server restart must flush the model exactly once: {stats:?}"
    );
    assert!(
        stats.retrains > warmed.retrains,
        "flushed model must retrain before predicting again: {stats:?}"
    );
    assert!(
        stats.predictions > warmed.predictions,
        "model must serve predictions again after the flush: {stats:?}"
    );
}

#[test]
fn fg_cache_flushes_on_server_restart() {
    let (sim, nam) = cluster();
    let idx = FineGrained::build(&nam.rdma, cached_cfg(), (0..KEYS).map(|i| (i * 8, i)));
    restart_flush_scenario(Design::Fg(idx), &nam, &sim);
}

#[test]
fn hybrid_cache_flushes_on_server_restart() {
    let (sim, nam) = cluster();
    let partition = PartitionMap::range_uniform(nam.num_servers(), KEYS * 8);
    let idx = Hybrid::build(&nam, cached_cfg(), partition, (0..KEYS).map(|i| (i * 8, i)));
    restart_flush_scenario(Design::Hybrid(idx), &nam, &sim);
}
