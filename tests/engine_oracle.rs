//! Differential model test for the unified traversal engine: all four
//! designs (CG, FG, Hybrid, Learned) run the *same* randomized
//! concurrent insert/delete/lookup/range workload — through the one
//! engine core — against an in-memory `BTreeMap` oracle, under a chaos
//! fault plan (server crash + restart, plus a client killed mid-run).
//! For the learned design the crash/restart also exercises the
//! restart-epoch model flush and post-split drift retraining.
//!
//! Bookkeeping discipline: a mutating operation's key is marked
//! *uncertain* before the op is issued and resolved again only when the
//! op returns `Ok` (an `Err` — or a kill mid-await — leaves the key
//! uncertain: the mutation may or may not have landed). Clients own
//! disjoint key spans, so a later successful lookup by the owner settles
//! an uncertain key to whatever the index actually holds. At quiesce the
//! index and the oracle must agree exactly on every certain key, for
//! every design, under pinned seeds.

use namdex::prelude::*;
use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet};
use std::rc::Rc;

/// Key-space units per client (keys are `unit * 8 + offset`).
const SPAN: u64 = 150;
const CLIENTS: u64 = 4;
const OPS_PER_CLIENT: u64 = 120;
const LOAD_UNITS: u64 = CLIENTS * SPAN;

type Oracle = Rc<RefCell<BTreeMap<Key, Value>>>;
type Uncertain = Rc<RefCell<BTreeSet<Key>>>;

fn small_cfg() -> FgConfig {
    FgConfig {
        layout: PageLayout::new(256), // small pages: deep trees, many splits
        fill: 0.7,
        head_stride: 4,
        cache_capacity: None,
    }
}

fn build(kind: u8, nam: &NamCluster) -> Design {
    let items = (0..LOAD_UNITS).map(|i| (i * 8, i));
    let partition = PartitionMap::range_uniform(nam.num_servers(), LOAD_UNITS * 8);
    match kind {
        0 => Design::Cg(CoarseGrained::build(
            nam,
            PageLayout::new(256),
            partition,
            items,
            0.7,
        )),
        1 => Design::Fg(FineGrained::build(&nam.rdma, small_cfg(), items)),
        2 => Design::Hybrid(Hybrid::build(nam, small_cfg(), partition, items)),
        _ => Design::Learned(Learned::build(nam, small_cfg(), partition, items)),
    }
}

/// One client's sequential op stream over its own key span.
#[allow(clippy::too_many_arguments)]
async fn client_loop(
    idx: Design,
    ep: Endpoint,
    c: u64,
    seed: u64,
    oracle: Oracle,
    uncertain: Uncertain,
) {
    let base = c * SPAN;
    let mut rng = simnet::rng::DetRng::seed_from_u64(seed ^ (0xC11E57 + c));
    // Fresh keys already inserted by this client (never re-insert a key:
    // leaves are multi-maps, and a second insert of a live key would
    // need multi-set oracle bookkeeping).
    let mut inserted: BTreeSet<Key> = BTreeSet::new();
    for _ in 0..OPS_PER_CLIENT {
        let unit = base + rng.next_u64_below(SPAN);
        match rng.next_u64_below(100) {
            // Insert a fresh key at an odd offset inside the span.
            0..=29 => {
                let key = unit * 8 + 1 + rng.next_u64_below(7);
                if inserted.contains(&key) {
                    continue;
                }
                inserted.insert(key);
                let value = key ^ 0xABCD;
                uncertain.borrow_mut().insert(key);
                if idx.insert(&ep, key, value).await.is_ok() {
                    oracle.borrow_mut().insert(key, value);
                    uncertain.borrow_mut().remove(&key);
                }
            }
            // Delete any key in the span (loaded, fresh, or absent).
            30..=44 => {
                let key = unit * 8 + rng.next_u64_below(8);
                let was = {
                    let o = oracle.borrow();
                    o.get(&key).copied()
                };
                let certain = !uncertain.borrow().contains(&key);
                uncertain.borrow_mut().insert(key);
                if let Ok(found) = idx.delete(&ep, key).await {
                    if certain {
                        assert_eq!(
                            found,
                            was.is_some(),
                            "delete({key}) found-flag disagrees with oracle"
                        );
                    }
                    oracle.borrow_mut().remove(&key);
                    uncertain.borrow_mut().remove(&key);
                }
            }
            // Lookup: certain keys must match the oracle; an uncertain
            // key is *settled* by what the index actually holds (only
            // this client writes it, so the answer is stable).
            45..=79 => {
                let key = unit * 8 + rng.next_u64_below(8);
                let Ok(got) = idx.lookup(&ep, key).await else {
                    continue;
                };
                if uncertain.borrow_mut().remove(&key) {
                    match got {
                        Some(v) => {
                            oracle.borrow_mut().insert(key, v);
                        }
                        None => {
                            oracle.borrow_mut().remove(&key);
                        }
                    }
                } else {
                    assert_eq!(
                        got,
                        oracle.borrow().get(&key).copied(),
                        "lookup({key}) disagrees with oracle"
                    );
                }
            }
            // Range over a window inside the span: rows must agree with
            // the oracle slice, modulo uncertain keys on either side.
            _ => {
                let lo = (base + rng.next_u64_below(SPAN.saturating_sub(30))) * 8;
                let hi = lo + 30 * 8;
                let Ok(rows) = idx.range(&ep, lo, hi).await else {
                    continue;
                };
                let unc = uncertain.borrow();
                let oracle = oracle.borrow();
                let got: Vec<(Key, Value)> = rows
                    .iter()
                    .copied()
                    .filter(|(k, _)| !unc.contains(k))
                    .collect();
                let want: Vec<(Key, Value)> = oracle
                    .range(lo..=hi)
                    .filter(|(k, _)| !unc.contains(k))
                    .map(|(k, v)| (*k, *v))
                    .collect();
                assert_eq!(got, want, "range [{lo}, {hi}] disagrees with oracle");
            }
        }
    }
}

fn oracle_scenario(kind: u8, seed: u64) {
    let sim = Sim::new();
    let nam = NamCluster::new(&sim, ClusterSpec::default());
    let idx = build(kind, &nam);

    let oracle: Oracle = Rc::new(RefCell::new((0..LOAD_UNITS).map(|i| (i * 8, i)).collect()));
    let uncertain: Uncertain = Rc::new(RefCell::new(BTreeSet::new()));

    // Endpoints first, so the fault plan can name a victim client.
    let eps: Vec<Endpoint> = (0..CLIENTS).map(|_| Endpoint::new(&nam.rdma)).collect();
    let plan = FaultPlan::new()
        .crash_server(SimTime::from_micros(400), 1)
        .restart_server(SimTime::from_micros(800), 1)
        .kill_client(SimTime::from_micros(1_000), eps[0].client_id());
    ChaosController::install_nam(&sim, &nam, plan);

    for (c, ep) in eps.into_iter().enumerate() {
        sim.spawn(client_loop(
            idx.clone(),
            ep,
            c as u64,
            seed,
            oracle.clone(),
            uncertain.clone(),
        ));
    }
    sim.run();

    // Quiesce: the fresh-endpoint full scan and the oracle must agree on
    // every certain key — none lost, none duplicated, none resurrected.
    let ep = Endpoint::new(&nam.rdma);
    let idx2 = idx.clone();
    let oracle2 = oracle.clone();
    let uncertain2 = uncertain.clone();
    sim.spawn(async move {
        let rows = idx2.range(&ep, 0, u64::MAX - 1).await.expect("final scan");
        // Plain copies: the settle loop below awaits, and RefCell borrows
        // must not live across an await.
        let unc = uncertain2.borrow().clone();
        let oracle = oracle2.borrow().clone();
        let mut seen = BTreeSet::new();
        for (k, v) in &rows {
            assert!(seen.insert(*k), "key {k} appears twice in the final scan");
            if !unc.contains(k) {
                assert_eq!(
                    oracle.get(k),
                    Some(v),
                    "key {k} in the index disagrees with the oracle"
                );
            }
        }
        for (k, _) in oracle.iter().filter(|(k, _)| !unc.contains(*k)) {
            assert!(seen.contains(k), "oracle key {k} missing from the index");
        }
        // Uncertain keys can't be asserted against the oracle, but the
        // index must still be self-consistent about them: a point lookup
        // and the full scan must tell the same story.
        for k in unc.iter() {
            let got = idx2.lookup(&ep, *k).await.expect("settle lookup");
            let in_scan = rows.iter().find(|(rk, _)| rk == k).map(|(_, v)| *v);
            assert_eq!(
                got, in_scan,
                "scan and lookup disagree on uncertain key {k}"
            );
        }
        // Uncertainty must be the exception, not the rule, or the
        // differential check is vacuous.
        assert!(
            unc.len() < 48,
            "too many unresolved ops ({}) — fault plan too aggressive",
            unc.len()
        );
    });
    sim.run();
}

#[test]
fn cg_agrees_with_oracle_under_chaos() {
    oracle_scenario(0, 7);
    oracle_scenario(0, 1_001);
}

#[test]
fn fg_agrees_with_oracle_under_chaos() {
    oracle_scenario(1, 7);
    oracle_scenario(1, 1_001);
}

#[test]
fn hybrid_agrees_with_oracle_under_chaos() {
    oracle_scenario(2, 7);
    oracle_scenario(2, 1_001);
}

#[test]
fn learned_agrees_with_oracle_under_chaos() {
    oracle_scenario(3, 7);
    oracle_scenario(3, 1_001);
}
