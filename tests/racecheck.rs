//! Happens-before race detector (see `crates/racecheck`):
//!
//! * **clean matrix** — every design × fault mode runs race-free with
//!   the detector installed (through the model-checker harness, which
//!   installs [`Racecheck`] on every run): the optimistic protocols
//!   validate every racy snapshot before its bytes escape;
//! * **seeded protocol races** — hand-driven verb sequences that break
//!   the protocol in each rule's characteristic way are reported, with
//!   the expected rule id and a causal-chain diagnostic;
//! * **benign validated races** — the same racy read followed by the
//!   engine's validation fence is *not* reported (the FastTrack-style
//!   classification the detector exists for);
//! * **zero perturbation** — installing the detector changes neither
//!   history digest nor virtual end time of a run.

use mc::{run_scenario, DesignKind, FaultMode, PolicyKind, Scenario};
use namdex::prelude::*;
use namdex::rdma::observer::{FenceKind, OpKind};
use namdex::tree::layout::lock_word;

// ---------------------------------------------------------------------
// Clean matrix: the real designs, race-free under the detector.

#[test]
fn clean_matrix_every_design_and_fault_mode() {
    for design in DesignKind::ALL {
        for fault in [FaultMode::None, FaultMode::Chaos, FaultMode::CrashRecover] {
            let sc = Scenario::point_ops(design, fault, 0xACE).with_cache(Some(0));
            let report = run_scenario(&sc, &PolicyKind::Uncontrolled);
            assert!(
                report.race_violations.is_empty(),
                "{}/{}: unexpected race violations:\n{}",
                design.name(),
                fault.name(),
                report
                    .race_violations
                    .iter()
                    .map(|v| v.render())
                    .collect::<Vec<_>>()
                    .join("\n")
            );
        }
    }
}

#[test]
fn clean_under_adversarial_schedules() {
    for design in DesignKind::ALL {
        for policy in [
            PolicyKind::RandomWalk { seed: 0xBEEF },
            PolicyKind::Pct {
                seed: 0xBEEF,
                depth: 3,
            },
        ] {
            let sc = Scenario::point_ops(design, FaultMode::Chaos, 0xACE2);
            let report = run_scenario(&sc, &policy);
            assert!(
                report.race_violations.is_empty(),
                "{} under {:?}: {:?}",
                design.name(),
                policy,
                report
                    .race_violations
                    .iter()
                    .map(|v| &v.rule)
                    .collect::<Vec<_>>()
            );
        }
    }
}

// ---------------------------------------------------------------------
// Seeded protocol races: raw verb sequences on a bare cluster.

const PAGE: usize = 256;

/// A cluster with one 256-byte "node" whose lock word (offset 0) is an
/// unlocked version-0 word.
fn cluster_with_page() -> (Sim, Cluster, RemotePtr) {
    let sim = Sim::new();
    let cluster = Cluster::new(&sim, ClusterSpec::default());
    let ptr = cluster.setup_alloc(0, PAGE as u64);
    cluster.setup_write(ptr, &[0u8; PAGE]);
    (sim, cluster, ptr)
}

/// Writer critical section: CAS-acquire, WRITE the page (locked word in
/// the image, like `write_unlock`), FAA-unlock. Returns the acquire CAS
/// expected/new words it used.
async fn locked_update(ep: &Endpoint, ptr: RemotePtr, fill: u8) {
    let cluster = ep.cluster();
    let word = u64::from_le_bytes(cluster.setup_read(ptr, 8)[..8].try_into().unwrap());
    let locked = lock_word::locked_by(word, ep.client_id());
    let prev = ep.cas(ptr, word, locked).await.unwrap();
    assert_eq!(prev, word, "uncontended acquire");
    let mut page = [fill; PAGE];
    page[..8].copy_from_slice(&locked.to_le_bytes());
    ep.write(ptr, &page).await.unwrap();
    ep.fetch_add(ptr, 1).await.unwrap();
}

#[test]
fn unvalidated_racy_read_is_reported() {
    let (sim, cluster, ptr) = cluster_with_page();
    let race = Racecheck::install(&cluster, PAGE);
    {
        let cluster = cluster.clone();
        let writer = Endpoint::new(&cluster);
        let reader = Endpoint::new(&cluster);
        sim.spawn(async move {
            cluster.note_op_start(writer.client_id(), OpKind::Insert);
            locked_update(&writer, ptr, 7).await;
            cluster.note_op_end(writer.client_id(), OpKind::Insert, true);

            // The reader's clock has no edge from the writer: the read
            // races with the unlock FAA, and no fence ever validates it.
            cluster.note_op_start(reader.client_id(), OpKind::Lookup);
            reader.read(ptr, PAGE).await.unwrap();
            cluster.note_op_end(reader.client_id(), OpKind::Lookup, true);
        });
    }
    sim.run();
    let violations = race.violations();
    assert_eq!(violations.len(), 1, "{}", race.report());
    assert_eq!(violations[0].rule, "unvalidated-race");
    // The diagnostic names both sides of the race and the missing edge.
    assert!(
        violations[0].detail.contains("races with"),
        "{}",
        violations[0].detail
    );
    assert!(
        violations[0].detail.contains("missing HB edge"),
        "{}",
        violations[0].detail
    );
}

#[test]
fn validated_racy_read_is_benign() {
    let (sim, cluster, ptr) = cluster_with_page();
    let race = Racecheck::install(&cluster, PAGE);
    {
        let cluster = cluster.clone();
        let writer = Endpoint::new(&cluster);
        let reader = Endpoint::new(&cluster);
        sim.spawn(async move {
            cluster.note_op_start(writer.client_id(), OpKind::Insert);
            locked_update(&writer, ptr, 7).await;
            cluster.note_op_end(writer.client_id(), OpKind::Insert, true);

            // Same racy read — but the engine's validation fence
            // (covers()/find_child() re-check) closes the window before
            // the op completes: benign-validated, not a violation.
            cluster.note_op_start(reader.client_id(), OpKind::Lookup);
            reader.read(ptr, PAGE).await.unwrap();
            cluster.note_fence(reader.client_id(), FenceKind::Revalidate, 0, ptr.offset());
            cluster.note_op_end(reader.client_id(), OpKind::Lookup, true);
        });
    }
    sim.run();
    race.assert_clean();
    let counts = race.counts();
    assert!(counts.racy_reads >= 1, "the read must have been racy");
    assert!(counts.validated >= 1, "the fence must have validated it");
}

#[test]
fn discarded_racy_read_is_benign() {
    let (sim, cluster, ptr) = cluster_with_page();
    let race = Racecheck::install(&cluster, PAGE);
    {
        let cluster = cluster.clone();
        let writer = Endpoint::new(&cluster);
        let reader = Endpoint::new(&cluster);
        sim.spawn(async move {
            cluster.note_op_start(writer.client_id(), OpKind::Insert);
            locked_update(&writer, ptr, 7).await;
            cluster.note_op_end(writer.client_id(), OpKind::Insert, true);

            cluster.note_op_start(reader.client_id(), OpKind::Lookup);
            reader.read(ptr, PAGE).await.unwrap();
            cluster.note_fence(reader.client_id(), FenceKind::Discard, 0, ptr.offset());
            cluster.note_op_end(reader.client_id(), OpKind::Lookup, true);
        });
    }
    sim.run();
    race.assert_clean();
}

#[test]
fn failed_op_does_not_report_its_racy_reads() {
    let (sim, cluster, ptr) = cluster_with_page();
    let race = Racecheck::install(&cluster, PAGE);
    {
        let cluster = cluster.clone();
        let writer = Endpoint::new(&cluster);
        let reader = Endpoint::new(&cluster);
        sim.spawn(async move {
            locked_update(&writer, ptr, 7).await;
            cluster.note_op_start(reader.client_id(), OpKind::Lookup);
            reader.read(ptr, PAGE).await.unwrap();
            // The attempt aborts: its bytes never reach a result.
            cluster.note_op_end(reader.client_id(), OpKind::Lookup, false);
        });
    }
    sim.run();
    race.assert_clean();
}

#[test]
fn locked_snapshot_read_survives_version_recheck() {
    let (sim, cluster, ptr) = cluster_with_page();
    let race = Racecheck::install(&cluster, PAGE);
    {
        let cluster = cluster.clone();
        let holder = Endpoint::new(&cluster);
        let reader = Endpoint::new(&cluster);
        sim.spawn(async move {
            // Holder acquires and sits in its critical section.
            let locked = lock_word::locked_by(0, holder.client_id());
            holder.cas(ptr, 0, locked).await.unwrap();

            // The reader snapshots the foreign-locked page — torn by
            // construction. A version re-check does NOT validate it
            // (the version it would check is itself mid-update), so the
            // window survives to op end and is reported.
            cluster.note_op_start(reader.client_id(), OpKind::Lookup);
            reader.read(ptr, PAGE).await.unwrap();
            cluster.note_fence(reader.client_id(), FenceKind::Revalidate, 0, ptr.offset());
            cluster.note_op_end(reader.client_id(), OpKind::Lookup, true);
        });
    }
    sim.run();
    let violations = race.violations();
    assert_eq!(violations.len(), 1, "{}", race.report());
    assert_eq!(violations[0].rule, "locked-snapshot-read");
}

#[test]
fn unlock_before_write_reorder_is_reported() {
    let (sim, cluster, ptr) = cluster_with_page();
    let race = Racecheck::install(&cluster, PAGE);
    {
        let writer = Endpoint::new(&cluster);
        sim.spawn(async move {
            // The seeded mutation's shape: acquire, unlock FAA *first*,
            // then the deferred in-place WRITE — page bytes published
            // outside the critical section.
            let locked = lock_word::locked_by(0, writer.client_id());
            writer.cas(ptr, 0, locked).await.unwrap();
            let prev = writer.fetch_add(ptr, 1).await.unwrap();
            let mut page = [9u8; PAGE];
            page[..8].copy_from_slice(&(prev.wrapping_add(1)).to_le_bytes());
            writer.write(ptr, &page).await.unwrap();
        });
    }
    sim.run();
    let violations = race.violations();
    assert!(
        violations.iter().any(|v| v.rule == "unlocked-write"),
        "{}",
        race.report()
    );
    let v = violations
        .iter()
        .find(|v| v.rule == "unlocked-write")
        .unwrap();
    assert!(
        v.detail.contains("outside its critical section"),
        "{}",
        v.detail
    );
}

#[test]
fn write_write_race_without_synchronization_is_reported() {
    let (sim, cluster, ptr) = cluster_with_page();
    let race = Racecheck::install(&cluster, PAGE);
    {
        let a = Endpoint::new(&cluster);
        let b = Endpoint::new(&cluster);
        sim.spawn(async move {
            locked_update(&a, ptr, 1).await;
            // `b` blind-writes with no CAS: no HB edge from `a`'s
            // critical section.
            let mut page = [2u8; PAGE];
            page[..8].copy_from_slice(&2u64.to_le_bytes());
            b.write(ptr, &page).await.unwrap();
        });
    }
    sim.run();
    let violations = race.violations();
    assert!(
        violations.iter().any(|v| v.rule == "write-write-race"),
        "{}",
        race.report()
    );
}

#[test]
fn stale_epoch_cached_use_is_reported() {
    let (sim, cluster, ptr) = cluster_with_page();
    let race = Racecheck::install(&cluster, PAGE);
    {
        let cluster = cluster.clone();
        let client = Endpoint::new(&cluster);
        sim.spawn(async move {
            // Client reconciles its cache against restart epoch 0 ...
            // (EpochCheck carries no page: server/offset are zero).
            cluster.note_fence(client.client_id(), FenceKind::EpochCheck, 0, 0);
            cluster.note_fence(client.client_id(), FenceKind::CachedUse, 0, ptr.offset());
            // ... then server 0 restarts (pool rebuilt, epoch bumps) and
            // the client serves from its cache without re-reconciling.
            cluster.fail_server(0);
            cluster.restart_server(0);
            cluster.note_fence(client.client_id(), FenceKind::CachedUse, 0, ptr.offset());
        });
    }
    sim.run();
    let violations = race.violations();
    assert_eq!(violations.len(), 1, "{}", race.report());
    assert_eq!(violations[0].rule, "stale-epoch-cached-use");
}

// ---------------------------------------------------------------------
// Zero perturbation: the detector observes, it must not participate.

#[test]
fn detector_does_not_perturb_the_run() {
    // The same verb sequence with and without the detector installed
    // must reach quiescence at the same virtual time with the same
    // final page bytes: the detector observes, it never participates.
    let run = |install: bool| {
        let (sim, cluster, ptr) = cluster_with_page();
        let race = install.then(|| Racecheck::install(&cluster, PAGE));
        {
            let cluster = cluster.clone();
            let a = Endpoint::new(&cluster);
            let b = Endpoint::new(&cluster);
            sim.spawn(async move {
                cluster.note_op_start(a.client_id(), OpKind::Insert);
                locked_update(&a, ptr, 3).await;
                cluster.note_op_end(a.client_id(), OpKind::Insert, true);
                cluster.note_op_start(b.client_id(), OpKind::Lookup);
                b.read(ptr, PAGE).await.unwrap();
                cluster.note_fence(b.client_id(), FenceKind::Revalidate, 0, ptr.offset());
                cluster.note_op_end(b.client_id(), OpKind::Lookup, true);
            });
        }
        let end = sim.run();
        if let Some(race) = race {
            race.assert_clean();
        }
        (end, cluster.setup_read(ptr, PAGE))
    };
    assert_eq!(run(false), run(true));
}
