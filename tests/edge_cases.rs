//! Edge cases every design must handle: empty indexes, single entries,
//! boundary keys, duplicate keys, and degenerate clusters.

use namdex::prelude::*;

fn with_designs(
    items: Vec<(u64, u64)>,
    domain: u64,
    check: impl Fn(Design, Endpoint, Sim) + Clone + 'static,
) {
    for kind in 0..3u8 {
        let sim = Sim::new();
        let nam = NamCluster::new(&sim, ClusterSpec::default());
        let partition = PartitionMap::range_uniform(nam.num_servers(), domain.max(4));
        let design = match kind {
            0 => Design::Cg(CoarseGrained::build(
                &nam,
                PageLayout::default(),
                partition,
                items.clone().into_iter(),
                0.7,
            )),
            1 => Design::Fg(FineGrained::build(
                &nam.rdma,
                FgConfig::default(),
                items.clone().into_iter(),
            )),
            _ => Design::Hybrid(Hybrid::build(
                &nam,
                FgConfig::default(),
                partition,
                items.clone().into_iter(),
            )),
        };
        let ep = Endpoint::new(&nam.rdma);
        check.clone()(design, ep, sim.clone());
        sim.run();
    }
}

#[test]
fn empty_index_supports_all_ops() {
    with_designs(vec![], 1000, |design, ep, sim| {
        sim.spawn(async move {
            assert_eq!(design.lookup(&ep, 42).await.unwrap(), None);
            assert!(design.range(&ep, 0, 999).await.unwrap().is_empty());
            assert!(!design.delete(&ep, 42).await.unwrap());
            // First insert into an empty index.
            design.insert(&ep, 7, 70).await.unwrap();
            assert_eq!(design.lookup(&ep, 7).await.unwrap(), Some(70));
            assert_eq!(design.range(&ep, 0, 999).await.unwrap(), vec![(7, 70)]);
        });
    });
}

#[test]
fn single_entry_index() {
    with_designs(vec![(500, 5)], 1000, |design, ep, sim| {
        sim.spawn(async move {
            assert_eq!(design.lookup(&ep, 500).await.unwrap(), Some(5));
            assert_eq!(design.lookup(&ep, 499).await.unwrap(), None);
            assert_eq!(design.lookup(&ep, 501).await.unwrap(), None);
            assert_eq!(design.range(&ep, 0, 1000).await.unwrap().len(), 1);
            assert!(design.delete(&ep, 500).await.unwrap());
            assert!(design.range(&ep, 0, 1000).await.unwrap().is_empty());
        });
    });
}

#[test]
fn boundary_keys() {
    // Key 0 and very large keys (below the KEY_MAX sentinel).
    const BIG: u64 = u64::MAX - 2;
    with_designs(vec![(0, 100), (BIG, 200)], 1 << 20, |design, ep, sim| {
        sim.spawn(async move {
            assert_eq!(design.lookup(&ep, 0).await.unwrap(), Some(100));
            assert_eq!(design.lookup(&ep, BIG).await.unwrap(), Some(200));
            let all = design.range(&ep, 0, u64::MAX - 1).await.unwrap();
            assert_eq!(all, vec![(0, 100), (BIG, 200)]);
        });
    });
}

#[test]
fn duplicate_keys_within_leaf_capacity() {
    // The index is non-unique: several entries under one key, bounded by
    // one leaf's capacity (see blink's split documentation).
    let mut items = vec![(10u64, 1u64)];
    for v in 0..20u64 {
        items.push((50, 1000 + v));
    }
    items.push((90, 9));
    with_designs(items, 1000, |design, ep, sim| {
        sim.spawn(async move {
            // Point lookup returns the first live duplicate.
            assert_eq!(design.lookup(&ep, 50).await.unwrap(), Some(1000));
            // Range returns all of them, in order.
            let dups = design.range(&ep, 50, 50).await.unwrap();
            assert_eq!(dups.len(), 20);
            assert!(dups.iter().all(|&(k, _)| k == 50));
            // Deleting consumes one duplicate at a time.
            assert!(design.delete(&ep, 50).await.unwrap());
            assert_eq!(design.lookup(&ep, 50).await.unwrap(), Some(1001));
            assert_eq!(design.range(&ep, 50, 50).await.unwrap().len(), 19);
        });
    });
}

#[test]
fn inverted_and_degenerate_ranges() {
    let items: Vec<(u64, u64)> = (0..100).map(|i| (i * 10, i)).collect();
    with_designs(items, 1000, |design, ep, sim| {
        sim.spawn(async move {
            // Point-sized range.
            assert_eq!(design.range(&ep, 500, 500).await.unwrap(), vec![(500, 50)]);
            // Range between keys.
            assert!(design.range(&ep, 501, 509).await.unwrap().is_empty());
            // Range past the data.
            assert!(design.range(&ep, 5000, 6000).await.unwrap().is_empty());
        });
    });
}

#[test]
fn single_memory_server_cluster() {
    // A 1-server "cluster" must still work for all designs (FG's
    // round-robin degenerates to one pool; CG/hybrid to one partition).
    let sim = Sim::new();
    let nam = NamCluster::new(&sim, ClusterSpec::with_memory_servers(1));
    assert_eq!(nam.num_servers(), 1);
    let items: Vec<(u64, u64)> = (0..5_000).map(|i| (i * 2, i)).collect();
    let partition = PartitionMap::range_uniform(1, 10_000);
    for design in [
        Design::Cg(CoarseGrained::build(
            &nam,
            PageLayout::default(),
            partition.clone(),
            items.clone().into_iter(),
            0.7,
        )),
        Design::Fg(FineGrained::build(
            &nam.rdma,
            FgConfig::default(),
            items.clone().into_iter(),
        )),
        Design::Hybrid(Hybrid::build(
            &nam,
            FgConfig::default(),
            partition.clone(),
            items.clone().into_iter(),
        )),
    ] {
        let ep = Endpoint::new(&nam.rdma);
        sim.spawn(async move {
            assert_eq!(design.lookup(&ep, 2_468).await.unwrap(), Some(1_234));
            design.insert(&ep, 2_469, 7).await.unwrap();
            assert_eq!(design.lookup(&ep, 2_469).await.unwrap(), Some(7));
        });
        sim.run();
    }
}

#[test]
fn growth_from_empty_to_multilevel() {
    // An index born empty must grow through every level transition.
    with_designs(vec![], 1 << 30, |design, ep, sim| {
        let name = design.name();
        sim.spawn(async move {
            for i in 0..3_000u64 {
                design.insert(&ep, i * 16 + 1, i).await.unwrap();
            }
            for i in (0..3_000u64).step_by(111) {
                assert_eq!(
                    design.lookup(&ep, i * 16 + 1).await.unwrap(),
                    Some(i),
                    "{name}: key {i} lost during growth"
                );
            }
            let rows = design.range(&ep, 0, u64::MAX - 1).await.unwrap();
            assert_eq!(rows.len(), 3_000, "{name}: full scan after growth");
        });
    });
}
