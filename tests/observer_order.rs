//! Observer-bus firing-order regression (see `rdma_sim::observer`).
//!
//! The race detector's happens-before edges are only sound if the
//! observer bus reports events **at the instant their memory effect
//! applies, in apply order** — a verb reported early (before its WAL
//! append landed) or late (after a later verb's event) would let the
//! vector clocks order accesses differently from the simulated memory
//! system. This pins that contract under `Durability::Wal`, where the
//! temptation to reorder is real: acks are deferred behind log flushes
//! and a crash/recovery cycle rewinds server memory mid-run.
//!
//! * every hook of the full surface (verbs, RPCs, op spans, fences,
//!   regions, failures, recovery) is recorded by two observers; they
//!   must see the identical sequence, strictly in registration order;
//! * event times are non-decreasing — nothing is reported out of apply
//!   order — and every verb completes no earlier than it was issued;
//! * the whole recorded sequence is pinned by an FNV-1a digest: any
//!   change to what fires, when it fires, or its order is a visible,
//!   deliberate golden update.

use namdex::prelude::*;
use namdex::rdma::observer::{
    AttemptKind, FenceKind, OpArgs, OpKind, OpOutcome, RegionKind, RpcEvent, VerbEvent,
    VerbObserver,
};
use std::cell::{Cell, RefCell};
use std::rc::Rc;

/// Golden FNV-1a digest of the recorded event sequence. Regenerate by
/// running with `NAMDEX_PRINT_DIGEST=1` after a *deliberate* change to
/// the observer surface or the engine's verb schedule.
const OBSERVER_ORDER_GOLDEN: u64 = 9462641046518700200;

/// Records every observer hook as a rendered line, tagging each with a
/// ticket from the bus-wide sequence counter shared by all recorders.
struct Recorder {
    seq: Rc<Cell<u64>>,
    lines: RefCell<Vec<String>>,
    tickets: RefCell<Vec<u64>>,
    times: RefCell<Vec<u64>>,
}

impl Recorder {
    fn new(seq: &Rc<Cell<u64>>) -> Rc<Recorder> {
        Rc::new(Recorder {
            seq: seq.clone(),
            lines: RefCell::new(Vec::new()),
            tickets: RefCell::new(Vec::new()),
            times: RefCell::new(Vec::new()),
        })
    }

    fn record(&self, time: SimTime, line: String) {
        let t = self.seq.get();
        self.seq.set(t + 1);
        self.tickets.borrow_mut().push(t);
        self.times.borrow_mut().push(time.as_nanos());
        self.lines.borrow_mut().push(line);
    }
}

impl VerbObserver for Recorder {
    fn on_verb(&self, ev: &VerbEvent) {
        assert!(
            ev.time >= ev.issued,
            "verb completed before it was issued: {ev:?}"
        );
        self.record(
            ev.time,
            format!(
                "verb {:?} c{} s{} {:#x}+{} t={}",
                ev.kind, ev.client, ev.server, ev.offset, ev.len, ev.time
            ),
        );
    }
    fn on_free(&self, server: usize, offset: u64, len: usize, time: SimTime) {
        self.record(time, format!("free s{server} {offset:#x}+{len} t={time}"));
    }
    fn on_unreachable(&self, client: u64, server: usize, kind: AttemptKind, time: SimTime) {
        self.record(
            time,
            format!("unreachable c{client} s{server} {kind:?} t={time}"),
        );
    }
    fn on_rpc(&self, ev: &RpcEvent) {
        self.record(
            ev.time,
            format!("rpc c{} s{} t={}", ev.client, ev.server, ev.time),
        );
    }
    fn on_verb_failed(&self, client: u64, server: usize, time: SimTime) {
        self.record(time, format!("verb-failed c{client} s{server} t={time}"));
    }
    fn on_op_start(&self, client: u64, kind: OpKind, time: SimTime) {
        self.record(
            time,
            format!("op-start c{client} {} t={time}", kind.label()),
        );
    }
    fn on_op_end(&self, client: u64, kind: OpKind, time: SimTime, ok: bool) {
        self.record(
            time,
            format!("op-end c{client} {} ok={ok} t={time}", kind.label()),
        );
    }
    fn on_op_invoke(&self, client: u64, args: OpArgs, time: SimTime) {
        self.record(time, format!("op-invoke c{client} {args:?} t={time}"));
    }
    fn on_op_response(&self, client: u64, outcome: &OpOutcome, time: SimTime) {
        self.record(time, format!("op-response c{client} {outcome:?} t={time}"));
    }
    fn on_region(&self, client: u64, kind: RegionKind, enter: bool, time: SimTime) {
        self.record(
            time,
            format!("region c{client} {} enter={enter} t={time}", kind.label()),
        );
    }
    fn on_instant(&self, label: &str, time: SimTime) {
        self.record(time, format!("instant {label} t={time}"));
    }
    fn on_fence(&self, client: u64, kind: FenceKind, server: usize, offset: u64, time: SimTime) {
        self.record(
            time,
            format!("fence c{client} {kind:?} s{server} {offset:#x} t={time}"),
        );
    }
    fn on_server_recovered(&self, server: usize, time: SimTime) {
        self.record(time, format!("recovered s{server} t={time}"));
    }
}

fn fnv1a(lines: &[String]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for line in lines {
        for &b in line.as_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        h ^= u64::from(b'\n');
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Hybrid-design workload under `Durability::Wal` with a crash/recovery
/// of server 1 mid-run: one-sided reads, RPC writes, WAL-deferred acks,
/// unreachable windows and a recovery all cross the bus.
fn recorded_run() -> (Rc<Recorder>, Rc<Recorder>) {
    const KEYS: u64 = 64;
    let sim = Sim::new();
    let nam = NamCluster::new(
        &sim,
        ClusterSpec {
            durability: Durability::Wal,
            wal_restart_boot_latency: SimDur::from_micros(200),
            ..ClusterSpec::default()
        },
    );
    let partition = PartitionMap::range_uniform(nam.num_servers(), KEYS * 8);
    let index = Hybrid::build(
        &nam,
        FgConfig::default(),
        partition,
        (0..KEYS).map(|i| (i * 8, i)),
    );

    let seq = Rc::new(Cell::new(0u64));
    let first = Recorder::new(&seq);
    let second = Recorder::new(&seq);
    nam.rdma.add_observer(first.clone());
    nam.rdma.add_observer(second.clone());

    let plan = FaultPlan::with_seed(7)
        .crash_server(SimTime::from_micros(300), 1)
        .restart_server(SimTime::from_micros(400), 1);
    ChaosController::install_nam(&sim, &nam, plan);

    for w in 0..2u64 {
        let index = index.clone();
        let ep = Endpoint::new(&nam.rdma);
        sim.spawn(async move {
            for i in 0..12u64 {
                let k = 1 + 2 * (w * 12 + i);
                // Crash-window ops may fail; the sequence of attempts is
                // still deterministic and that is all the digest pins.
                let _ = index.insert(&ep, k, k * 10 + w).await;
                let _ = index.lookup(&ep, (i % KEYS) * 8).await;
            }
        });
    }
    sim.run();
    (first, second)
}

#[test]
fn observer_firing_order_is_pinned() {
    let (first, second) = recorded_run();
    let lines = first.lines.borrow();

    // Both observers saw the identical sequence...
    assert_eq!(*lines, *second.lines.borrow());
    assert!(!lines.is_empty(), "workload crossed the bus");
    // ...with a recovery in it (the Wal restart actually happened)...
    assert!(
        lines.iter().any(|l| l.starts_with("recovered s1")),
        "no recovery event recorded"
    );
    // ...and strictly in registration order at every single event: the
    // first observer drew the even tickets, the second the odd ones.
    for (i, (tf, ts)) in first
        .tickets
        .borrow()
        .iter()
        .zip(second.tickets.borrow().iter())
        .enumerate()
    {
        assert_eq!((*tf, *ts), (2 * i as u64, 2 * i as u64 + 1), "event {i}");
    }

    // Events are reported in apply order: times never go backwards.
    let times = first.times.borrow();
    for w in times.windows(2) {
        assert!(w[0] <= w[1], "event reported out of apply order");
    }

    let digest = fnv1a(&lines);
    if std::env::var_os("NAMDEX_PRINT_DIGEST").is_some() {
        eprintln!(
            "observer-order digest: {digest:#x} over {} events",
            lines.len()
        );
        for l in lines.iter().take(40) {
            eprintln!("  {l}");
        }
    }
    assert_eq!(
        digest,
        OBSERVER_ORDER_GOLDEN,
        "observer event sequence changed ({} events): rerun with \
         NAMDEX_PRINT_DIGEST=1, review the diff deliberately, then \
         update OBSERVER_ORDER_GOLDEN",
        lines.len()
    );
}

/// The digest is a run invariant, not an accident of one execution.
#[test]
fn recorded_sequence_is_deterministic() {
    let (a, _) = recorded_run();
    let (b, _) = recorded_run();
    assert_eq!(*a.lines.borrow(), *b.lines.borrow());
}
