//! Schedule-space model-checker properties (see `crates/mc`):
//!
//! * the explicit FIFO schedule policy is **bit-identical** to the
//!   uncontrolled executor (property-tested over random seeds) — the
//!   controlled scheduler adds zero behavioural drift;
//! * a recorded random-walk decision trace **replays** to the same run
//!   (digests, virtual end time) — the counterexample format's
//!   foundational guarantee;
//! * PCT exploration under a pinned seed has a **stable coverage
//!   digest** — schedule search itself is deterministic;
//! * every no-fault harness run reaches **quiescence clean**: zero live
//!   tasks, zero held locks, linearizable history.

use mc::{run_scenario, DesignKind, FaultMode, PolicyKind, Scenario};
use proptest::prelude::*;

fn scenarios_for(seed: u64) -> Vec<Scenario> {
    let mut v = Vec::new();
    for design in DesignKind::ALL {
        for fault in [FaultMode::None, FaultMode::Chaos] {
            v.push(Scenario::point_ops(design, fault, seed));
        }
        v.push(Scenario::with_scans(design, FaultMode::None, seed));
    }
    v
}

fn assert_same_run(sc: &Scenario, a: &mc::RunReport, b: &mc::RunReport, what: &str) {
    assert_eq!(
        a.history_digest,
        b.history_digest,
        "{what}: history diverged for {}/{} seed {}",
        sc.design.name(),
        sc.fault.name(),
        sc.seed
    );
    assert_eq!(
        a.end_nanos,
        b.end_nanos,
        "{what}: virtual end time diverged for {}/{} seed {}",
        sc.design.name(),
        sc.fault.name(),
        sc.seed
    );
    assert_eq!(a.events, b.events, "{what}: op count diverged");
}

#[test]
fn fifo_policy_matches_uncontrolled_executor() {
    for sc in scenarios_for(0xF1F0) {
        let base = run_scenario(&sc, &PolicyKind::Uncontrolled);
        let fifo = run_scenario(&sc, &PolicyKind::Fifo);
        assert_same_run(&sc, &base, &fifo, "fifo-parity");
        // FIFO always picks candidate 0, so the trace is all zeros.
        assert!(
            fifo.decisions.iter().all(|&d| d == 0),
            "FIFO made a non-zero decision: {:?}",
            fifo.decisions
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 12,
        ..ProptestConfig::default()
    })]

    /// Property form of FIFO parity: any workload seed, any design,
    /// with and without faults.
    #[test]
    fn fifo_parity_holds_for_arbitrary_seeds(
        seed in any::<u64>(),
        design_ix in 0usize..3,
        chaos in any::<bool>(),
    ) {
        let fault = if chaos { FaultMode::Chaos } else { FaultMode::None };
        let sc = Scenario::point_ops(DesignKind::ALL[design_ix], fault, seed);
        let base = run_scenario(&sc, &PolicyKind::Uncontrolled);
        let fifo = run_scenario(&sc, &PolicyKind::Fifo);
        assert_same_run(&sc, &base, &fifo, "fifo-parity(prop)");
    }
}

#[test]
fn random_walk_trace_replays_to_identical_run() {
    for sc in scenarios_for(0x5EED) {
        for walk_seed in [1u64, 99] {
            let walked = run_scenario(&sc, &PolicyKind::RandomWalk { seed: walk_seed });
            let replayed = run_scenario(
                &sc,
                &PolicyKind::Replay {
                    decisions: walked.decisions.clone(),
                },
            );
            assert_same_run(&sc, &walked, &replayed, "record-replay");
            assert_eq!(
                walked.schedule_digest, replayed.schedule_digest,
                "replay took a different schedule"
            );
        }
    }
}

/// Pinned PCT coverage: same seeds, same schedules, forever. If this
/// digest moves, schedule search stopped being a pure function of its
/// seeds — every saved counterexample in every CI artifact goes stale.
/// (An *intentional* scheduler/workload change may re-pin it; say so in
/// the PR and regenerate via the values in the assertion message.)
#[test]
fn pct_pinned_seed_coverage_is_stable() {
    let sc = Scenario::point_ops(DesignKind::Fg, FaultMode::None, 0x9C7);
    let mut digests = Vec::new();
    for pct_seed in 0..8u64 {
        let report = run_scenario(
            &sc,
            &PolicyKind::Pct {
                seed: pct_seed,
                depth: 3,
            },
        );
        assert!(report.clean(), "pinned PCT schedule found a violation");
        digests.push(report.schedule_digest);
    }
    let distinct = {
        let mut d = digests.clone();
        d.sort_unstable();
        d.dedup();
        d.len()
    };
    let mut combined = mc::scenario::Digest::new();
    for d in &digests {
        combined.word(*d);
    }
    let combined = combined.finish();
    assert_eq!(
        (distinct, combined),
        (3, 0xc1362ea83267ecf9),
        "PCT coverage drifted: distinct={distinct} combined={combined:#x}"
    );
}

/// Quiescence: after every no-fault run — any design, any policy — the
/// sim has zero live tasks, no held locks, and a linearizable history.
#[test]
fn no_fault_runs_reach_clean_quiescence() {
    for design in DesignKind::ALL {
        for sc in [
            Scenario::point_ops(design, FaultMode::None, 7),
            Scenario::with_scans(design, FaultMode::None, 7),
        ] {
            for policy in [
                PolicyKind::Uncontrolled,
                PolicyKind::RandomWalk { seed: 3 },
                PolicyKind::Pct { seed: 3, depth: 3 },
            ] {
                let report = run_scenario(&sc, &policy);
                assert_eq!(report.task_leak, 0, "live tasks after drain");
                assert!(report.held_leaks.is_empty(), "locks held at quiescence");
                assert!(report.san_violations.is_empty(), "sanitizer findings");
                assert!(
                    report.lin.is_ok(),
                    "non-linearizable no-fault history: {:?}",
                    report.lin
                );
            }
        }
    }
}

/// Chaos runs must also drain fully: the chaos driver task, killed
/// clients and fault timers all terminate, and any lock still held
/// belongs to the killed (dead) client only.
#[test]
fn chaos_runs_drain_without_task_leaks() {
    for design in DesignKind::ALL {
        let sc = Scenario::point_ops(design, FaultMode::Chaos, 11);
        let report = run_scenario(&sc, &PolicyKind::RandomWalk { seed: 4 });
        assert_eq!(report.task_leak, 0, "live tasks after chaos drain");
        assert!(
            report.held_leaks.is_empty(),
            "live-owner lock leak under chaos: {:?}",
            report.held_leaks
        );
    }
}

/// Linearizability across a real recovery: for every design, crash the
/// hot server mid-run under `Durability::Wal` (RAM wiped, checkpoint +
/// log replayed) under several schedule interleavings, and require a
/// clean quiescent state with a linearizable history every time. Each
/// walk seed moves the crash relative to in-flight appends, flushes and
/// acks — these are the recovery interleavings the durability design
/// must survive.
#[test]
fn crash_recovery_interleavings_stay_linearizable() {
    for design in DesignKind::ALL {
        for walk_seed in [5u64, 23] {
            let sc = Scenario::point_ops(design, FaultMode::CrashRecover, 13);
            let report = run_scenario(&sc, &PolicyKind::RandomWalk { seed: walk_seed });
            assert_eq!(
                report.recoveries,
                1,
                "{}: the crash/recovery cycle must complete",
                design.name()
            );
            assert_eq!(report.task_leak, 0, "{}: live tasks", design.name());
            assert!(
                report.held_leaks.is_empty(),
                "{}: live-owner lock leak across recovery: {:?}",
                design.name(),
                report.held_leaks
            );
            assert!(
                report.san_violations.is_empty(),
                "{}: sanitizer findings across recovery: {:?}",
                design.name(),
                report.san_violations
            );
            assert!(
                report.lin.is_ok(),
                "{}: non-linearizable history across recovery (walk seed \
                 {walk_seed}): {:?}",
                design.name(),
                report.lin
            );
        }
    }
}
