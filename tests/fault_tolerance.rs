//! Fault-tolerance scenarios: the paper's protocols extended with
//! lease-based lock recovery (`blink::layout::lock_word`), bounded
//! retry (`namdex_core::OpError`), and the `chaos` fault injector.
//!
//! The headline scenario kills a client at the worst possible instant —
//! *between its lock-acquire CAS and its unlock FAA* — and requires
//! that every design completes the workload anyway: a contender breaks
//! the orphaned lease after its virtual-time expiry, no key is lost or
//! duplicated, and (under `--features sanitizer`) the run is violation-
//! free and passes the structural walk.

use namdex::index::OpError;
use namdex::prelude::*;
use std::cell::{Cell, RefCell};
use std::rc::Rc;

fn cluster() -> (Sim, NamCluster) {
    let sim = Sim::new();
    let nam = NamCluster::new(&sim, ClusterSpec::default());
    (sim, nam)
}

#[cfg(feature = "sanitizer")]
fn arm_sanitized(nam: &NamCluster, design: &Design) -> Rc<namdex::sanitizer::Sanitizer> {
    let page_size = match design {
        Design::Cg(_) => PageLayout::default().page_size(),
        Design::Fg(d) => d.layout().page_size(),
        Design::Hybrid(d) => d.layout().page_size(),
        Design::Learned(d) => d.layout().page_size(),
    };
    let san = namdex::sanitizer::Sanitizer::install(&nam.rdma, page_size);
    namdex::sanitizer::walk::register_design(&san, design);
    san
}
#[cfg(not(feature = "sanitizer"))]
struct NoSanitizer;
#[cfg(not(feature = "sanitizer"))]
fn arm_sanitized(_nam: &NamCluster, _design: &Design) -> NoSanitizer {
    NoSanitizer
}

#[cfg(feature = "sanitizer")]
fn finish_sanitized(san: &namdex::sanitizer::Sanitizer, design: &Design) {
    assert_eq!(san.check_structure(design), 0, "structural walk");
    san.assert_clean();
}
#[cfg(not(feature = "sanitizer"))]
fn finish_sanitized(_san: &NoSanitizer, _design: &Design) {}

const KEYS: u64 = 500;

fn build(kind: u8, nam: &NamCluster) -> Design {
    let items = (0..KEYS).map(|i| (i * 8, i));
    let partition = PartitionMap::range_uniform(nam.num_servers(), KEYS * 8);
    match kind {
        0 => Design::Cg(CoarseGrained::build(
            nam,
            PageLayout::default(),
            partition,
            items,
            0.7,
        )),
        1 => Design::Fg(FineGrained::build(&nam.rdma, FgConfig::default(), items)),
        2 => Design::Hybrid(Hybrid::build(nam, FgConfig::default(), partition, items)),
        _ => Design::Learned(Learned::build(nam, FgConfig::default(), partition, items)),
    }
}

/// The one-sided designs die between CAS and FAA: the armed trigger
/// kills the victim the instant its lock-acquire CAS succeeds, so the
/// leaf lock is orphaned and the contender must break the lease.
fn lock_orphan_scenario(kind: u8) {
    let (sim, nam) = cluster();
    let design = build(kind, &nam);
    let san = arm_sanitized(&nam, &design);
    let lease = nam.rdma.spec().lease_duration;

    let victim = Endpoint::new(&nam.rdma);
    let contender = Endpoint::new(&nam.rdma);
    let plan = FaultPlan::new().kill_on_lock_acquire(SimTime::ZERO, victim.client_id());
    ChaosController::install_nam(&sim, &nam, plan);

    // Odd keys are fresh (the load uses multiples of 8); all land near
    // the same leaf so the contender meets the orphaned lock.
    let victim_key = 2_001u64;
    let contender_keys: Vec<u64> = (0..10u64).map(|i| 2_003 + 2 * i).collect();

    let victim_result = Rc::new(Cell::new(None));
    {
        let design = design.clone();
        let victim_result = victim_result.clone();
        sim.spawn(async move {
            victim_result.set(Some(design.insert(&victim, victim_key, 999).await));
        });
    }
    let recovered_at = Rc::new(Cell::new(SimTime::ZERO));
    {
        let design = design.clone();
        let keys = contender_keys.clone();
        let sim_c = sim.clone();
        let recovered_at = recovered_at.clone();
        sim.spawn(async move {
            // Start after the victim has taken (and orphaned) the lock.
            sim_c.sleep(SimDur::from_micros(5)).await;
            for k in keys {
                design
                    .insert(&contender, k, k * 10)
                    .await
                    .expect("contender must complete after breaking the lease");
            }
            recovered_at.set(sim_c.now());
        });
    }
    sim.run();

    // The victim died mid-operation, between its CAS and its FAA.
    assert_eq!(nam.rdma.fault_stats().lock_kills_fired, 1, "trigger fired");
    assert!(
        matches!(victim_result.get(), Some(Err(OpError::Cancelled))),
        "victim's insert must report the kill: {:?}",
        victim_result.get()
    );
    // The contender could only proceed by waiting out the lease.
    assert!(
        recovered_at.get() >= SimTime::ZERO + lease,
        "recovery at {:?} cannot precede lease expiry ({lease:?})",
        recovered_at.get()
    );

    // No key lost, none duplicated: the full scan is exactly the load
    // plus the contender's inserts, each once, sorted.
    let ep = Endpoint::new(&nam.rdma);
    let design2 = design.clone();
    let keys = contender_keys.clone();
    sim.spawn(async move {
        let rows = design2.range(&ep, 0, u64::MAX - 1).await.unwrap();
        assert_eq!(rows.len() as u64, KEYS + 10, "load + contender inserts");
        let mut expect: Vec<(u64, u64)> = (0..KEYS).map(|i| (i * 8, i)).collect();
        expect.extend(keys.iter().map(|&k| (k, k * 10)));
        expect.sort_unstable();
        assert_eq!(rows, expect, "contents after lease recovery");
        assert_eq!(
            design2.lookup(&ep, victim_key).await.unwrap(),
            None,
            "the victim died before publishing its insert"
        );
    });
    sim.run();
    finish_sanitized(&san, &design);
}

#[test]
fn fg_completes_after_client_dies_holding_a_lock() {
    lock_orphan_scenario(1);
}

#[test]
fn hybrid_completes_after_client_dies_holding_a_lock() {
    lock_orphan_scenario(2);
}

#[test]
fn learned_completes_after_client_dies_holding_a_lock() {
    lock_orphan_scenario(3);
}

/// The coarse-grained design has no client-held one-sided locks (its
/// latches live inside the server handlers), so "between two verbs" is
/// a timed kill mid-stream: RPCs already dispatched still apply
/// (at-least-once), later ones are refused at issue, and the client
/// finishes its stream after revival.
#[test]
fn cg_completes_after_timed_kill_between_rpcs() {
    let (sim, nam) = cluster();
    let design = build(0, &nam);
    let san = arm_sanitized(&nam, &design);

    let victim = Endpoint::new(&nam.rdma);
    let plan = FaultPlan::new()
        .kill_client(SimTime::from_micros(50), victim.client_id())
        .revive_client(SimTime::from_micros(250), victim.client_id());
    ChaosController::install_nam(&sim, &nam, plan);

    let keys: Vec<u64> = (0..20u64).map(|i| 2_001 + 2 * i).collect();
    let acked = Rc::new(RefCell::new(Vec::new()));
    let cancelled = Rc::new(Cell::new(0u32));
    {
        let design = design.clone();
        let keys = keys.clone();
        let acked = acked.clone();
        let cancelled = cancelled.clone();
        let cluster = nam.rdma.clone();
        let sim_c = sim.clone();
        sim.spawn(async move {
            for k in keys {
                match design.insert(&victim, k, k * 10).await {
                    Ok(()) => acked.borrow_mut().push(k),
                    Err(OpError::Cancelled) => {
                        cancelled.set(cancelled.get() + 1);
                        while cluster.client_dead(victim.client_id()) {
                            sim_c.sleep(SimDur::from_micros(10)).await;
                        }
                        // The interrupted RPC may or may not have applied
                        // server-side (at-least-once); re-issue it.
                        design.insert(&victim, k, k * 10).await.unwrap();
                        acked.borrow_mut().push(k);
                    }
                    Err(e) => panic!("unexpected failure: {e}"),
                }
            }
        });
    }
    sim.run();

    assert!(cancelled.get() >= 1, "the kill must interrupt the stream");
    assert_eq!(acked.borrow().len(), 20, "every insert eventually acked");

    let ep = Endpoint::new(&nam.rdma);
    let design2 = design.clone();
    sim.spawn(async move {
        let rows = design2.range(&ep, 0, u64::MAX - 1).await.unwrap();
        assert_eq!(rows.len() as u64, KEYS + 20, "no key lost or duplicated");
        for k in (0..20u64).map(|i| 2_001 + 2 * i) {
            assert_eq!(design2.lookup(&ep, k).await.unwrap(), Some(k * 10));
        }
    });
    sim.run();
    finish_sanitized(&san, &design);
}

/// Lossy links drop verbs at arbitrary points inside an insert —
/// including *after* the leaf's unlock FAA committed the install (a
/// refused split propagation, a refused unlock). The retry layer must
/// then re-run without duplicating the committed key: re-attempts check
/// the covering leaf for their own install and absorb it. Exactly-once
/// for the one-sided designs, under deterministic packet loss.
#[test]
fn lossy_links_never_lose_or_duplicate_inserts() {
    for kind in 1..4u8 {
        let (sim, nam) = cluster();
        let design = build(kind, &nam);
        let san = arm_sanitized(&nam, &design);
        // A bounded lossy window: every link drops a quarter of its
        // messages for the first 3ms of virtual time, then heals. (The
        // window must end: a client whose own unlock FAA was dropped can
        // only reclaim its lock by lease-breaking it, and the lease spin
        // itself needs the wire to carry READs again eventually.)
        //
        // Seed 3 is load-bearing: it drops a verb *after* a leaf commit,
        // so without re-attempt absorption this scan finds a duplicate.
        nam.rdma.set_fault_seed(3);
        for s in 0..nam.num_servers() {
            nam.rdma.degrade_link(
                s,
                LinkDegrade {
                    drop_chance: 0.25,
                    ..LinkDegrade::default()
                },
            );
        }
        {
            let rdma = nam.rdma.clone();
            let sim_c = sim.clone();
            let n = nam.num_servers();
            sim.spawn(async move {
                sim_c.sleep(SimDur::from_millis(3)).await;
                for s in 0..n {
                    rdma.restore_link(s);
                }
            });
        }

        let ep = Endpoint::new(&nam.rdma);
        let keys: Vec<u64> = (0..40u64).map(|i| 2_001 + 2 * i).collect();
        {
            let design = design.clone();
            let keys = keys.clone();
            sim.spawn(async move {
                for &k in &keys {
                    design
                        .insert(&ep, k, k * 10)
                        .await
                        .expect("retries must ride out the lossy window");
                }
            });
        }
        sim.run();
        assert!(
            nam.rdma.fault_stats().verbs_dropped > 0,
            "kind {kind}: the lossy window must actually drop verbs"
        );

        let ep = Endpoint::new(&nam.rdma);
        let design2 = design.clone();
        sim.spawn(async move {
            let rows = design2.range(&ep, 0, u64::MAX - 1).await.unwrap();
            let mut expect: Vec<(u64, u64)> = (0..KEYS).map(|i| (i * 8, i)).collect();
            expect.extend(keys.iter().map(|&k| (k, k * 10)));
            expect.sort_unstable();
            assert_eq!(
                rows.len(),
                expect.len(),
                "kind {kind}: a key was lost or duplicated"
            );
            assert_eq!(rows, expect, "kind {kind}: contents after lossy inserts");
        });
        sim.run();
        finish_sanitized(&san, &design);
    }
}

/// A memory-server outage in the middle of a read stream: retries ride
/// it out, the catalog generation bump marks cached descriptors stale,
/// and no operation returns a wrong answer.
#[test]
fn all_designs_ride_out_a_server_restart() {
    for kind in 0..4u8 {
        let (sim, nam) = cluster();
        let design = build(kind, &nam);
        let san = arm_sanitized(&nam, &design);
        let plan = FaultPlan::new()
            .crash_server(SimTime::from_micros(40), 1)
            .restart_server(SimTime::from_micros(140), 1);
        ChaosController::install_nam(&sim, &nam, plan);
        assert_eq!(nam.catalog.generation(), 0);

        let ep = Endpoint::new(&nam.rdma);
        let design2 = design.clone();
        let wrong = Rc::new(Cell::new(0u32));
        let failed = Rc::new(Cell::new(0u32));
        {
            let wrong = wrong.clone();
            let failed = failed.clone();
            sim.spawn(async move {
                for i in 0..200u64 {
                    let k = (i * 37) % KEYS;
                    match design2.lookup(&ep, k * 8).await {
                        Ok(got) => {
                            if got != Some(k) {
                                wrong.set(wrong.get() + 1);
                            }
                        }
                        Err(_) => failed.set(failed.get() + 1),
                    }
                }
            });
        }
        sim.run();
        assert_eq!(wrong.get(), 0, "kind {kind}: a lookup returned bad data");
        assert_eq!(
            failed.get(),
            0,
            "kind {kind}: retries must outlast a 100us outage"
        );
        assert!(
            nam.rdma.fault_stats().verbs_unreachable > 0,
            "kind {kind}: the outage must actually be hit"
        );
        assert_eq!(
            nam.catalog.generation(),
            1,
            "kind {kind}: restart bumps the catalog generation"
        );
        finish_sanitized(&san, &design);
    }
}
