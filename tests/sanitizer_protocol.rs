//! Protocol sanitizer tests (run with `--features sanitizer`).
//!
//! Positive half: the three designs' torture workloads must run *clean*
//! under the verb-level checker and pass the end-of-run structural walk.
//! Negative half: deliberately injected protocol violations — an
//! unlocked WRITE, a version rollback, an unlock without a lock, a read
//! of an epoch-retired region — must each be detected and reported with
//! server / byte-range / virtual-time / client context.

#![cfg(feature = "sanitizer")]

use namdex::index::gc;
use namdex::prelude::*;
use namdex::sanitizer::{walk, Sanitizer, ViolationKind};
use namdex::tree::layout::lock_word;
use std::rc::Rc;

fn cluster() -> (Sim, NamCluster) {
    let sim = Sim::new();
    let nam = NamCluster::new(&sim, ClusterSpec::default());
    (sim, nam)
}

fn small_fg_cfg() -> FgConfig {
    FgConfig {
        layout: PageLayout::new(256),
        fill: 0.7,
        head_stride: 4,
        cache_capacity: None,
    }
}

// ---- positive: real workloads are clean -------------------------------

#[test]
fn fg_torture_is_clean_under_sanitizer() {
    let (sim, nam) = cluster();
    let idx = FineGrained::build(&nam.rdma, small_fg_cfg(), (0..2_000u64).map(|i| (i * 8, i)));
    let san = Sanitizer::install(&nam.rdma, 256);
    walk::register_fg(&san, &idx);

    const WRITERS: u64 = 10;
    const PER: u64 = 60;
    for w in 0..WRITERS {
        let idx = idx.clone();
        let ep = Endpoint::new(&nam.rdma);
        sim.spawn(async move {
            for i in 0..PER {
                idx.insert(&ep, (i * WRITERS + w) * 16 + 1, w * 1_000 + i)
                    .await
                    .unwrap();
            }
        });
    }
    for r in 0..6u64 {
        let idx = idx.clone();
        let ep = Endpoint::new(&nam.rdma);
        sim.spawn(async move {
            for i in 0..50u64 {
                let key = ((i * 37 + r * 11) % 2_000) * 8;
                assert_eq!(idx.lookup(&ep, key).await.unwrap(), Some(key / 8));
                if i % 10 == 0 {
                    idx.range(&ep, key, key + 50 * 8).await.unwrap();
                }
            }
        });
    }
    sim.run();

    assert!(
        san.verbs_seen() > 1_000,
        "the checker must actually observe the workload"
    );
    assert_eq!(san.check_structure(&Design::Fg(idx.clone())), 0);
    san.assert_clean();
}

#[test]
fn hybrid_torture_is_clean_under_sanitizer() {
    let (sim, nam) = cluster();
    let partition = PartitionMap::range_uniform(nam.num_servers(), 2_000 * 8);
    let idx = Hybrid::build(
        &nam,
        small_fg_cfg(),
        partition,
        (0..2_000u64).map(|i| (i * 8, i)),
    );
    let san = Sanitizer::install(&nam.rdma, 256);
    walk::register_hybrid(&san, &idx);

    const WRITERS: u64 = 8;
    const PER: u64 = 50;
    for w in 0..WRITERS {
        let idx = idx.clone();
        let ep = Endpoint::new(&nam.rdma);
        sim.spawn(async move {
            for i in 0..PER {
                idx.insert(&ep, (i * WRITERS + w) * 16 + 3, w * 1_000 + i)
                    .await
                    .unwrap();
            }
        });
    }
    for r in 0..4u64 {
        let idx = idx.clone();
        let ep = Endpoint::new(&nam.rdma);
        sim.spawn(async move {
            for i in 0..40u64 {
                let key = ((i * 41 + r * 13) % 2_000) * 8;
                assert_eq!(idx.lookup(&ep, key).await.unwrap(), Some(key / 8));
            }
        });
    }
    sim.run();

    assert!(san.verbs_seen() > 500);
    assert_eq!(san.check_structure(&Design::Hybrid(idx.clone())), 0);
    san.assert_clean();
}

#[test]
fn cg_workload_passes_structural_walk() {
    let (sim, nam) = cluster();
    let partition = PartitionMap::range_uniform(nam.num_servers(), 1_000 * 8);
    let idx = CoarseGrained::build(
        &nam,
        PageLayout::default(),
        partition,
        (0..1_000u64).map(|i| (i * 8, i)),
        0.7,
    );
    let san = Sanitizer::install(&nam.rdma, PageLayout::DEFAULT_PAGE_SIZE);
    for c in 0..8u64 {
        let idx = idx.clone();
        let ep = Endpoint::new(&nam.rdma);
        sim.spawn(async move {
            for i in 0..40u64 {
                idx.insert(&ep, 4_001 + (i * 8 + c) * 2, c, false)
                    .await
                    .unwrap();
                assert_eq!(
                    idx.lookup(&ep, ((i + c) % 1_000) * 8).await.unwrap(),
                    Some((i + c) % 1_000)
                );
            }
        });
    }
    sim.run();
    assert_eq!(san.check_structure(&Design::Cg(idx.clone())), 0);
    san.assert_clean();
}

#[test]
fn gc_with_readers_is_clean_under_sanitizer() {
    let (sim, nam) = cluster();
    let idx = FineGrained::build(&nam.rdma, small_fg_cfg(), (0..3_000u64).map(|i| (i * 8, i)));
    let san = Sanitizer::install(&nam.rdma, 256);
    walk::register_fg(&san, &idx);

    {
        let idx = idx.clone();
        let ep = Endpoint::new(&nam.rdma);
        sim.spawn(async move {
            for i in (0..3_000u64).step_by(3) {
                assert!(idx.delete(&ep, i * 8).await.unwrap());
            }
        });
    }
    sim.run();
    {
        let idx = idx.clone();
        let ep = Endpoint::new(&nam.rdma);
        sim.spawn(async move {
            gc::fg_gc_pass(&idx, &ep).await.unwrap();
        });
    }
    for r in 0..4u64 {
        let idx = idx.clone();
        let ep = Endpoint::new(&nam.rdma);
        sim.spawn(async move {
            for i in 0..60u64 {
                let k = ((i * 29 + r * 7) % 3_000) * 8;
                idx.lookup(&ep, k).await.unwrap();
            }
        });
    }
    sim.run();
    assert_eq!(san.check_structure(&Design::Fg(idx.clone())), 0);
    san.assert_clean();
}

// ---- negative: injected violations must be caught ---------------------

/// Build a small fine-grained index with the checker installed and every
/// page registered; returns the pieces the injection needs.
fn armed_fg(sim: &Sim, nam: &NamCluster) -> (Rc<FineGrained>, Rc<Sanitizer>) {
    let _ = sim;
    let idx = FineGrained::build(&nam.rdma, small_fg_cfg(), (0..500u64).map(|i| (i * 8, i)));
    let san = Sanitizer::install(&nam.rdma, 256);
    walk::register_fg(&san, &idx);
    (idx, san)
}

#[test]
fn detects_unlocked_write() {
    let (sim, nam) = cluster();
    let (idx, san) = armed_fg(&sim, &nam);
    let root = idx.root();
    let ep = Endpoint::new(&nam.rdma);
    let client = ep.client_id();
    sim.spawn(async move {
        // Stomp the root page's payload without taking its lock.
        let target = RemotePtr::new(root.server(), root.offset() + 40);
        ep.write(target, &[0xAB; 16]).await.unwrap();
    });
    sim.run();

    let vs = san.violations();
    let hit = vs
        .iter()
        .find(|v| v.kind == ViolationKind::UnlockedWrite)
        .expect("unlocked WRITE must be flagged");
    assert_eq!(hit.server, root.server());
    assert_eq!(hit.offset, root.offset() + 40);
    assert_eq!(hit.len, 16);
    assert_eq!(hit.client, Some(client));
    assert!(hit.time.as_nanos() > 0, "violation carries virtual time");
    assert!(hit.detail.contains("lock is not held"), "{}", hit.detail);
}

#[test]
fn detects_version_rollback() {
    let (sim, nam) = cluster();
    let (idx, san) = armed_fg(&sim, &nam);
    let root = idx.root();
    let nam2 = nam.rdma.clone();
    let ep = Endpoint::new(&nam.rdma);
    sim.spawn(async move {
        let word = u64::from_le_bytes(nam2.setup_read(root, 8).try_into().unwrap());
        // Jump the version forward outside the protocol, then roll it
        // back — both CAS transitions are illegal, the second is a
        // version rollback.
        let fwd = ep.cas(root, word, word + 4).await.unwrap();
        assert_eq!(fwd, word, "injection CAS must succeed");
        let back = ep.cas(root, word + 4, word + 2).await.unwrap();
        assert_eq!(back, word + 4, "injection CAS must succeed");
    });
    sim.run();

    let vs = san.violations();
    let protocol: Vec<_> = vs
        .iter()
        .filter(|v| v.kind == ViolationKind::VersionProtocol)
        .collect();
    assert!(
        protocol.len() >= 2,
        "both illegal CAS transitions flagged, got: {vs:?}"
    );
    let rollback = protocol
        .iter()
        .find(|v| v.detail.contains("version rollback"))
        .expect("rollback must be called out");
    assert_eq!(rollback.server, root.server());
    assert_eq!(rollback.offset, root.offset());
    assert!(rollback.time.as_nanos() > 0);
}

#[test]
fn detects_unlock_without_lock() {
    let (sim, nam) = cluster();
    let (idx, san) = armed_fg(&sim, &nam);
    let root = idx.root();
    let ep = Endpoint::new(&nam.rdma);
    sim.spawn(async move {
        // The unlock FAA with no preceding lock CAS.
        ep.fetch_add(root, 1).await.unwrap();
    });
    sim.run();

    let hit = san
        .violations()
        .into_iter()
        .find(|v| v.kind == ViolationKind::VersionProtocol)
        .expect("unlock-without-lock must be flagged");
    assert_eq!(hit.offset, root.offset());
    assert!(hit.detail.contains("no lock held"), "{}", hit.detail);
}

#[test]
fn detects_read_of_gc_freed_region() {
    let (sim, nam) = cluster();
    let (idx, san) = armed_fg(&sim, &nam);
    // The first chain page is a head node (head_stride > 0); epoch head
    // maintenance rebuilds the heads and retires the old ones.
    let old_head = idx.first();
    idx.maintain_heads();
    assert_ne!(idx.first(), old_head, "maintenance must replace the head");

    let ep = Endpoint::new(&nam.rdma);
    let client = ep.client_id();
    sim.spawn(async move {
        // A straggler still holding the stale head pointer.
        ep.read(old_head, 256).await.unwrap();
    });
    sim.run();

    let vs = san.violations();
    let hit = vs
        .iter()
        .find(|v| v.kind == ViolationKind::UseAfterFree)
        .expect("read of retired region must be flagged");
    assert_eq!(hit.server, old_head.server());
    assert_eq!(hit.offset, old_head.offset());
    assert_eq!(hit.client, Some(client));
    assert!(hit.time.as_nanos() > 0);
    assert!(hit.detail.contains("retired"), "{}", hit.detail);
}

#[test]
fn assert_clean_panics_with_context() {
    let (sim, nam) = cluster();
    let (idx, san) = armed_fg(&sim, &nam);
    let root = idx.root();
    let ep = Endpoint::new(&nam.rdma);
    sim.spawn(async move {
        ep.write(RemotePtr::new(root.server(), root.offset() + 48), &[1])
            .await
            .unwrap();
    });
    sim.run();
    let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| san.assert_clean()))
        .expect_err("assert_clean must panic on a dirty run");
    let msg = err.downcast_ref::<String>().expect("string panic payload");
    assert!(
        msg.contains("unlocked-write") && msg.contains("server"),
        "{msg}"
    );
}

// ---- lease-break legality ---------------------------------------------

#[test]
fn lease_break_after_expiry_is_clean() {
    let (sim, nam) = cluster();
    let (idx, san) = armed_fg(&sim, &nam);
    let root = idx.root();
    let lease = nam.rdma.spec().lease_duration;
    let nam2 = nam.rdma.clone();
    let victim = Endpoint::new(&nam.rdma);
    let contender = Endpoint::new(&nam.rdma);
    let sim2 = sim.clone();
    sim.spawn(async move {
        // The victim takes the lock and goes silent (killed elsewhere).
        let w = u64::from_le_bytes(nam2.setup_read(root, 8).try_into().unwrap());
        let locked = lock_word::locked_by(w, victim.client_id());
        assert_eq!(victim.cas(root, w, locked).await.unwrap(), w);
        // The contender waits out the full lease before breaking.
        sim2.sleep(lease).await;
        let broken = lock_word::break_lease(locked);
        assert_eq!(contender.cas(root, locked, broken).await.unwrap(), locked);
        assert!(!lock_word::is_locked(broken));
    });
    sim.run();
    assert!(
        !san.violations()
            .iter()
            .any(|v| v.kind == ViolationKind::LeaseBreak),
        "a break after lease expiry is the legal recovery transition: {:?}",
        san.violations()
    );
}

#[test]
fn detects_early_lease_break() {
    let (sim, nam) = cluster();
    let (idx, san) = armed_fg(&sim, &nam);
    let root = idx.root();
    let nam2 = nam.rdma.clone();
    let victim = Endpoint::new(&nam.rdma);
    let contender = Endpoint::new(&nam.rdma);
    sim.spawn(async move {
        let w = u64::from_le_bytes(nam2.setup_read(root, 8).try_into().unwrap());
        let locked = lock_word::locked_by(w, victim.client_id());
        assert_eq!(victim.cas(root, w, locked).await.unwrap(), w);
        // Impatient contender: breaks immediately, long before expiry —
        // the holder may be alive and mid-write.
        let broken = lock_word::break_lease(locked);
        assert_eq!(contender.cas(root, locked, broken).await.unwrap(), locked);
    });
    sim.run();

    let vs = san.violations();
    let hit = vs
        .iter()
        .find(|v| v.kind == ViolationKind::LeaseBreak)
        .expect("premature lease break must be flagged");
    assert_eq!(hit.server, root.server());
    assert_eq!(hit.offset, root.offset());
    assert!(hit.detail.contains("lease"), "{}", hit.detail);
}

// ---- writes after ServerUnreachable -----------------------------------

#[test]
fn detects_write_after_unreachable_without_revalidation() {
    let (sim, nam) = cluster();
    let (idx, san) = armed_fg(&sim, &nam);
    let root = idx.root();
    let cluster = nam.rdma.clone();
    let ep = Endpoint::new(&nam.rdma);
    let sim2 = sim.clone();
    sim.spawn(async move {
        cluster.fail_server(root.server());
        // The client observes the outage...
        assert!(ep.write(root, &[0u8; 8]).await.is_err());
        cluster.restart_server(root.server());
        sim2.sleep(SimDur::from_micros(5)).await;
        // ...then mutates the same server with no re-validating READ:
        // it may be acting on pre-crash cached state.
        ep.write(RemotePtr::new(root.server(), root.offset() + 40), &[9u8; 8])
            .await
            .unwrap();
    });
    sim.run();

    let vs = san.violations();
    let hit = vs
        .iter()
        .find(|v| v.kind == ViolationKind::UnreachableWrite)
        .expect("blind write after an unreachable episode must be flagged");
    assert_eq!(hit.server, root.server());
    assert!(hit.detail.contains("unreachable"), "{}", hit.detail);
}

#[test]
fn read_revalidation_clears_the_unreachable_flag() {
    let (sim, nam) = cluster();
    let (idx, san) = armed_fg(&sim, &nam);
    let root = idx.root();
    let cluster = nam.rdma.clone();
    let nam2 = nam.rdma.clone();
    let ep = Endpoint::new(&nam.rdma);
    let sim2 = sim.clone();
    sim.spawn(async move {
        cluster.fail_server(root.server());
        assert!(ep.read(root, 8).await.is_err());
        cluster.restart_server(root.server());
        sim2.sleep(SimDur::from_micros(5)).await;
        // Proper recovery: re-read first, then mutate (a legal lock
        // acquisition on the freshly observed word).
        assert_eq!(ep.read(root, 8).await.unwrap().len(), 8);
        let w = u64::from_le_bytes(nam2.setup_read(root, 8).try_into().unwrap());
        let locked = lock_word::locked_by(w, ep.client_id());
        assert_eq!(ep.cas(root, w, locked).await.unwrap(), w);
        assert_eq!(ep.fetch_add(root, 1).await.unwrap(), locked);
    });
    sim.run();
    assert!(
        !san.violations()
            .iter()
            .any(|v| v.kind == ViolationKind::UnreachableWrite),
        "a re-validating READ legalises later writes: {:?}",
        san.violations()
    );
}
