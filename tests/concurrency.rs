//! Concurrency torture tests: many clients mutate one index while
//! others read and scan; everything inserted must be found, B-link
//! invariants must hold under interleaved splits, and epoch GC must run
//! safely alongside readers.

use namdex::index::gc;
use namdex::prelude::*;
use std::cell::Cell;
use std::rc::Rc;

fn cluster() -> (Sim, NamCluster) {
    let sim = Sim::new();
    let nam = NamCluster::new(&sim, ClusterSpec::default());
    (sim, nam)
}

/// With `--features sanitizer`, arm the protocol checker over the torture
/// run; [`finish_sanitized`] then requires a clean verdict. Both are
/// no-ops in default builds.
#[cfg(feature = "sanitizer")]
fn arm_sanitized(nam: &NamCluster, design: &Design) -> Rc<namdex::sanitizer::Sanitizer> {
    let page_size = match design {
        Design::Cg(_) => PageLayout::default().page_size(),
        Design::Fg(d) => d.layout().page_size(),
        Design::Hybrid(d) => d.layout().page_size(),
        Design::Learned(d) => d.layout().page_size(),
    };
    let san = namdex::sanitizer::Sanitizer::install(&nam.rdma, page_size);
    namdex::sanitizer::walk::register_design(&san, design);
    san
}
#[cfg(not(feature = "sanitizer"))]
struct NoSanitizer;
#[cfg(not(feature = "sanitizer"))]
fn arm_sanitized(_nam: &NamCluster, _design: &Design) -> NoSanitizer {
    NoSanitizer
}

#[cfg(feature = "sanitizer")]
fn finish_sanitized(san: &namdex::sanitizer::Sanitizer, design: &Design) {
    assert_eq!(san.check_structure(design), 0, "structural walk");
    san.assert_clean();
}
#[cfg(not(feature = "sanitizer"))]
fn finish_sanitized(_san: &NoSanitizer, _design: &Design) {}

fn small_fg_cfg() -> FgConfig {
    FgConfig {
        layout: PageLayout::new(256), // 13 entries/node: deep trees, many splits
        fill: 0.7,
        head_stride: 4,
        cache_capacity: None,
    }
}

#[test]
fn fg_concurrent_writers_and_readers() {
    let (sim, nam) = cluster();
    let idx = FineGrained::build(&nam.rdma, small_fg_cfg(), (0..2_000u64).map(|i| (i * 8, i)));
    let design = Design::Fg(idx.clone());
    let san = arm_sanitized(&nam, &design);
    const WRITERS: u64 = 10;
    const PER: u64 = 80;

    // Writers insert disjoint fresh keys, forcing splits at every level.
    for w in 0..WRITERS {
        let idx = idx.clone();
        let ep = Endpoint::new(&nam.rdma);
        sim.spawn(async move {
            for i in 0..PER {
                idx.insert(&ep, (i * WRITERS + w) * 16 + 1, w * 1_000 + i)
                    .await
                    .unwrap();
            }
        });
    }
    // Readers hammer lookups and scans the whole time.
    let read_errs = Rc::new(Cell::new(0u32));
    for r in 0..6u64 {
        let idx = idx.clone();
        let ep = Endpoint::new(&nam.rdma);
        let errs = read_errs.clone();
        sim.spawn(async move {
            for i in 0..60u64 {
                let key = ((i * 37 + r * 11) % 2_000) * 8;
                if idx.lookup(&ep, key).await.unwrap() != Some(key / 8) {
                    errs.set(errs.get() + 1);
                }
                if i % 10 == 0 {
                    let rows = idx.range(&ep, key, key + 50 * 8).await.unwrap();
                    if rows.is_empty() {
                        errs.set(errs.get() + 1);
                    }
                }
            }
        });
    }
    sim.run();
    assert_eq!(
        read_errs.get(),
        0,
        "loaded keys must stay visible throughout"
    );

    // Every insert must be found afterwards.
    let ok = Rc::new(Cell::new(0u64));
    {
        let idx = idx.clone();
        let ep = Endpoint::new(&nam.rdma);
        let ok = ok.clone();
        sim.spawn(async move {
            for w in 0..WRITERS {
                for i in 0..PER {
                    if idx.lookup(&ep, (i * WRITERS + w) * 16 + 1).await.unwrap()
                        == Some(w * 1_000 + i)
                    {
                        ok.set(ok.get() + 1);
                    }
                }
            }
            // Full scan sees loaded + inserted entries exactly once.
            let rows = idx.range(&ep, 0, u64::MAX - 1).await.unwrap();
            assert_eq!(rows.len() as u64, 2_000 + WRITERS * PER);
        });
    }
    sim.run();
    assert_eq!(ok.get(), WRITERS * PER);
    finish_sanitized(&san, &design);
}

#[test]
fn hybrid_concurrent_writers_and_readers() {
    let (sim, nam) = cluster();
    let partition = PartitionMap::range_uniform(nam.num_servers(), 2_000 * 8);
    let idx = Hybrid::build(
        &nam,
        small_fg_cfg(),
        partition,
        (0..2_000u64).map(|i| (i * 8, i)),
    );
    let design = Design::Hybrid(idx.clone());
    let san = arm_sanitized(&nam, &design);
    const WRITERS: u64 = 8;
    const PER: u64 = 60;
    for w in 0..WRITERS {
        let idx = idx.clone();
        let ep = Endpoint::new(&nam.rdma);
        sim.spawn(async move {
            for i in 0..PER {
                idx.insert(&ep, (i * WRITERS + w) * 16 + 3, w * 1_000 + i)
                    .await
                    .unwrap();
            }
        });
    }
    for r in 0..4u64 {
        let idx = idx.clone();
        let ep = Endpoint::new(&nam.rdma);
        sim.spawn(async move {
            for i in 0..50u64 {
                let key = ((i * 41 + r * 13) % 2_000) * 8;
                assert_eq!(idx.lookup(&ep, key).await.unwrap(), Some(key / 8));
            }
        });
    }
    sim.run();
    let ep = Endpoint::new(&nam.rdma);
    let idx2 = idx.clone();
    sim.spawn(async move {
        let rows = idx2.range(&ep, 0, u64::MAX - 1).await.unwrap();
        assert_eq!(rows.len() as u64, 2_000 + WRITERS * PER);
    });
    sim.run();
    finish_sanitized(&san, &design);
}

/// The learned design under the same torture: concurrent writers split
/// leaves out from under the model while readers route through stale
/// predictions — every answer must stay correct (B-link self-repair),
/// and the structural walk must come back clean.
#[test]
fn learned_concurrent_writers_and_readers() {
    let (sim, nam) = cluster();
    let partition = PartitionMap::range_uniform(nam.num_servers(), 2_000 * 8);
    let idx = Learned::build(
        &nam,
        small_fg_cfg(),
        partition,
        (0..2_000u64).map(|i| (i * 8, i)),
    );
    let design = Design::Learned(idx.clone());
    let san = arm_sanitized(&nam, &design);
    const WRITERS: u64 = 8;
    const PER: u64 = 60;
    for w in 0..WRITERS {
        let idx = idx.clone();
        let ep = Endpoint::new(&nam.rdma);
        sim.spawn(async move {
            for i in 0..PER {
                idx.insert(&ep, (i * WRITERS + w) * 16 + 3, w * 1_000 + i)
                    .await
                    .unwrap();
            }
        });
    }
    for r in 0..4u64 {
        let idx = idx.clone();
        let ep = Endpoint::new(&nam.rdma);
        sim.spawn(async move {
            for i in 0..50u64 {
                let key = ((i * 41 + r * 13) % 2_000) * 8;
                assert_eq!(idx.lookup(&ep, key).await.unwrap(), Some(key / 8));
            }
        });
    }
    sim.run();
    let ep = Endpoint::new(&nam.rdma);
    let idx2 = idx.clone();
    sim.spawn(async move {
        let rows = idx2.range(&ep, 0, u64::MAX - 1).await.unwrap();
        assert_eq!(rows.len() as u64, 2_000 + WRITERS * PER);
    });
    sim.run();
    assert!(idx.stats().predictions > 0, "lookups route via the model");
    finish_sanitized(&san, &design);
}

#[test]
fn gc_concurrent_with_readers() {
    let (sim, nam) = cluster();
    let idx = FineGrained::build(&nam.rdma, small_fg_cfg(), (0..3_000u64).map(|i| (i * 8, i)));
    let design = Design::Fg(idx.clone());
    let san = arm_sanitized(&nam, &design);

    // Delete a third of the keys.
    {
        let idx = idx.clone();
        let ep = Endpoint::new(&nam.rdma);
        sim.spawn(async move {
            for i in (0..3_000u64).step_by(3) {
                assert!(idx.delete(&ep, i * 8).await.unwrap());
            }
        });
    }
    sim.run();

    // GC runs while readers scan.
    let freed = Rc::new(Cell::new(0usize));
    {
        let idx = idx.clone();
        let ep = Endpoint::new(&nam.rdma);
        let freed = freed.clone();
        sim.spawn(async move {
            freed.set(gc::fg_gc_pass(&idx, &ep).await.unwrap());
        });
    }
    for r in 0..5u64 {
        let idx = idx.clone();
        let ep = Endpoint::new(&nam.rdma);
        sim.spawn(async move {
            for i in 0..80u64 {
                let k = ((i * 29 + r * 7) % 3_000) * 8;
                let got = idx.lookup(&ep, k).await.unwrap();
                if (k / 8) % 3 == 0 {
                    assert_eq!(got, None, "deleted key {k} resurfaced");
                } else {
                    assert_eq!(got, Some(k / 8), "live key {k} lost during GC");
                }
            }
        });
    }
    sim.run();
    assert_eq!(freed.get(), 1_000);
    finish_sanitized(&san, &design);
}

#[test]
fn cg_insert_contention_burns_handler_cores() {
    // The Fig. 12 mechanism in isolation: hot-leaf inserts make handler
    // spin-waits occupy cores, inflating measured CPU busy time well
    // beyond the useful work.
    let (sim, nam) = cluster();
    let partition = PartitionMap::range_uniform(nam.num_servers(), 1_000 * 8);
    let idx = CoarseGrained::build(
        &nam,
        PageLayout::default(),
        partition,
        (0..1_000u64).map(|i| (i * 8, i)),
        0.7,
    );
    let design = Design::Cg(idx.clone());
    let san = arm_sanitized(&nam, &design);
    // 30 clients append into one tiny key neighbourhood -> one hot leaf.
    for c in 0..30u64 {
        let idx = idx.clone();
        let ep = Endpoint::new(&nam.rdma);
        sim.spawn(async move {
            for i in 0..20u64 {
                idx.insert(&ep, 4_001 + (i * 30 + c) % 97, c, false)
                    .await
                    .unwrap();
            }
        });
    }
    sim.run();
    let busy: u64 = (0..4)
        .map(|s| nam.rdma.server_stats(s).cpu_busy_nanos)
        .sum();
    // 600 inserts of ~40us useful work; spinning must add visibly.
    assert!(
        busy > 600 * 40_000,
        "spin waits must occupy handler cores: busy={busy}ns"
    );
    finish_sanitized(&san, &design);
}
