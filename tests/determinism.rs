//! Determinism regression: the same seeded workload, run twice against a
//! fresh simulation, must produce *byte-identical* results for every
//! design — operation outcomes, latency histograms, and every per-server
//! traffic counter. This is the property the static determinism lint
//! (`cargo xtask lint`) protects: one stray wall-clock read or hash-order
//! iteration anywhere in the simulation stack breaks it.

use namdex::index::OpError;
use namdex::prelude::*;
use namdex::sim::stats::Histogram;
use std::cell::RefCell;
use std::rc::Rc;

const KEYS: u64 = 2_000;
const CLIENTS: u64 = 6;
const OPS_PER_CLIENT: u64 = 120;

/// FNV-1a over a stream of u64s: the run digest.
struct Digest(u64);

impl Digest {
    fn new() -> Self {
        Digest(0xcbf2_9ce4_8422_2325)
    }
    fn push(&mut self, v: u64) {
        let mut h = self.0;
        for b in v.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        self.0 = h;
    }
}

fn build(kind: u8, nam: &NamCluster) -> Design {
    let items = (0..KEYS).map(|i| (i * 8, i));
    let partition = PartitionMap::range_uniform(nam.num_servers(), KEYS * 8);
    match kind {
        0 => Design::Cg(CoarseGrained::build(
            nam,
            PageLayout::default(),
            partition,
            items,
            0.7,
        )),
        1 => Design::Fg(FineGrained::build(&nam.rdma, FgConfig::default(), items)),
        _ => Design::Hybrid(Hybrid::build(nam, FgConfig::default(), partition, items)),
    }
}

/// Run a Fig.7-style mixed workload (zipfian YCSB-A over a loaded
/// dataset) and fold everything observable into one digest.
fn run_digest(kind: u8, seed: u64) -> u64 {
    let sim = Sim::new();
    let nam = NamCluster::new(&sim, ClusterSpec::default());
    let design = build(kind, &nam);
    nam.rdma.set_active_clients(CLIENTS as usize);

    let results = Rc::new(RefCell::new(Digest::new()));
    let latency = Rc::new(RefCell::new(Histogram::new()));
    let workload = Workload::a().with_dist(RequestDist::Zipfian(0.99));
    for c in 0..CLIENTS {
        let design = design.clone();
        let ep = Endpoint::new(&nam.rdma);
        let sim_c = sim.clone();
        let results = results.clone();
        let latency = latency.clone();
        let mut gen = OpGen::new(workload, Dataset::new(KEYS), c, CLIENTS, seed);
        sim.spawn(async move {
            for _ in 0..OPS_PER_CLIENT {
                let op = gen.next_op();
                let t0 = sim_c.now();
                match op {
                    Op::Point(k) => {
                        let got = design.lookup(&ep, k).await.unwrap();
                        results.borrow_mut().push(got.map_or(u64::MAX, |v| v));
                    }
                    Op::Range(lo, hi) => {
                        let rows = design.range(&ep, lo, hi).await.unwrap();
                        let mut d = results.borrow_mut();
                        d.push(rows.len() as u64);
                        for (k, v) in rows {
                            d.push(k);
                            d.push(v);
                        }
                    }
                    Op::Insert(k, v) => {
                        design.insert(&ep, k, v).await.unwrap();
                        results.borrow_mut().push(k ^ v);
                    }
                }
                let t1 = sim_c.now();
                latency.borrow_mut().record((t1 - t0).as_nanos());
            }
        });
    }
    sim.run();

    let mut d = Digest::new();
    d.push(results.borrow().0);
    // Histogram digest: count, extremes, mean bits, a percentile ladder.
    let h = latency.borrow();
    d.push(h.count());
    d.push(h.min());
    d.push(h.max());
    d.push(h.mean().to_bits());
    for q in [0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 0.999] {
        d.push(h.percentile(q));
    }
    // Byte counters: final virtual time and every per-server stat.
    d.push(sim.now().as_nanos());
    d.push(nam.rdma.total_wire_bytes());
    for s in nam.rdma.all_stats() {
        d.push(s.bytes_in);
        d.push(s.bytes_out);
        d.push(s.local_bytes);
        d.push(s.onesided_ops);
        d.push(s.rpcs);
        d.push(s.nic_busy_nanos);
        d.push(s.cpu_busy_nanos);
    }
    d.0
}

/// Fold an operation outcome into the digest: success pushes the
/// payload, failure pushes a small error code (so aborted and completed
/// runs can never collide).
fn push_outcome<T>(d: &mut Digest, r: Result<T, OpError>, payload: impl FnOnce(T) -> u64) {
    match r {
        Ok(v) => d.push(payload(v)),
        Err(OpError::Cancelled) => d.push(u64::MAX - 1),
        Err(OpError::RetriesExhausted { attempts, .. }) => d.push(u64::MAX - 2 - attempts as u64),
        Err(OpError::Fatal(_)) => d.push(u64::MAX - 200),
    }
}

/// The faulted twin of [`run_digest`]: the same YCSB workload with a
/// seed-deterministic [`FaultPlan`] installed — a scripted server
/// outage, a kill-on-lock-acquire trigger, a client-kill window, and a
/// randomized tail drawn from `fault_seed`. Two runs with the same
/// `(seed, fault_seed)` must still be byte-identical.
fn run_fault_digest(kind: u8, seed: u64, fault_seed: u64) -> u64 {
    let us = SimTime::from_micros;
    let plan_base = FaultPlan::new()
        .kill_on_lock_acquire(us(150), 0)
        .revive_client(us(400), 0)
        .crash_server(us(300), 1)
        .restart_server(us(600), 1)
        .kill_client(us(450), 2)
        .revive_client(us(700), 2)
        .degrade_link(
            us(800),
            0,
            LinkDegrade {
                drop_chance: 0.2,
                extra_delay: SimDur::from_micros(2),
                bandwidth_factor: 0.7,
            },
        )
        .restore_link(us(1_100), 0);
    let mut plan = FaultPlan::with_seed(fault_seed);
    for &(t, ev) in plan_base.events() {
        plan = plan.at(t, ev);
    }
    for &(t, ev) in FaultPlan::randomized(
        fault_seed,
        4,
        CLIENTS,
        RandomProfile {
            horizon: SimDur::from_millis(1),
            server_downtime: SimDur::from_micros(200),
            client_downtime: SimDur::from_micros(150),
            degrade_duration: SimDur::from_micros(300),
            ..RandomProfile::default()
        },
    )
    .events()
    {
        plan = plan.at(t, ev);
    }

    let sim = Sim::new();
    let nam = NamCluster::new(&sim, ClusterSpec::default());
    let design = build(kind, &nam);
    nam.rdma.set_active_clients(CLIENTS as usize);
    ChaosController::install_nam(&sim, &nam, plan);

    let results = Rc::new(RefCell::new(Digest::new()));
    let workload = Workload::a().with_dist(RequestDist::Zipfian(0.99));
    for c in 0..CLIENTS {
        let design = design.clone();
        let ep = Endpoint::new(&nam.rdma);
        let cluster = nam.rdma.clone();
        let sim_c = sim.clone();
        let results = results.clone();
        let mut gen = OpGen::new(workload, Dataset::new(KEYS), c, CLIENTS, seed);
        sim.spawn(async move {
            for _ in 0..OPS_PER_CLIENT {
                let op = gen.next_op();
                match op {
                    Op::Point(k) => {
                        let got = design.lookup(&ep, k).await;
                        push_outcome(&mut results.borrow_mut(), got, |v| {
                            v.map_or(u64::MAX, |x| x)
                        });
                    }
                    Op::Range(lo, hi) => {
                        let rows = design.range(&ep, lo, hi).await;
                        push_outcome(&mut results.borrow_mut(), rows, |rows| {
                            let mut h = Digest::new();
                            h.push(rows.len() as u64);
                            for (k, v) in rows {
                                h.push(k);
                                h.push(v);
                            }
                            h.0
                        });
                    }
                    Op::Insert(k, v) => {
                        let got = design.insert(&ep, k, v).await;
                        push_outcome(&mut results.borrow_mut(), got, |()| k ^ v);
                    }
                }
                // A killed client parks until its scheduled revival
                // (every kill in the plan has one).
                while cluster.client_dead(ep.client_id()) {
                    sim_c.sleep(SimDur::from_micros(10)).await;
                }
            }
        });
    }
    sim.run();

    let mut d = Digest::new();
    d.push(results.borrow().0);
    d.push(sim.now().as_nanos());
    d.push(nam.rdma.total_wire_bytes());
    let fs = nam.rdma.fault_stats();
    d.push(fs.verbs_cancelled);
    d.push(fs.verbs_unreachable);
    d.push(fs.verbs_timed_out);
    d.push(fs.verbs_dropped);
    d.push(fs.lock_kills_fired);
    for s in nam.rdma.all_stats() {
        d.push(s.bytes_in);
        d.push(s.bytes_out);
        d.push(s.onesided_ops);
        d.push(s.rpcs);
    }
    d.0
}

#[test]
fn faulted_runs_same_seed_same_plan_are_byte_identical() {
    for kind in 0..3u8 {
        assert_eq!(
            run_fault_digest(kind, 42, 7),
            run_fault_digest(kind, 42, 7),
            "design kind {kind} diverged under an identical fault plan"
        );
    }
}

#[test]
fn different_fault_seeds_differ() {
    // The randomized tail of the plan (and the drop-roll RNG) must
    // actually depend on the fault seed.
    assert_ne!(run_fault_digest(1, 42, 7), run_fault_digest(1, 42, 8));
}

#[test]
fn cg_same_seed_is_byte_identical() {
    assert_eq!(run_digest(0, 42), run_digest(0, 42));
}

#[test]
fn fg_same_seed_is_byte_identical() {
    assert_eq!(run_digest(1, 42), run_digest(1, 42));
}

#[test]
fn hybrid_same_seed_is_byte_identical() {
    assert_eq!(run_digest(2, 42), run_digest(2, 42));
}

#[test]
fn different_seeds_differ() {
    // Sanity check that the digest actually covers the run: two seeds
    // must not collide (they drive different op streams).
    assert_ne!(run_digest(1, 1), run_digest(1, 2));
}
