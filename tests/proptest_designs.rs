//! Property-based tests: random operation scripts executed against each
//! index design must agree with a `BTreeMap` oracle, for any script and
//! any (small) page size.

use namdex::prelude::*;
use proptest::prelude::*;
use std::collections::BTreeMap;

/// A scripted operation over a bounded key space.
#[derive(Clone, Debug)]
enum ScriptOp {
    Insert(u64, u64),
    Delete(u64),
    Lookup(u64),
    Range(u64, u64),
}

fn op_strategy(key_space: u64) -> impl Strategy<Value = ScriptOp> {
    prop_oneof![
        (0..key_space, 0..1_000_000u64).prop_map(|(k, v)| ScriptOp::Insert(k, v)),
        (0..key_space).prop_map(ScriptOp::Delete),
        (0..key_space).prop_map(ScriptOp::Lookup),
        (0..key_space, 0..200u64).prop_map(|(lo, span)| ScriptOp::Range(lo, lo + span)),
    ]
}

fn run_script(design_kind: u8, page_size: usize, loaded: u64, script: Vec<ScriptOp>) {
    let sim = Sim::new();
    let nam = NamCluster::new(&sim, ClusterSpec::default());
    let layout = PageLayout::new(page_size);
    let items = (0..loaded).map(|i| (i * 4, i));
    let partition = PartitionMap::range_uniform(nam.num_servers(), (loaded * 4).max(4));
    let design = match design_kind {
        0 => Design::Cg(CoarseGrained::build(&nam, layout, partition, items, 0.75)),
        1 => Design::Fg(FineGrained::build(
            &nam.rdma,
            FgConfig {
                layout,
                fill: 0.75,
                head_stride: 3,
                cache_capacity: None,
            },
            items,
        )),
        _ => Design::Hybrid(Hybrid::build(
            &nam,
            FgConfig {
                layout,
                fill: 0.75,
                head_stride: 3,
                cache_capacity: None,
            },
            partition,
            items,
        )),
    };

    // Under `--features sanitizer`, every scripted run also executes with
    // the protocol checker active and must stay violation-free.
    #[cfg(feature = "sanitizer")]
    let san = {
        let san = namdex::sanitizer::Sanitizer::install(&nam.rdma, page_size);
        namdex::sanitizer::walk::register_design(&san, &design);
        san
    };
    #[cfg(feature = "sanitizer")]
    let design_for_walk = design.clone();

    let ep = Endpoint::new(&nam.rdma);
    sim.spawn(async move {
        let mut oracle: BTreeMap<u64, u64> = (0..loaded).map(|i| (i * 4, i)).collect();
        for op in script {
            match op {
                ScriptOp::Insert(k, v) => {
                    // Keep keys unique so the first-live-match semantics
                    // of point lookups stay oracle-comparable.
                    if let std::collections::btree_map::Entry::Vacant(e) = oracle.entry(k) {
                        e.insert(v);
                        design.insert(&ep, k, v).await.unwrap();
                    }
                }
                ScriptOp::Delete(k) => {
                    let expected = oracle.remove(&k).is_some();
                    let got = design.delete(&ep, k).await.unwrap();
                    assert_eq!(got, expected, "delete({k})");
                }
                ScriptOp::Lookup(k) => {
                    assert_eq!(
                        design.lookup(&ep, k).await.unwrap(),
                        oracle.get(&k).copied(),
                        "lookup({k})"
                    );
                }
                ScriptOp::Range(lo, hi) => {
                    let got = design.range(&ep, lo, hi).await.unwrap();
                    let want: Vec<(u64, u64)> =
                        oracle.range(lo..=hi).map(|(&k, &v)| (k, v)).collect();
                    assert_eq!(got, want, "range({lo}, {hi})");
                }
            }
        }
    });
    sim.run();
    #[cfg(feature = "sanitizer")]
    {
        assert_eq!(san.check_structure(&design_for_walk), 0, "structural walk");
        san.assert_clean();
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24,
        ..ProptestConfig::default()
    })]

    #[test]
    fn cg_matches_oracle(
        script in prop::collection::vec(op_strategy(2_000), 1..120),
        loaded in 1u64..400,
    ) {
        run_script(0, 256, loaded, script);
    }

    #[test]
    fn fg_matches_oracle(
        script in prop::collection::vec(op_strategy(2_000), 1..120),
        loaded in 1u64..400,
    ) {
        run_script(1, 256, loaded, script);
    }

    #[test]
    fn hybrid_matches_oracle(
        script in prop::collection::vec(op_strategy(2_000), 1..120),
        loaded in 1u64..400,
    ) {
        run_script(2, 256, loaded, script);
    }

    #[test]
    fn page_size_is_immaterial(
        script in prop::collection::vec(op_strategy(500), 1..60),
        page_size in 136usize..1024,
    ) {
        // Any page size that fits the header + 2 entries must behave
        // identically (modulo performance).
        run_script(1, page_size, 100, script);
    }
}
