//! Durability end-to-end: crash a memory server *under load* with RAM
//! genuinely lost, recover from the simulated NVMe log device, and hold
//! all four designs to the contract that matters — **zero acknowledged
//! writes lost**. Plus the measurable properties of the subsystem: RTO
//! grows with the un-checkpointed log, group commit collapses device
//! ops, and the whole crash/replay cycle is seed-deterministic.
//!
//! The oracle rule: an insert/delete counts only once its `Ok` came
//! back. Under `Durability::Wal` every acknowledged mutation was
//! WAL-appended and flushed *before* the ack could form, so a crash at
//! any instant — mid-flush, mid-checkpoint, mid-RPC — may lose in-flight
//! unacknowledged work (at-least-once retries re-drive it) but never an
//! acknowledged write.

use namdex::prelude::*;
use std::cell::{Cell, RefCell};
use std::rc::Rc;

const KEYS: u64 = 400;

/// Wal-mode spec with a boot latency small enough that the bounded
/// retry layer (16 attempts, 256us backoff cap) rides out a full
/// crash + recovery cycle.
fn wal_spec() -> ClusterSpec {
    ClusterSpec {
        durability: Durability::Wal,
        wal_restart_boot_latency: SimDur::from_micros(200),
        ..ClusterSpec::default()
    }
}

fn build(kind: u8, nam: &NamCluster) -> Design {
    let items = (0..KEYS).map(|i| (i * 8, i));
    let partition = PartitionMap::range_uniform(nam.num_servers(), KEYS * 8);
    match kind {
        0 => Design::Cg(CoarseGrained::build(
            nam,
            PageLayout::default(),
            partition,
            items,
            0.7,
        )),
        1 => Design::Fg(FineGrained::build(&nam.rdma, FgConfig::default(), items)),
        2 => Design::Hybrid(Hybrid::build(nam, FgConfig::default(), partition, items)),
        _ => Design::Learned(Learned::build(nam, FgConfig::default(), partition, items)),
    }
}

/// Outcome of one crash-under-load run: what the clients got acked, and
/// what the recovered cluster actually holds.
struct RunOutcome {
    rows: Vec<(u64, u64)>,
    acked_inserts: Vec<(u64, u64)>,
    acked_deletes: Vec<u64>,
    recoveries: Vec<(usize, u64, u64)>, // (server, recovery_time_ns, replay_bytes)
}

/// Drive `writers` concurrent insert streams plus one delete stream into
/// a Wal-mode cluster while server 1 crashes and restarts mid-stream,
/// then scan the recovered index.
fn crash_under_load(kind: u8, seed: u64) -> RunOutcome {
    let sim = Sim::new();
    let nam = NamCluster::new(&sim, wal_spec());
    let design = build(kind, &nam);
    let plan = FaultPlan::with_seed(seed)
        .crash_server(SimTime::from_micros(300), 1)
        .restart_server(SimTime::from_micros(400), 1);
    ChaosController::install_nam(&sim, &nam, plan);

    let acked_inserts = Rc::new(RefCell::new(Vec::new()));
    let acked_deletes = Rc::new(RefCell::new(Vec::new()));
    for w in 0..3u64 {
        let design = design.clone();
        let ep = Endpoint::new(&nam.rdma);
        let acked = acked_inserts.clone();
        sim.spawn(async move {
            for i in 0..40u64 {
                // Odd keys are fresh (the load uses multiples of 8),
                // unique per writer.
                let k = 2_001 + 2 * (w * 40 + i);
                if design.insert(&ep, k, k * 10 + w).await.is_ok() {
                    acked.borrow_mut().push((k, k * 10 + w));
                }
            }
        });
    }
    {
        let design = design.clone();
        let ep = Endpoint::new(&nam.rdma);
        let acked = acked_deletes.clone();
        sim.spawn(async move {
            for i in 0..30u64 {
                // Loaded keys, spread over the space, deleted once each.
                let k = (i * 13) % KEYS * 8;
                if let Ok(true) = design.delete(&ep, k).await {
                    acked.borrow_mut().push(k);
                }
            }
        });
    }
    sim.run();
    assert_eq!(sim.live_tasks(), 0, "kind {kind}: no parked tasks");

    let rows = Rc::new(RefCell::new(Vec::new()));
    {
        let design = design.clone();
        let ep = Endpoint::new(&nam.rdma);
        let rows = rows.clone();
        sim.spawn(async move {
            *rows.borrow_mut() = design.range(&ep, 0, u64::MAX - 1).await.unwrap();
        });
    }
    sim.run();

    let recoveries = nam
        .rdma
        .recovery_records()
        .iter()
        .map(|r| (r.server, r.recovery_time().as_nanos(), r.replay_bytes))
        .collect();
    let out = RunOutcome {
        rows: rows.borrow().clone(),
        acked_inserts: acked_inserts.borrow().clone(),
        acked_deletes: acked_deletes.borrow().clone(),
        recoveries,
    };
    out
}

/// The tentpole acceptance check: for every design, a crash that wipes
/// server RAM mid-workload loses not one acknowledged write.
#[test]
fn zero_acked_write_loss_across_all_designs() {
    for kind in 0..4u8 {
        let out = crash_under_load(kind, 7);
        assert_eq!(
            out.recoveries.len(),
            1,
            "kind {kind}: exactly one crash/recovery cycle"
        );
        let (server, rto_ns, _) = out.recoveries[0];
        assert_eq!(server, 1);
        assert!(
            rto_ns >= 200_000,
            "kind {kind}: RTO must include the 200us boot, got {rto_ns}ns"
        );
        assert!(
            !out.acked_inserts.is_empty(),
            "kind {kind}: the workload must ack inserts"
        );
        for &(k, v) in &out.acked_inserts {
            assert!(
                out.rows.contains(&(k, v)),
                "kind {kind}: acked insert ({k},{v}) lost by the crash"
            );
        }
        for &k in &out.acked_deletes {
            assert!(
                !out.rows.iter().any(|&(rk, _)| rk == k),
                "kind {kind}: acked delete of {k} resurrected by replay"
            );
        }
    }
}

/// Crash, recovery, and replay are part of the deterministic simulation:
/// the same seed reproduces the same acks, the same final contents, and
/// the same measured RTO, byte for byte.
#[test]
fn crash_recovery_is_seed_deterministic() {
    for kind in [0u8, 2] {
        let a = crash_under_load(kind, 11);
        let b = crash_under_load(kind, 11);
        assert_eq!(a.rows, b.rows, "kind {kind}: final contents diverged");
        assert_eq!(a.acked_inserts, b.acked_inserts, "kind {kind}: acks");
        assert_eq!(a.acked_deletes, b.acked_deletes, "kind {kind}: deletes");
        assert_eq!(a.recoveries, b.recoveries, "kind {kind}: RTO diverged");
    }
}

/// Group commit is the point of the batching path: under concurrent
/// writers it must make far fewer device flushes than records, and
/// strictly fewer than per-record flushing does for the same workload.
#[test]
fn group_commit_reduces_device_flushes() {
    let run = |group_commit: bool| -> (u64, u64) {
        let sim = Sim::new();
        let spec = ClusterSpec {
            wal_group_commit: group_commit,
            // A wide fsync window (a disk-backed log, not Optane) is
            // where group commit pays: most writers' records arrive
            // while the previous flush is still in flight.
            wal_fsync_latency: SimDur::from_micros(50),
            ..wal_spec()
        };
        let nam = NamCluster::new(&sim, spec);
        let design = build(0, &nam);
        for w in 0..12u64 {
            let design = design.clone();
            let ep = Endpoint::new(&nam.rdma);
            sim.spawn(async move {
                for i in 0..25u64 {
                    let k = 2_001 + 2 * (w * 25 + i);
                    design.insert(&ep, k, k).await.unwrap();
                }
            });
        }
        sim.run();
        let mut flushes = 0;
        let mut records = 0;
        for s in 0..nam.num_servers() {
            let st = nam.rdma.wal_stats(s).expect("wal-mode server");
            flushes += st.device_flushes;
            records += st.records_flushed;
        }
        (flushes, records)
    };
    let (group_flushes, group_records) = run(true);
    let (per_flushes, per_records) = run(false);
    assert_eq!(group_records, 300, "every insert logs one record");
    assert_eq!(per_records, 300);
    assert_eq!(
        per_flushes, per_records,
        "per-record mode flushes one record per device op"
    );
    assert!(
        group_flushes * 2 <= per_flushes,
        "group commit must at least halve device ops under 12 concurrent \
         writers: {group_flushes} vs {per_flushes}"
    );
}

/// RTO scales with the un-checkpointed log: more acknowledged writes
/// since the last checkpoint mean more bytes streamed and replayed at
/// restart. (The recovery-curve experiment `ext_recovery` measures the
/// full curve; this pins the monotonicity.)
#[test]
fn rto_grows_with_replayed_log() {
    let run = |writes: u64| -> (u64, u64) {
        let sim = Sim::new();
        let spec = ClusterSpec {
            // No runtime checkpoint: everything since setup replays.
            wal_checkpoint_every_bytes: 1 << 30,
            ..wal_spec()
        };
        let nam = NamCluster::new(&sim, spec);
        let design = build(2, &nam);
        let sim_c = sim.clone();
        let cluster = nam.rdma.clone();
        {
            let design = design.clone();
            let ep = Endpoint::new(&nam.rdma);
            sim.spawn(async move {
                for i in 0..writes {
                    design.insert(&ep, 2_001 + 2 * i, i).await.unwrap();
                }
                cluster.fail_server(1);
                sim_c.sleep(SimDur::from_micros(50)).await;
                cluster.restart_server(1);
            });
        }
        sim.run();
        let rec = nam.rdma.recovery_records();
        assert_eq!(rec.len(), 1, "one recovery");
        (rec[0].recovery_time().as_nanos(), rec[0].replay_bytes)
    };
    let (rto_small, bytes_small) = run(20);
    let (rto_large, bytes_large) = run(400);
    assert!(
        bytes_large > bytes_small,
        "more writes, more log: {bytes_large} vs {bytes_small}"
    );
    assert!(
        rto_large > rto_small,
        "more log, longer recovery: {rto_large}ns vs {rto_small}ns"
    );
}

/// `Durability::Off` keeps the historical magic-durable behaviour: no
/// log device exists, restarts are instantaneous, and no WAL counters
/// move — the entire subsystem is opt-in.
#[test]
fn off_mode_changes_nothing_and_has_no_wal() {
    let sim = Sim::new();
    let nam = NamCluster::new(&sim, ClusterSpec::default());
    let design = build(0, &nam);
    assert!(!nam.rdma.wal_enabled());
    assert!(nam.rdma.wal_stats(0).is_none());
    let survived = Rc::new(Cell::new(false));
    {
        let design = design.clone();
        let ep = Endpoint::new(&nam.rdma);
        let cluster = nam.rdma.clone();
        let survived = survived.clone();
        sim.spawn(async move {
            design.insert(&ep, 2_001, 1).await.unwrap();
            cluster.fail_server(nam_server_of(2_001));
            cluster.restart_server(nam_server_of(2_001));
            survived.set(design.lookup(&ep, 2_001).await.unwrap() == Some(1));
        });
    }
    sim.run();
    assert!(survived.get(), "Off-mode RAM magically survives the crash");
    assert!(nam.rdma.recovery_records().is_empty(), "no RTO measured");
}

/// Server id covering `key` under the uniform range partition the tests
/// build (4 servers over `KEYS * 8`).
fn nam_server_of(key: u64) -> usize {
    PartitionMap::range_uniform(4, KEYS * 8).server_of(key)
}
