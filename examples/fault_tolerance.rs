//! Fault-injection quickstart: a hybrid index rides out a scripted
//! fault schedule.
//!
//! Demonstrates the `chaos` crate end to end: a seed-deterministic
//! [`FaultPlan`] kills a client the instant its lock-acquire CAS
//! succeeds (orphaning a leaf lock that a contender must break after
//! the lease expires), crashes and restarts a memory server (bumping
//! the catalog generation), and degrades a link — while closed-loop
//! clients keep issuing operations through the bounded-retry layer.
//!
//! Run with `cargo run --example fault_tolerance`.

use namdex::prelude::*;
use std::cell::Cell;
use std::rc::Rc;

const KEYS: u64 = 10_000;
const CLIENTS: u64 = 8;

fn main() {
    let sim = Sim::new();
    let nam = NamCluster::new(&sim, ClusterSpec::default());
    let partition = PartitionMap::range_uniform(nam.num_servers(), KEYS * 8);
    let index = Hybrid::build(
        &nam,
        FgConfig::default(),
        partition,
        (0..KEYS).map(|i| (i * 8, i)),
    );
    let design = Design::Hybrid(index);

    // One fault of every class, at scripted virtual instants. The same
    // plan replays identically on every run — faults are part of the
    // deterministic simulation, not an external disturbance.
    let ms = SimTime::from_millis;
    let plan = FaultPlan::new()
        .kill_on_lock_acquire(ms(1), 0)
        .revive_client(ms(2), 0)
        .crash_server(ms(5), 1)
        .restart_server(ms(8), 1)
        .degrade_link(
            ms(12),
            0,
            LinkDegrade {
                drop_chance: 0.1,
                extra_delay: SimDur::from_micros(5),
                bandwidth_factor: 0.5,
            },
        )
        .restore_link(ms(15), 0);
    let controller = ChaosController::install_nam(&sim, &nam, plan);
    controller.on_event(|ev| println!("  [chaos] {ev:?}"));

    let end = ms(20);
    let completed = Rc::new(Cell::new(0u64));
    let aborted = Rc::new(Cell::new(0u64));
    for c in 0..CLIENTS {
        let design = design.clone();
        let ep = Endpoint::new(&nam.rdma);
        let cluster = nam.rdma.clone();
        let sim_c = sim.clone();
        let completed = completed.clone();
        let aborted = aborted.clone();
        sim.spawn(async move {
            let mut k = c;
            let mut fresh = 0u64;
            while sim_c.now() < end {
                k = k
                    .wrapping_mul(6_364_136_223_846_793_005)
                    .wrapping_add(1_442_695_040_888_963_407)
                    % KEYS;
                // Mostly lookups, with enough inserts that the armed
                // kill-on-lock-acquire trigger meets a lock CAS.
                let outcome = if k % 4 == 0 {
                    fresh += 1;
                    let key = (KEYS + c * 1_000_000 + fresh) * 8 + 1;
                    design.insert(&ep, key, fresh).await
                } else {
                    design.lookup(&ep, k * 8).await.map(|got| {
                        assert_eq!(got, Some(k), "a completed lookup is never wrong");
                    })
                };
                match outcome {
                    Ok(()) => completed.set(completed.get() + 1),
                    Err(e) => {
                        aborted.set(aborted.get() + 1);
                        // A killed client parks until its revival.
                        if e.is_cancelled() {
                            while cluster.client_dead(ep.client_id()) {
                                sim_c.sleep(SimDur::from_micros(10)).await;
                            }
                        }
                    }
                }
            }
        });
    }

    println!("20ms of virtual time under the fault schedule:");
    sim.run_until(end);

    let fs = nam.rdma.fault_stats();
    println!(
        "\n  {:>8} operations completed (every lookup correct)",
        completed.get()
    );
    println!("  {:>8} operations aborted", aborted.get());
    println!(
        "  {:>8} verbs hit a dead server, {} were cancelled, {} dropped",
        fs.verbs_unreachable, fs.verbs_cancelled, fs.verbs_dropped
    );
    println!(
        "  {:>8} lock-kill trigger(s) fired; catalog generation now {}",
        fs.lock_kills_fired,
        nam.catalog.generation()
    );
    assert!(controller.done(), "every scheduled fault was applied");
}
