//! Quickstart: deploy a simulated NAM cluster, build each of the four
//! index designs, and run a few operations against them.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use namdex::prelude::*;

fn main() {
    // One deterministic simulation; everything below runs in virtual
    // time.
    let sim = Sim::new();

    // The paper's deployment: 4 memory servers on 2 dual-port machines.
    let nam = NamCluster::new(&sim, ClusterSpec::default());
    println!(
        "deployed NAM cluster: {} memory servers, {:.1} GB/s aggregate",
        nam.num_servers(),
        nam.rdma.aggregate_bandwidth() / 1e9
    );

    // 100k records with stride-8 keys, like the paper's datasets.
    let data = Dataset::new(100_000);
    let partition = PartitionMap::range_uniform(nam.num_servers(), data.domain());

    // Design 1: coarse-grained / two-sided.
    let cg = CoarseGrained::build(
        &nam,
        PageLayout::default(),
        partition.clone(),
        data.iter(),
        0.7,
    );
    // Design 2: fine-grained / one-sided.
    let fg = FineGrained::build(&nam.rdma, FgConfig::default(), data.iter());
    // Design 3: hybrid.
    let hy = Hybrid::build(&nam, FgConfig::default(), partition.clone(), data.iter());
    // Design 4: learned-index routing over the hybrid layout.
    let ln = Learned::build(&nam, FgConfig::default(), partition, data.iter());

    for (index, name) in [
        (Design::Cg(cg), "coarse-grained"),
        (Design::Fg(fg), "fine-grained"),
        (Design::Hybrid(hy), "hybrid"),
        (Design::Learned(ln), "learned"),
    ] {
        let ep = Endpoint::new(&nam.rdma);
        let sim_c = sim.clone();
        sim.spawn(async move {
            let t0 = sim_c.now();

            // Point query.
            let v = index.lookup(&ep, 42 * 8).await.expect("fault-free run");
            assert_eq!(v, Some(42));

            // Range query: 50 records.
            let rows = index
                .range(&ep, 1_000 * 8, 1_049 * 8)
                .await
                .expect("fault-free run");
            assert_eq!(rows.len(), 50);

            // Insert a fresh key and read it back.
            index
                .insert(&ep, 42 * 8 + 1, 777_777)
                .await
                .expect("fault-free run");
            assert_eq!(index.lookup(&ep, 42 * 8 + 1).await.unwrap(), Some(777_777));

            // Tombstone-delete it again.
            assert!(index.delete(&ep, 42 * 8 + 1).await.unwrap());
            assert_eq!(index.lookup(&ep, 42 * 8 + 1).await.unwrap(), None);

            println!(
                "{name:>15}: lookup+range(50)+insert+delete in {} of virtual time",
                sim_c.now() - t0
            );
        });
        sim.run();
    }

    println!(
        "total wire traffic: {:.2} MB across {} virtual time",
        nam.rdma.total_wire_bytes() as f64 / 1e6,
        sim.now()
    );
}
