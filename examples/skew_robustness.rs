//! Skew robustness: the paper's headline result, live.
//!
//! Builds all three designs over the same data twice — once with keys
//! spread evenly over the memory servers, once with the paper's
//! 80/12/5/3 attribute-value skew — and drives identical uniform
//! request streams against both. The coarse-grained design collapses to
//! roughly one server's resources under skew; the fine-grained and
//! hybrid designs are unaffected because their (leaf) nodes stay
//! scattered round-robin (§2.3, Figures 7/8/11).
//!
//! ```sh
//! cargo run --release --example skew_robustness
//! ```

use namdex::prelude::*;
use namdex::sim::rng::DetRng;
use std::cell::Cell;
use std::rc::Rc;

const KEYS: u64 = 100_000;
const CLIENTS: usize = 80;

fn throughput(design_name: &str, skewed: bool) -> f64 {
    let sim = Sim::new();
    let nam = NamCluster::new(&sim, ClusterSpec::default());
    nam.rdma.set_active_clients(CLIENTS);
    let data = Dataset::new(KEYS);

    let partition = if skewed {
        PartitionMap::range_fractions(&[0.80, 0.12, 0.05, 0.03], data.domain())
    } else {
        PartitionMap::range_uniform(nam.num_servers(), data.domain())
    };

    let index = match design_name {
        "coarse-grained" => Design::Cg(CoarseGrained::build(
            &nam,
            PageLayout::default(),
            partition,
            data.iter(),
            0.7,
        )),
        "fine-grained" => Design::Fg(FineGrained::build(
            &nam.rdma,
            FgConfig::default(),
            data.iter(),
        )),
        "hybrid" => Design::Hybrid(Hybrid::build(
            &nam,
            FgConfig::default(),
            partition,
            data.iter(),
        )),
        other => unreachable!("unknown design {other}"),
    };

    let warmup = SimTime::from_millis(2);
    let end = warmup + SimDur::from_millis(20);
    let ops = Rc::new(Cell::new(0u64));
    for c in 0..CLIENTS as u64 {
        let index = index.clone();
        let ep = Endpoint::new(&nam.rdma);
        let ops = ops.clone();
        let sim_c = sim.clone();
        let mut rng = DetRng::seed_from_u64(c);
        sim.spawn(async move {
            loop {
                // Uniform requests over the complete key space (§6.1).
                let key = rng.next_u64_below(KEYS) * 8;
                let t0 = sim_c.now();
                index.lookup(&ep, key).await.expect("fault-free run");
                if t0 >= warmup && sim_c.now() <= end {
                    ops.set(ops.get() + 1);
                }
            }
        });
    }
    sim.run_until(end);
    ops.get() as f64 / 0.020
}

fn main() {
    println!("point-query throughput, {CLIENTS} clients, {KEYS} keys, 4 memory servers\n");
    println!(
        "{:>16} {:>14} {:>14} {:>12}",
        "design", "uniform", "80/12/5/3 skew", "retained"
    );
    for name in ["coarse-grained", "fine-grained", "hybrid"] {
        let unif = throughput(name, false);
        let skew = throughput(name, true);
        println!(
            "{name:>16} {unif:>14.0} {skew:>14.0} {:>11.0}%",
            skew / unif * 100.0
        );
    }
    println!(
        "\nThe fine-grained design retains its full throughput under \
         attribute-value skew\nbecause index nodes are distributed per-node \
         round-robin — the paper's core claim."
    );
}
