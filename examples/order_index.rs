//! OLTP scenario: a secondary order index under a mixed workload.
//!
//! Models the workload class that motivates the paper's evaluation
//! (§6.3): an `orders(customer_id)` secondary index serving "all orders
//! of this customer" queries mixed with a steady stream of new-order
//! inserts, with cancelled orders reclaimed by epoch GC.
//!
//! The index key is the classical composite `(customer_id, order_seq)`
//! packed into one u64 — like every disk-based secondary index, this
//! keeps keys unique no matter how many orders one customer places (a
//! single duplicated key may not exceed one leaf's capacity; see
//! `blink`'s split documentation). A customer's orders are then a range
//! scan over `[customer << 24, (customer + 1) << 24)`.
//!
//! ```sh
//! cargo run --release --example order_index
//! ```

use namdex::index::gc;
use namdex::prelude::*;
use namdex::sim::rng::DetRng;
use std::cell::Cell;
use std::rc::Rc;

const CUSTOMERS: u64 = 20_000;
const INITIAL_ORDERS: u64 = 100_000;
const CLIENTS: usize = 24;
/// Bits of the composite key reserved for the per-customer sequence.
const SEQ_BITS: u32 = 24;

fn composite(customer: u64, seq: u64) -> Key {
    debug_assert!(seq < (1 << SEQ_BITS));
    (customer << SEQ_BITS) | seq
}

fn main() {
    let sim = Sim::new();
    let nam = NamCluster::new(&sim, ClusterSpec::default());

    // Load ~5 orders per customer: composite(customer, seq) -> order_id.
    let mut rng = DetRng::seed_from_u64(7);
    let mut seqs = vec![0u64; CUSTOMERS as usize];
    let mut base: Vec<(Key, Value)> = (0..INITIAL_ORDERS)
        .map(|order| {
            let customer = rng.next_u64_below(CUSTOMERS);
            let seq = seqs[customer as usize];
            seqs[customer as usize] += 1;
            (composite(customer, seq), order)
        })
        .collect();
    base.sort_unstable();

    let domain = composite(CUSTOMERS, 0);
    let partition = PartitionMap::range_uniform(nam.num_servers(), domain);
    let index = Hybrid::build(&nam, FgConfig::default(), partition, base.into_iter());

    // Register it with the catalog, as a compute server would resolve it.
    let mut catalog = Catalog::new();
    catalog.register(
        "orders_by_customer",
        IndexDescriptor {
            kind: IndexKind::Hybrid,
            root: RemotePtr::NULL,
            partition: Some(PartitionMap::range_uniform(nam.num_servers(), domain)),
            model: None,
        },
    );
    assert!(catalog.lookup("orders_by_customer").is_some());

    let lookups = Rc::new(Cell::new(0u64));
    let inserts = Rc::new(Cell::new(0u64));
    let found_orders = Rc::new(Cell::new(0u64));

    // Closed-loop clients: 80% customer lookups, 20% new orders. Each
    // client owns a disjoint slice of fresh sequence numbers.
    for c in 0..CLIENTS as u64 {
        let index = index.clone();
        let ep = Endpoint::new(&nam.rdma);
        let lookups = lookups.clone();
        let inserts = inserts.clone();
        let found = found_orders.clone();
        let mut rng = DetRng::seed_from_u64(100 + c);
        // Fresh sequences start above anything loaded (max ~25 per
        // customer) and are striped by client.
        let mut next_seq = 1_000 + c;
        let mut next_order = INITIAL_ORDERS + c;
        sim.spawn(async move {
            loop {
                let customer = rng.next_u64_below(CUSTOMERS);
                if rng.chance(0.8) {
                    // All orders of one customer: a range over its band.
                    let lo = composite(customer, 0);
                    let hi = composite(customer + 1, 0) - 1;
                    let orders = index.range(&ep, lo, hi).await.expect("fault-free run");
                    found.set(found.get() + orders.len() as u64);
                    lookups.set(lookups.get() + 1);
                } else {
                    index
                        .insert(&ep, composite(customer, next_seq), next_order)
                        .await
                        .expect("fault-free run");
                    next_seq += CLIENTS as u64;
                    next_order += CLIENTS as u64;
                    inserts.set(inserts.get() + 1);
                }
            }
        });
    }

    let horizon = SimTime::from_millis(50);
    sim.run_until(horizon);

    let secs = horizon.as_secs_f64();
    println!(
        "order index on {} memory servers, {CLIENTS} clients:",
        nam.num_servers()
    );
    println!(
        "  {:>9.0} customer lookups/s (avg {:.1} orders each)",
        lookups.get() as f64 / secs,
        found_orders.get() as f64 / lookups.get().max(1) as f64
    );
    println!("  {:>9.0} new orders/s", inserts.get() as f64 / secs);

    // Cancel the first order of 500 customers, then reclaim with an
    // epoch GC pass. (Clients keep running — GC is concurrent, as in the
    // paper.)
    let index2 = index.clone();
    let ep = Endpoint::new(&nam.rdma);
    let reclaimed = Rc::new(Cell::new(usize::MAX));
    {
        let reclaimed = reclaimed.clone();
        sim.spawn(async move {
            let mut cancelled = 0;
            for customer in 0..500u64 {
                if index2
                    .delete(&ep, composite(customer, 0))
                    .await
                    .expect("fault-free run")
                {
                    cancelled += 1;
                }
            }
            let freed = gc::hybrid_gc_pass(&index2, &ep)
                .await
                .expect("fault-free run");
            assert!(
                freed >= cancelled,
                "GC must reclaim at least what we cancelled"
            );
            reclaimed.set(freed);
        });
    }
    sim.run_until(horizon + SimDur::from_millis(200));
    assert_ne!(reclaimed.get(), usize::MAX, "GC pass must complete");
    println!(
        "  cancelled orders of 500 customers; epoch GC reclaimed {} entries",
        reclaimed.get()
    );
}
