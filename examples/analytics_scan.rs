//! OLAP scenario: analytical range scans at different selectivities.
//!
//! Compares the fine-grained design's head-node prefetch (§4.3) against
//! plain sibling chasing, and shows how the scan cost scales with
//! selectivity — the effect behind Figures 7(b–d).
//!
//! ```sh
//! cargo run --release --example analytics_scan
//! ```

use namdex::prelude::*;
use std::cell::Cell;
use std::rc::Rc;

const KEYS: u64 = 200_000;

fn scan_time(head_stride: usize, sel: f64) -> (f64, usize) {
    let sim = Sim::new();
    let cluster = Cluster::new(&sim, ClusterSpec::default());
    let cfg = FgConfig {
        head_stride,
        ..FgConfig::default()
    };
    let index = FineGrained::build(&cluster, cfg, (0..KEYS).map(|i| (i * 8, i)));

    let span = (sel * KEYS as f64) as u64;
    let micros = Rc::new(Cell::new(0u64));
    let rows_out = Rc::new(Cell::new(0usize));
    {
        let micros = micros.clone();
        let rows_out = rows_out.clone();
        let sim_c = sim.clone();
        sim.spawn(async move {
            let ep = Endpoint::new(&cluster);
            let t0 = sim_c.now();
            // Ten scans starting at different offsets.
            let mut total = 0;
            for i in 0..10u64 {
                let lo = i * (KEYS / 16) * 8;
                let hi = lo + (span - 1) * 8;
                total += index
                    .range(&ep, lo, hi)
                    .await
                    .expect("fault-free run")
                    .len();
            }
            micros.set((sim_c.now() - t0).as_micros() / 10);
            rows_out.set(total / 10);
        });
    }
    sim.run();
    (micros.get() as f64, rows_out.get())
}

fn main() {
    println!("analytical scans over {KEYS} keys (fine-grained design)\n");
    println!(
        "{:>10} {:>10} {:>16} {:>16} {:>9}",
        "sel", "rows", "no prefetch", "head prefetch", "speedup"
    );
    for sel in [0.001, 0.01, 0.1] {
        let (plain, rows) = scan_time(0, sel);
        let (prefetch, rows2) = scan_time(8, sel);
        assert_eq!(rows, rows2, "prefetch must not change results");
        println!(
            "{sel:>10} {rows:>10} {:>13.0} us {:>13.0} us {:>8.2}x",
            plain,
            prefetch,
            plain / prefetch
        );
    }
    println!(
        "\nhead nodes prefetch a whole leaf group per round trip, so the \
         speedup grows\nwith scan length (the paper's §4.3 'selectively \
         signaled READs')."
    );
}
