//! §7 "Other Architectures": the shared-nothing adaptation.
//!
//! The paper's first idea for shared-nothing databases: build the
//! coarse-grained index locally per partition, expose it over RDMA so
//! *distributed* transactions can reach remote partitions, and let
//! transactions running on the owning node use plain local memory
//! accesses. This example sweeps the fraction of single-partition
//! (local) transactions and shows throughput growing with locality —
//! the co-location effect of Appendix A.3 applied as an architecture.
//!
//! ```sh
//! cargo run --release --example shared_nothing
//! ```

use namdex::prelude::*;
use namdex::sim::rng::DetRng;
use std::cell::Cell;
use std::rc::Rc;

const KEYS: u64 = 100_000;
const CLIENTS_PER_NODE: usize = 10;

/// One run: every machine hosts a partition of the CG index *and* the
/// compute threads of its "node"; `local_frac` of transactions touch
/// the node's own partition.
fn throughput(local_frac: f64) -> f64 {
    let sim = Sim::new();
    // Shared-nothing: one memory server per machine (no NAM pooling).
    let spec = ClusterSpec {
        machines: 4,
        servers_per_machine: 1,
        ..ClusterSpec::default()
    };
    let nam = NamCluster::new(&sim, spec);
    let machines = 4usize;
    nam.rdma.set_active_clients(machines * CLIENTS_PER_NODE);

    let data = Dataset::new(KEYS);
    let partition = PartitionMap::range_uniform(nam.num_servers(), data.domain());
    let index = CoarseGrained::build(
        &nam,
        PageLayout::default(),
        partition.clone(),
        data.iter(),
        0.7,
    );

    let warmup = SimTime::from_millis(2);
    let end = warmup + SimDur::from_millis(20);
    let ops = Rc::new(Cell::new(0u64));

    for machine in 0..machines {
        // The node's partition covers an equal slice of the key space.
        let part_lo = (KEYS / machines as u64) * machine as u64;
        let part_hi = (KEYS / machines as u64) * (machine as u64 + 1);
        for c in 0..CLIENTS_PER_NODE {
            let index = index.clone();
            // Compute threads run ON the partition's machine: accesses
            // to the local partition take the local path.
            let ep = Endpoint::colocated(&nam.rdma, machine);
            let ops = ops.clone();
            let sim_c = sim.clone();
            let mut rng = DetRng::seed_from_u64((machine * 100 + c) as u64);
            sim.spawn(async move {
                loop {
                    // Single-partition vs distributed transaction.
                    let key_idx = if rng.chance(local_frac) {
                        rng.range(part_lo, part_hi)
                    } else {
                        rng.next_u64_below(KEYS)
                    };
                    let t0 = sim_c.now();
                    index
                        .lookup(&ep, key_idx * 8)
                        .await
                        .expect("fault-free run");
                    if t0 >= warmup && sim_c.now() <= end {
                        ops.set(ops.get() + 1);
                    }
                }
            });
        }
    }
    sim.run_until(end);
    ops.get() as f64 / 0.020
}

fn main() {
    println!(
        "shared-nothing deployment (§7): 4 nodes, {} compute threads each,\n\
         coarse-grained index exposed over RDMA for distributed transactions\n",
        CLIENTS_PER_NODE
    );
    println!("{:>22} {:>14}", "local tx fraction", "lookups/s");
    let mut last = 0.0;
    for local_frac in [0.0, 0.25, 0.5, 0.75, 1.0] {
        let t = throughput(local_frac);
        println!(
            "{local_frac:>21.0}% {t:>14.0}",
            local_frac = local_frac * 100.0
        );
        assert!(
            t >= last * 0.95,
            "throughput must not regress as locality grows"
        );
        last = t;
    }
    println!(
        "\nTransactions on their home partition bypass the network entirely;\n\
         remote partitions stay reachable over RDMA — the paper's argument\n\
         for reusing the coarse-grained design in shared-nothing systems."
    );
}
