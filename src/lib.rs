#![warn(missing_docs)]

//! # namdex — distributed tree-based index structures for fast
//! RDMA-capable networks
//!
//! A production-quality Rust reproduction of *Ziegler, Tumkur Vani,
//! Binnig, Fonseca, Kraska: "Designing Distributed Tree-based Index
//! Structures for Fast RDMA-capable Networks", SIGMOD 2019* — the three
//! distributed B-link tree designs for the Network-Attached-Memory (NAM)
//! architecture, complete with the simulated RDMA substrate the
//! evaluation runs on.
//!
//! ## Crate map
//!
//! | Module | Crate | Role |
//! |--------|-------|------|
//! | [`sim`] | `simnet` | deterministic virtual-time engine (executor, fluid resources, RNG, stats) |
//! | [`rdma`] | `rdma-sim` | simulated RDMA verbs: memory pools, remote pointers, one-/two-sided ops, NIC/QPI model |
//! | [`tree`] | `blink` | B-link tree pages and local trees with optimistic lock coupling |
//! | [`cluster`] | `nam` | the NAM assembly: partitioning, per-server state, catalog, RPC sizing |
//! | [`index`] | `namdex-core` | **the paper's contribution**: coarse-grained, fine-grained, and hybrid designs |
//! | [`workload`] | `ycsb` | the paper's modified YCSB (Table 3) |
//! | [`model`] | `analysis` | the §2.3 analytical scalability model |
//! | [`chaos`] | `chaos` | deterministic fault injection: fault plans, client kills, server crashes, link degradation |
//! | [`telemetry`] | `telemetry` | metrics registry, causal op spans, Chrome-trace/Perfetto export |
//! | [`racecheck`] | `racecheck` | happens-before race detector: vector-clock checking of optimistic reads over the verb-observer bus |
//!
//! ## Quickstart
//!
//! ```
//! use namdex::prelude::*;
//!
//! // A simulated 4-memory-server NAM cluster.
//! let sim = Sim::new();
//! let nam = NamCluster::new(&sim, ClusterSpec::default());
//!
//! // Build the hybrid index (Design 3) over 10k records.
//! let partition = PartitionMap::range_uniform(nam.num_servers(), 10_000 * 8);
//! let index = Hybrid::build(
//!     &nam,
//!     FgConfig::default(),
//!     partition,
//!     (0..10_000u64).map(|i| (i * 8, i)),
//! );
//!
//! // A compute-server client issues index operations over (simulated)
//! // RDMA verbs. Every operation is fallible: under fault injection
//! // (see [`chaos`]) a verb can time out, hit a crashed server, or be
//! // cancelled by a client kill; on this fault-free cluster the
//! // results are simply unwrapped.
//! let ep = Endpoint::new(&nam.rdma);
//! sim.spawn(async move {
//!     assert_eq!(index.lookup(&ep, 4_200 * 8).await.unwrap(), Some(4_200));
//!     index.insert(&ep, 33, 999).await.unwrap();
//!     let rows = index.range(&ep, 0, 100).await.unwrap();
//!     assert!(rows.len() >= 13);
//! });
//! sim.run();
//! ```

pub use analysis as model;
pub use blink as tree;
pub use chaos;
pub use nam as cluster;
pub use namdex_core as index;
pub use racecheck;
pub use rdma_sim as rdma;
#[cfg(feature = "sanitizer")]
pub use sanitizer;
pub use simnet as sim;
pub use telemetry;
pub use ycsb as workload;

/// Everything needed to build and query an index on a simulated NAM
/// cluster.
pub mod prelude {
    pub use blink::{Key, LocalTree, PageLayout, Value};
    pub use chaos::{ChaosController, FaultEvent, FaultPlan, RandomProfile};
    pub use nam::{Catalog, IndexDescriptor, IndexKind, NamCluster, PartitionMap};
    pub use namdex_core::{
        CoarseGrained, Design, FgConfig, FineGrained, Hybrid, Learned, LearnedStats, OpError,
    };
    pub use racecheck::Racecheck;
    pub use rdma_sim::{
        Cluster, ClusterSpec, Durability, Endpoint, LinkDegrade, RecoveryRecord, RemotePtr,
        VerbError, WalStats,
    };
    pub use simnet::{Sim, SimDur, SimTime};
    pub use ycsb::{Dataset, InsertPattern, Op, OpGen, RequestDist, Workload};
}
