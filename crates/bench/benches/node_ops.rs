//! Microbenchmarks of the B-link page codec: the inner loops every
//! remote traversal and every RPC handler execute.

use blink::layout::{PageLayout, Ptr, KEY_MAX};
use blink::node::{InnerNodeMut, LeafNodeMut, LeafNodeRef};
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn full_leaf(layout: PageLayout) -> Box<[u8]> {
    let mut page = layout.alloc_page();
    let mut leaf = LeafNodeMut::init(&mut page, KEY_MAX, Ptr::NULL, Ptr::NULL);
    for k in 0..layout.entry_capacity() as u64 {
        leaf.push(k * 2, k).unwrap();
    }
    page
}

fn bench_leaf_search(c: &mut Criterion) {
    let layout = PageLayout::default();
    let page = full_leaf(layout);
    let leaf = LeafNodeRef::new(&page);
    let n = layout.entry_capacity() as u64;
    let mut i = 0u64;
    c.bench_function("leaf_get_hit", |b| {
        b.iter(|| {
            i = (i + 7) % n;
            black_box(leaf.get(black_box(i * 2)))
        })
    });
    c.bench_function("leaf_get_miss", |b| {
        b.iter(|| {
            i = (i + 7) % n;
            black_box(leaf.get(black_box(i * 2 + 1)))
        })
    });
}

fn bench_leaf_insert(c: &mut Criterion) {
    let layout = PageLayout::default();
    let cap = layout.entry_capacity() as u64;
    c.bench_function("leaf_fill_sorted", |b| {
        b.iter(|| {
            let mut page = layout.alloc_page();
            let mut leaf = LeafNodeMut::init(&mut page, KEY_MAX, Ptr::NULL, Ptr::NULL);
            for k in 0..cap {
                leaf.insert(k, k).unwrap();
            }
            black_box(page)
        })
    });
    c.bench_function("leaf_fill_reverse", |b| {
        b.iter(|| {
            let mut page = layout.alloc_page();
            let mut leaf = LeafNodeMut::init(&mut page, KEY_MAX, Ptr::NULL, Ptr::NULL);
            for k in (0..cap).rev() {
                leaf.insert(k, k).unwrap();
            }
            black_box(page)
        })
    });
}

fn bench_split(c: &mut Criterion) {
    let layout = PageLayout::default();
    c.bench_function("leaf_split", |b| {
        b.iter_with_setup(
            || (full_leaf(layout), layout.alloc_page()),
            |(mut page, mut right)| {
                let sep = LeafNodeMut::new(&mut page).split_into(&mut right, Ptr(1), Ptr(2));
                black_box((sep, page, right))
            },
        )
    });
}

fn bench_inner_route(c: &mut Criterion) {
    let layout = PageLayout::default();
    let mut page = layout.alloc_page();
    let mut inner = InnerNodeMut::init(&mut page, 1, KEY_MAX, Ptr::NULL);
    let cap = layout.entry_capacity() as u64;
    for i in 0..cap {
        let sep = if i + 1 == cap { KEY_MAX } else { (i + 1) * 100 };
        inner.push(sep, Ptr(i + 1)).unwrap();
    }
    let view = blink::node::InnerNodeRef::new(&page);
    let mut k = 0u64;
    c.bench_function("inner_find_child", |b| {
        b.iter(|| {
            k = (k + 137) % (cap * 100);
            black_box(view.find_child(black_box(k)))
        })
    });
}

criterion_group!(
    benches,
    bench_leaf_search,
    bench_leaf_insert,
    bench_split,
    bench_inner_route
);
criterion_main!(benches);
