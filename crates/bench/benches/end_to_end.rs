//! End-to-end benchmark: wall-clock cost of simulating one standard
//! experiment cell per design. This is the simulator-throughput number
//! that determines how long the figure sweeps take.

use bench::{run_experiment, DesignKind, ExperimentConfig};
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use simnet::SimDur;
use ycsb::Workload;

fn bench_experiment(c: &mut Criterion) {
    let mut group = c.benchmark_group("experiment_cell");
    group.sample_size(10);
    for design in [
        DesignKind::Cg,
        DesignKind::Fg,
        DesignKind::Hybrid,
        DesignKind::Learned,
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(design.label()),
            &design,
            |b, &design| {
                b.iter(|| {
                    let cfg = ExperimentConfig {
                        design,
                        workload: Workload::a(),
                        num_keys: 20_000,
                        clients: 16,
                        warmup: SimDur::from_millis(1),
                        measure: SimDur::from_millis(4),
                        ..ExperimentConfig::default()
                    };
                    black_box(run_experiment(&cfg).ops)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_experiment);
criterion_main!(benches);
