//! Microbenchmarks of the simulation substrate: how many virtual events
//! the engine processes per wall-clock second bounds every experiment's
//! runtime.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use simnet::resource::{CpuPool, FifoLink};
use simnet::rng::{DetRng, Zipf};
use simnet::stats::Histogram;
use simnet::{Sim, SimDur};
use std::rc::Rc;

fn bench_executor(c: &mut Criterion) {
    c.bench_function("executor_10k_timer_events", |b| {
        b.iter(|| {
            let sim = Sim::new();
            for t in 0..100u64 {
                let s = sim.clone();
                sim.spawn(async move {
                    for i in 0..100u64 {
                        s.sleep(SimDur::from_nanos(10 + t + i)).await;
                    }
                });
            }
            black_box(sim.run())
        })
    });
}

fn bench_fifo_link(c: &mut Criterion) {
    c.bench_function("fifo_link_10k_acquires", |b| {
        b.iter(|| {
            let sim = Sim::new();
            let link = Rc::new(FifoLink::new());
            for _ in 0..10 {
                let s = sim.clone();
                let l = link.clone();
                sim.spawn(async move {
                    for _ in 0..1_000 {
                        l.acquire(&s, SimDur::from_nanos(100)).await;
                    }
                });
            }
            black_box(sim.run())
        })
    });
}

fn bench_cpu_pool(c: &mut Criterion) {
    c.bench_function("cpu_pool_contended_grants", |b| {
        b.iter(|| {
            let sim = Sim::new();
            let pool = Rc::new(CpuPool::new(4));
            for _ in 0..40 {
                let s = sim.clone();
                let p = pool.clone();
                sim.spawn(async move {
                    for _ in 0..50 {
                        p.run(&s, SimDur::from_nanos(500)).await;
                    }
                });
            }
            black_box(sim.run())
        })
    });
}

fn bench_zipf(c: &mut Criterion) {
    let z = Zipf::new(1_000_000, Zipf::YCSB_THETA);
    let mut rng = DetRng::seed_from_u64(1);
    c.bench_function("zipf_sample_scrambled", |b| {
        b.iter(|| black_box(z.sample_scrambled(&mut rng)))
    });
}

fn bench_histogram(c: &mut Criterion) {
    let mut h = Histogram::new();
    let mut v = 1u64;
    c.bench_function("histogram_record", |b| {
        b.iter(|| {
            v = v.wrapping_mul(6364136223846793005).wrapping_add(1) % 10_000_000;
            h.record(black_box(v));
        })
    });
}

criterion_group!(
    benches,
    bench_executor,
    bench_fifo_link,
    bench_cpu_pool,
    bench_zipf,
    bench_histogram
);
criterion_main!(benches);
