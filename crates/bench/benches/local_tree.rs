//! Microbenchmarks of the local B-link tree — the code RPC handlers run
//! on memory servers (its cost drives the CPU model's constants).

use blink::{LocalTree, PageLayout};
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

fn build(n: u64) -> LocalTree {
    LocalTree::bulk_load(PageLayout::default(), (0..n).map(|i| (i * 8, i)), 0.7)
}

fn bench_get(c: &mut Criterion) {
    let mut group = c.benchmark_group("local_tree_get");
    for n in [10_000u64, 100_000, 1_000_000] {
        let tree = build(n);
        let mut k = 0u64;
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                k = (k + 2_654_435_761) % n;
                black_box(tree.get(black_box(k * 8)))
            })
        });
    }
    group.finish();
}

fn bench_insert(c: &mut Criterion) {
    c.bench_function("local_tree_insert_100k", |b| {
        b.iter_with_setup(
            || (build(100_000), 0u64),
            |(mut tree, _)| {
                for i in 0..100u64 {
                    tree.insert(i * 800 + 1, i);
                }
                black_box(tree.len_live())
            },
        )
    });
}

fn bench_range(c: &mut Criterion) {
    let tree = build(100_000);
    let mut group = c.benchmark_group("local_tree_range");
    for span in [100u64, 1_000, 10_000] {
        group.bench_with_input(BenchmarkId::from_parameter(span), &span, |b, &span| {
            let mut lo = 0u64;
            b.iter(|| {
                lo = (lo + 7_777) % (100_000 - span);
                let mut out = Vec::with_capacity(span as usize);
                tree.range(lo * 8, (lo + span - 1) * 8, &mut out);
                black_box(out.len())
            })
        });
    }
    group.finish();
}

fn bench_bulk_load(c: &mut Criterion) {
    c.bench_function("local_tree_bulk_load_100k", |b| {
        b.iter(|| black_box(build(100_000)).height())
    });
}

criterion_group!(
    benches,
    bench_get,
    bench_insert,
    bench_range,
    bench_bulk_load
);
criterion_main!(benches);
