//! PR-over-PR performance trajectory: `BENCH_*.json` baselines.
//!
//! Each figure binary that participates in the trajectory runs one
//! small seed-pinned experiment per design and records two numbers:
//!
//! * **ops/sec** — virtual-time throughput, fully deterministic for a
//!   given seed, so regressions in protocol verb counts or simulated
//!   timing show up as an exact diff;
//! * **events/sec** — scheduling events the simulator processed per
//!   wall-clock second, the raw-speed figure ROADMAP item 3 tracks.
//!   This one is machine-dependent by nature; the trajectory compares
//!   it across PRs run on the same hardware.
//!
//! The trajectory *accrues*: each run appends a dated entry to the
//! `entries` array instead of overwriting, so the PR-over-PR curve is
//! readable straight from the committed file (`cargo xtask perf-smoke`
//! compares CI runs against the last entry, warn-only). Events/sec is
//! sampled **best-of-3** — same-seed reruns are virtual-time identical,
//! so the repeats differ only in wall-clock noise, and the max is a far
//! lower-variance estimate of achievable event-loop speed than a single
//! draw on a busy machine.
//!
//! The JSON is hand-rolled (the workspace carries no serde) and field
//! order is fixed, so same-machine same-seed reruns diff cleanly.

use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::driver::{run_experiment, DesignKind, ExperimentConfig};
use crate::figures;
use simnet::SimDur;

/// One design's trajectory sample.
#[derive(Clone, Debug)]
pub struct TrajectoryPoint {
    /// Design label (paper legend name).
    pub design: String,
    /// Deterministic virtual-time throughput, operations/second.
    pub ops_per_sec: f64,
    /// Scheduling events the run processed (deterministic).
    pub sim_events: u64,
    /// Simulator raw speed, events per wall-clock second (best-of-3).
    pub events_per_sec: f64,
}

/// Wall-clock repeats per design; events/sec takes the max (the
/// deterministic fields are asserted identical across repeats).
pub const EVENTS_PER_SEC_REPEATS: usize = 3;

/// Run the seed-pinned baseline workload [`EVENTS_PER_SEC_REPEATS`]
/// times per design in [`figures::designs`] and collect trajectory
/// points (best-of-N events/sec, first-run deterministic fields).
///
/// `now_secs` is a monotonic wall-clock sampler in seconds — one of the
/// two places the bench harness touches real time (the other is the
/// process-wide meter below). Binaries pass an `Instant`-based timer;
/// tests can pass a stub.
pub fn sample_designs(seed: u64, now_secs: impl Fn() -> f64) -> Vec<TrajectoryPoint> {
    figures::designs()
        .into_iter()
        .map(|design| {
            let cfg = baseline_config(design, seed);
            let mut point: Option<TrajectoryPoint> = None;
            for _ in 0..EVENTS_PER_SEC_REPEATS {
                let t0 = now_secs();
                let r = run_experiment(&cfg);
                let secs = now_secs() - t0;
                let eps = if secs > 0.0 {
                    r.sim_events as f64 / secs
                } else {
                    0.0
                };
                match &mut point {
                    None => {
                        point = Some(TrajectoryPoint {
                            design: design.label().to_string(),
                            ops_per_sec: r.throughput,
                            sim_events: r.sim_events,
                            events_per_sec: eps,
                        });
                    }
                    Some(p) => {
                        // Virtual time is a pure function of the seed;
                        // only the wall clock may differ between repeats.
                        assert_eq!(
                            p.sim_events, r.sim_events,
                            "same-seed rerun changed the event count"
                        );
                        p.events_per_sec = p.events_per_sec.max(eps);
                    }
                }
            }
            let p = point.expect("at least one repeat");
            eprintln!(
                "[trajectory] {}: {:.0} ops/s, {} events, best {:.2}M events/s",
                p.design,
                p.ops_per_sec,
                p.sim_events,
                p.events_per_sec / 1e6,
            );
            p
        })
        .collect()
}

/// The pinned baseline: workload A, 40 clients, 100k keys, uniform
/// data — small enough to run on every figure invocation, large enough
/// that events/sec reflects steady-state event-loop cost.
fn baseline_config(design: DesignKind, seed: u64) -> ExperimentConfig {
    ExperimentConfig {
        design,
        num_keys: 100_000,
        clients: 40,
        warmup: SimDur::from_millis(2),
        measure: SimDur::from_millis(20),
        seed,
        ..ExperimentConfig::default()
    }
}

// ---------------------------------------------------------------------
// Process-wide events/sec meter.

static METER_EVENTS: AtomicU64 = AtomicU64::new(0);
static METER_NANOS: AtomicU64 = AtomicU64::new(0);

/// Record one experiment's scheduling-event count and wall-clock cost.
/// Called by `driver::run_experiment` itself, so **every** figure binary
/// accumulates raw-speed data with no per-binary plumbing.
pub(crate) fn meter_record(events: u64, wall_nanos: u64) {
    METER_EVENTS.fetch_add(events, Ordering::Relaxed);
    METER_NANOS.fetch_add(wall_nanos, Ordering::Relaxed);
}

/// One-line summary of the process's accumulated simulator raw speed,
/// or `None` if no experiment ran. Figure binaries print this as their
/// last line; under the parallel sweep runner the events/sec is
/// *aggregate* (events summed over cells, wall summed over workers).
pub fn process_events_summary() -> Option<String> {
    let ev = METER_EVENTS.load(Ordering::Relaxed);
    let ns = METER_NANOS.load(Ordering::Relaxed);
    if ev == 0 || ns == 0 {
        return None;
    }
    let secs = ns as f64 / 1e9;
    Some(format!(
        "[events/sec] {ev} simulator events in {secs:.2}s wall = {:.2}M events/sec",
        ev as f64 / secs / 1e6
    ))
}

// ---------------------------------------------------------------------
// Appended-entry JSON.

/// Convert a Unix timestamp (seconds, UTC) to a `YYYY-MM-DD` civil
/// date. Hand-rolled days-from-epoch conversion (no chrono in the
/// workspace); proleptic Gregorian, valid for any date the trajectory
/// will ever see.
pub fn civil_date(unix_secs: u64) -> String {
    let days = (unix_secs / 86_400) as i64;
    let z = days + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let m = if mp < 10 { mp + 3 } else { mp - 9 };
    let y = yoe + era * 400 + i64::from(m <= 2);
    format!("{y:04}-{m:02}-{d:02}")
}

/// Pull the existing entry blocks (as raw JSON object strings) out of a
/// trajectory file. Accepts both the appended-entries format and the
/// legacy single-snapshot format (which becomes one `"date": "unknown"`
/// entry). Brace counting is safe here: the format contains no braces
/// or brackets inside strings.
fn parse_entries(text: &str) -> Vec<String> {
    if let Some(start) = text.find("\"entries\": [") {
        let mut entries = Vec::new();
        let mut depth = 0usize;
        let mut obj_start = None;
        for (i, c) in text[start..].char_indices() {
            match c {
                '{' => {
                    if depth == 0 {
                        obj_start = Some(start + i);
                    }
                    depth += 1;
                }
                '}' => {
                    depth -= 1;
                    if depth == 0 {
                        let s = obj_start.take().expect("matched brace");
                        entries.push(text[s..=start + i].to_string());
                    }
                }
                ']' if depth == 0 => break,
                _ => {}
            }
        }
        return entries;
    }
    // Legacy single snapshot: hoist its seed + designs into one entry.
    if let Some(d) = text.find("\"designs\": [") {
        let seed = text
            .find("\"seed\":")
            .and_then(|i| {
                let rest = text[i + 7..].trim_start();
                let end = rest
                    .find(|c: char| !c.is_ascii_digit())
                    .unwrap_or(rest.len());
                rest[..end].parse::<u64>().ok()
            })
            .unwrap_or(0);
        let Some(close) = text[d..].find(']').map(|i| d + i) else {
            return Vec::new();
        };
        let designs = &text[d..=close];
        return vec![format!(
            "    {{\n      \"date\": \"unknown\",\n      \"seed\": {seed},\n      {}\n    }}",
            designs.replace('\n', "\n  ")
        )];
    }
    Vec::new()
}

/// Pull the free-form note strings out of a trajectory file's
/// `"notes": [...]` array (absent in most files). Notes are one-line
/// strings with no embedded quotes or brackets — `cargo xtask
/// perf-smoke` appends racecheck-overhead measurements here.
fn parse_notes(text: &str) -> Vec<String> {
    let Some(start) = text.find("\"notes\": [") else {
        return Vec::new();
    };
    let body = &text[start + "\"notes\": [".len()..];
    let Some(end) = body.find(']') else {
        return Vec::new();
    };
    body[..end]
        .split('"')
        .skip(1)
        .step_by(2)
        .map(String::from)
        .collect()
}

fn format_entry(date: &str, seed: u64, points: &[TrajectoryPoint]) -> String {
    let mut e = String::new();
    e.push_str("    {\n");
    e.push_str(&format!("      \"date\": \"{date}\",\n"));
    e.push_str(&format!("      \"seed\": {seed},\n"));
    e.push_str("      \"designs\": [\n");
    for (i, p) in points.iter().enumerate() {
        e.push_str(&format!(
            "        {{\"design\": \"{}\", \"ops_per_sec\": {:.1}, \
             \"sim_events\": {}, \"events_per_sec\": {:.0}}}{}\n",
            p.design,
            p.ops_per_sec,
            p.sim_events,
            p.events_per_sec,
            if i + 1 == points.len() { "" } else { "," },
        ));
    }
    e.push_str("      ]\n    }");
    e
}

/// Append one dated entry to the `BENCH_*.json` trajectory at `path`,
/// preserving every existing entry (and converting a legacy
/// single-snapshot file to the entries format on first touch). The
/// caller supplies the civil date — the wall-clock read stays in the
/// binaries.
pub fn append_bench_json(
    path: &Path,
    figure: &str,
    seed: u64,
    date: &str,
    points: &[TrajectoryPoint],
) -> std::io::Result<()> {
    let (mut entries, notes) = match std::fs::read_to_string(path) {
        Ok(old) => (parse_entries(&old), parse_notes(&old)),
        Err(_) => (Vec::new(), Vec::new()),
    };
    entries.push(format_entry(date, seed, points));
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"figure\": \"{figure}\",\n"));
    if !notes.is_empty() {
        out.push_str("  \"notes\": [\n");
        for (i, n) in notes.iter().enumerate() {
            out.push_str(&format!(
                "    \"{n}\"{}\n",
                if i + 1 == notes.len() { "" } else { "," }
            ));
        }
        out.push_str("  ],\n");
    }
    out.push_str("  \"entries\": [\n");
    out.push_str(&entries.join(",\n"));
    out.push_str("\n  ]\n}\n");
    if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
        std::fs::create_dir_all(dir)?;
    }
    std::fs::write(path, out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pts() -> Vec<TrajectoryPoint> {
        vec![
            TrajectoryPoint {
                design: "Hybrid".into(),
                ops_per_sec: 1234.5,
                sim_events: 999,
                events_per_sec: 1e6,
            },
            TrajectoryPoint {
                design: "Learned".into(),
                ops_per_sec: 2000.0,
                sim_events: 888,
                events_per_sec: 2e6,
            },
        ]
    }

    #[test]
    fn entries_accrue_across_appends() {
        let dir = std::env::temp_dir().join("namdex_trajectory_append");
        std::fs::remove_dir_all(&dir).ok();
        let path = dir.join("BENCH_test.json");
        append_bench_json(&path, "test", 42, "2026-08-01", &pts()).unwrap();
        append_bench_json(&path, "test", 42, "2026-08-09", &pts()).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"figure\": \"test\""));
        assert_eq!(text.matches("\"date\":").count(), 2, "{text}");
        assert_eq!(text.matches("\"design\": \"Hybrid\"").count(), 2);
        assert!(text.contains("\"2026-08-01\"") && text.contains("\"2026-08-09\""));
        // Still well-formed enough to re-parse.
        assert_eq!(parse_entries(&text).len(), 2);
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn legacy_snapshot_is_preserved_as_first_entry() {
        let dir = std::env::temp_dir().join("namdex_trajectory_legacy");
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_test.json");
        let legacy = "{\n  \"figure\": \"test\",\n  \"seed\": 7,\n  \"designs\": [\n    \
            {\"design\": \"Coarse-Grained\", \"ops_per_sec\": 1.0, \"sim_events\": 5, \"events_per_sec\": 100}\n  ]\n}\n";
        std::fs::write(&path, legacy).unwrap();
        append_bench_json(&path, "test", 42, "2026-08-09", &pts()).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"entries\": ["));
        assert!(text.contains("\"date\": \"unknown\""), "{text}");
        assert!(text.contains("\"seed\": 7"));
        assert!(text.contains("\"design\": \"Coarse-Grained\""));
        assert!(text.contains("\"date\": \"2026-08-09\""));
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn notes_survive_entry_appends() {
        let dir = std::env::temp_dir().join("namdex_trajectory_notes");
        std::fs::remove_dir_all(&dir).ok();
        let path = dir.join("BENCH_test.json");
        append_bench_json(&path, "test", 42, "2026-08-01", &pts()).unwrap();
        // Splice a notes array in the way `cargo xtask perf-smoke` does.
        let text = std::fs::read_to_string(&path).unwrap();
        let with_notes = text.replace(
            "\"figure\": \"test\",",
            "\"figure\": \"test\",\n  \"notes\": [\n    \
             \"racecheck-overhead 2026-08-01: Hybrid 1.10x\"\n  ],",
        );
        std::fs::write(&path, with_notes).unwrap();
        assert_eq!(
            parse_notes(&std::fs::read_to_string(&path).unwrap()),
            vec!["racecheck-overhead 2026-08-01: Hybrid 1.10x".to_string()]
        );
        // The next appended entry must carry the note through.
        append_bench_json(&path, "test", 42, "2026-08-09", &pts()).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("racecheck-overhead 2026-08-01"), "{text}");
        assert_eq!(text.matches("\"date\":").count(), 2);
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn civil_dates_are_correct() {
        assert_eq!(civil_date(0), "1970-01-01");
        assert_eq!(civil_date(86_399), "1970-01-01");
        assert_eq!(civil_date(86_400), "1970-01-02");
        // Leap-year boundary: 2024-02-29.
        assert_eq!(civil_date(1_709_164_800), "2024-02-29");
        assert_eq!(civil_date(1_786_233_600), "2026-08-09");
    }

    #[test]
    fn meter_summary_formats() {
        meter_record(1_000_000, 500_000_000);
        let s = process_events_summary().expect("meter recorded");
        assert!(s.contains("events/sec"), "{s}");
    }
}
