//! PR-over-PR performance trajectory: `BENCH_*.json` baselines.
//!
//! Each figure binary that participates in the trajectory runs one
//! small seed-pinned experiment per design and records two numbers:
//!
//! * **ops/sec** — virtual-time throughput, fully deterministic for a
//!   given seed, so regressions in protocol verb counts or simulated
//!   timing show up as an exact diff;
//! * **events/sec** — scheduling events the simulator processed per
//!   wall-clock second, the raw-speed figure ROADMAP item 3 tracks.
//!   This one is machine-dependent by nature; the trajectory compares
//!   it across PRs run on the same hardware.
//!
//! The JSON is hand-rolled (the workspace carries no serde) and field
//! order is fixed, so same-machine same-seed reruns diff cleanly.

use std::path::Path;

use crate::driver::{run_experiment, DesignKind, ExperimentConfig};
use crate::figures;
use simnet::SimDur;

/// One design's trajectory sample.
#[derive(Clone, Debug)]
pub struct TrajectoryPoint {
    /// Design label (paper legend name).
    pub design: String,
    /// Deterministic virtual-time throughput, operations/second.
    pub ops_per_sec: f64,
    /// Scheduling events the run processed (deterministic).
    pub sim_events: u64,
    /// Simulator raw speed, events per wall-clock second.
    pub events_per_sec: f64,
}

/// Run the seed-pinned baseline workload once per design in
/// [`figures::designs`] and collect trajectory points.
///
/// `now_secs` is a monotonic wall-clock sampler in seconds — the one
/// place the bench harness touches real time. Binaries pass an
/// `Instant`-based timer; tests can pass a stub.
pub fn sample_designs(seed: u64, now_secs: impl Fn() -> f64) -> Vec<TrajectoryPoint> {
    figures::designs()
        .into_iter()
        .map(|design| {
            let cfg = baseline_config(design, seed);
            let t0 = now_secs();
            let r = run_experiment(&cfg);
            let secs = now_secs() - t0;
            eprintln!(
                "[trajectory] {}: {:.0} ops/s, {} events in {secs:.2}s wall",
                design.label(),
                r.throughput,
                r.sim_events,
            );
            TrajectoryPoint {
                design: design.label().to_string(),
                ops_per_sec: r.throughput,
                sim_events: r.sim_events,
                events_per_sec: if secs > 0.0 {
                    r.sim_events as f64 / secs
                } else {
                    0.0
                },
            }
        })
        .collect()
}

/// The pinned baseline: workload A, 40 clients, 100k keys, uniform
/// data — small enough to run on every figure invocation, large enough
/// that events/sec reflects steady-state event-loop cost.
fn baseline_config(design: DesignKind, seed: u64) -> ExperimentConfig {
    ExperimentConfig {
        design,
        num_keys: 100_000,
        clients: 40,
        warmup: SimDur::from_millis(2),
        measure: SimDur::from_millis(20),
        seed,
        ..ExperimentConfig::default()
    }
}

/// Serialize trajectory points to the fixed-field JSON the ROADMAP's
/// `BENCH_*.json` tracking consumes, and write it to `path`.
pub fn write_bench_json(
    path: &Path,
    figure: &str,
    seed: u64,
    points: &[TrajectoryPoint],
) -> std::io::Result<()> {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"figure\": \"{figure}\",\n"));
    out.push_str(&format!("  \"seed\": {seed},\n"));
    out.push_str("  \"designs\": [\n");
    for (i, p) in points.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"design\": \"{}\", \"ops_per_sec\": {:.1}, \
             \"sim_events\": {}, \"events_per_sec\": {:.0}}}{}\n",
            p.design,
            p.ops_per_sec,
            p.sim_events,
            p.events_per_sec,
            if i + 1 == points.len() { "" } else { "," },
        ));
    }
    out.push_str("  ]\n}\n");
    if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
        std::fs::create_dir_all(dir)?;
    }
    std::fs::write(path, out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_shape_is_stable() {
        let dir = std::env::temp_dir().join("namdex_trajectory_test");
        let path = dir.join("BENCH_test.json");
        let pts = vec![
            TrajectoryPoint {
                design: "Hybrid".into(),
                ops_per_sec: 1234.5,
                sim_events: 999,
                events_per_sec: 1e6,
            },
            TrajectoryPoint {
                design: "Learned".into(),
                ops_per_sec: 2000.0,
                sim_events: 888,
                events_per_sec: 2e6,
            },
        ];
        write_bench_json(&path, "test", 42, &pts).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"figure\": \"test\""));
        assert!(text.contains("\"seed\": 42"));
        assert!(text.contains("\"design\": \"Learned\""));
        assert!(text.contains("\"sim_events\": 999"));
        // Exactly one trailing comma between the two design entries.
        assert_eq!(text.matches("},").count(), 1);
        std::fs::remove_dir_all(dir).ok();
    }
}
