//! Parallel sweep runner: farm independent experiment *cells* across OS
//! threads with a byte-deterministic merge.
//!
//! A sweep cell (one `run_experiment`) builds its own `Sim`, cluster,
//! buffer arena, and RNG from its config + seed and shares nothing with
//! other cells, so cells are embarrassingly parallel. The runner:
//!
//! 1. takes the full cell list up front (callers enumerate, then farm),
//! 2. spawns `NAMDEX_SWEEP_THREADS` scoped workers (default 1 = run
//!    inline on the caller's thread) that claim cell indices off one
//!    shared `AtomicUsize`,
//! 3. collects each worker's `(index, output)` pairs through its join
//!    handle — no locks, no channels — and
//! 4. merges them sorted by cell index.
//!
//! The merged output is therefore **identical for any thread count,
//! including one**: parallelism changes only the wall-clock instant a
//! cell runs at, never its inputs or its position in the output. The
//! determinism gate's no-threads rule is about threads *inside* a
//! simulation; here threads sit strictly above whole simulations (each
//! worker runs complete, independent sims), which preserves the
//! seed-purity argument. Progress lines printed by `work` may interleave
//! under multiple threads — only the returned rows are ordered.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Worker count: `NAMDEX_SWEEP_THREADS`, default 1. The default stays
/// sequential because interleaved per-cell progress output is confusing
/// in CI logs and on one-core machines threads only add overhead.
pub fn sweep_threads() -> usize {
    std::env::var("NAMDEX_SWEEP_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(1)
}

/// Run `work` over every cell, farming across [`sweep_threads`] OS
/// threads, and return the outputs **in input order**.
pub fn run_cells<I, O, F>(cells: &[I], work: F) -> Vec<O>
where
    I: Sync,
    O: Send,
    F: Fn(&I) -> O + Sync,
{
    run_cells_on(sweep_threads(), cells, &work)
}

fn run_cells_on<I, O, F>(threads: usize, cells: &[I], work: &F) -> Vec<O>
where
    I: Sync,
    O: Send,
    F: Fn(&I) -> O + Sync,
{
    let threads = threads.min(cells.len()).max(1);
    if threads == 1 {
        return cells.iter().map(work).collect();
    }
    let next = AtomicUsize::new(0);
    let mut indexed: Vec<(usize, O)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let next = &next;
                scope.spawn(move || {
                    let mut out = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        let Some(cell) = cells.get(i) else { break };
                        out.push((i, work(cell)));
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("sweep worker panicked"))
            .collect()
    });
    indexed.sort_by_key(|(i, _)| *i);
    indexed.into_iter().map(|(_, o)| o).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_merge_matches_sequential_order() {
        let cells: Vec<u64> = (0..37).collect();
        let work = |&c: &u64| c * c + 1;
        let seq = run_cells_on(1, &cells, &work);
        for threads in [2, 4, 16] {
            assert_eq!(run_cells_on(threads, &cells, &work), seq);
        }
    }

    #[test]
    fn more_threads_than_cells_is_fine() {
        let cells = vec![10u64, 20];
        assert_eq!(run_cells_on(8, &cells, &|&c| c + 1), vec![11, 21]);
        let empty: Vec<u64> = Vec::new();
        assert!(run_cells_on(8, &empty, &|&c| c).is_empty());
    }

    #[test]
    fn thread_knob_parses_and_defaults() {
        // No env manipulation (racy across parallel tests): just pin the
        // default on machines where the variable is unset.
        if std::env::var_os("NAMDEX_SWEEP_THREADS").is_none() {
            assert_eq!(sweep_threads(), 1);
        }
    }
}
