//! Shared sweep infrastructure for the figure binaries.
//!
//! Figures 7, 9 and 13 (and 8, 14) all come from one underlying sweep:
//! {4 designs} × {client counts} × {workload A + three range
//! selectivities} under one data distribution. [`full_sweep`] runs it
//! once and caches the rows as CSV under the results directory; the
//! figure binaries then render their view of the data. Delete the
//! `results/` directory to force re-measurement.
//!
//! Scale note: the paper's headline runs use 100M keys on real FDR
//! hardware; the simulated reproduction defaults to 1M keys (same tree
//! heights at the default page size within one level) and scales down
//! client windows accordingly. Set `NAMDEX_QUICK=1` for a fast smoke
//! sweep (100K keys, 3 client counts).

use std::path::{Path, PathBuf};

use simnet::SimDur;
use ycsb::Workload;

use crate::cli;
use crate::driver::{run_experiment, DataDist, DesignKind, ExperimentConfig};
use crate::plot::{results_dir, write_csv};

/// All four designs, in legend order: the paper's three plus the
/// learned-index routing design.
pub const DESIGNS: [DesignKind; 4] = [
    DesignKind::Cg,
    DesignKind::Fg,
    DesignKind::Hybrid,
    DesignKind::Learned,
];

/// The designs this process sweeps: all four by default, or the comma
/// list in `NAMDEX_DESIGNS` (`cg,fg,hybrid,learned`). The engine-parity
/// harness pins the original three so its golden digest predates — and
/// stays independent of — the learned design.
pub fn designs() -> Vec<DesignKind> {
    let Ok(list) = std::env::var("NAMDEX_DESIGNS") else {
        return DESIGNS.to_vec();
    };
    let picked: Vec<DesignKind> = list
        .split(',')
        .filter_map(|s| match s.trim() {
            "cg" => Some(DesignKind::Cg),
            "fg" => Some(DesignKind::Fg),
            "hybrid" => Some(DesignKind::Hybrid),
            "learned" => Some(DesignKind::Learned),
            _ => None,
        })
        .collect();
    assert!(
        !picked.is_empty(),
        "NAMDEX_DESIGNS selects no known design: {list:?}"
    );
    picked
}

/// Whether quick mode is on (`NAMDEX_QUICK=1`).
pub fn quick() -> bool {
    std::env::var("NAMDEX_QUICK").is_ok_and(|v| v == "1")
}

/// Loaded records for sweep figures.
pub fn num_keys() -> u64 {
    if quick() {
        100_000
    } else {
        1_000_000
    }
}

/// Client counts swept (the paper's x-axis is 0–240).
pub fn clients_sweep() -> Vec<usize> {
    if quick() {
        vec![20, 120, 240]
    } else {
        vec![20, 60, 120, 180, 240]
    }
}

/// The four workload panels of Figs. 7/8/9/13/14.
pub fn panels() -> Vec<(&'static str, Workload)> {
    vec![
        ("point", Workload::a()),
        ("range_sel0.001", Workload::b(0.001)),
        ("range_sel0.01", Workload::b(0.01)),
        ("range_sel0.1", Workload::b(0.1)),
    ]
}

/// One measured sweep cell.
#[derive(Clone, Debug)]
pub struct SweepRow {
    /// Design label.
    pub design: String,
    /// Panel name (see [`panels`]).
    pub panel: String,
    /// Closed-loop clients.
    pub clients: usize,
    /// Operations/second.
    pub throughput: f64,
    /// Median latency, nanoseconds.
    pub p50_ns: u64,
    /// 99th-percentile latency, nanoseconds.
    pub p99_ns: u64,
    /// Mean latency, nanoseconds.
    pub mean_ns: f64,
    /// Wire bandwidth used, GB/s.
    pub wire_gbps: f64,
    /// Aggregate wire capacity, GB/s.
    pub max_bw_gbps: f64,
    /// Operations aborted inside the measurement window (retries
    /// exhausted or client killed mid-operation; 0 on fault-free runs).
    pub aborts: u64,
}

fn cache_path(dist: DataDist) -> PathBuf {
    let tag = match dist {
        DataDist::Uniform => "uniform",
        DataDist::Skewed => "skew",
    };
    // Cached sweeps are keyed by the client-cache setting too, so a
    // `--cache-capacity` run never reuses (or clobbers) uncached rows.
    let cache_tag = match cli::parse_args().cache_capacity {
        None => String::new(),
        Some(cap) => format!("_cache{cap}"),
    };
    results_dir().join(format!("sweep_{tag}_{}keys{cache_tag}.csv", num_keys()))
}

fn save(path: &Path, rows: &[SweepRow]) {
    let csv_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.design.clone(),
                r.panel.clone(),
                r.clients.to_string(),
                format!("{:.1}", r.throughput),
                r.p50_ns.to_string(),
                r.p99_ns.to_string(),
                format!("{:.1}", r.mean_ns),
                format!("{:.4}", r.wire_gbps),
                format!("{:.4}", r.max_bw_gbps),
                r.aborts.to_string(),
            ]
        })
        .collect();
    write_csv(
        path,
        &[
            "design",
            "panel",
            "clients",
            "throughput",
            "p50_ns",
            "p99_ns",
            "mean_ns",
            "wire_gbps",
            "max_bw_gbps",
            "aborts",
        ],
        &csv_rows,
    )
    .expect("write sweep cache");
}

fn load(path: &Path) -> Option<Vec<SweepRow>> {
    let text = std::fs::read_to_string(path).ok()?;
    let mut rows = Vec::new();
    for line in text.lines().skip(1) {
        let f: Vec<&str> = line.split(',').collect();
        if f.len() != 10 {
            return None;
        }
        rows.push(SweepRow {
            design: f[0].to_string(),
            panel: f[1].to_string(),
            clients: f[2].parse().ok()?,
            throughput: f[3].parse().ok()?,
            p50_ns: f[4].parse().ok()?,
            p99_ns: f[5].parse().ok()?,
            mean_ns: f[6].parse().ok()?,
            wire_gbps: f[7].parse().ok()?,
            max_bw_gbps: f[8].parse().ok()?,
            aborts: f[9].parse().ok()?,
        });
    }
    if rows.is_empty() {
        None
    } else {
        Some(rows)
    }
}

/// Run (or load from cache) the full sweep for one data distribution.
/// Only rows for [`designs`] are returned; a cached sweep missing a
/// requested design is re-measured in full.
pub fn full_sweep(dist: DataDist) -> Vec<SweepRow> {
    let want = designs();
    let path = cache_path(dist);
    if let Some(rows) = load(&path) {
        if want
            .iter()
            .all(|d| rows.iter().any(|r| r.design == d.label()))
        {
            eprintln!("[sweep] reusing cached {}", path.display());
            return rows
                .into_iter()
                .filter(|r| want.iter().any(|d| r.design == d.label()))
                .collect();
        }
        eprintln!(
            "[sweep] cached {} lacks a requested design; re-measuring",
            path.display()
        );
    }
    // Enumerate every cell up front, then farm them through the
    // parallel sweep runner ([`crate::parallel`]): cells are whole
    // independent simulations, and `run_cells` merges outputs in cell
    // order, so the CSV is byte-identical for any NAMDEX_SWEEP_THREADS.
    let mut cells: Vec<(&'static str, Workload, SimDur, DesignKind, usize)> = Vec::new();
    for (panel, workload) in panels() {
        // Longer windows for longer operations: a sel=0.1 scan moves
        // thousands of pages and takes tens of virtual milliseconds
        // under load.
        let measure = match panel {
            "range_sel0.1" => SimDur::from_millis(300),
            "range_sel0.01" => SimDur::from_millis(60),
            _ => SimDur::from_millis(25),
        };
        for &design in &want {
            for clients in clients_sweep() {
                cells.push((panel, workload, measure, design, clients));
            }
        }
    }
    let rows =
        crate::parallel::run_cells(&cells, |&(panel, workload, measure, design, clients)| {
            let cfg = ExperimentConfig {
                design,
                workload,
                num_keys: num_keys(),
                clients,
                data_dist: dist,
                warmup: SimDur::from_millis(3),
                measure,
                seed: cli::parse_args().seed_or_default(),
                cache_capacity: cli::parse_args().cache_capacity,
                ..ExperimentConfig::default()
            };
            let r = run_experiment(&cfg);
            eprintln!(
                "[sweep {dist:?}] {panel} {} clients={clients}: {:.0} ops/s",
                design.label(),
                r.throughput
            );
            SweepRow {
                design: design.label().to_string(),
                panel: panel.to_string(),
                clients,
                throughput: r.throughput,
                p50_ns: r.latency.percentile(0.5),
                p99_ns: r.latency.percentile(0.99),
                mean_ns: r.latency.mean(),
                wire_gbps: r.wire_gbps,
                max_bw_gbps: r.max_bandwidth_gbps,
                aborts: r.aborts,
            }
        });
    save(&path, &rows);
    rows
}

/// Pull one panel's series (`design -> [(clients, metric)]`) out of a
/// sweep.
pub fn panel_series(
    rows: &[SweepRow],
    panel: &str,
    metric: impl Fn(&SweepRow) -> f64,
) -> Vec<(String, Vec<(f64, f64)>)> {
    DESIGNS
        .iter()
        .filter(|d| rows.iter().any(|r| r.design == d.label()))
        .map(|d| {
            let pts: Vec<(f64, f64)> = rows
                .iter()
                .filter(|r| r.panel == panel && r.design == d.label())
                .map(|r| (r.clients as f64, metric(r)))
                .collect();
            (d.label().to_string(), pts)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(design: &str, panel: &str, clients: usize, tput: f64) -> SweepRow {
        SweepRow {
            design: design.into(),
            panel: panel.into(),
            clients,
            throughput: tput,
            p50_ns: 1_000,
            p99_ns: 9_000,
            mean_ns: 2_000.0,
            wire_gbps: 1.5,
            max_bw_gbps: 25.8,
            aborts: 3,
        }
    }

    #[test]
    fn cache_round_trip() {
        let dir = std::env::temp_dir().join("namdex_figures_test");
        let path = dir.join("sweep.csv");
        let rows = vec![
            row("Coarse-Grained", "point", 20, 1_000_000.0),
            row("Fine-Grained", "range_sel0.01", 240, 50_000.5),
        ];
        save(&path, &rows);
        let loaded = load(&path).expect("cache must load");
        assert_eq!(loaded.len(), 2);
        assert_eq!(loaded[0].design, "Coarse-Grained");
        assert_eq!(loaded[0].clients, 20);
        assert!((loaded[1].throughput - 50_000.5).abs() < 0.01);
        assert_eq!(loaded[1].p99_ns, 9_000);
        assert_eq!(loaded[1].aborts, 3);
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn load_rejects_malformed() {
        let dir = std::env::temp_dir().join("namdex_figures_bad");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.csv");
        std::fs::write(&path, "header\nnot,enough,fields\n").unwrap();
        assert!(load(&path).is_none(), "malformed cache must be re-measured");
        assert!(load(&dir.join("missing.csv")).is_none());
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn panel_series_filters_and_orders() {
        let rows = vec![
            row("Coarse-Grained", "point", 20, 10.0),
            row("Coarse-Grained", "point", 240, 20.0),
            row("Fine-Grained", "point", 20, 5.0),
            row("Fine-Grained", "range_sel0.01", 20, 99.0), // other panel
            row("Hybrid", "point", 20, 7.0),
        ];
        let series = panel_series(&rows, "point", |r| r.throughput);
        assert_eq!(series.len(), 3, "one series per design");
        let cg = &series[0];
        assert_eq!(cg.0, "Coarse-Grained");
        assert_eq!(cg.1, vec![(20.0, 10.0), (240.0, 20.0)]);
        let fg = &series[1];
        assert_eq!(fg.1, vec![(20.0, 5.0)], "other panels excluded");
    }

    #[test]
    fn panels_cover_the_figure_grid() {
        let p = panels();
        assert_eq!(p.len(), 4);
        assert_eq!(p[0].0, "point");
        for (name, w) in &p[1..] {
            assert!(name.starts_with("range_sel"));
            assert!(w.range_frac == 1.0);
        }
    }
}
