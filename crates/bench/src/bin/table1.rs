//! Table 1: the scalability model's symbols with the paper's example
//! values.

use analysis::{table1, ModelParams};

fn main() {
    println!("Table 1: Overview of Symbols (paper's example column)\n");
    for (symbol, value) in table1(ModelParams::default()) {
        println!("  {symbol:<38} {value}");
    }
    println!("\nFormulas: M = P/(3K); L = D/M; H = ceil(log_M(...)).");
    if let Some(summary) = bench::trajectory::process_events_summary() {
        println!("{summary}");
    }
}
