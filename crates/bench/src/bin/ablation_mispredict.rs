//! Learned-design ablation: model mispredict rate vs. insert rate.
//!
//! The learned design's one-RTT lookups hold only while the model's
//! leaf table matches the tree; every split made after training turns
//! the affected prediction into a B-link rightward chase (a mispredict)
//! until drift-triggered retraining refreshes the model. This sweep
//! raises the insert fraction from read-only to insert-heavy at several
//! client counts and records the mispredict rate, retrain count, and
//! throughput — the data behind the retrain-threshold default.

use bench::plot::{ascii_chart, results_dir, write_csv};
use bench::{run_experiment, DesignKind, ExperimentConfig};
use simnet::SimDur;
use ycsb::{InsertPattern, RequestDist, Workload};

/// Insert fractions swept (x-axis). 0.0 is the control: a static tree
/// must hold a 0% mispredict rate.
const INSERT_FRACS: [f64; 5] = [0.0, 0.02, 0.05, 0.2, 0.5];

/// This sweep pins its own tree scale instead of `figures::num_keys()`:
/// drift is driven by *splits per loaded leaf*, so a measurement window
/// has to push each leaf toward overflow. Small pages over a 100k-key
/// tree give ~10 entries of headroom per leaf; at the paper-scale 1M
/// keys and 1KB pages the same window leaves every leaf unsplit and the
/// whole figure reads 0%.
const ABLATION_KEYS: u64 = 100_000;
const ABLATION_PAGE: usize = 256;

fn mix(insert_frac: f64) -> Workload {
    Workload {
        point_frac: 1.0 - insert_frac,
        range_frac: 0.0,
        insert_frac,
        selectivity: 0.0,
        dist: RequestDist::Uniform,
        insert_pattern: InsertPattern::Scattered,
    }
}

fn main() {
    let quick = bench::figures::quick();
    let client_counts: &[usize] = if quick { &[40] } else { &[40, 160] };
    let mut csv = Vec::new();
    let mut series = Vec::new();
    for &clients in client_counts {
        let mut pts = Vec::new();
        for frac in INSERT_FRACS {
            let cfg = ExperimentConfig {
                design: DesignKind::Learned,
                workload: mix(frac),
                num_keys: ABLATION_KEYS,
                page_size: ABLATION_PAGE,
                clients,
                warmup: SimDur::from_millis(3),
                measure: SimDur::from_millis(25),
                seed: bench::parse_args().seed_or_default(),
                ..ExperimentConfig::default()
            };
            let r = run_experiment(&cfg);
            let l = r.learned.expect("learned design reports model stats");
            let rate = if l.predictions > 0 {
                l.mispredicts as f64 / l.predictions as f64
            } else {
                0.0
            };
            eprintln!(
                "[ablation_mispredict] insert={frac:.2} clients={clients}: \
                 {:.2}% mispredict, {} retrains, {:.0} ops/s",
                rate * 100.0,
                l.retrains,
                r.throughput
            );
            pts.push((frac * 100.0, rate * 100.0));
            csv.push(vec![
                format!("{frac:.2}"),
                clients.to_string(),
                format!("{:.1}", r.throughput),
                l.predictions.to_string(),
                l.mispredicts.to_string(),
                format!("{:.5}", rate),
                l.retrains.to_string(),
                l.fallbacks.to_string(),
                l.epoch_flushes.to_string(),
            ]);
        }
        series.push((format!("{clients} clients"), pts));
    }
    println!(
        "{}",
        ascii_chart(
            "Ablation: Learned-Index Mispredict Rate vs. Insert Rate",
            "insert %",
            "mispredict %",
            &series,
            false,
        )
    );
    let path = results_dir().join("ablation_mispredict.csv");
    write_csv(
        &path,
        &[
            "insert_frac",
            "clients",
            "throughput",
            "predictions",
            "mispredicts",
            "mispredict_rate",
            "retrains",
            "fallbacks",
            "epoch_flushes",
        ],
        &csv,
    )
    .expect("csv");
    println!("wrote {}", path.display());
    if let Some(summary) = bench::trajectory::process_events_summary() {
        println!("{summary}");
    }
}
