//! Appendix A.4: opportunities of client-side caching — fine-grained
//! point lookups with and without an inner-node cache (read-only
//! workload, so no invalidation is needed).
//!
//! Per-client `ClientCache` hit/miss counters are surfaced through the
//! telemetry [`Registry`] (`cache.hits`, `cache.misses`, and the
//! `cache.hit_ratio` gauge), and the hit ratio lands as a column of
//! `results/a04_caching.csv`.

use bench::figures::num_keys;
use bench::plot::{results_dir, write_csv};
use blink::PageLayout;
use namdex_core::{cache::fg_lookup_cached, ClientCache, FgConfig, FineGrained};
use rdma_sim::{Cluster, ClusterSpec, Endpoint};
use simnet::rng::DetRng;
use simnet::stats::Counter;
use simnet::{Sim, SimDur, SimTime};
use std::rc::Rc;
use telemetry::Registry;

/// Throughput of one configuration, plus the run's registry (carrying
/// the aggregated cache counters).
fn run(cached: bool, clients: usize, keys: u64) -> (f64, Registry) {
    let sim = Sim::new();
    let cluster = Cluster::new(&sim, ClusterSpec::default());
    let idx = FineGrained::build(
        &cluster,
        FgConfig {
            layout: PageLayout::default(),
            fill: 0.7,
            head_stride: 8,
        },
        (0..keys).map(|i| (i * 8, i)),
    );
    let warmup = SimTime::from_millis(3);
    let end = warmup + SimDur::from_millis(25);
    let ops = Rc::new(Counter::new());
    let mut caches = Vec::new();
    for c in 0..clients {
        let idx = idx.clone();
        let ep = Endpoint::new(&cluster);
        let sim_c = sim.clone();
        let ops = ops.clone();
        let cache = Rc::new(ClientCache::new(0));
        caches.push(cache.clone());
        let mut rng = DetRng::seed_from_u64(42 ^ c as u64);
        sim.spawn(async move {
            loop {
                let key = rng.next_u64_below(keys) * 8;
                let t0 = sim_c.now();
                if cached {
                    fg_lookup_cached(&idx, &ep, &cache, key)
                        .await
                        .expect("fault-free run");
                } else {
                    idx.lookup(&ep, key).await.expect("fault-free run");
                }
                if t0 >= warmup && sim_c.now() <= end {
                    ops.inc();
                }
            }
        });
    }
    sim.run_until(end);
    let registry = Registry::new();
    for cache in &caches {
        registry.add("cache.hits", cache.hits());
        registry.add("cache.misses", cache.misses());
    }
    let hits = registry.counter("cache.hits").get();
    let total = hits + registry.counter("cache.misses").get();
    registry.set_gauge(
        "cache.hit_ratio",
        if total > 0 {
            hits as f64 / total as f64
        } else {
            0.0
        },
    );
    (ops.get() as f64 / 0.025, registry)
}

fn main() {
    println!("Appendix A.4: Client-side caching of upper levels (FG, point queries)\n");
    let keys = num_keys();
    let mut csv = Vec::new();
    println!(
        "{:>8} {:>16} {:>16} {:>8} {:>10}",
        "clients", "uncached", "cached", "speedup", "hit ratio"
    );
    for clients in [20usize, 80, 160, 240] {
        let (base, _) = run(false, clients, keys);
        let (fast, registry) = run(true, clients, keys);
        let hit_ratio = registry.gauge("cache.hit_ratio").get();
        println!(
            "{clients:>8} {base:>16.0} {fast:>16.0} {:>7.1}x {hit_ratio:>10.4}",
            fast / base.max(1.0)
        );
        csv.push(vec![
            clients.to_string(),
            format!("{base:.1}"),
            format!("{fast:.1}"),
            format!("{hit_ratio:.4}"),
        ]);
    }
    let path = results_dir().join("a04_caching.csv");
    write_csv(
        &path,
        &["clients", "uncached_tput", "cached_tput", "cache_hit_ratio"],
        &csv,
    )
    .expect("csv");
    println!("\nwrote {}", path.display());
}
