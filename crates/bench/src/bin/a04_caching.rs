//! Appendix A.4: opportunities of client-side caching — point lookups
//! with and without the engine's cache layer, for both pointer-resolving
//! designs (read-mostly workload, concurrent splits kept out so the
//! numbers isolate the cache effect).
//!
//! Caching runs through the *integrated* operation path: the same
//! `Design::lookup` every other benchmark uses, with the index built
//! under `cache_capacity` so the engine's `Cached` node source serves
//! hits (FG: inner pages; Hybrid: leaf routes). Aggregate hit/miss
//! counters come from `Design::cache_stats()` and are surfaced through
//! the telemetry [`Registry`] (`cache.hits`, `cache.misses`, and the
//! `cache.hit_ratio` gauge); the hit ratio lands as a column of
//! `results/a04_caching.csv`.

use bench::figures::num_keys;
use bench::plot::{results_dir, write_csv};
use blink::PageLayout;
use nam::{NamCluster, PartitionMap};
use namdex_core::{Design, FgConfig, FineGrained, Hybrid};
use rdma_sim::{ClusterSpec, Endpoint};
use simnet::rng::DetRng;
use simnet::stats::Counter;
use simnet::{Sim, SimDur, SimTime};
use std::rc::Rc;
use telemetry::Registry;

fn build(design: &str, nam: &NamCluster, keys: u64, cached: bool) -> Design {
    let cfg = FgConfig {
        layout: PageLayout::default(),
        fill: 0.7,
        head_stride: 8,
        cache_capacity: if cached { Some(0) } else { None },
    };
    let items = (0..keys).map(|i| (i * 8, i));
    match design {
        "fg" => Design::Fg(FineGrained::build(&nam.rdma, cfg, items)),
        "hybrid" => {
            let partition = PartitionMap::range_uniform(nam.num_servers(), keys * 8);
            Design::Hybrid(Hybrid::build(nam, cfg, partition, items))
        }
        _ => unreachable!("designs are fg|hybrid"),
    }
}

/// Throughput of one configuration, plus the run's registry (carrying
/// the aggregated cache counters).
fn run(design: &str, cached: bool, clients: usize, keys: u64) -> (f64, Registry) {
    let sim = Sim::new();
    let nam = NamCluster::new(&sim, ClusterSpec::default());
    let idx = build(design, &nam, keys, cached);
    let warmup = SimTime::from_millis(3);
    let end = warmup + SimDur::from_millis(25);
    let ops = Rc::new(Counter::new());
    for c in 0..clients {
        let idx = idx.clone();
        let ep = Endpoint::new(&nam.rdma);
        let sim_c = sim.clone();
        let ops = ops.clone();
        let mut rng = DetRng::seed_from_u64(42 ^ c as u64);
        sim.spawn(async move {
            loop {
                let key = rng.next_u64_below(keys) * 8;
                let t0 = sim_c.now();
                idx.lookup(&ep, key).await.expect("fault-free run");
                if t0 >= warmup && sim_c.now() <= end {
                    ops.inc();
                }
            }
        });
    }
    sim.run_until(end);
    let registry = Registry::new();
    let stats = idx.cache_stats().unwrap_or_default();
    registry.counter("cache.hits").add(stats.hits);
    registry.counter("cache.misses").add(stats.misses);
    registry.set_gauge("cache.hit_ratio", stats.hit_ratio());
    (ops.get() as f64 / 0.025, registry)
}

fn main() {
    println!("Appendix A.4: Client-side caching through the engine (point queries)\n");
    let keys = num_keys();
    let mut csv = Vec::new();
    for design in ["fg", "hybrid"] {
        println!(
            "{design}\n{:>8} {:>16} {:>16} {:>8} {:>10}",
            "clients", "uncached", "cached", "speedup", "hit ratio"
        );
        for clients in [20usize, 80, 160, 240] {
            let (base, _) = run(design, false, clients, keys);
            let (fast, registry) = run(design, true, clients, keys);
            let hit_ratio = registry.gauge("cache.hit_ratio").get();
            println!(
                "{clients:>8} {base:>16.0} {fast:>16.0} {:>7.1}x {hit_ratio:>10.4}",
                fast / base.max(1.0)
            );
            csv.push(vec![
                design.to_string(),
                clients.to_string(),
                format!("{base:.1}"),
                format!("{fast:.1}"),
                format!("{hit_ratio:.4}"),
            ]);
        }
        println!();
    }
    let path = results_dir().join("a04_caching.csv");
    write_csv(
        &path,
        &[
            "design",
            "clients",
            "uncached_tput",
            "cached_tput",
            "cache_hit_ratio",
        ],
        &csv,
    )
    .expect("csv");
    println!("wrote {}", path.display());
    if let Some(summary) = bench::trajectory::process_events_summary() {
        println!("{summary}");
    }
}
