//! Extension: behaviour under injected faults.
//!
//! The paper assumes a fault-free cluster; this experiment measures how
//! the three designs ride out a deterministic fault schedule — a client
//! killed at the worst possible instant (between its lock CAS and its
//! unlock FAA), a memory-server crash/restart window, a burst of client
//! kills, and a link-degradation spike — and reports per-millisecond
//! throughput / abort-rate timelines next to a fault-free baseline of
//! the same seed.
//!
//! Each design additionally runs the same crash schedule under
//! `Durability::Wal` with a write-bearing workload: the crashed server
//! truly loses RAM and recovers from checkpoint + log replay, and every
//! completed cycle's measured RTO lands in
//! `ext_fault_tolerance_recovery.csv` (`recovery_time_us` per crash).
//!
//! `--seed N` changes the workload; `--fault-seed N` replaces the
//! scripted schedule with a randomized plan drawn from that seed
//! (`chaos::FaultPlan::randomized`). Same seeds, same timelines — the
//! whole run is virtual-time deterministic.

use bench::figures::{quick, DESIGNS};
use bench::plot::{ascii_chart, results_dir, write_csv, Series};
use bench::{run_experiment, DesignKind, ExperimentConfig, ExperimentResult};
use chaos::{FaultPlan, LinkDegrade, RandomProfile};
use rdma_sim::{ClusterSpec, Durability};
use simnet::{SimDur, SimTime};
use ycsb::Workload;

/// The scripted schedule: one fault of every class, spread over the
/// 30ms run so each recovery is visible as its own timeline dip.
fn scripted_plan(clients: u64) -> FaultPlan {
    let ms = |m: u64| SimTime::from_millis(m);
    FaultPlan::new()
        // The worst instant for lock-based protocols: the victim dies
        // holding a leaf lock; a contender must break the lease.
        .kill_on_lock_acquire(ms(4), 1 % clients)
        .revive_client(ms(6), 1 % clients)
        // A full memory-server outage and recovery.
        .crash_server(ms(8), 1)
        .restart_server(ms(12), 1)
        // A burst of client kills.
        .kill_client(ms(16), 2 % clients)
        .kill_client(ms(16), 3 % clients)
        .revive_client(ms(18), 2 % clients)
        .revive_client(ms(18), 3 % clients)
        // A lossy, slow, narrow link for 4ms.
        .degrade_link(
            ms(22),
            0,
            LinkDegrade {
                drop_chance: 0.05,
                extra_delay: SimDur::from_micros(5),
                bandwidth_factor: 0.6,
            },
        )
        .restore_link(ms(26), 0)
}

fn config(design: DesignKind, seed: u64, plan: Option<FaultPlan>) -> ExperimentConfig {
    ExperimentConfig {
        design,
        workload: Workload::a(),
        num_keys: if quick() { 50_000 } else { 200_000 },
        clients: 24,
        warmup: SimDur::from_millis(2),
        measure: SimDur::from_millis(28),
        seed,
        fault_plan: plan,
        timeline_window: SimDur::from_millis(1),
        ..ExperimentConfig::default()
    }
}

/// The durable variant of the same faulted run: `Durability::Wal`, so
/// the server crash genuinely wipes RAM and the restart pays boot +
/// checkpoint/log replay — the measured RTO. Workload D (50% inserts)
/// replaces the read-only A so the log actually accumulates records.
fn config_wal(design: DesignKind, seed: u64, plan: FaultPlan) -> ExperimentConfig {
    ExperimentConfig {
        workload: Workload::d(),
        spec: Some(ClusterSpec {
            durability: Durability::Wal,
            ..ClusterSpec::with_memory_servers(4)
        }),
        ..config(design, seed, Some(plan))
    }
}

fn timeline_fingerprint(r: &ExperimentResult) -> Vec<(u64, u64)> {
    r.timeline.iter().map(|p| (p.ops, p.aborts)).collect()
}

fn main() {
    let args = bench::parse_args();
    let seed = args.seed_or_default();
    let clients = 24u64;
    let plan = match args.fault_seed {
        Some(fs) => FaultPlan::randomized(
            fs,
            4,
            clients,
            RandomProfile {
                horizon: SimDur::from_millis(30),
                ..RandomProfile::default()
            },
        ),
        None => scripted_plan(clients),
    };
    println!(
        "Extension: fault tolerance (workload A, seed {seed}, {} fault events)\n",
        plan.events().len()
    );

    println!(
        "{:>16} {:>14} {:>14} {:>8} {:>8} {:>12} {:>10} {:>12}",
        "design",
        "ops/s (clean)",
        "ops/s (fault)",
        "aborts",
        "abort%",
        "unreachable",
        "cancelled",
        "RTO (us)"
    );
    let mut csv = Vec::new();
    let mut recovery_csv = Vec::new();
    let mut tput_series: Vec<Series> = Vec::new();
    let mut abort_series: Vec<Series> = Vec::new();
    for design in DESIGNS {
        let clean = run_experiment(&config(design, seed, None));
        let faulted = run_experiment(&config(design, seed, Some(plan.clone())));
        // The durable run: same crash schedule, Wal mode, write-bearing
        // workload. Its recovery records carry the measured RTO.
        let durable = run_experiment(&config_wal(design, seed, plan.clone()));
        for (i, r) in durable.recoveries.iter().enumerate() {
            recovery_csv.push(vec![
                design.label().to_string(),
                i.to_string(),
                r.server.to_string(),
                format!("{:.1}", r.recovery_time().as_nanos() as f64 / 1_000.0),
                r.replay_bytes.to_string(),
                r.records_replayed.to_string(),
            ]);
        }
        // Same seed, same plan => byte-identical run (the determinism
        // gate's promise, restated here as a cheap self-check).
        let again = run_experiment(&config(design, seed, Some(plan.clone())));
        assert_eq!(
            timeline_fingerprint(&faulted),
            timeline_fingerprint(&again),
            "{design:?}: same seed + same plan must replay identically"
        );

        let total = faulted.ops + faulted.aborts;
        let rto_us = durable
            .recoveries
            .first()
            .map(|r| r.recovery_time().as_nanos() as f64 / 1_000.0)
            .unwrap_or(f64::NAN);
        println!(
            "{:>16} {:>14.0} {:>14.0} {:>8} {:>7.2}% {:>12} {:>10} {:>12.1}",
            design.label(),
            clean.throughput,
            faulted.throughput,
            faulted.aborts,
            faulted.aborts as f64 / total.max(1) as f64 * 100.0,
            faulted.fault_stats.verbs_unreachable,
            faulted.fault_stats.verbs_cancelled,
            rto_us,
        );
        for p in &faulted.timeline {
            csv.push(vec![
                design.label().to_string(),
                format!("{:.1}", p.t_ms),
                p.ops.to_string(),
                p.aborts.to_string(),
                format!("{:.2}", p.mean_lat_ns / 1_000.0),
            ]);
        }
        tput_series.push((
            design.label().to_string(),
            faulted
                .timeline
                .iter()
                .map(|p| (p.t_ms, p.ops as f64))
                .collect(),
        ));
        abort_series.push((
            design.label().to_string(),
            faulted
                .timeline
                .iter()
                .map(|p| (p.t_ms, p.aborts as f64))
                .collect(),
        ));
    }

    println!(
        "{}",
        ascii_chart(
            "ops completed per 1ms window under the fault schedule",
            "virtual time (ms)",
            "ops",
            &tput_series,
            false,
        )
    );
    println!(
        "{}",
        ascii_chart(
            "ops aborted per 1ms window (retries exhausted / client killed)",
            "virtual time (ms)",
            "aborts",
            &abort_series,
            false,
        )
    );

    let path = results_dir().join("ext_fault_tolerance.csv");
    write_csv(
        &path,
        &["design", "t_ms", "ops", "aborts", "mean_lat_us"],
        &csv,
    )
    .expect("csv");
    println!("wrote {}", path.display());

    // Per-crash recovery records from the durable (Wal) runs: one row
    // per completed crash/recovery cycle.
    let path = results_dir().join("ext_fault_tolerance_recovery.csv");
    write_csv(
        &path,
        &[
            "design",
            "crash",
            "server",
            "recovery_time_us",
            "replay_bytes",
            "records_replayed",
        ],
        &recovery_csv,
    )
    .expect("recovery csv");
    println!("wrote {}", path.display());
    if let Some(summary) = bench::trajectory::process_events_summary() {
        println!("{summary}");
    }
}
