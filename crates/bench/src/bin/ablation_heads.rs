//! Ablation: head-node prefetch stride (§4.3).
//!
//! Sweeps `head_stride` for fine-grained range scans at several
//! selectivities. Stride 0 disables head nodes entirely (every leaf is
//! a fresh round trip); larger strides prefetch bigger groups per round
//! trip but over-read more at scan tails.

use bench::figures::num_keys;
use bench::plot::{results_dir, write_csv};
use bench::{run_experiment, DesignKind, ExperimentConfig};
use simnet::SimDur;
use ycsb::Workload;

fn main() {
    println!("Ablation: head-node stride (fine-grained range scans, 120 clients)\n");
    println!(
        "{:>12} {:>12} {:>12} {:>12} {:>12}",
        "selectivity", "stride 0", "stride 4", "stride 8", "stride 16"
    );
    let mut csv = Vec::new();
    for sel in [0.001, 0.01] {
        let mut row = format!("{sel:>12}");
        for stride in [0usize, 4, 8, 16] {
            let cfg = ExperimentConfig {
                design: DesignKind::Fg,
                workload: Workload::b(sel),
                num_keys: num_keys(),
                clients: 120,
                head_stride: stride,
                warmup: SimDur::from_millis(3),
                measure: SimDur::from_millis(60),
                seed: bench::cli::parse_args().seed_or_default(),
                ..ExperimentConfig::default()
            };
            let r = run_experiment(&cfg);
            row.push_str(&format!(" {:>12.0}", r.throughput));
            csv.push(vec![
                sel.to_string(),
                stride.to_string(),
                format!("{:.1}", r.throughput),
                r.latency.percentile(0.5).to_string(),
                r.aborts.to_string(),
            ]);
        }
        println!("{row}");
    }
    let path = results_dir().join("ablation_heads.csv");
    write_csv(
        &path,
        &["selectivity", "stride", "throughput", "p50_ns", "aborts"],
        &csv,
    )
    .expect("csv");
    println!("\nwrote {}", path.display());
    if let Some(summary) = bench::trajectory::process_events_summary() {
        println!("{summary}");
    }
}
