//! Ablation: coarse-grained partitioning scheme — range vs hash (§2.2,
//! Table 2, Figure 3).
//!
//! Hash partitioning balances point queries perfectly but must
//! broadcast every range query to all servers (the `H·P·S` term of
//! Table 2), so range-partitioned CG should win on ranges and the gap
//! should grow with the number of servers.

use bench::figures::num_keys;
use bench::plot::{results_dir, write_csv};
use bench::{run_experiment, CgPartition, DesignKind, ExperimentConfig};
use simnet::SimDur;
use ycsb::Workload;

fn main() {
    println!("Ablation: CG partitioning — range vs hash (120 clients, uniform)\n");
    let mut csv = Vec::new();
    for (panel, workload, measure_ms) in [
        ("point", Workload::a(), 25u64),
        ("range_sel0.001", Workload::b(0.001), 25),
        ("range_sel0.01", Workload::b(0.01), 60),
    ] {
        let mut vals = Vec::new();
        for scheme in [CgPartition::Range, CgPartition::Hash] {
            let cfg = ExperimentConfig {
                design: DesignKind::Cg,
                cg_partition: scheme,
                workload,
                num_keys: num_keys(),
                clients: 120,
                warmup: SimDur::from_millis(3),
                measure: SimDur::from_millis(measure_ms),
                seed: bench::cli::parse_args().seed_or_default(),
                ..ExperimentConfig::default()
            };
            let r = run_experiment(&cfg);
            vals.push(r.throughput);
            csv.push(vec![
                format!("{scheme:?}"),
                panel.to_string(),
                format!("{:.1}", r.throughput),
                r.aborts.to_string(),
            ]);
        }
        println!(
            "  {panel:<16} range={:>10.0}  hash={:>10.0}  (range/hash = {:.2}x)",
            vals[0],
            vals[1],
            vals[0] / vals[1].max(1.0)
        );
    }
    let path = results_dir().join("ablation_partitioning.csv");
    write_csv(&path, &["scheme", "panel", "throughput", "aborts"], &csv).expect("csv");
    println!("\nwrote {}", path.display());
    if let Some(summary) = bench::trajectory::process_events_summary() {
        println!("{summary}");
    }
}
