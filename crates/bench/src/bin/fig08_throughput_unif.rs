//! Figure 8: throughput for Workloads A and B under attribute-value
//! uniform data, 0–240 clients, four panels (point, range sel
//! 0.001/0.01/0.1).

use bench::figures::{full_sweep, panel_series, panels};
use bench::plot::{ascii_chart, results_dir, write_csv};
use bench::trajectory::{append_bench_json, civil_date, sample_designs};
use bench::DataDist;

fn main() {
    let rows = full_sweep(DataDist::Uniform);
    for (panel, _) in panels() {
        let series = panel_series(&rows, panel, |r| r.throughput);
        println!(
            "{}",
            ascii_chart(
                &format!("Figure 8 ({panel}): Throughput, Uniform Data"),
                "clients",
                "ops/s",
                &series,
                true,
            )
        );
    }
    let csv: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.design.clone(),
                r.panel.clone(),
                r.clients.to_string(),
                format!("{:.1}", r.throughput),
                r.aborts.to_string(),
            ]
        })
        .collect();
    let path = results_dir().join("fig08_throughput_unif.csv");
    write_csv(
        &path,
        &["design", "panel", "clients", "throughput", "aborts"],
        &csv,
    )
    .expect("csv");
    println!("wrote {}", path.display());

    // Seed-pinned perf-trajectory baseline (ROADMAP item 3): ops/sec is
    // deterministic, events/sec is this machine's event-loop raw speed.
    // The wall-clock reads below are reporting-only; they never feed
    // back into simulation state.
    let seed = bench::parse_args().seed_or_default();
    #[allow(clippy::disallowed_methods, clippy::disallowed_types)]
    let epoch = std::time::Instant::now(); // xtask: allow(wall-clock-instant)
    let points = sample_designs(seed, || epoch.elapsed().as_secs_f64());
    #[allow(clippy::disallowed_methods, clippy::disallowed_types)]
    let date = civil_date(
        std::time::SystemTime::now() // xtask: allow(wall-clock-system-time)
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0),
    );
    let json = results_dir().join("BENCH_fig08.json");
    append_bench_json(&json, "fig08", seed, &date, &points).expect("bench json");
    println!("appended {date} entry to {}", json.display());
    if let Some(summary) = bench::trajectory::process_events_summary() {
        println!("{summary}");
    }
}
