//! Table 2: the three-step scalability analysis, evaluated with the
//! paper's example parameters.

use analysis::{Dist, ModelParams, Query, Scheme};
use bench::plot::format_si;

fn main() {
    let p = ModelParams::default();
    let z = 10.0;
    let s = 0.001;
    println!(
        "Table 2: Scalability Analysis (Theoretical), S={}, sel={s}, z={z}\n",
        p.servers
    );

    println!("Step (1): available bandwidth (GB/s)");
    for (name, scheme) in [
        ("Fine-grained (1-sided)", Scheme::FineGrained),
        ("Coarse-grained Range (2-sided)", Scheme::CgRange),
        ("Coarse-grained Hash (2-sided)", Scheme::CgHash),
    ] {
        println!(
            "  {name:<32} uniform {:>8}   skew {:>8}",
            format_si(p.available_bandwidth(scheme, Dist::Uniform)),
            format_si(p.available_bandwidth(scheme, Dist::Skewed { z })),
        );
    }

    println!("\nStep (2): bandwidth per query (bytes)");
    for (qname, q) in [("Point", Query::Point), ("Range", Query::Range { s })] {
        for (dname, d) in [("Unif", Dist::Uniform), ("Skew", Dist::Skewed { z })] {
            print!("  {qname} ({dname}):");
            for scheme in [Scheme::FineGrained, Scheme::CgRange, Scheme::CgHash] {
                print!(" {:>12}", format_si(p.bytes_per_query(scheme, d, q)));
            }
            println!("   (FG / CG-range / CG-hash)");
        }
    }

    println!("\nStep (3): max throughput (queries/s)");
    for (qname, q) in [("Point", Query::Point), ("Range", Query::Range { s })] {
        for (dname, d) in [("Unif", Dist::Uniform), ("Skew", Dist::Skewed { z })] {
            print!("  {qname} ({dname}):");
            for scheme in [Scheme::FineGrained, Scheme::CgRange, Scheme::CgHash] {
                print!(" {:>12}", format_si(p.max_throughput(scheme, d, q)));
            }
            println!("   (FG / CG-range / CG-hash)");
        }
    }
    if let Some(summary) = bench::trajectory::process_events_summary() {
        println!("{summary}");
    }
}
