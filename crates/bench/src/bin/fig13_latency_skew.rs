//! Figure 13: operation latency for Workloads A and B under skewed
//! data (four panels).

use bench::figures::{full_sweep, panel_series, panels};
use bench::plot::{ascii_chart, results_dir, write_csv};
use bench::DataDist;

fn main() {
    let rows = full_sweep(DataDist::Skewed);
    for (panel, _) in panels() {
        let series = panel_series(&rows, panel, |r| r.p50_ns as f64 / 1e9);
        println!(
            "{}",
            ascii_chart(
                &format!("Figure 13 ({panel}): Latency (p50, seconds), Skewed Data"),
                "clients",
                "latency s",
                &series,
                true,
            )
        );
    }
    let csv: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.design.clone(),
                r.panel.clone(),
                r.clients.to_string(),
                r.p50_ns.to_string(),
                r.p99_ns.to_string(),
                format!("{:.1}", r.mean_ns),
                r.aborts.to_string(),
            ]
        })
        .collect();
    let path = results_dir().join("fig13_latency_skew.csv");
    write_csv(
        &path,
        &[
            "design", "panel", "clients", "p50_ns", "p99_ns", "mean_ns", "aborts",
        ],
        &csv,
    )
    .expect("csv");
    println!("wrote {}", path.display());
    if let Some(summary) = bench::trajectory::process_events_summary() {
        println!("{summary}");
    }
}
