//! Calibration scratchpad: print throughput/latency sweeps for the three
//! designs so the `ClusterSpec` defaults can be tuned to the paper's
//! qualitative shapes. Not part of the figure set.

use bench::{run_experiment, DataDist, DesignKind, ExperimentConfig};
use simnet::SimDur;
use ycsb::Workload;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let num_keys: u64 = if quick { 100_000 } else { 1_000_000 };
    let clients_sweep: &[usize] = if quick {
        &[10, 40, 120]
    } else {
        &[10, 20, 40, 80, 120, 160, 200, 240]
    };

    for (dist, dist_name) in [(DataDist::Uniform, "uniform"), (DataDist::Skewed, "skew")] {
        println!("\n=== point queries, {dist_name} data, {num_keys} keys ===");
        println!(
            "{:>8} {:>14} {:>14} {:>14}   (ops/s)",
            "clients", "CG", "FG", "Hybrid"
        );
        for &clients in clients_sweep {
            let mut row = format!("{clients:>8}");
            for design in [DesignKind::Cg, DesignKind::Fg, DesignKind::Hybrid] {
                let cfg = ExperimentConfig {
                    design,
                    workload: Workload::a(),
                    num_keys,
                    clients,
                    data_dist: dist,
                    warmup: SimDur::from_millis(2),
                    measure: SimDur::from_millis(20),
                    seed: bench::cli::parse_args().seed_or_default(),
                    ..ExperimentConfig::default()
                };
                let r = run_experiment(&cfg);
                row.push_str(&format!(" {:>14.0}", r.throughput));
            }
            println!("{row}");
        }
    }

    println!("\n=== latency p50 us (uniform, point) ===");
    println!(
        "{:>8} {:>10} {:>10} {:>10}",
        "clients", "CG", "FG", "Hybrid"
    );
    for &clients in clients_sweep {
        let mut row = format!("{clients:>8}");
        for design in [DesignKind::Cg, DesignKind::Fg, DesignKind::Hybrid] {
            let cfg = ExperimentConfig {
                design,
                workload: Workload::a(),
                num_keys,
                clients,
                warmup: SimDur::from_millis(2),
                measure: SimDur::from_millis(20),
                seed: bench::cli::parse_args().seed_or_default(),
                ..ExperimentConfig::default()
            };
            let r = run_experiment(&cfg);
            row.push_str(&format!(
                " {:>10.1}",
                r.latency.percentile(0.5) as f64 / 1000.0
            ));
        }
        println!("{row}");
    }

    println!("\n=== range sel=0.01 (uniform + skew) ===");
    for (dist, name) in [(DataDist::Uniform, "uniform"), (DataDist::Skewed, "skew")] {
        println!(
            "{name:>8} {:>14} {:>14} {:>14}  wireGB/s(CG,FG,HY)",
            "CG", "FG", "Hybrid"
        );
        let mut row = format!("{:>8}", 120);
        let mut gbps = String::new();
        for design in [DesignKind::Cg, DesignKind::Fg, DesignKind::Hybrid] {
            let cfg = ExperimentConfig {
                design,
                workload: Workload::b(0.01),
                num_keys,
                clients: 120,
                data_dist: dist,
                warmup: SimDur::from_millis(2),
                measure: SimDur::from_millis(30),
                seed: bench::cli::parse_args().seed_or_default(),
                ..ExperimentConfig::default()
            };
            let r = run_experiment(&cfg);
            row.push_str(&format!(" {:>14.0}", r.throughput));
            gbps.push_str(&format!(" {:.1}", r.wire_gbps));
        }
        println!("{row}  {gbps}");
    }

    println!("\n=== workload D (50% inserts, uniform) ===");
    println!(
        "{:>8} {:>14} {:>14} {:>14}",
        "clients", "CG", "FG", "Hybrid"
    );
    for &clients in clients_sweep {
        let mut row = format!("{clients:>8}");
        for design in [DesignKind::Cg, DesignKind::Fg, DesignKind::Hybrid] {
            let cfg = ExperimentConfig {
                design,
                workload: Workload::d(),
                num_keys,
                clients,
                warmup: SimDur::from_millis(2),
                measure: SimDur::from_millis(20),
                seed: bench::cli::parse_args().seed_or_default(),
                ..ExperimentConfig::default()
            };
            let r = run_experiment(&cfg);
            row.push_str(&format!(" {:>14.0}", r.throughput));
        }
        println!("{row}");
    }
    if let Some(summary) = bench::trajectory::process_events_summary() {
        println!("{summary}");
    }
}
