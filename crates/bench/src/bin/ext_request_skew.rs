//! Extension: request-side skew (Zipfian, YCSB theta = 0.99).
//!
//! The paper's evaluation induces *attribute-value* (data placement)
//! skew; its discussion (§1, §2.2) also motivates robustness against
//! skewed *access patterns*. This experiment drives Zipfian point
//! queries: hot keys concentrate on whichever server holds them, so the
//! coarse-grained design loses balance while the fine-grained design's
//! per-node scatter keeps the *traversal* traffic spread (only the hot
//! leaf itself is pinned).

use bench::figures::num_keys;
use bench::plot::{results_dir, write_csv};
use bench::{run_experiment, DesignKind, ExperimentConfig};
use simnet::SimDur;
use ycsb::{RequestDist, Workload};

fn main() {
    println!("Extension: Zipfian request skew (point queries, 120 clients)\n");
    println!(
        "{:>18} {:>14} {:>14} {:>10}",
        "design", "uniform", "zipf(0.99)", "retained"
    );
    let mut csv = Vec::new();
    for design in [DesignKind::Cg, DesignKind::Fg, DesignKind::Hybrid] {
        let mut vals = Vec::new();
        for dist in [RequestDist::Uniform, RequestDist::Zipfian(0.99)] {
            let cfg = ExperimentConfig {
                design,
                workload: Workload::a().with_dist(dist),
                num_keys: num_keys(),
                clients: 120,
                warmup: SimDur::from_millis(3),
                measure: SimDur::from_millis(25),
                seed: bench::cli::parse_args().seed_or_default(),
                ..ExperimentConfig::default()
            };
            let r = run_experiment(&cfg);
            vals.push(r.throughput);
            csv.push(vec![
                design.label().to_string(),
                format!("{dist:?}"),
                format!("{:.1}", r.throughput),
                r.aborts.to_string(),
            ]);
        }
        println!(
            "{:>18} {:>14.0} {:>14.0} {:>9.0}%",
            design.label(),
            vals[0],
            vals[1],
            vals[1] / vals[0].max(1.0) * 100.0
        );
    }
    let path = results_dir().join("ext_request_skew.csv");
    write_csv(&path, &["design", "dist", "throughput", "aborts"], &csv).expect("csv");
    println!("\nwrote {}", path.display());
    if let Some(summary) = bench::trajectory::process_events_summary() {
        println!("{summary}");
    }
}
