//! Figure 15 (Appendix A.3): effect of co-locating compute and memory
//! servers — distributed vs co-located NAM, 80 clients, uniform data,
//! four panels (point + three range selectivities), CG vs FG.

use bench::figures::{num_keys, panels};
use bench::plot::{results_dir, write_csv};
use bench::{run_experiment, DesignKind, ExperimentConfig};
use simnet::SimDur;

fn main() {
    let mut csv = Vec::new();
    println!("Figure 15: Effects of Co-location on Throughput (80 clients, uniform)\n");
    for (panel, workload) in panels() {
        println!("  {panel}:");
        for design in [DesignKind::Fg, DesignKind::Cg] {
            let mut row = format!("    {:<16}", design.label());
            let mut vals = Vec::new();
            for colocated in [false, true] {
                let cfg = ExperimentConfig {
                    design,
                    workload,
                    num_keys: num_keys(),
                    clients: 80,
                    colocated,
                    warmup: SimDur::from_millis(3),
                    measure: SimDur::from_millis(25),
                    seed: bench::cli::parse_args().seed_or_default(),
                    ..ExperimentConfig::default()
                };
                let r = run_experiment(&cfg);
                vals.push(r.throughput);
                row.push_str(&format!(
                    " {}={:.0}",
                    if colocated {
                        "co-located"
                    } else {
                        "distributed"
                    },
                    r.throughput
                ));
                csv.push(vec![
                    design.label().to_string(),
                    panel.to_string(),
                    if colocated {
                        "colocated"
                    } else {
                        "distributed"
                    }
                    .to_string(),
                    format!("{:.1}", r.throughput),
                    r.aborts.to_string(),
                ]);
            }
            row.push_str(&format!("  (gain {:.2}x)", vals[1] / vals[0].max(1.0)));
            println!("{row}");
        }
    }
    let path = results_dir().join("fig15_colocation.csv");
    write_csv(
        &path,
        &["design", "panel", "deployment", "throughput", "aborts"],
        &csv,
    )
    .expect("csv");
    println!("\nwrote {}", path.display());
    if let Some(summary) = bench::trajectory::process_events_summary() {
        println!("{summary}");
    }
}
