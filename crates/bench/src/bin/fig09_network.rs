//! Figure 9: network utilization (GB/s) for Workloads A and B under
//! skewed data, with the aggregate "Max. Bandwidth" line.

use bench::figures::{full_sweep, panel_series, panels};
use bench::plot::{ascii_chart, results_dir, write_csv};
use bench::DataDist;

fn main() {
    let rows = full_sweep(DataDist::Skewed);
    let max_bw = rows.first().map(|r| r.max_bw_gbps).unwrap_or(0.0);
    for (panel, _) in panels() {
        let mut series = panel_series(&rows, panel, |r| r.wire_gbps);
        // The horizontal capacity line of the paper's plots.
        let xs: Vec<f64> = series
            .first()
            .map(|(_, pts)| pts.iter().map(|p| p.0).collect())
            .unwrap_or_default();
        if let (Some(&x0), Some(&x1)) = (xs.first(), xs.last()) {
            series.push((
                "Max. Bandwidth".to_string(),
                vec![(x0, max_bw), (x1, max_bw)],
            ));
        }
        println!(
            "{}",
            ascii_chart(
                &format!("Figure 9 ({panel}): Network Utilization, Skewed Data"),
                "clients",
                "GB/s",
                &series,
                false,
            )
        );
    }
    let csv: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.design.clone(),
                r.panel.clone(),
                r.clients.to_string(),
                format!("{:.3}", r.wire_gbps),
                format!("{:.3}", r.max_bw_gbps),
                r.aborts.to_string(),
            ]
        })
        .collect();
    let path = results_dir().join("fig09_network.csv");
    write_csv(
        &path,
        &[
            "design",
            "panel",
            "clients",
            "wire_gbps",
            "max_bw_gbps",
            "aborts",
        ],
        &csv,
    )
    .expect("csv");
    println!("wrote {}", path.display());
    if let Some(summary) = bench::trajectory::process_events_summary() {
        println!("{summary}");
    }
}
