//! Figure 3: theoretical maximal throughput vs memory servers (range
//! queries, sel = 0.001, z = 10).

use analysis::{figure3, ModelParams};
use bench::plot::{ascii_chart, results_dir, write_csv};

fn main() {
    let servers = [2u64, 4, 8, 16, 32, 64];
    let series = figure3(ModelParams::default(), &servers);

    let chart: Vec<(String, Vec<(f64, f64)>)> = series
        .iter()
        .map(|(name, pts)| {
            (
                name.to_string(),
                pts.iter()
                    .map(|p| (p.servers as f64, p.throughput))
                    .collect(),
            )
        })
        .collect();
    println!(
        "{}",
        ascii_chart(
            "Figure 3: Maximal Throughput (Theoretical) — Range Queries (sel=0.001, z=10)",
            "memory servers",
            "ops/s",
            &chart,
            false,
        )
    );

    let mut rows = Vec::new();
    for (name, pts) in &series {
        for p in pts {
            rows.push(vec![
                name.to_string(),
                p.servers.to_string(),
                format!("{:.1}", p.throughput),
            ]);
        }
    }
    let path = results_dir().join("fig03_theory.csv");
    write_csv(&path, &["series", "servers", "max_throughput"], &rows).expect("csv");
    println!("wrote {}", path.display());
    if let Some(summary) = bench::trajectory::process_events_summary() {
        println!("{summary}");
    }
}
