//! Run every table/figure binary in sequence (the full reproduction).
//! Respects NAMDEX_QUICK=1 for a fast smoke pass.

use std::process::Command;

fn main() {
    let bins = [
        "table1",
        "table2",
        "fig03_theory",
        "fig07_throughput_skew",
        "fig08_throughput_unif",
        "fig09_network",
        "fig10_datasize",
        "fig11_servers",
        "fig12_inserts",
        "fig13_latency_skew",
        "fig14_latency_unif",
        "fig15_colocation",
        "a04_caching",
        "ablation_heads",
        "ablation_pagesize",
        "ablation_partitioning",
        "ext_request_skew",
        "ext_gc",
        "ext_fault_tolerance",
        "ext_recovery",
    ];
    let exe = std::env::current_exe().expect("current exe");
    let dir = exe.parent().expect("bin dir");
    for bin in bins {
        println!("\n================ {bin} ================");
        let status = Command::new(dir.join(bin))
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {bin}: {e}"));
        assert!(status.success(), "{bin} failed");
    }
    println!("\nAll tables and figures regenerated; CSVs in the results directory.");
    if let Some(summary) = bench::trajectory::process_events_summary() {
        println!("{summary}");
    }
}
