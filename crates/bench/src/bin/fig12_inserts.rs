//! Figure 12: throughput for Workloads C (5% inserts) and D (50%
//! inserts) with uniform data, 0–240 clients, all three designs.

use bench::figures::{clients_sweep, num_keys, DESIGNS};
use bench::plot::{ascii_chart, results_dir, write_csv};
use bench::{run_experiment, ExperimentConfig};
use simnet::SimDur;
use ycsb::Workload;

fn main() {
    let mut csv = Vec::new();
    let mut series = Vec::new();
    for (mix, workload) in [("5", Workload::c()), ("50", Workload::d())] {
        for design in DESIGNS {
            let mut pts = Vec::new();
            for clients in clients_sweep() {
                let cfg = ExperimentConfig {
                    design,
                    workload,
                    num_keys: num_keys(),
                    clients,
                    warmup: SimDur::from_millis(3),
                    measure: SimDur::from_millis(25),
                    seed: bench::cli::parse_args().seed_or_default(),
                    ..ExperimentConfig::default()
                };
                let r = run_experiment(&cfg);
                eprintln!(
                    "[fig12] {}% inserts {} clients={clients}: {:.0} ops/s",
                    mix,
                    design.label(),
                    r.throughput
                );
                pts.push((clients as f64, r.throughput));
                csv.push(vec![
                    format!("{} {}", design.label(), mix),
                    clients.to_string(),
                    format!("{:.1}", r.throughput),
                    r.aborts.to_string(),
                ]);
            }
            series.push((format!("{} {}", design.label(), mix), pts));
        }
    }
    println!(
        "{}",
        ascii_chart(
            "Figure 12: Workloads C & D with Inserts (Uniform Data)",
            "clients",
            "ops/s",
            &series,
            true,
        )
    );
    let path = results_dir().join("fig12_inserts.csv");
    write_csv(&path, &["series", "clients", "throughput", "aborts"], &csv).expect("csv");
    println!("wrote {}", path.display());
    if let Some(summary) = bench::trajectory::process_events_summary() {
        println!("{summary}");
    }
}
