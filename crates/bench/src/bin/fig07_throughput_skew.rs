//! Figure 7: throughput for Workloads A and B under attribute-value
//! skewed data, 0–240 clients, four panels (point, range sel
//! 0.001/0.01/0.1).

use bench::figures::{full_sweep, panel_series, panels};
use bench::plot::{ascii_chart, results_dir, write_csv};
use bench::DataDist;

fn main() {
    let rows = full_sweep(DataDist::Skewed);
    for (panel, _) in panels() {
        let series = panel_series(&rows, panel, |r| r.throughput);
        println!(
            "{}",
            ascii_chart(
                &format!("Figure 7 ({panel}): Throughput, Skewed Data"),
                "clients",
                "ops/s",
                &series,
                true,
            )
        );
    }
    let csv: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.design.clone(),
                r.panel.clone(),
                r.clients.to_string(),
                format!("{:.1}", r.throughput),
                r.aborts.to_string(),
            ]
        })
        .collect();
    let path = results_dir().join("fig07_throughput_skew.csv");
    write_csv(
        &path,
        &["design", "panel", "clients", "throughput", "aborts"],
        &csv,
    )
    .expect("csv");
    println!("wrote {}", path.display());
    if let Some(summary) = bench::trajectory::process_events_summary() {
        println!("{summary}");
    }
}
