//! Ablation: index page size `P`.
//!
//! The paper fixes P = 1024 (Table 1). Smaller pages mean taller trees
//! (more round trips for the one-sided design) but less wasted transfer
//! per point lookup; larger pages flatten the tree but move more bytes
//! per level. Point queries and mid-selectivity ranges respond in
//! opposite directions.

use bench::figures::num_keys;
use bench::plot::{results_dir, write_csv};
use bench::{run_experiment, DesignKind, ExperimentConfig};
use simnet::SimDur;
use ycsb::Workload;

fn main() {
    println!("Ablation: page size (120 clients, uniform)\n");
    let mut csv = Vec::new();
    for (panel, workload, measure_ms) in [
        ("point", Workload::a(), 25u64),
        ("range_sel0.01", Workload::b(0.01), 60),
    ] {
        println!("  {panel}:");
        println!(
            "{:>18} {:>10} {:>10} {:>10} {:>10}",
            "design", "P=512", "P=1024", "P=2048", "P=4096"
        );
        for design in [DesignKind::Cg, DesignKind::Fg] {
            let mut row = format!("{:>18}", design.label());
            for page_size in [512usize, 1024, 2048, 4096] {
                let cfg = ExperimentConfig {
                    design,
                    workload,
                    num_keys: num_keys(),
                    clients: 120,
                    page_size,
                    warmup: SimDur::from_millis(3),
                    measure: SimDur::from_millis(measure_ms),
                    seed: bench::cli::parse_args().seed_or_default(),
                    ..ExperimentConfig::default()
                };
                let r = run_experiment(&cfg);
                row.push_str(&format!(" {:>10.0}", r.throughput));
                csv.push(vec![
                    design.label().to_string(),
                    panel.to_string(),
                    page_size.to_string(),
                    format!("{:.1}", r.throughput),
                    r.aborts.to_string(),
                ]);
            }
            println!("{row}");
        }
    }
    let path = results_dir().join("ablation_pagesize.csv");
    write_csv(
        &path,
        &["design", "panel", "page_size", "throughput", "aborts"],
        &csv,
    )
    .expect("csv");
    println!("\nwrote {}", path.display());
    if let Some(summary) = bench::trajectory::process_events_summary() {
        println!("{summary}");
    }
}
