//! Figure 10: throughput vs data size (uniform data, 240 clients):
//! point queries and range queries with sel = 0.1.
//!
//! The paper sweeps 1M/10M/100M keys on hardware; the simulated
//! reproduction sweeps 100K/1M/10M (one decade down — same index-height
//! regime, see DESIGN.md).

use bench::figures::{quick, DESIGNS};
use bench::plot::{ascii_chart, results_dir, write_csv};
use bench::{run_experiment, ExperimentConfig};
use simnet::SimDur;
use ycsb::Workload;

fn main() {
    let sizes: Vec<u64> = if quick() {
        vec![10_000, 100_000]
    } else {
        vec![100_000, 1_000_000, 10_000_000]
    };
    let clients = 240;
    let mut csv = Vec::new();
    for (panel, workload) in [("point", Workload::a()), ("range_sel0.1", Workload::b(0.1))] {
        let mut series = Vec::new();
        for design in DESIGNS {
            let mut pts = Vec::new();
            for &num_keys in &sizes {
                // sel=0.1 scans grow linearly with data size, so the
                // window must outlast individual operations.
                let measure = if panel == "point" {
                    SimDur::from_millis(25)
                } else {
                    match num_keys {
                        0..=200_000 => SimDur::from_millis(150),
                        200_001..=2_000_000 => SimDur::from_millis(800),
                        _ => SimDur::from_millis(4_000),
                    }
                };
                let cfg = ExperimentConfig {
                    design,
                    workload,
                    num_keys,
                    clients,
                    warmup: SimDur::from_millis(3),
                    measure,
                    seed: bench::cli::parse_args().seed_or_default(),
                    ..ExperimentConfig::default()
                };
                let r = run_experiment(&cfg);
                eprintln!(
                    "[fig10] {panel} {} keys={num_keys}: {:.0} ops/s",
                    design.label(),
                    r.throughput
                );
                pts.push((num_keys as f64, r.throughput));
                csv.push(vec![
                    design.label().to_string(),
                    panel.to_string(),
                    num_keys.to_string(),
                    format!("{:.1}", r.throughput),
                    r.aborts.to_string(),
                ]);
            }
            series.push((design.label().to_string(), pts));
        }
        println!(
            "{}",
            ascii_chart(
                &format!("Figure 10 ({panel}): Varying Data Size, Uniform, 240 Clients"),
                "keys (log-x as listed)",
                "ops/s",
                &series,
                true,
            )
        );
    }
    let path = results_dir().join("fig10_datasize.csv");
    write_csv(
        &path,
        &["design", "panel", "num_keys", "throughput", "aborts"],
        &csv,
    )
    .expect("csv");
    println!("wrote {}", path.display());
    if let Some(summary) = bench::trajectory::process_events_summary() {
        println!("{summary}");
    }
}
