//! Extension: the recovery-time objective (RTO) curve.
//!
//! The paper's NAM architecture treats memory servers as durable by
//! fiat; the durability subsystem (`crates/wal`, DESIGN.md §16) makes
//! the cost model honest. This experiment measures what that costs at
//! restart: for each design, grow the un-checkpointed log with batches
//! of acknowledged inserts, crash a memory server (RAM genuinely
//! wiped), and measure RTO = `healthy_at - restarted_at` — boot plus
//! checkpoint/log streaming off the simulated NVMe device plus replay
//! CPU. The curve's slope is the replay bandwidth; its intercept is the
//! fixed boot + checkpoint cost.
//!
//! A second section re-runs one insert workload with group commit on
//! and off and reports the durable device-op counts — the batching win
//! the WAL's group-commit path exists for.
//!
//! Outputs `results/ext_recovery.csv`, `results/BENCH_recovery.json`
//! and an ASCII RTO curve. `--seed N` reseeds the (deterministic)
//! workload; `--quick` shrinks the sweep.

use bench::figures::{quick, DESIGNS};
use bench::plot::{ascii_chart, results_dir, write_csv, Series};
use bench::DesignKind;
use blink::PageLayout;
use nam::{NamCluster, PartitionMap};
use namdex_core::{CoarseGrained, Design, FgConfig, FineGrained, Hybrid, Learned};
use rdma_sim::{ClusterSpec, Durability, Endpoint};
use simnet::{Sim, SimDur};
use std::fmt::Write as _;

/// Loaded records (multiples of 8; inserted keys are odd, so fresh).
fn load_keys() -> u64 {
    if quick() {
        20_000
    } else {
        50_000
    }
}

/// Un-checkpointed insert batch sizes swept for the curve.
fn sweep() -> Vec<u64> {
    if quick() {
        vec![250, 1_000, 4_000]
    } else {
        vec![1_000, 4_000, 16_000]
    }
}

/// Restart boot latency: deliberately small so the curve shows the
/// *replay* term growing, not a flat 2ms boot floor.
const BOOT: SimDur = SimDur::from_micros(100);

/// Memory server crashed and recovered (also the hot partition under
/// the uniform split — matches the other fault experiments).
const CRASH_SERVER: usize = 1;

fn spec() -> ClusterSpec {
    ClusterSpec {
        durability: Durability::Wal,
        wal_restart_boot_latency: BOOT,
        // No runtime checkpoint: every insert since setup replays, so
        // the log size is exactly the independent variable.
        wal_checkpoint_every_bytes: 1 << 30,
        ..ClusterSpec::with_memory_servers(4)
    }
}

fn build(kind: DesignKind, nam: &NamCluster) -> Design {
    let items = (0..load_keys()).map(|i| (i * 8, i));
    let partition = PartitionMap::range_uniform(nam.num_servers(), load_keys() * 8);
    let cfg = FgConfig {
        layout: PageLayout::default(),
        fill: 0.7,
        head_stride: 8,
        cache_capacity: None,
    };
    match kind {
        DesignKind::Cg => Design::Cg(CoarseGrained::build(
            nam,
            PageLayout::default(),
            partition,
            items,
            0.7,
        )),
        DesignKind::Fg => Design::Fg(FineGrained::build(&nam.rdma, cfg, items)),
        DesignKind::Hybrid => Design::Hybrid(Hybrid::build(nam, cfg, partition, items)),
        DesignKind::Learned => Design::Learned(Learned::build(nam, cfg, partition, items)),
    }
}

/// One measured point of the curve.
struct Point {
    writes: u64,
    log_bytes: u64,
    replay_bytes: u64,
    rto_us: f64,
    replay_mbps: f64,
}

/// Drive `writes` acknowledged inserts (8 concurrent writers, fresh
/// odd keys spread over the whole domain), then crash + restart the
/// hot server and return the measured recovery.
fn measure(kind: DesignKind, writes: u64, seed: u64) -> Point {
    let sim = Sim::new();
    let nam = NamCluster::new(&sim, spec());
    let design = build(kind, &nam);
    let domain = load_keys() * 8;
    let stride = (domain / writes.max(1)).max(2) & !1;
    const WRITERS: u64 = 8;
    for w in 0..WRITERS {
        let design = design.clone();
        let ep = Endpoint::new(&nam.rdma);
        sim.spawn(async move {
            let mut j = w;
            while j < writes {
                // Odd keys are fresh (the load uses multiples of 8);
                // the stride spreads them over every partition.
                let key = (j * stride) | 1;
                design.insert(&ep, key, key ^ seed).await.expect("insert");
                j += WRITERS;
            }
        });
    }
    sim.run();
    let log_bytes = nam.rdma.wal_log_bytes(CRASH_SERVER).expect("wal mode");

    let cluster = nam.rdma.clone();
    let sim_c = sim.clone();
    sim.spawn(async move {
        cluster.fail_server(CRASH_SERVER);
        sim_c.sleep(SimDur::from_micros(50)).await;
        cluster.restart_server(CRASH_SERVER);
    });
    sim.run();

    let recs = nam.rdma.recovery_records();
    assert_eq!(recs.len(), 1, "exactly one crash/recovery cycle");
    let r = &recs[0];
    let rto_ns = r.recovery_time().as_nanos();
    let stream_ns = rto_ns.saturating_sub(BOOT.as_nanos()).max(1);
    Point {
        writes,
        log_bytes,
        replay_bytes: r.replay_bytes,
        rto_us: rto_ns as f64 / 1_000.0,
        replay_mbps: r.replay_bytes as f64 / 1e6 / (stream_ns as f64 / 1e9),
    }
}

/// Device-op counts for one fixed insert workload with and without
/// group commit (summed over all servers).
fn group_commit_ops(seed: u64, group_commit: bool) -> (u64, u64) {
    let sim = Sim::new();
    let nam = NamCluster::new(
        &sim,
        ClusterSpec {
            wal_group_commit: group_commit,
            ..spec()
        },
    );
    let design = build(DesignKind::Cg, &nam);
    let domain = load_keys() * 8;
    for w in 0..12u64 {
        let design = design.clone();
        let ep = Endpoint::new(&nam.rdma);
        sim.spawn(async move {
            for i in 0..50u64 {
                let key = ((w * 50 + i) * (domain / 600).max(2)) | 1;
                design.insert(&ep, key, key ^ seed).await.expect("insert");
            }
        });
    }
    sim.run();
    let mut flushes = 0;
    let mut records = 0;
    for s in 0..nam.num_servers() {
        let st = nam.rdma.wal_stats(s).expect("wal mode");
        flushes += st.device_flushes;
        records += st.records_flushed;
    }
    (flushes, records)
}

fn main() {
    let args = bench::parse_args();
    let seed = args.seed_or_default();
    println!(
        "Extension: recovery curve (RTO vs un-checkpointed log, seed {seed}, \
         boot {}us)\n",
        BOOT.as_nanos() / 1_000
    );
    println!(
        "{:>16} {:>8} {:>12} {:>13} {:>10} {:>12}",
        "design", "writes", "log bytes", "replay bytes", "RTO (us)", "replay MB/s"
    );

    let mut csv = Vec::new();
    let mut series: Vec<Series> = Vec::new();
    let mut json_designs = String::new();
    for (di, design) in DESIGNS.into_iter().enumerate() {
        let points: Vec<Point> = sweep()
            .into_iter()
            .map(|writes| measure(design, writes, seed))
            .collect();
        for p in &points {
            println!(
                "{:>16} {:>8} {:>12} {:>13} {:>10.1} {:>12.1}",
                design.label(),
                p.writes,
                p.log_bytes,
                p.replay_bytes,
                p.rto_us,
                p.replay_mbps
            );
            csv.push(vec![
                design.label().to_string(),
                p.writes.to_string(),
                p.log_bytes.to_string(),
                p.replay_bytes.to_string(),
                format!("{:.1}", p.rto_us),
                format!("{:.1}", p.replay_mbps),
            ]);
        }
        // More acknowledged writes since the checkpoint must mean more
        // replay and a longer RTO — the property the subsystem's tests
        // pin, restated here on the measured curve.
        for w in points.windows(2) {
            assert!(
                w[1].replay_bytes > w[0].replay_bytes && w[1].rto_us > w[0].rto_us,
                "{}: RTO curve must grow with the log",
                design.label()
            );
        }
        series.push((
            design.label().to_string(),
            points.iter().map(|p| (p.writes as f64, p.rto_us)).collect(),
        ));
        let pts = points
            .iter()
            .map(|p| {
                format!(
                    "{{\"writes\": {}, \"log_bytes\": {}, \"replay_bytes\": {}, \
                     \"rto_us\": {:.1}, \"replay_mbps\": {:.1}}}",
                    p.writes, p.log_bytes, p.replay_bytes, p.rto_us, p.replay_mbps
                )
            })
            .collect::<Vec<_>>()
            .join(", ");
        let _ = writeln!(
            json_designs,
            "    {{\"design\": \"{}\", \"points\": [{}]}}{}",
            design.label(),
            pts,
            if di + 1 == DESIGNS.len() { "" } else { "," }
        );
    }

    let (group_flushes, group_records) = group_commit_ops(seed, true);
    let (per_flushes, per_records) = group_commit_ops(seed, false);
    assert_eq!(group_records, per_records, "same workload, same records");
    println!(
        "\ngroup commit: {group_records} records in {group_flushes} device ops \
         (per-record flushing: {per_flushes})"
    );

    println!(
        "{}",
        ascii_chart(
            "RTO vs un-checkpointed acknowledged writes",
            "acknowledged inserts since checkpoint",
            "RTO (us)",
            &series,
            false,
        )
    );

    let path = results_dir().join("ext_recovery.csv");
    write_csv(
        &path,
        &[
            "design",
            "writes",
            "log_bytes",
            "replay_bytes",
            "rto_us",
            "replay_mbps",
        ],
        &csv,
    )
    .expect("csv");
    println!("wrote {}", path.display());

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"figure\": \"recovery\",\n");
    let _ = writeln!(json, "  \"seed\": {seed},");
    let _ = writeln!(json, "  \"boot_us\": {},", BOOT.as_nanos() / 1_000);
    json.push_str("  \"designs\": [\n");
    json.push_str(&json_designs);
    json.push_str("  ],\n");
    let _ = writeln!(
        json,
        "  \"group_commit\": {{\"records\": {group_records}, \
         \"device_flushes\": {group_flushes}, \
         \"per_record_flushes\": {per_flushes}}}"
    );
    json.push_str("}\n");
    let path = results_dir().join("BENCH_recovery.json");
    std::fs::write(&path, json).expect("bench json");
    println!("wrote {}", path.display());
    if let Some(summary) = bench::trajectory::process_events_summary() {
        println!("{summary}");
    }
}
