//! Extension: epoch garbage collection behaviour under load.
//!
//! The paper defers GC to epoch passes (§3.2, §4.2) but does not
//! evaluate them. This experiment deletes a fraction of a loaded index,
//! runs one GC epoch *while read clients keep querying*, and reports:
//! the reclaim rate, the GC pass's virtual duration per design, and the
//! read throughput with and without a concurrent GC pass.

use bench::figures::num_keys;
use bench::plot::{results_dir, write_csv};
use blink::PageLayout;
use nam::{NamCluster, PartitionMap};
use namdex_core::{gc, CoarseGrained, Design, FgConfig, FineGrained, Hybrid};
use rdma_sim::{ClusterSpec, Endpoint};
use simnet::rng::DetRng;
use simnet::stats::Counter;
use simnet::{Sim, SimDur, SimTime};
use std::cell::Cell;
use std::rc::Rc;

struct GcRun {
    reclaimed: usize,
    gc_micros: u64,
    reads_during_gc: f64,
    reads_baseline: f64,
}

fn run(design_name: &'static str, keys: u64, delete_frac: f64, seed: u64) -> GcRun {
    let measure = |with_gc: bool| -> (usize, u64, f64) {
        let sim = Sim::new();
        let nam = NamCluster::new(&sim, ClusterSpec::default());
        let data = ycsb::Dataset::new(keys);
        let partition = PartitionMap::range_uniform(nam.num_servers(), data.domain());
        let design = match design_name {
            "coarse-grained" => Design::Cg(CoarseGrained::build(
                &nam,
                PageLayout::default(),
                partition,
                data.iter(),
                0.7,
            )),
            "fine-grained" => Design::Fg(FineGrained::build(
                &nam.rdma,
                FgConfig::default(),
                data.iter(),
            )),
            _ => Design::Hybrid(Hybrid::build(
                &nam,
                FgConfig::default(),
                partition,
                data.iter(),
            )),
        };

        // Tombstone a fraction of keys (untimed setup-style burst).
        let step = (1.0 / delete_frac) as u64;
        {
            let design = design.clone();
            let ep = Endpoint::new(&nam.rdma);
            sim.spawn(async move {
                for i in (0..keys).step_by(step as usize) {
                    design.delete(&ep, i * 8).await.expect("fault-free run");
                }
            });
        }
        sim.run();

        // Readers + (optionally) one GC pass, measured over a window.
        let t0 = sim.now();
        let end = t0 + SimDur::from_millis(30);
        let reads = Rc::new(Counter::new());
        for c in 0..40u64 {
            let design = design.clone();
            let ep = Endpoint::new(&nam.rdma);
            let reads = reads.clone();
            let sim_c = sim.clone();
            let mut rng = DetRng::seed_from_u64(seed ^ c);
            sim.spawn(async move {
                loop {
                    let k = rng.next_u64_below(keys) * 8;
                    design.lookup(&ep, k).await.expect("fault-free run");
                    if sim_c.now() <= end {
                        reads.inc();
                    }
                }
            });
        }
        let reclaimed = Rc::new(Cell::new(0usize));
        let gc_end = Rc::new(Cell::new(SimTime::ZERO));
        if with_gc {
            let design = design.clone();
            let ep = Endpoint::new(&nam.rdma);
            let reclaimed = reclaimed.clone();
            let gc_end = gc_end.clone();
            let sim_c = sim.clone();
            sim.spawn(async move {
                let freed = match &design {
                    Design::Cg(d) => gc::cg_gc_pass(d, &ep).await,
                    Design::Fg(d) => gc::fg_gc_pass(d, &ep).await,
                    Design::Hybrid(d) => gc::hybrid_gc_pass(d, &ep).await,
                    Design::Learned(d) => gc::hybrid_gc_pass(d.tree(), &ep).await,
                };
                reclaimed.set(freed.expect("fault-free run"));
                gc_end.set(sim_c.now());
            });
        }
        sim.run_until(end);
        // The one-sided collector may outlive the read window; let it
        // finish (readers keep running but are no longer counted).
        if with_gc && gc_end.get() == SimTime::ZERO {
            sim.run_until(end + SimDur::from_millis(500));
        }
        let gc_micros = if with_gc {
            assert!(gc_end.get() > t0, "GC pass must complete");
            (gc_end.get() - t0).as_micros()
        } else {
            0
        };
        (reclaimed.get(), gc_micros, reads.get() as f64 / 0.030)
    };

    let (_, _, baseline) = measure(false);
    let (reclaimed, gc_micros, during) = measure(true);
    GcRun {
        reclaimed,
        gc_micros,
        reads_during_gc: during,
        reads_baseline: baseline,
    }
}

fn main() {
    let seed = bench::cli::parse_args().seed_or_default();
    let keys = num_keys().min(200_000); // GC walks the whole leaf chain
    println!(
        "Extension: epoch GC under load ({} keys, 10% deleted, 40 readers)\n",
        keys
    );
    println!(
        "{:>16} {:>10} {:>12} {:>16} {:>16} {:>8}",
        "design", "reclaimed", "GC pass", "reads (no GC)", "reads (GC)", "impact"
    );
    let mut csv = Vec::new();
    for design in ["coarse-grained", "fine-grained", "hybrid"] {
        let r = run(design, keys, 0.1, seed);
        println!(
            "{design:>16} {:>10} {:>9}us {:>16.0} {:>16.0} {:>7.0}%",
            r.reclaimed,
            r.gc_micros,
            r.reads_baseline,
            r.reads_during_gc,
            r.reads_during_gc / r.reads_baseline * 100.0
        );
        csv.push(vec![
            design.to_string(),
            r.reclaimed.to_string(),
            r.gc_micros.to_string(),
            format!("{:.1}", r.reads_baseline),
            format!("{:.1}", r.reads_during_gc),
        ]);
    }
    let path = results_dir().join("ext_gc.csv");
    write_csv(
        &path,
        &[
            "design",
            "reclaimed",
            "gc_micros",
            "reads_no_gc",
            "reads_with_gc",
        ],
        &csv,
    )
    .expect("csv");
    println!("\nwrote {}", path.display());
    if let Some(summary) = bench::trajectory::process_events_summary() {
        println!("{summary}");
    }
}
