//! Figure 11: throughput vs number of memory servers (120 clients,
//! 1M keys): point queries and range queries (sel = 0.01), uniform and
//! skewed data, coarse-grained vs fine-grained (the paper omits the
//! hybrid here: it tracks CG for points and FG for ranges).

use bench::figures::{num_keys, quick};
use bench::plot::{ascii_chart, results_dir, write_csv};
use bench::{run_experiment, DataDist, DesignKind, ExperimentConfig};
use simnet::SimDur;
use ycsb::Workload;

fn main() {
    let servers: Vec<usize> = if quick() {
        vec![2, 8]
    } else {
        vec![2, 4, 6, 8]
    };
    let mut csv = Vec::new();
    for (dist, dist_name) in [(DataDist::Uniform, "uniform"), (DataDist::Skewed, "skew")] {
        for (panel, workload) in [
            ("point", Workload::a()),
            ("range_sel0.01", Workload::b(0.01)),
        ] {
            let mut series = Vec::new();
            for design in [DesignKind::Cg, DesignKind::Fg] {
                let mut pts = Vec::new();
                for &n in &servers {
                    let cfg = ExperimentConfig {
                        design,
                        workload,
                        num_keys: num_keys(),
                        clients: 120,
                        memory_servers: n,
                        data_dist: dist,
                        warmup: SimDur::from_millis(3),
                        measure: SimDur::from_millis(25),
                        seed: bench::cli::parse_args().seed_or_default(),
                        ..ExperimentConfig::default()
                    };
                    let r = run_experiment(&cfg);
                    eprintln!(
                        "[fig11] {dist_name} {panel} {} servers={n}: {:.0} ops/s",
                        design.label(),
                        r.throughput
                    );
                    pts.push((n as f64, r.throughput));
                    csv.push(vec![
                        design.label().to_string(),
                        panel.to_string(),
                        dist_name.to_string(),
                        n.to_string(),
                        format!("{:.1}", r.throughput),
                        r.aborts.to_string(),
                    ]);
                }
                series.push((design.label().to_string(), pts));
            }
            println!(
                "{}",
                ascii_chart(
                    &format!(
                        "Figure 11 ({panel}, {dist_name}): Varying Memory Servers, 120 Clients"
                    ),
                    "memory servers",
                    "ops/s",
                    &series,
                    false,
                )
            );
        }
    }
    let path = results_dir().join("fig11_servers.csv");
    write_csv(
        &path,
        &["design", "panel", "dist", "servers", "throughput", "aborts"],
        &csv,
    )
    .expect("csv");
    println!("wrote {}", path.display());
    if let Some(summary) = bench::trajectory::process_events_summary() {
        println!("{summary}");
    }
}
