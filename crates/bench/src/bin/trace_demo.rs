//! Small seeded experiment that exercises every telemetry surface:
//! op spans across lookups/ranges/inserts, verb and RPC events, lock
//! wait and backoff regions, and fault instants from an injected
//! schedule. Writes a Chrome-trace/Perfetto JSON (open the file at
//! <https://ui.perfetto.dev>) plus a metrics-registry CSV.
//!
//! `--trace PATH` picks the output (default `results/trace_demo.json`);
//! `--seed N` varies the workload; the same seed always produces a
//! byte-identical trace — `cargo xtask trace-check` relies on this.

use bench::plot::results_dir;
use bench::{metrics_csv_path, run_experiment, DesignKind, ExperimentConfig};
use chaos::FaultPlan;
use simnet::{SimDur, SimTime};
use ycsb::Workload;

fn main() {
    let args = bench::parse_args();
    let seed = args.seed_or_default();
    let trace_path = args
        .trace_path()
        .unwrap_or_else(|| results_dir().join("trace_demo.json"));
    if let Some(dir) = trace_path.parent() {
        std::fs::create_dir_all(dir).expect("create trace directory");
    }

    // One fault of each flavour inside the 6ms window, so the trace
    // carries instants, Stall charges, and retry backoff regions.
    let plan = FaultPlan::with_seed(seed)
        .crash_server(SimTime::from_millis(2), 1)
        .restart_server(SimTime::from_millis(3), 1)
        .kill_client(SimTime::from_millis(4), 2)
        .revive_client(SimTime::from_micros(4_500), 2);

    let cfg = ExperimentConfig {
        design: DesignKind::Hybrid,
        workload: Workload::d(), // 50% inserts: locks, splits, CAS races
        num_keys: 20_000,
        clients: 8,
        warmup: SimDur::from_millis(1),
        measure: SimDur::from_millis(5),
        seed,
        fault_plan: Some(plan),
        timeline_window: SimDur::from_millis(1),
        trace_path: Some(trace_path.clone()),
        ..ExperimentConfig::default()
    };
    let r = run_experiment(&cfg);

    println!("trace demo (hybrid, workload D, seed {seed})");
    println!("  ops: {}  aborts: {}", r.ops, r.aborts);
    println!("  throughput: {:.0} ops/s", r.throughput);
    println!("  trace:   {}", trace_path.display());
    println!("  metrics: {}", metrics_csv_path(&trace_path).display());
    if let Some(summary) = bench::trajectory::process_events_summary() {
        println!("{summary}");
    }
}
