//! Scaled sweep: ≥10M keys, up to 1,000 closed-loop clients, all four
//! designs — the first step toward ROADMAP item 2's 10k-client /
//! 100M-key target, made practical by the hot-path engine work
//! (DESIGN.md §17). Cells run through the parallel sweep runner
//! (`NAMDEX_SWEEP_THREADS`); the CSV is byte-identical for any thread
//! count. Each row also records the cell's events/sec, so the run
//! doubles as a large-scale engine benchmark.

use bench::parallel::run_cells;
use bench::plot::{results_dir, write_csv};
use bench::{run_experiment, DesignKind, ExperimentConfig};
use simnet::SimDur;

/// Wall-clock sampler for per-cell events/sec. Reporting only — the
/// reads never feed back into simulation state.
#[allow(clippy::disallowed_methods, clippy::disallowed_types)]
fn wall_secs() -> f64 {
    use std::time::Instant; // xtask: allow(wall-clock-instant)
    static EPOCH: std::sync::OnceLock<Instant> = std::sync::OnceLock::new();
    EPOCH.get_or_init(Instant::now).elapsed().as_secs_f64() // xtask: allow(wall-clock-instant)
}

fn main() {
    let seed = bench::parse_args().seed_or_default();
    let num_keys: u64 = 10_000_000;
    let clients_axis = [250usize, 500, 1_000];
    let designs = [
        DesignKind::Cg,
        DesignKind::Fg,
        DesignKind::Hybrid,
        DesignKind::Learned,
    ];
    let cells: Vec<(DesignKind, usize)> = designs
        .iter()
        .flat_map(|&d| clients_axis.iter().map(move |&c| (d, c)))
        .collect();
    eprintln!(
        "[scaled] {} cells: {num_keys} keys x {clients_axis:?} clients x {} designs",
        cells.len(),
        designs.len()
    );
    let rows = run_cells(&cells, |&(design, clients)| {
        let cfg = ExperimentConfig {
            design,
            num_keys,
            clients,
            warmup: SimDur::from_millis(2),
            measure: SimDur::from_millis(10),
            seed,
            ..ExperimentConfig::default()
        };
        let t0 = wall_secs();
        let r = run_experiment(&cfg);
        let secs = wall_secs() - t0;
        let eps = if secs > 0.0 {
            r.sim_events as f64 / secs
        } else {
            0.0
        };
        eprintln!(
            "[scaled] {} clients={clients}: {:.0} ops/s, {:.2}M events/s",
            design.label(),
            r.throughput,
            eps / 1e6
        );
        vec![
            design.label().to_string(),
            clients.to_string(),
            format!("{:.1}", r.throughput),
            r.latency.percentile(0.5).to_string(),
            r.latency.percentile(0.99).to_string(),
            format!("{:.4}", r.wire_gbps),
            r.sim_events.to_string(),
            format!("{eps:.0}"),
        ]
    });
    let path = results_dir().join("scaled_sweep.csv");
    write_csv(
        &path,
        &[
            "design",
            "clients",
            "throughput",
            "p50_ns",
            "p99_ns",
            "wire_gbps",
            "sim_events",
            "events_per_sec",
        ],
        &rows,
    )
    .expect("csv");
    println!("wrote {}", path.display());
    if let Some(summary) = bench::trajectory::process_events_summary() {
        println!("{summary}");
    }
}
