//! ASCII charts and CSV output for the figure binaries.

use std::fmt::Write as _;
use std::path::Path;

/// One named data series: `(x, y)` points.
pub type Series = (String, Vec<(f64, f64)>);

/// Render a simple multi-series ASCII line chart (log-y optional), the
/// terminal stand-in for the paper's matplotlib figures.
pub fn ascii_chart(
    title: &str,
    xlabel: &str,
    ylabel: &str,
    series: &[Series],
    logy: bool,
) -> String {
    const W: usize = 68;
    const H: usize = 18;
    let marks = ['o', 'x', '+', '*', '#', '@'];

    let all: Vec<(f64, f64)> = series
        .iter()
        .flat_map(|(_, pts)| pts.iter().copied())
        .collect();
    if all.is_empty() {
        return format!("{title}\n(no data)\n");
    }
    let tx = |v: f64| v;
    let ty = |v: f64| if logy { v.max(1e-12).log10() } else { v };
    let (xmin, xmax) = all.iter().fold((f64::MAX, f64::MIN), |(lo, hi), &(x, _)| {
        (lo.min(tx(x)), hi.max(tx(x)))
    });
    let (ymin, ymax) = all.iter().fold((f64::MAX, f64::MIN), |(lo, hi), &(_, y)| {
        (lo.min(ty(y)), hi.max(ty(y)))
    });
    let xspan = (xmax - xmin).max(1e-12);
    let yspan = (ymax - ymin).max(1e-12);

    let mut grid = vec![vec![' '; W]; H];
    for (si, (_, pts)) in series.iter().enumerate() {
        let mark = marks[si % marks.len()];
        // Plot points and linear interpolation between consecutive ones.
        let cells: Vec<(usize, usize)> = pts
            .iter()
            .map(|&(x, y)| {
                let cx = (((tx(x) - xmin) / xspan) * (W - 1) as f64).round() as usize;
                let cy = (((ty(y) - ymin) / yspan) * (H - 1) as f64).round() as usize;
                (cx.min(W - 1), H - 1 - cy.min(H - 1))
            })
            .collect();
        for w in cells.windows(2) {
            let (x0, y0) = w[0];
            let (x1, y1) = w[1];
            let steps = x1.abs_diff(x0).max(y1.abs_diff(y0)).max(1);
            for s in 0..=steps {
                let x = x0 as f64 + (x1 as f64 - x0 as f64) * s as f64 / steps as f64;
                let y = y0 as f64 + (y1 as f64 - y0 as f64) * s as f64 / steps as f64;
                let cell = &mut grid[y.round() as usize][x.round() as usize];
                if *cell == ' ' {
                    *cell = '.';
                }
            }
        }
        for &(cx, cy) in &cells {
            grid[cy][cx] = mark;
        }
    }

    let mut out = String::new();
    let _ = writeln!(out, "\n  {title}");
    let ylab = |v: f64| {
        if logy {
            format_si(10f64.powf(v))
        } else {
            format_si(v)
        }
    };
    for (r, row) in grid.iter().enumerate() {
        let label = if r == 0 {
            ylab(ymax)
        } else if r == H - 1 {
            ylab(ymin)
        } else if r == H / 2 {
            ylab(ymin + yspan * 0.5)
        } else {
            String::new()
        };
        let _ = writeln!(out, "  {label:>8} |{}|", row.iter().collect::<String>());
    }
    let _ = writeln!(out, "  {:>8} +{}+", "", "-".repeat(W));
    let _ = writeln!(
        out,
        "  {:>8}  {:<w$}{}",
        ylabel,
        format_si(xmin),
        format_si(xmax),
        w = W - format_si(xmax).len()
    );
    let _ = writeln!(out, "  {:>8}  x: {xlabel}", "");
    for (si, (name, _)) in series.iter().enumerate() {
        let _ = writeln!(out, "      {} = {}", marks[si % marks.len()], name);
    }
    out
}

/// Format a number with SI suffixes (1.2M, 450K, 3.0).
pub fn format_si(v: f64) -> String {
    let a = v.abs();
    if a >= 1e9 {
        format!("{:.1}G", v / 1e9)
    } else if a >= 1e6 {
        format!("{:.1}M", v / 1e6)
    } else if a >= 1e3 {
        format!("{:.1}K", v / 1e3)
    } else if a >= 1.0 || a == 0.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.4}")
    }
}

/// Write a CSV file (creating parent directories).
pub fn write_csv(path: &Path, header: &[&str], rows: &[Vec<String>]) -> std::io::Result<()> {
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)?;
    }
    let mut out = String::new();
    out.push_str(&header.join(","));
    out.push('\n');
    for row in rows {
        out.push_str(&row.join(","));
        out.push('\n');
    }
    std::fs::write(path, out)
}

/// Standard results directory for figure CSVs.
pub fn results_dir() -> std::path::PathBuf {
    std::path::PathBuf::from(
        std::env::var("NAMDEX_RESULTS_DIR").unwrap_or_else(|_| "results".into()),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chart_renders_all_series() {
        let series = vec![
            ("a".to_string(), vec![(0.0, 1.0), (10.0, 100.0)]),
            ("b".to_string(), vec![(0.0, 50.0), (10.0, 2.0)]),
        ];
        let s = ascii_chart("test", "clients", "ops/s", &series, false);
        assert!(s.contains("test"));
        assert!(s.contains('o'));
        assert!(s.contains('x'));
        assert!(s.contains("a"));
    }

    #[test]
    fn chart_log_scale() {
        let series = vec![("a".to_string(), vec![(1.0, 10.0), (2.0, 1e6)])];
        let s = ascii_chart("log", "x", "y", &series, true);
        assert!(s.contains("1.0M"));
    }

    #[test]
    fn chart_empty() {
        let s = ascii_chart("none", "x", "y", &[], false);
        assert!(s.contains("no data"));
    }

    #[test]
    fn si_formats() {
        assert_eq!(format_si(1_500_000.0), "1.5M");
        assert_eq!(format_si(2_500.0), "2.5K");
        assert_eq!(format_si(3.0), "3.0");
        assert_eq!(format_si(0.001_2), "0.0012");
        assert_eq!(format_si(2.5e9), "2.5G");
    }

    #[test]
    fn csv_round_trip() {
        let dir = std::env::temp_dir().join("namdex_plot_test");
        let path = dir.join("t.csv");
        write_csv(
            &path,
            &["a", "b"],
            &[vec!["1".into(), "2".into()], vec!["3".into(), "4".into()]],
        )
        .unwrap();
        let s = std::fs::read_to_string(&path).unwrap();
        assert_eq!(s, "a,b\n1,2\n3,4\n");
        std::fs::remove_dir_all(dir).ok();
    }
}
