//! One experiment = one deployed cluster + one index design + N
//! closed-loop clients, measured over a warmup-then-measure window of
//! virtual time.
//!
//! Matches the paper's methodology (§6.1): each client executes index
//! operations in a closed loop (waiting for one to finish before issuing
//! the next) and spreads lookups uniformly at random over the key space;
//! attribute-value skew assigns 80/12/5/3 of the key space to the four
//! servers for the coarse-grained/hybrid partitioning while fine-grained
//! leaves stay scattered round-robin.

use std::cell::RefCell;
use std::path::PathBuf;
use std::rc::Rc;

use blink::PageLayout;
use chaos::{ChaosController, FaultPlan};
use nam::{NamCluster, PartitionMap};
use namdex_core::{CoarseGrained, Design, FgConfig, FineGrained, Hybrid, Learned, LearnedStats};
use rdma_sim::{ClusterSpec, Endpoint, FaultStats, RecoveryRecord, ServerStats};
use simnet::rng::Zipf;
use simnet::stats::{Counter, Histogram};
use simnet::{Sim, SimDur};
use telemetry::{MetricRow, Registry, Telemetry};
use ycsb::{Dataset, Op, OpGen, RequestDist, Workload};

/// Which index design to benchmark.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DesignKind {
    /// Design 1: coarse-grained / two-sided.
    Cg,
    /// Design 2: fine-grained / one-sided.
    Fg,
    /// Design 3: hybrid.
    Hybrid,
    /// Design 4: learned-index routing over the hybrid tree.
    Learned,
}

impl DesignKind {
    /// Display name matching the paper's legends.
    pub fn label(self) -> &'static str {
        match self {
            DesignKind::Cg => "Coarse-Grained",
            DesignKind::Fg => "Fine-Grained",
            DesignKind::Hybrid => "Hybrid",
            DesignKind::Learned => "Learned",
        }
    }
}

/// Coarse-grained partitioning flavour.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CgPartition {
    /// Range partitioning.
    Range,
    /// Hash partitioning (range queries broadcast).
    Hash,
}

/// Data placement: uniform or attribute-value skewed (§6.1).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DataDist {
    /// Keys spread evenly over servers.
    Uniform,
    /// 80/12/5/3-style assignment: most keys on server 0.
    Skewed,
}

/// Fractions of the key space per server under attribute-value skew.
/// For 4 servers this is the paper's 80/12/5/3; other counts use a
/// geometric profile with the same character.
pub fn skew_fractions(n: usize) -> Vec<f64> {
    if n == 1 {
        return vec![1.0];
    }
    if n == 4 {
        return vec![0.80, 0.12, 0.05, 0.03];
    }
    let raw: Vec<f64> = (0..n).map(|i| 4.0f64.powi(-(i as i32))).collect();
    let total: f64 = raw.iter().sum();
    raw.into_iter().map(|f| f / total).collect()
}

/// Full description of one experiment run.
#[derive(Clone, Debug)]
pub struct ExperimentConfig {
    /// Index design under test.
    pub design: DesignKind,
    /// CG partitioning flavour (ignored by FG).
    pub cg_partition: CgPartition,
    /// Operation mix.
    pub workload: Workload,
    /// Loaded records.
    pub num_keys: u64,
    /// Closed-loop clients.
    pub clients: usize,
    /// Memory servers (packed 2/machine).
    pub memory_servers: usize,
    /// Data placement.
    pub data_dist: DataDist,
    /// Co-locate compute with memory servers (Appendix A.3).
    pub colocated: bool,
    /// Virtual warmup before measuring.
    pub warmup: SimDur,
    /// Virtual measurement window.
    pub measure: SimDur,
    /// Workload seed.
    pub seed: u64,
    /// Index page size `P`.
    pub page_size: usize,
    /// Head-node stride (FG/hybrid leaf level; 0 disables).
    pub head_stride: usize,
    /// Client-side cache capacity in entries per client (`Some(0)` =
    /// unbounded, `None` = caching off). FG caches inner pages, Hybrid
    /// caches leaf routes; CG ignores it.
    pub cache_capacity: Option<usize>,
    /// Cluster spec override (defaults to the calibrated spec).
    pub spec: Option<ClusterSpec>,
    /// Fault schedule to install (None = fault-free run).
    pub fault_plan: Option<FaultPlan>,
    /// Timeline sampling window; `SimDur::ZERO` disables the timeline.
    /// When set, every operation completion (warmup included) lands in
    /// the window of its completion instant, giving the
    /// throughput/abort-rate timelines of the fault-tolerance report.
    pub timeline_window: SimDur,
    /// Record a Chrome-trace/Perfetto JSON of the run to this path
    /// (plus a `*.metrics.csv` registry snapshot next to it). `None`
    /// leaves the run untelemetered — the verb layer's observer hooks
    /// stay behind their flag check and cost nothing measurable.
    pub trace_path: Option<PathBuf>,
    /// Timer-queue backend. Results are bit-identical across kinds
    /// (pinned by the scheduler-equivalence golden tests); the knob
    /// exists so those tests can run the same experiment on both.
    pub scheduler: simnet::SchedulerKind,
    /// Install the happens-before race detector on the cluster and
    /// panic at the end of the run if any rule fired. Also switched on
    /// by `--racecheck` on any bench binary or `NAMDEX_RACECHECK=1`.
    pub racecheck: bool,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        ExperimentConfig {
            design: DesignKind::Cg,
            cg_partition: CgPartition::Range,
            workload: Workload::a(),
            num_keys: 1_000_000,
            clients: 40,
            memory_servers: 4,
            data_dist: DataDist::Uniform,
            colocated: false,
            warmup: SimDur::from_millis(5),
            measure: SimDur::from_millis(40),
            seed: 42,
            page_size: PageLayout::DEFAULT_PAGE_SIZE,
            head_stride: 8,
            cache_capacity: None,
            spec: None,
            fault_plan: None,
            timeline_window: SimDur::ZERO,
            trace_path: None,
            scheduler: simnet::SchedulerKind::default(),
            racecheck: false,
        }
    }
}

/// One timeline window's worth of completions (see
/// [`ExperimentConfig::timeline_window`]).
#[derive(Clone, Copy, Debug, Default)]
pub struct TimelinePoint {
    /// Window start, milliseconds of virtual time.
    pub t_ms: f64,
    /// Operations completed in the window.
    pub ops: u64,
    /// Operations aborted in the window (retries exhausted or client
    /// killed mid-operation).
    pub aborts: u64,
    /// Mean latency of the window's completions, nanoseconds.
    pub mean_lat_ns: f64,
}

/// Measurements from one run.
#[derive(Debug)]
pub struct ExperimentResult {
    /// Operations completed inside the measurement window.
    pub ops: u64,
    /// Throughput in operations/second.
    pub throughput: f64,
    /// Latency histogram (nanoseconds) of measured operations.
    pub latency: Histogram,
    /// Wire bytes moved during the window (all servers, both
    /// directions).
    pub wire_bytes: u64,
    /// Wire bandwidth used, GB/s.
    pub wire_gbps: f64,
    /// Aggregate wire capacity of the deployment, GB/s (Fig. 9's "Max.
    /// Bandwidth" line).
    pub max_bandwidth_gbps: f64,
    /// Per-server counter deltas over the window.
    pub per_server: Vec<ServerStats>,
    /// Operations aborted inside the measurement window.
    pub aborts: u64,
    /// Cluster-wide fault/injection counters for the whole run.
    pub fault_stats: FaultStats,
    /// Per-window throughput/abort timeline (empty unless
    /// [`ExperimentConfig::timeline_window`] is set).
    pub timeline: Vec<TimelinePoint>,
    /// Telemetry registry snapshot (empty unless
    /// [`ExperimentConfig::trace_path`] is set).
    pub metrics: Vec<MetricRow>,
    /// Model routing counters for the whole run (`None` unless the
    /// design is [`DesignKind::Learned`]).
    pub learned: Option<LearnedStats>,
    /// Scheduling events the simulator processed over the whole run
    /// (deterministic; divide by wall time for a raw-speed figure).
    pub sim_events: u64,
    /// Completed crash/recovery cycles, in completion order (empty
    /// unless the spec runs `Durability::Wal` and the fault plan
    /// crashes a server).
    pub recoveries: Vec<RecoveryRecord>,
}

fn delta(end: &ServerStats, start: &ServerStats) -> ServerStats {
    ServerStats {
        bytes_in: end.bytes_in - start.bytes_in,
        bytes_out: end.bytes_out - start.bytes_out,
        local_bytes: end.local_bytes - start.local_bytes,
        onesided_ops: end.onesided_ops - start.onesided_ops,
        rpcs: end.rpcs - start.rpcs,
        nic_busy_nanos: end.nic_busy_nanos - start.nic_busy_nanos,
        cpu_busy_nanos: end.cpu_busy_nanos - start.cpu_busy_nanos,
    }
}

/// Build the configured design over freshly loaded data.
fn build_design(cfg: &ExperimentConfig, nam: &NamCluster, data: Dataset) -> Design {
    let layout = PageLayout::new(cfg.page_size);
    let n = nam.num_servers();
    let domain = data.domain();
    let range_partition = match cfg.data_dist {
        DataDist::Uniform => PartitionMap::range_uniform(n, domain),
        DataDist::Skewed => PartitionMap::range_fractions(&skew_fractions(n), domain),
    };
    match cfg.design {
        DesignKind::Cg => {
            let partition = match cfg.cg_partition {
                CgPartition::Range => range_partition,
                CgPartition::Hash => PartitionMap::hash(n),
            };
            Design::Cg(CoarseGrained::build(
                nam,
                layout,
                partition,
                data.iter(),
                0.7,
            ))
        }
        DesignKind::Fg => Design::Fg(FineGrained::build(
            &nam.rdma,
            FgConfig {
                layout,
                fill: 0.7,
                head_stride: cfg.head_stride,
                cache_capacity: cfg.cache_capacity,
            },
            data.iter(),
        )),
        DesignKind::Hybrid => Design::Hybrid(Hybrid::build(
            nam,
            FgConfig {
                layout,
                fill: 0.7,
                head_stride: cfg.head_stride,
                cache_capacity: cfg.cache_capacity,
            },
            range_partition,
            data.iter(),
        )),
        DesignKind::Learned => Design::Learned(Learned::build(
            nam,
            FgConfig {
                layout,
                fill: 0.7,
                head_stride: cfg.head_stride,
                cache_capacity: cfg.cache_capacity,
            },
            range_partition,
            data.iter(),
        )),
    }
}

/// Wall-clock nanoseconds since the first call, for the process-wide
/// events/sec meter. Reporting only — never feeds back into simulation
/// state, so determinism is untouched.
#[allow(clippy::disallowed_methods, clippy::disallowed_types)]
fn wall_nanos() -> u64 {
    use std::time::Instant; // xtask: allow(wall-clock-instant)
    static EPOCH: std::sync::OnceLock<Instant> = std::sync::OnceLock::new();
    EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64 // xtask: allow(wall-clock-instant)
}

/// Run one experiment to completion and return its measurements.
pub fn run_experiment(cfg: &ExperimentConfig) -> ExperimentResult {
    let wall_start = wall_nanos();
    let sim = Sim::with_scheduler(cfg.scheduler);
    // Model-checker parity hook: route every scheduling decision through
    // the explicit FIFO policy so `cargo xtask mc` can prove the
    // controlled scheduler is bit-identical to the uncontrolled executor
    // on the engine-parity golden digest.
    if std::env::var_os("NAMDEX_MC_FIFO").is_some() {
        sim.set_schedule_policy(Box::new(simnet::FifoPolicy));
    }
    let spec = cfg
        .spec
        .clone()
        .unwrap_or_else(|| ClusterSpec::with_memory_servers(cfg.memory_servers));
    let machines = spec.machines;
    let nam = NamCluster::new(&sim, spec);
    nam.rdma.set_active_clients(cfg.clients);

    // Telemetry (installed before the build so even setup-phase verbs,
    // if any, are observed; the run is untelemetered when no trace is
    // requested and the observer hooks stay behind their flag check).
    // `--trace` on any bench binary traces every experiment the process
    // runs: the first to the given path, later ones numbered.
    let trace_path = cfg.trace_path.clone().or_else(|| {
        crate::cli::parse_args()
            .trace_path()
            .map(next_cli_trace_path)
    });
    let tel = trace_path.as_ref().map(|_| {
        let tel = Telemetry::with_trace(Registry::new());
        tel.install(&nam.rdma);
        tel
    });

    // Happens-before race detector (opt-in; installed before the build
    // like telemetry so every timed verb of the run is clocked). The
    // run *fails* on a violation — a race under a bench workload is a
    // protocol bug, not a statistic.
    let racecheck_on = cfg.racecheck
        || crate::cli::parse_args().racecheck
        || std::env::var_os("NAMDEX_RACECHECK").is_some_and(|v| v == "1");
    let race = racecheck_on.then(|| racecheck::Racecheck::install(&nam.rdma, cfg.page_size));

    let data = Dataset::new(cfg.num_keys);
    let design = build_design(cfg, &nam, data);

    let warmup_end = sim.now() + cfg.warmup;
    let end = warmup_end + cfg.measure;

    // Fault schedule (installed before any client issues a verb, so the
    // drop-roll RNG is seeded identically for every same-plan run).
    if let Some(plan) = &cfg.fault_plan {
        ChaosController::install_nam(&sim, &nam, plan.clone());
    }

    // Shared measurement state.
    let ops = Rc::new(Counter::new());
    let aborts = Rc::new(Counter::new());
    let latency = Rc::new(RefCell::new(Histogram::new()));
    let win = cfg.timeline_window;
    let n_windows = if win == SimDur::ZERO {
        0
    } else {
        (end.as_nanos()).div_ceil(win.as_nanos()) as usize
    };
    // (ops, aborts, latency sum) per window.
    let windows = Rc::new(RefCell::new(vec![(0u64, 0u64, 0u64); n_windows]));

    // One Zipf table shared by all clients (it is O(num_keys) to build).
    let zipf = match cfg.workload.dist {
        RequestDist::Zipfian(theta) => Some(Rc::new(Zipf::new(cfg.num_keys, theta))),
        RequestDist::Uniform => None,
    };

    for c in 0..cfg.clients {
        let ep = if cfg.colocated {
            Endpoint::colocated(&nam.rdma, c % machines)
        } else {
            Endpoint::new(&nam.rdma)
        };
        let design = design.clone();
        let sim_c = sim.clone();
        let cluster = nam.rdma.clone();
        let ops = ops.clone();
        let aborts = aborts.clone();
        let latency = latency.clone();
        let windows = windows.clone();
        // Per-client zipf sampling goes through a shared table; OpGen
        // needs its own copy handle, so rebuild tiny per-client
        // generators around the shared table.
        let mut gen = OpGen::with_shared_zipf(
            cfg.workload,
            data,
            c as u64,
            cfg.clients as u64,
            cfg.seed,
            zipf.as_ref().map(|z| (**z).clone()),
        );
        sim.spawn(async move {
            loop {
                let op = gen.next_op();
                let t0 = sim_c.now();
                let outcome = match op {
                    Op::Point(k) => design.lookup(&ep, k).await.map(|_| ()),
                    Op::Range(lo, hi) => design.range(&ep, lo, hi).await.map(|_| ()),
                    Op::Insert(k, v) => design.insert(&ep, k, v).await.map(|_| ()),
                };
                let t1 = sim_c.now();
                // Completion-based counting: an operation belongs to the
                // window it completes in (long scans can outlive the
                // warmup or span window fractions).
                let measured = t1 > warmup_end && t1 <= end;
                let lat = (t1 - t0).as_nanos();
                match outcome {
                    Ok(()) => {
                        if measured {
                            ops.inc();
                            latency.borrow_mut().record(lat);
                        }
                        if win != SimDur::ZERO {
                            let i = (t1.as_nanos() / win.as_nanos()) as usize;
                            if let Some(w) = windows.borrow_mut().get_mut(i) {
                                w.0 += 1;
                                w.2 += lat;
                            }
                        }
                    }
                    Err(e) => {
                        if measured {
                            aborts.inc();
                        }
                        if win != SimDur::ZERO {
                            let i = (t1.as_nanos() / win.as_nanos()) as usize;
                            if let Some(w) = windows.borrow_mut().get_mut(i) {
                                w.1 += 1;
                            }
                        }
                        // A killed client parks until its revival instead
                        // of spinning on `Cancelled` at a frozen virtual
                        // instant.
                        if e.is_cancelled() {
                            while cluster.client_dead(ep.client_id()) {
                                sim_c.sleep(SimDur::from_micros(10)).await;
                            }
                        }
                    }
                }
            }
        });
    }

    // Snapshot counters at the end of warmup.
    let baseline = Rc::new(RefCell::new(Vec::<ServerStats>::new()));
    {
        let nam_rdma = nam.rdma.clone();
        let baseline = baseline.clone();
        let sim_c = sim.clone();
        sim.spawn(async move {
            sim_c.sleep_until(warmup_end).await;
            *baseline.borrow_mut() = nam_rdma.all_stats();
        });
    }

    sim.run_until(end);

    let start_stats = baseline.borrow().clone();
    assert!(
        !start_stats.is_empty(),
        "warmup snapshot task must have fired"
    );
    let end_stats = nam.rdma.all_stats();
    let per_server: Vec<ServerStats> = end_stats
        .iter()
        .zip(start_stats.iter())
        .map(|(e, s)| delta(e, s))
        .collect();
    let wire_bytes: u64 = per_server.iter().map(|s| s.bytes_in + s.bytes_out).sum();
    let secs = cfg.measure.as_secs_f64();
    let count = ops.get();
    let hist = latency.borrow().clone();

    let timeline = windows
        .borrow()
        .iter()
        .enumerate()
        .map(|(i, &(w_ops, w_aborts, lat_sum))| TimelinePoint {
            t_ms: i as f64 * win.as_nanos() as f64 / 1e6,
            ops: w_ops,
            aborts: w_aborts,
            mean_lat_ns: if w_ops > 0 {
                lat_sum as f64 / w_ops as f64
            } else {
                0.0
            },
        })
        .collect();

    let metrics = match (&tel, &trace_path) {
        (Some(tel), Some(path)) => {
            assert_eq!(
                tel.breakdown_mismatches(),
                0,
                "span breakdowns must sum exactly to op latency"
            );
            if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
                std::fs::create_dir_all(dir).expect("create trace directory");
            }
            tel.write_chrome_trace(path).expect("write trace JSON");
            let metrics_path = metrics_csv_path(path);
            std::fs::write(&metrics_path, tel.registry().to_csv()).expect("write metrics CSV");
            eprintln!(
                "[trace] wrote {} and {}",
                path.display(),
                metrics_path.display()
            );
            tel.registry().snapshot()
        }
        _ => Vec::new(),
    };

    if let Some(race) = &race {
        let c = race.counts();
        eprintln!(
            "[racecheck] {} page reads checked, {} racy, {} dirty, {} validated, {} violations",
            c.reads_checked, c.racy_reads, c.dirty_reads, c.validated, c.violations
        );
        race.assert_clean();
    }

    crate::trajectory::meter_record(sim.events_processed(), wall_nanos() - wall_start);
    ExperimentResult {
        ops: count,
        throughput: count as f64 / secs,
        latency: hist,
        wire_bytes,
        wire_gbps: wire_bytes as f64 / secs / 1e9,
        max_bandwidth_gbps: nam.rdma.aggregate_bandwidth() / 1e9,
        per_server,
        aborts: aborts.get(),
        fault_stats: nam.rdma.fault_stats(),
        timeline,
        metrics,
        learned: design.learned_stats(),
        sim_events: sim.events_processed(),
        recoveries: nam.rdma.recovery_records(),
    }
}

/// The metrics-snapshot path written next to a trace: `out.json` →
/// `out.metrics.csv`.
pub fn metrics_csv_path(trace_path: &std::path::Path) -> PathBuf {
    trace_path.with_extension("metrics.csv")
}

thread_local! {
    /// Traced-experiment ordinal within this process (sweeps run many
    /// experiments; each needs its own trace file).
    static TRACE_SEQ: std::cell::Cell<u32> = const { std::cell::Cell::new(0) };
}

/// Resolve the CLI `--trace PATH` for the next experiment in this
/// process: the first keeps `PATH` verbatim, later ones number
/// themselves before the extension (`out.json` → `out.2.json`, …) so a
/// sweep's traces never overwrite each other. Run order is
/// deterministic, so the numbering is too.
fn next_cli_trace_path(path: PathBuf) -> PathBuf {
    let seq = TRACE_SEQ.with(|c| {
        let n = c.get() + 1;
        c.set(n);
        n
    });
    if seq <= 1 {
        return path;
    }
    let ext = path.extension().map(|e| e.to_string_lossy().into_owned());
    let stem = path
        .file_stem()
        .unwrap_or_default()
        .to_string_lossy()
        .into_owned();
    let numbered = match ext {
        Some(ext) => format!("{stem}.{seq}.{ext}"),
        None => format!("{stem}.{seq}"),
    };
    path.with_file_name(numbered)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(design: DesignKind) -> ExperimentConfig {
        ExperimentConfig {
            design,
            num_keys: 20_000,
            clients: 8,
            warmup: SimDur::from_millis(1),
            measure: SimDur::from_millis(5),
            ..ExperimentConfig::default()
        }
    }

    #[test]
    fn all_designs_produce_throughput() {
        for design in [
            DesignKind::Cg,
            DesignKind::Fg,
            DesignKind::Hybrid,
            DesignKind::Learned,
        ] {
            let r = run_experiment(&quick(design));
            assert!(r.ops > 100, "{design:?} completed only {} ops", r.ops);
            assert!(r.throughput > 0.0);
            assert!(r.latency.count() == r.ops);
            assert!(r.wire_bytes > 0);
            assert_eq!(r.learned.is_some(), design == DesignKind::Learned);
        }
    }

    #[test]
    fn runs_are_deterministic() {
        let a = run_experiment(&quick(DesignKind::Fg));
        let b = run_experiment(&quick(DesignKind::Fg));
        assert_eq!(a.ops, b.ops);
        assert_eq!(a.wire_bytes, b.wire_bytes);
        assert_eq!(a.latency.percentile(0.5), b.latency.percentile(0.5));
    }

    #[test]
    fn more_clients_more_throughput_until_saturation() {
        let mut last = 0.0;
        for clients in [2usize, 8, 32] {
            let cfg = ExperimentConfig {
                clients,
                ..quick(DesignKind::Fg)
            };
            let r = run_experiment(&cfg);
            assert!(
                r.throughput > last * 1.2,
                "{clients} clients: {} vs {last}",
                r.throughput
            );
            last = r.throughput;
        }
    }

    #[test]
    fn skewed_data_hurts_cg_only() {
        let mk = |design, dist| {
            let cfg = ExperimentConfig {
                data_dist: dist,
                clients: 32,
                ..quick(design)
            };
            run_experiment(&cfg).throughput
        };
        let cg_u = mk(DesignKind::Cg, DataDist::Uniform);
        let cg_s = mk(DesignKind::Cg, DataDist::Skewed);
        let fg_u = mk(DesignKind::Fg, DataDist::Uniform);
        let fg_s = mk(DesignKind::Fg, DataDist::Skewed);
        assert!(
            cg_s < cg_u * 0.9,
            "CG must lose under skew: {cg_s} vs {cg_u}"
        );
        assert!(
            fg_s > fg_u * 0.85,
            "FG must be robust to skew: {fg_s} vs {fg_u}"
        );
    }

    #[test]
    fn insert_workload_runs_on_all_designs() {
        for design in [
            DesignKind::Cg,
            DesignKind::Fg,
            DesignKind::Hybrid,
            DesignKind::Learned,
        ] {
            let cfg = ExperimentConfig {
                workload: Workload::d(),
                ..quick(design)
            };
            let r = run_experiment(&cfg);
            assert!(r.ops > 50, "{design:?}: {}", r.ops);
        }
    }

    #[test]
    fn learned_point_lookups_avoid_rpcs() {
        // Read-only uniform workload (A = 100% point queries): every
        // lookup routes through the model, so the run carries zero RPCs
        // and records predictions without a single fallback.
        let r = run_experiment(&quick(DesignKind::Learned));
        let rpcs: u64 = r.per_server.iter().map(|s| s.rpcs).sum();
        assert_eq!(rpcs, 0, "model-routed lookups must not RPC");
        let l = r.learned.expect("learned stats present");
        assert!(l.predictions > 0);
        assert_eq!(l.fallbacks, 0);
    }

    #[test]
    fn colocation_raises_throughput() {
        let base = quick(DesignKind::Cg);
        let distributed = run_experiment(&base).throughput;
        let colocated = run_experiment(&ExperimentConfig {
            colocated: true,
            ..base
        })
        .throughput;
        assert!(
            colocated > distributed,
            "co-location must help: {colocated} vs {distributed}"
        );
    }

    #[test]
    fn hash_partition_runs() {
        let cfg = ExperimentConfig {
            cg_partition: CgPartition::Hash,
            workload: Workload::b(0.01),
            ..quick(DesignKind::Cg)
        };
        let r = run_experiment(&cfg);
        assert!(
            r.ops > 20,
            "hash-partitioned ranges must complete: {}",
            r.ops
        );
    }

    #[test]
    fn more_servers_help_fg() {
        let small = run_experiment(&ExperimentConfig {
            memory_servers: 2,
            clients: 32,
            ..quick(DesignKind::Fg)
        })
        .throughput;
        let big = run_experiment(&ExperimentConfig {
            memory_servers: 8,
            clients: 32,
            ..quick(DesignKind::Fg)
        })
        .throughput;
        assert!(
            big > small * 1.2,
            "FG must scale with servers: {small} -> {big}"
        );
    }

    #[test]
    fn traced_runs_are_byte_identical_per_seed() {
        let dir = std::env::temp_dir().join("namdex_driver_trace_test");
        std::fs::create_dir_all(&dir).unwrap();
        let run = |name: &str| {
            let cfg = ExperimentConfig {
                clients: 4,
                num_keys: 5_000,
                warmup: SimDur::from_millis(1),
                measure: SimDur::from_millis(2),
                trace_path: Some(dir.join(name)),
                ..quick(DesignKind::Hybrid)
            };
            let r = run_experiment(&cfg);
            assert!(!r.metrics.is_empty(), "telemetry must produce metrics");
            let trace = std::fs::read_to_string(dir.join(name)).unwrap();
            let metrics = std::fs::read_to_string(metrics_csv_path(&dir.join(name))).unwrap();
            (trace, metrics)
        };
        let (trace_a, metrics_a) = run("a.json");
        let (trace_b, metrics_b) = run("b.json");
        assert_eq!(trace_a, trace_b, "same seed must give an identical trace");
        assert_eq!(metrics_a, metrics_b);
        assert!(trace_a.contains("\"ph\":\"X\""), "verb events present");
        assert!(trace_a.contains("\"ph\":\"B\""), "op spans present");
        assert!(metrics_a.contains("op.lookup.count"));
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn skew_fractions_sum_to_one() {
        for n in 1..=8 {
            let f = skew_fractions(n);
            assert_eq!(f.len(), n);
            assert!((f.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            if n > 1 {
                assert!(f[0] > 0.5, "first server dominates");
            }
        }
    }
}
