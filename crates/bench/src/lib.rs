#![warn(missing_docs)]

//! # bench — the experiment harness
//!
//! Reproduces every table and figure of the paper's evaluation (§6 and
//! appendices). [`driver`] runs one configuration — deploy a simulated
//! NAM cluster, build an index design, load YCSB data, drive closed-loop
//! clients, measure throughput/latency/network — and the `src/bin/fig*`
//! binaries sweep configurations to regenerate each figure's series.
//! [`plot`] renders ASCII charts and CSV files.

pub mod cli;
pub mod driver;
pub mod figures;
pub mod parallel;
pub mod plot;
pub mod trajectory;

pub use cli::{parse_args, BenchArgs};
pub use driver::{
    metrics_csv_path, run_experiment, CgPartition, DataDist, DesignKind, ExperimentConfig,
    ExperimentResult, TimelinePoint,
};
