//! Minimal flag parsing shared by the experiment binaries.
//!
//! Every binary accepts `--seed N` (workload seed, default 42) and
//! `--fault-seed N` (seed for a randomized fault plan where the binary
//! supports fault injection). Binaries that run experiments also accept
//! `--trace PATH`: record a Chrome-trace/Perfetto JSON of the run's
//! verb/op/fault events (in virtual time) to `PATH`, plus a
//! `PATH.metrics.csv` metrics-registry snapshot next to it. The main
//! sweeps additionally accept `--cache-capacity N`: attach a client-side
//! cache of `N` entries (`0` = unbounded) to the pointer-resolving
//! designs' operation path, and `--racecheck` (or `NAMDEX_RACECHECK=1`):
//! install the happens-before race detector on every cluster the sweep
//! builds and fail the run on any violation. Both `--flag N` and
//! `--flag=N` forms work; flags the binaries do not know are ignored so
//! wrappers can pass extra arguments through.

/// Arguments recognised by the experiment binaries.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BenchArgs {
    /// `--seed`: workload generation seed.
    pub seed: Option<u64>,
    /// `--fault-seed`: randomized fault-plan seed.
    pub fault_seed: Option<u64>,
    /// `--trace`: write a Chrome-trace JSON of the run here.
    pub trace: Option<String>,
    /// `--cache-capacity`: client cache capacity in entries (0 =
    /// unbounded). Absent = caching off.
    pub cache_capacity: Option<usize>,
    /// `--racecheck`: install the happens-before race detector on the
    /// cluster and fail the run on any violation. Also settable via
    /// `NAMDEX_RACECHECK=1`.
    pub racecheck: bool,
}

impl BenchArgs {
    /// The workload seed, defaulting to the repo-wide 42.
    pub fn seed_or_default(&self) -> u64 {
        self.seed.unwrap_or(42)
    }

    /// The trace output path, if `--trace` was given.
    pub fn trace_path(&self) -> Option<std::path::PathBuf> {
        self.trace.as_ref().map(std::path::PathBuf::from)
    }
}

/// Parse the process arguments.
pub fn parse_args() -> BenchArgs {
    parse_from(std::env::args().skip(1))
}

/// Parse an explicit argument list (testable core of [`parse_args`]).
pub fn parse_from(args: impl Iterator<Item = String>) -> BenchArgs {
    let mut out = BenchArgs::default();
    let mut args = args.peekable();
    while let Some(arg) = args.next() {
        let (flag, inline) = match arg.split_once('=') {
            Some((f, v)) => (f.to_string(), Some(v.to_string())),
            None => (arg, None),
        };
        if flag == "--racecheck" {
            // Boolean flag: no value.
            out.racecheck = true;
            continue;
        }
        if !matches!(
            flag.as_str(),
            "--seed" | "--fault-seed" | "--trace" | "--cache-capacity"
        ) {
            continue;
        }
        let value = inline.or_else(|| args.next());
        let value = value.unwrap_or_else(|| panic!("{flag} needs a value"));
        if flag == "--trace" {
            out.trace = Some(value);
            continue;
        }
        let parsed = value
            .parse()
            .unwrap_or_else(|_| panic!("{flag} expects an unsigned integer, got {value:?}"));
        match flag.as_str() {
            "--seed" => out.seed = Some(parsed),
            "--fault-seed" => out.fault_seed = Some(parsed),
            _ => out.cache_capacity = Some(parsed as usize),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> BenchArgs {
        parse_from(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn parses_both_flag_forms() {
        assert_eq!(
            parse(&["--seed", "7", "--fault-seed=9"]),
            BenchArgs {
                seed: Some(7),
                fault_seed: Some(9),
                trace: None,
                cache_capacity: None,
                racecheck: false,
            }
        );
    }

    #[test]
    fn parses_trace_path() {
        let got = parse(&["--trace", "out.json", "--seed=3"]);
        assert_eq!(got.trace.as_deref(), Some("out.json"));
        assert_eq!(got.trace_path(), Some(std::path::PathBuf::from("out.json")));
        assert_eq!(got.seed, Some(3));
        let eq = parse(&["--trace=/tmp/t.json"]);
        assert_eq!(eq.trace.as_deref(), Some("/tmp/t.json"));
    }

    #[test]
    fn parses_cache_capacity() {
        let got = parse(&["--cache-capacity", "0"]);
        assert_eq!(got.cache_capacity, Some(0));
        let eq = parse(&["--cache-capacity=4096"]);
        assert_eq!(eq.cache_capacity, Some(4096));
        assert_eq!(parse(&[]).cache_capacity, None);
    }

    #[test]
    fn parses_racecheck_flag() {
        assert!(parse(&["--racecheck"]).racecheck);
        // Boolean: consumes no value.
        let got = parse(&["--racecheck", "--seed", "5"]);
        assert!(got.racecheck);
        assert_eq!(got.seed, Some(5));
        assert!(!parse(&[]).racecheck);
    }

    #[test]
    fn unknown_flags_are_ignored() {
        let got = parse(&["--verbose", "--seed=3", "positional"]);
        assert_eq!(got.seed, Some(3));
        assert_eq!(got.fault_seed, None);
    }

    #[test]
    fn defaults_when_absent() {
        let got = parse(&[]);
        assert_eq!(got, BenchArgs::default());
        assert_eq!(got.seed_or_default(), 42);
        assert_eq!(got.trace_path(), None);
    }

    #[test]
    #[should_panic(expected = "expects an unsigned integer")]
    fn rejects_malformed_values() {
        parse(&["--seed", "many"]);
    }
}
