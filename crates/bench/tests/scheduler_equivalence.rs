//! Scheduler-equivalence golden tests: the timing-wheel timer queue
//! must be observationally identical to the reference `BinaryHeap` —
//! same event order, same virtual-time results — on pinned seeds,
//! including chaos and WAL-recovery schedules.
//!
//! Both backends pop timers in strict `(deadline, seq)` order, so the
//! entire simulation transcript is independent of the backend; these
//! tests pin that at the level of full experiments by fingerprinting
//! every deterministic field of the result. (The engine-parity golden
//! digest pins the same property against the *committed* pre-wheel
//! history; this test keeps working even when the golden is re-blessed.)

use bench::{run_experiment, DesignKind, ExperimentConfig, ExperimentResult};
use chaos::{FaultPlan, LinkDegrade};
use rdma_sim::{ClusterSpec, Durability};
use simnet::{SchedulerKind, SimDur, SimTime};
use ycsb::Workload;

/// Every deterministic field of a result, bit-exact.
fn fingerprint(r: &ExperimentResult) -> Vec<u64> {
    let mut fp = vec![
        r.ops,
        r.throughput.to_bits(),
        r.latency.percentile(0.5),
        r.latency.percentile(0.99),
        r.latency.mean().to_bits(),
        r.wire_bytes,
        r.aborts,
        r.sim_events,
        r.recoveries.len() as u64,
    ];
    for rec in &r.recoveries {
        fp.push(rec.replay_bytes);
        fp.push(rec.records_replayed);
    }
    fp
}

fn run_with(kind: SchedulerKind, cfg: &ExperimentConfig) -> Vec<u64> {
    let cfg = ExperimentConfig {
        scheduler: kind,
        ..cfg.clone()
    };
    fingerprint(&run_experiment(&cfg))
}

fn assert_equiv(label: &str, cfg: &ExperimentConfig) {
    let wheel = run_with(SchedulerKind::Wheel, cfg);
    let heap = run_with(SchedulerKind::Heap, cfg);
    assert_eq!(
        wheel, heap,
        "{label}: timing wheel diverged from the reference heap scheduler"
    );
    // Determinism within one backend too (a cheap canary: if this
    // fails, the divergence above would be noise, not signal).
    assert_eq!(
        wheel,
        run_with(SchedulerKind::Wheel, cfg),
        "{label}: wheel rerun"
    );
}

fn small(design: DesignKind, workload: Workload) -> ExperimentConfig {
    ExperimentConfig {
        design,
        workload,
        num_keys: 20_000,
        clients: 10,
        warmup: SimDur::from_millis(1),
        measure: SimDur::from_millis(5),
        seed: 42,
        ..ExperimentConfig::default()
    }
}

#[test]
fn wheel_matches_heap_on_point_lookups_all_designs() {
    for design in [
        DesignKind::Cg,
        DesignKind::Fg,
        DesignKind::Hybrid,
        DesignKind::Learned,
    ] {
        assert_equiv(&format!("{design:?}/point"), &small(design, Workload::a()));
    }
}

#[test]
fn wheel_matches_heap_on_ranges_and_inserts() {
    assert_equiv("Fg/range", &small(DesignKind::Fg, Workload::b(0.001)));
    assert_equiv("Hybrid/insert", &small(DesignKind::Hybrid, Workload::d()));
}

#[test]
fn wheel_matches_heap_under_chaos() {
    // Message loss + a client kill mid-window: fault timers, retry
    // backoffs, and lease machinery all go through the timer queue.
    let plan = FaultPlan::with_seed(9)
        .degrade_link(
            SimTime::from_millis(2),
            0,
            LinkDegrade {
                drop_chance: 0.2,
                extra_delay: SimDur::from_micros(2),
                bandwidth_factor: 1.0,
            },
        )
        .restore_link(SimTime::from_millis(3), 0)
        .kill_client(SimTime::from_millis(4), 3);
    let cfg = ExperimentConfig {
        fault_plan: Some(plan),
        measure: SimDur::from_millis(6),
        ..small(DesignKind::Hybrid, Workload::a())
    };
    assert_equiv("Hybrid/chaos", &cfg);
}

#[test]
fn wheel_matches_heap_through_wal_crash_recovery() {
    // Crash a server under `Durability::Wal` with writes in flight and
    // recover it mid-window: checkpoint/log streaming, replay CPU, and
    // the boot latency are all timer-driven.
    let spec = ClusterSpec {
        durability: Durability::Wal,
        ..ClusterSpec::with_memory_servers(4)
    };
    let plan = FaultPlan::with_seed(11)
        .crash_server(SimTime::from_millis(2), 1)
        .restart_server(SimTime::from_micros(2_300), 1);
    let cfg = ExperimentConfig {
        spec: Some(spec),
        fault_plan: Some(plan),
        measure: SimDur::from_millis(8),
        ..small(DesignKind::Cg, Workload::d())
    };
    let wheel = run_with(SchedulerKind::Wheel, &cfg);
    let heap = run_with(SchedulerKind::Heap, &cfg);
    assert_eq!(wheel, heap, "recovery schedule diverged");
    // The scenario must actually exercise recovery for the test to
    // mean anything.
    let r = run_experiment(&cfg);
    assert!(
        !r.recoveries.is_empty(),
        "crash/restart plan produced no completed recovery cycle"
    );
}
