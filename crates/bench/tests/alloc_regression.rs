//! Allocation-count regression gate for the zero-copy hot path.
//!
//! A counting global allocator wraps the system allocator; after a
//! warmup phase has populated the `BufArena` free lists and grown every
//! executor structure (timing-wheel slot vectors, ready queue, arena
//! bins) to steady capacity, a window of fine-grained point lookups
//! must perform **zero** heap allocations — the property the PageBuf
//! arena exists to provide (DESIGN.md §17). A regression that
//! reintroduces a per-verb `Vec` shows up here as an exact count, not a
//! profile hunch.
//!
//! This lives in its own integration-test binary because a global
//! allocator is process-wide.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use namdex_core::{FgConfig, FineGrained};
use rdma_sim::{ClusterSpec, Endpoint};
use simnet::Sim;

struct CountingAlloc;

static COUNTING: AtomicBool = AtomicBool::new(false);
static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[test]
fn steady_state_fg_lookups_allocate_nothing() {
    let sim = Sim::new();
    let nam = nam::NamCluster::new(&sim, ClusterSpec::with_memory_servers(4));
    nam.rdma.set_active_clients(1);
    let data = ycsb::Dataset::new(20_000);
    let domain = data.domain();
    let fg = FineGrained::build(
        &nam.rdma,
        FgConfig {
            layout: blink::PageLayout::default(),
            fill: 0.7,
            head_stride: 8,
            cache_capacity: None,
        },
        data.iter(),
    );
    let cluster = nam.rdma.clone();
    sim.spawn(async move {
        let ep = Endpoint::new(&cluster);
        let mut key = 1u64;
        let mut next = move || {
            key = key
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            key % domain
        };
        // Warmup: fill the arena free lists and grow every executor
        // container (wheel slots, ready queue) to steady capacity.
        for _ in 0..1_000 {
            fg.lookup(&ep, next()).await.expect("warmup lookup");
        }
        ALLOCS.store(0, Ordering::Relaxed);
        COUNTING.store(true, Ordering::Relaxed);
        for _ in 0..500 {
            fg.lookup(&ep, next()).await.expect("measured lookup");
        }
        COUNTING.store(false, Ordering::Relaxed);
    });
    sim.run();
    assert_eq!(
        ALLOCS.load(Ordering::Relaxed),
        0,
        "steady-state fine-grained lookups must perform zero heap allocations"
    );
}
