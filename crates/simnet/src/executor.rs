//! Single-threaded async executor driven by a virtual clock.
//!
//! Tasks are ordinary Rust futures. The only primitive suspension point is a
//! timer ([`Sim::sleep_until`]); all higher-level constructs (NIC links, CPU
//! pools, spinlocks) are built on timers plus shared state, which keeps the
//! event loop tiny and every run deterministic: events fire in
//! `(virtual time, sequence number)` order.

use std::cell::{Cell, RefCell};
use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap, VecDeque};
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::sync::Arc;
use std::task::{Context, Poll, Wake, Waker};

use crate::time::{SimDur, SimTime};

/// The waker-shared ready queue. Behind a `std::sync::Mutex` only
/// because `std::task::Wake` requires `Send + Sync`; the executor is
/// strictly single-threaded, so the lock is never contended.
#[allow(clippy::disallowed_types)]
type ReadyQueue = Arc<std::sync::Mutex<VecDeque<TaskId>>>;

/// Identifier of a spawned task.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct TaskId(u64);

impl TaskId {
    /// The task's spawn index (stable across runs of the same program).
    pub fn as_u64(self) -> u64 {
        self.0
    }

    /// Construct from a raw spawn index. Ids are plain labels, so this
    /// is safe; it exists for schedule-policy tests and tooling.
    pub fn from_u64(v: u64) -> Self {
        TaskId(v)
    }
}

/// A pluggable strategy for resolving scheduler *choice points*.
///
/// Whenever more than one distinct live task is ready at the same virtual
/// instant, the executor asks the installed policy which one to poll next.
/// `ready` lists the candidates in FIFO wake order (duplicates and
/// completed tasks already filtered out); the returned index must be
/// `< ready.len()`. With zero or one candidate the choice is forced and
/// the policy is *not* consulted, so a policy sees exactly the genuine
/// schedule decisions.
///
/// A policy must not call back into the [`Sim`] that owns it (the
/// executor holds internal borrows while choosing).
pub trait SchedulePolicy {
    /// Pick the index (into `ready`) of the next task to poll.
    fn choose(&mut self, now: SimTime, ready: &[TaskId]) -> usize;
}

/// The executor's default tie-break, made explicit: always poll the first
/// ready task in wake order. Installing it is observationally identical
/// to running with no policy at all — every poll happens in the same
/// order — which is what lets golden digests survive under the
/// controlled scheduler.
#[derive(Default)]
pub struct FifoPolicy;

impl SchedulePolicy for FifoPolicy {
    fn choose(&mut self, _now: SimTime, _ready: &[TaskId]) -> usize {
        0
    }
}

type BoxedFuture = Pin<Box<dyn Future<Output = ()>>>;

/// A timer registration: wake `waker` at instant `at`.
struct TimerEvent {
    at: SimTime,
    seq: u64,
    waker: Waker,
}

impl PartialEq for TimerEvent {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for TimerEvent {}
impl PartialOrd for TimerEvent {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for TimerEvent {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// Wakes a task by pushing its id onto the shared ready queue.
///
/// The queue is behind a `std::sync::Mutex` only because `std::task::Wake`
/// requires `Send + Sync`; the executor itself is strictly single-threaded,
/// so the lock is never contended.
struct TaskWaker {
    task: TaskId,
    ready: ReadyQueue,
}

impl Wake for TaskWaker {
    fn wake(self: Arc<Self>) {
        self.ready
            .lock()
            .expect("ready queue poisoned")
            .push_back(self.task);
    }
}

struct SimInner {
    now: Cell<SimTime>,
    seq: Cell<u64>,
    next_task: Cell<u64>,
    timers: RefCell<BinaryHeap<Reverse<TimerEvent>>>,
    tasks: RefCell<BTreeMap<TaskId, BoxedFuture>>,
    /// Tasks spawned while the executor is mid-poll; merged before each poll.
    incoming: RefCell<Vec<(TaskId, BoxedFuture)>>,
    ready: ReadyQueue,
    live_tasks: Cell<usize>,
    /// Installed schedule policy; `None` keeps the raw FIFO fast path.
    policy: RefCell<Option<Box<dyn SchedulePolicy>>>,
}

/// Handle to the simulation: clock, spawner, and event loop.
///
/// Cheap to clone; all clones share the same world.
#[derive(Clone)]
pub struct Sim {
    inner: Rc<SimInner>,
}

impl Default for Sim {
    fn default() -> Self {
        Self::new()
    }
}

impl Sim {
    /// Create an empty simulation at `t = 0`.
    pub fn new() -> Self {
        Sim {
            inner: Rc::new(SimInner {
                now: Cell::new(SimTime::ZERO),
                seq: Cell::new(0),
                next_task: Cell::new(0),
                timers: RefCell::new(BinaryHeap::new()),
                tasks: RefCell::new(BTreeMap::new()),
                incoming: RefCell::new(Vec::new()),
                ready: ReadyQueue::default(),
                live_tasks: Cell::new(0),
                policy: RefCell::new(None),
            }),
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.inner.now.get()
    }

    /// Number of tasks that have been spawned and not yet completed.
    pub fn live_tasks(&self) -> usize {
        self.inner.live_tasks.get()
    }

    /// Total scheduling events sequenced so far (timers, wakeups,
    /// spawns). Monotone over the life of the simulation — the raw
    /// event-loop work metric the bench trajectory divides by wall
    /// time for its events/sec figure.
    pub fn events_processed(&self) -> u64 {
        self.inner.seq.get()
    }

    /// Install a [`SchedulePolicy`] that resolves every subsequent choice
    /// point. Replaces any previously installed policy.
    pub fn set_schedule_policy(&self, policy: Box<dyn SchedulePolicy>) {
        *self.inner.policy.borrow_mut() = Some(policy);
    }

    /// Remove the installed policy (returning it), restoring the raw FIFO
    /// fast path.
    pub fn clear_schedule_policy(&self) -> Option<Box<dyn SchedulePolicy>> {
        self.inner.policy.borrow_mut().take()
    }

    fn next_seq(&self) -> u64 {
        let s = self.inner.seq.get();
        self.inner.seq.set(s + 1);
        s
    }

    /// Spawn a task. It is polled for the first time when the event loop
    /// next runs (immediately at the current virtual time).
    pub fn spawn(&self, fut: impl Future<Output = ()> + 'static) -> TaskId {
        let id = TaskId(self.inner.next_task.get());
        self.inner.next_task.set(id.0 + 1);
        self.inner.incoming.borrow_mut().push((id, Box::pin(fut)));
        self.inner.live_tasks.set(self.inner.live_tasks.get() + 1);
        self.inner
            .ready
            .lock()
            .expect("ready queue poisoned")
            .push_back(id);
        id
    }

    /// Future resolving at virtual instant `deadline` (immediately if the
    /// deadline has passed).
    pub fn sleep_until(&self, deadline: SimTime) -> Sleep {
        Sleep {
            sim: self.clone(),
            deadline,
            registered: false,
        }
    }

    /// Future resolving after `dur` of virtual time.
    pub fn sleep(&self, dur: SimDur) -> Sleep {
        self.sleep_until(self.now() + dur)
    }

    /// Run until no timers or runnable tasks remain.
    ///
    /// Returns the final virtual time.
    pub fn run(&self) -> SimTime {
        self.run_until(SimTime::MAX)
    }

    /// Run until the event queue is exhausted or the next timer lies
    /// strictly after `horizon`. The clock never exceeds `horizon`.
    ///
    /// Returns the virtual time at which execution stopped.
    pub fn run_until(&self, horizon: SimTime) -> SimTime {
        loop {
            self.drain_ready();
            // All tasks quiescent: advance the clock to the next timer.
            let next = {
                let timers = self.inner.timers.borrow();
                match timers.peek() {
                    Some(Reverse(ev)) => ev.at,
                    None => break,
                }
            };
            if next > horizon {
                break;
            }
            self.inner.now.set(next);
            // Fire every timer scheduled for this instant before polling, so
            // same-instant wakeups are processed in seq order.
            loop {
                let fire = {
                    let timers = self.inner.timers.borrow();
                    matches!(timers.peek(), Some(Reverse(ev)) if ev.at == next)
                };
                if !fire {
                    break;
                }
                let ev = self
                    .inner
                    .timers
                    .borrow_mut()
                    .pop()
                    .expect("peeked timer vanished")
                    .0;
                ev.waker.wake();
            }
        }
        if horizon != SimTime::MAX && self.inner.now.get() < horizon {
            self.inner.now.set(horizon);
        }
        self.inner.now.get()
    }

    /// Poll every ready task until the ready queue is empty.
    fn drain_ready(&self) {
        loop {
            // Merge tasks spawned during the previous polls.
            {
                let mut incoming = self.inner.incoming.borrow_mut();
                if !incoming.is_empty() {
                    let mut tasks = self.inner.tasks.borrow_mut();
                    for (id, fut) in incoming.drain(..) {
                        tasks.insert(id, fut);
                    }
                }
            }
            let id = if self.inner.policy.borrow().is_some() {
                match self.next_via_policy() {
                    Some(id) => id,
                    None => return,
                }
            } else {
                let popped = {
                    let mut ready = self.inner.ready.lock().expect("ready queue poisoned");
                    ready.pop_front()
                };
                match popped {
                    Some(id) => id,
                    None => return,
                }
            };
            // The task may have completed already (spurious wake) — skip.
            // (With a policy installed the candidate list is pre-filtered,
            // so this never triggers on that path.)
            let Some(mut fut) = self.inner.tasks.borrow_mut().remove(&id) else {
                continue;
            };
            let waker = Waker::from(Arc::new(TaskWaker {
                task: id,
                ready: Arc::clone(&self.inner.ready),
            }));
            let mut cx = Context::from_waker(&waker);
            match fut.as_mut().poll(&mut cx) {
                Poll::Ready(()) => {
                    self.inner.live_tasks.set(self.inner.live_tasks.get() - 1);
                }
                Poll::Pending => {
                    self.inner.tasks.borrow_mut().insert(id, fut);
                }
            }
        }
    }

    /// Resolve the next task to poll through the installed policy.
    ///
    /// Builds the duplicate-free list of *live* ready tasks in wake order.
    /// Two or more candidates form a choice point and the policy picks;
    /// one candidate is a forced move; zero means every queued entry was a
    /// stale wake for a completed task, so the drain is over. The chosen
    /// task's first queue occurrence is consumed — this yields exactly the
    /// poll sequence the uncontrolled path produces when the policy always
    /// answers `0` (see [`FifoPolicy`]).
    fn next_via_policy(&self) -> Option<TaskId> {
        let mut ready = self.inner.ready.lock().expect("ready queue poisoned");
        let candidates: Vec<TaskId> = {
            let tasks = self.inner.tasks.borrow();
            let mut seen = Vec::new();
            for &id in ready.iter() {
                if tasks.contains_key(&id) && !seen.contains(&id) {
                    seen.push(id);
                }
            }
            seen
        };
        let chosen = match candidates.len() {
            0 => {
                ready.clear();
                return None;
            }
            1 => candidates[0],
            n => {
                let mut policy = self.inner.policy.borrow_mut();
                let p = policy.as_mut().expect("policy removed mid-drain");
                let i = p.choose(self.inner.now.get(), &candidates);
                assert!(i < n, "SchedulePolicy chose index {i} of {n} candidates");
                candidates[i]
            }
        };
        let pos = ready
            .iter()
            .position(|&id| id == chosen)
            .expect("chosen task vanished from ready queue");
        ready.remove(pos);
        Some(chosen)
    }
}

/// Timer future created by [`Sim::sleep_until`].
pub struct Sleep {
    sim: Sim,
    deadline: SimTime,
    registered: bool,
}

impl Future for Sleep {
    type Output = ();

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        let this = self.get_mut();
        if this.sim.now() >= this.deadline {
            return Poll::Ready(());
        }
        if !this.registered {
            this.registered = true;
            let seq = this.sim.next_seq();
            this.sim.inner.timers.borrow_mut().push(Reverse(TimerEvent {
                at: this.deadline,
                seq,
                waker: cx.waker().clone(),
            }));
        }
        Poll::Pending
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    #[test]
    fn clock_starts_at_zero() {
        let sim = Sim::new();
        assert_eq!(sim.now(), SimTime::ZERO);
    }

    #[test]
    fn sleep_advances_clock() {
        let sim = Sim::new();
        let s = sim.clone();
        let hit = Rc::new(Cell::new(false));
        let h = hit.clone();
        sim.spawn(async move {
            s.sleep(SimDur::from_micros(10)).await;
            assert_eq!(s.now().as_micros(), 10);
            h.set(true);
        });
        let end = sim.run();
        assert!(hit.get());
        assert_eq!(end.as_micros(), 10);
    }

    #[test]
    fn tasks_interleave_in_time_order() {
        let sim = Sim::new();
        let log = Rc::new(RefCell::new(Vec::new()));
        for (name, delay) in [("b", 20u64), ("a", 10), ("c", 30)] {
            let s = sim.clone();
            let l = log.clone();
            sim.spawn(async move {
                s.sleep(SimDur::from_micros(delay)).await;
                l.borrow_mut().push(name);
            });
        }
        sim.run();
        assert_eq!(*log.borrow(), vec!["a", "b", "c"]);
    }

    #[test]
    fn same_instant_fires_in_spawn_order() {
        let sim = Sim::new();
        let log = Rc::new(RefCell::new(Vec::new()));
        for name in ["x", "y", "z"] {
            let s = sim.clone();
            let l = log.clone();
            sim.spawn(async move {
                s.sleep(SimDur::from_micros(5)).await;
                l.borrow_mut().push(name);
            });
        }
        sim.run();
        assert_eq!(*log.borrow(), vec!["x", "y", "z"]);
    }

    #[test]
    fn run_until_stops_at_horizon() {
        let sim = Sim::new();
        let s = sim.clone();
        let hits = Rc::new(Cell::new(0));
        let h = hits.clone();
        sim.spawn(async move {
            for _ in 0..10 {
                s.sleep(SimDur::from_micros(10)).await;
                h.set(h.get() + 1);
            }
        });
        let end = sim.run_until(SimTime::from_micros(35));
        assert_eq!(hits.get(), 3); // 10, 20, 30 fired; 40 lies past horizon
        assert_eq!(end.as_micros(), 35);
        assert_eq!(sim.live_tasks(), 1);
    }

    #[test]
    fn spawn_from_within_task() {
        let sim = Sim::new();
        let s = sim.clone();
        let hit = Rc::new(Cell::new(false));
        let h = hit.clone();
        sim.spawn(async move {
            let s2 = s.clone();
            s.sleep(SimDur::from_micros(1)).await;
            s.spawn(async move {
                s2.sleep(SimDur::from_micros(1)).await;
                h.set(true);
            });
        });
        sim.run();
        assert!(hit.get());
        assert_eq!(sim.live_tasks(), 0);
    }

    #[test]
    fn sleep_until_past_deadline_is_immediate() {
        let sim = Sim::new();
        let s = sim.clone();
        let order = Rc::new(RefCell::new(Vec::new()));
        let o = order.clone();
        sim.spawn(async move {
            s.sleep(SimDur::from_micros(10)).await;
            o.borrow_mut().push("slept");
            s.sleep_until(SimTime::from_micros(5)).await; // already passed
            o.borrow_mut().push("immediate");
            assert_eq!(s.now().as_micros(), 10);
        });
        sim.run();
        assert_eq!(*order.borrow(), vec!["slept", "immediate"]);
    }

    /// Always picks the last candidate — the adversarial mirror of FIFO.
    struct ReversePolicy;
    impl SchedulePolicy for ReversePolicy {
        fn choose(&mut self, _now: SimTime, ready: &[TaskId]) -> usize {
            ready.len() - 1
        }
    }

    /// Records every candidate list it is offered, then plays FIFO.
    struct ProbePolicy {
        #[allow(clippy::type_complexity)]
        seen: Rc<RefCell<Vec<(SimTime, Vec<TaskId>)>>>,
    }
    impl SchedulePolicy for ProbePolicy {
        fn choose(&mut self, now: SimTime, ready: &[TaskId]) -> usize {
            self.seen.borrow_mut().push((now, ready.to_vec()));
            0
        }
    }

    fn interleave_log(policy: Option<Box<dyn SchedulePolicy>>) -> Vec<u64> {
        let sim = Sim::new();
        if let Some(p) = policy {
            sim.set_schedule_policy(p);
        }
        let log = Rc::new(RefCell::new(Vec::new()));
        for i in 0..40u64 {
            let s = sim.clone();
            let l = log.clone();
            sim.spawn(async move {
                s.sleep(SimDur::from_nanos(i % 5 * 100)).await;
                s.sleep(SimDur::from_nanos(i % 3 * 50)).await;
                l.borrow_mut().push(i);
            });
        }
        sim.run();
        let result = log.borrow().clone();
        result
    }

    #[test]
    fn fifo_policy_is_bit_identical_to_uncontrolled() {
        assert_eq!(
            interleave_log(None),
            interleave_log(Some(Box::new(FifoPolicy)))
        );
    }

    #[test]
    fn policy_reorders_same_instant_ties_only() {
        let fifo = interleave_log(None);
        let rev = interleave_log(Some(Box::new(ReversePolicy)));
        // The adversary produces a different interleaving...
        assert_ne!(fifo, rev);
        // ...but the same set of completions.
        let mut a = fifo.clone();
        let mut b = rev.clone();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    /// Regression pin for same-instant `TimerEvent` wake ordering: two
    /// timers armed for the same deadline from different tasks wake in
    /// *registration* (global seq) order, and a task whose timer fires
    /// later — or that was registered at a later virtual time — can never
    /// be offered to the policy before its own timer has fired. The
    /// policy may reorder *polls* among woken tasks, but never the wake
    /// enqueue order itself.
    #[test]
    fn same_instant_timer_wakes_cannot_invert_causally() {
        let seen = Rc::new(RefCell::new(Vec::new()));
        let sim = Sim::new();
        sim.set_schedule_policy(Box::new(ProbePolicy { seen: seen.clone() }));
        // Task A arms its deadline-100 timer at t=10; task B arms its own
        // deadline-100 timer at t=20; task C sleeps until 150.
        let ids: Vec<TaskId> = [(10u64, 100u64), (20, 100), (150, 150)]
            .into_iter()
            .map(|(first, last)| {
                let s = sim.clone();
                sim.spawn(async move {
                    s.sleep_until(SimTime::from_nanos(first)).await;
                    s.sleep_until(SimTime::from_nanos(last)).await;
                })
            })
            .collect();
        sim.run();
        let (a, b, c) = (ids[0], ids[1], ids[2]);
        let seen = seen.borrow();
        // The instant-100 choice point offers A before B (A's timer was
        // registered first) and never contains C (its timer is still
        // pending).
        let at_100: Vec<_> = seen.iter().filter(|(t, _)| t.as_nanos() == 100).collect();
        assert!(!at_100.is_empty(), "no choice point at t=100");
        for (_, cands) in &at_100 {
            assert!(!cands.contains(&c), "unwoken task offered to the policy");
            if let (Some(pa), Some(pb)) = (
                cands.iter().position(|&x| x == a),
                cands.iter().position(|&x| x == b),
            ) {
                assert!(pa < pb, "same-instant timer wakes inverted: {cands:?}");
            }
        }
        // And while C's timer is pending (registered at its t=0 spawn
        // poll, fires at 150) no choice point ever offers C.
        for (t, cands) in seen.iter() {
            if cands.contains(&c) {
                assert!(
                    t.as_nanos() == 0 || t.as_nanos() >= 150,
                    "task C offered at t={t:?} while its timer was pending"
                );
            }
        }
    }

    #[test]
    fn many_tasks_deterministic() {
        let run = || {
            let sim = Sim::new();
            let log = Rc::new(RefCell::new(Vec::new()));
            for i in 0..100u64 {
                let s = sim.clone();
                let l = log.clone();
                sim.spawn(async move {
                    s.sleep(SimDur::from_nanos(i % 7 * 100)).await;
                    s.sleep(SimDur::from_nanos(i % 3 * 50)).await;
                    l.borrow_mut().push(i);
                });
            }
            sim.run();
            let result = log.borrow().clone();
            result
        };
        assert_eq!(run(), run());
    }
}
