//! Single-threaded async executor driven by a virtual clock.
//!
//! Tasks are ordinary Rust futures. The only primitive suspension point is a
//! timer ([`Sim::sleep_until`]); all higher-level constructs (NIC links, CPU
//! pools, spinlocks) are built on timers plus shared state, which keeps the
//! event loop tiny and every run deterministic: events fire in
//! `(virtual time, sequence number)` order.
//!
//! ## Timer queue
//!
//! Two interchangeable timer-queue implementations exist, selected at
//! construction ([`Sim::with_scheduler`]): the reference `BinaryHeap`
//! (`O(log n)` per operation, kept as the equivalence oracle) and the
//! default calendar/timing-wheel queue (`O(1)` amortized insert, bitmap
//! slot scan on advance). Both pop events in identical `(at, seq)` order,
//! so a run is bit-for-bit the same under either — pinned by the
//! scheduler-equivalence tests and the engine-parity golden digest.

use std::cell::{Cell, RefCell};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::sync::Arc;
use std::task::{Context, Poll, Wake, Waker};

use crate::time::{SimDur, SimTime};

/// The waker-shared ready queue. Locked only because `std::task::Wake`
/// requires `Send + Sync`; the executor is strictly single-threaded, so
/// the lock is never contended.
type ReadyQueue = Arc<UncontendedLock<VecDeque<TaskId>>>;

/// A minimal atomic-flag lock for state that must be nominally `Sync`
/// (waker plumbing) but is only ever touched from the executor's one
/// thread. An uncontended acquire/release pair is a single atomic swap
/// plus a store — several times cheaper than a `std::sync::Mutex` round
/// trip, which the event hot path pays three times per event.
struct UncontendedLock<T> {
    locked: std::sync::atomic::AtomicBool,
    value: std::cell::UnsafeCell<T>,
}

// SAFETY: access to `value` is serialised by the `locked` flag in
// `with`, so `UncontendedLock<T>` provides the same exclusive-access
// guarantee as a mutex for any `Send` payload.
unsafe impl<T: Send> Send for UncontendedLock<T> {}
unsafe impl<T: Send> Sync for UncontendedLock<T> {}

impl<T: Default> Default for UncontendedLock<T> {
    fn default() -> Self {
        UncontendedLock {
            locked: std::sync::atomic::AtomicBool::new(false),
            value: std::cell::UnsafeCell::new(T::default()),
        }
    }
}

impl<T> UncontendedLock<T> {
    /// Run `f` with exclusive access to the value. `f` must not call
    /// back into the same lock (the executor's call graph never does:
    /// wakes push while no queue access is live, and the policy hook is
    /// documented to not re-enter the [`Sim`]).
    fn with<R>(&self, f: impl FnOnce(&mut T) -> R) -> R {
        use std::sync::atomic::Ordering;
        while self.locked.swap(true, Ordering::Acquire) {
            std::hint::spin_loop();
        }
        // SAFETY: the flag above grants exclusive access until the
        // release store below; `f` does not re-enter this lock.
        let r = f(unsafe { &mut *self.value.get() });
        self.locked.store(false, Ordering::Release);
        r
    }
}

/// Identifier of a spawned task.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct TaskId(u64);

impl TaskId {
    /// The task's spawn index (stable across runs of the same program).
    pub fn as_u64(self) -> u64 {
        self.0
    }

    /// Construct from a raw spawn index. Ids are plain labels, so this
    /// is safe; it exists for schedule-policy tests and tooling.
    pub fn from_u64(v: u64) -> Self {
        TaskId(v)
    }
}

/// A pluggable strategy for resolving scheduler *choice points*.
///
/// Whenever more than one distinct live task is ready at the same virtual
/// instant, the executor asks the installed policy which one to poll next.
/// `ready` lists the candidates in FIFO wake order (duplicates and
/// completed tasks already filtered out); the returned index must be
/// `< ready.len()`. With zero or one candidate the choice is forced and
/// the policy is *not* consulted, so a policy sees exactly the genuine
/// schedule decisions.
///
/// A policy must not call back into the [`Sim`] that owns it (the
/// executor holds internal borrows while choosing).
pub trait SchedulePolicy {
    /// Pick the index (into `ready`) of the next task to poll.
    fn choose(&mut self, now: SimTime, ready: &[TaskId]) -> usize;
}

/// The executor's default tie-break, made explicit: always poll the first
/// ready task in wake order. Installing it is observationally identical
/// to running with no policy at all — every poll happens in the same
/// order — which is what lets golden digests survive under the
/// controlled scheduler.
#[derive(Default)]
pub struct FifoPolicy;

impl SchedulePolicy for FifoPolicy {
    fn choose(&mut self, _now: SimTime, _ready: &[TaskId]) -> usize {
        0
    }
}

type BoxedFuture = Pin<Box<dyn Future<Output = ()>>>;

/// A timer registration: make `task` runnable at instant `at`.
///
/// Timers carry the *task id*, not a `Waker`: the executor has no
/// combinator layer (every `await` in the workspace is sequential), so
/// the waker a [`Sleep`] would capture is always the executor's own
/// waker for the task being polled. Registering the id directly makes a
/// timer event three plain words — no allocation, no reference-count
/// traffic on the hot path. Futures that genuinely need to park a waker
/// for a *later, externally triggered* wake (resource slots, WAL group
/// commit) still clone `cx.waker()` and go through the ready queue.
#[derive(Clone, Copy)]
struct TimerEvent {
    at: SimTime,
    seq: u64,
    task: TaskId,
}

impl TimerEvent {
    fn key(&self) -> (SimTime, u64) {
        (self.at, self.seq)
    }
}

impl PartialEq for TimerEvent {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for TimerEvent {}
impl PartialOrd for TimerEvent {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for TimerEvent {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key().cmp(&other.key())
    }
}

/// Which timer-queue implementation a [`Sim`] runs on.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum SchedulerKind {
    /// Calendar / timing-wheel queue (the default): O(1) amortized
    /// insert, occupancy-bitmap slot scan on clock advance.
    #[default]
    Wheel,
    /// Reference `BinaryHeap` queue, kept as the equivalence oracle for
    /// the wheel (identical `(at, seq)` pop order by construction).
    Heap,
}

/// Timing-wheel slot width: `1 << WHEEL_SHIFT` nanoseconds (256 ns).
const WHEEL_SHIFT: u32 = 8;
/// Slots in the wheel window (must be a multiple of 64 for the bitmap):
/// 4096 × 256 ns ≈ 1.05 ms of look-ahead before events overflow.
const WHEEL_SLOTS: usize = 4096;
const WHEEL_WORDS: usize = WHEEL_SLOTS / 64;
/// Initial per-slot event capacity. Slot vectors keep their capacity
/// when drained, so pre-sizing them here makes the steady state
/// allocation-free at typical slot occupancy (the allocation-count
/// regression test pins this); busier slots grow once and stay grown.
const WHEEL_SLOT_PREALLOC: usize = 8;

/// One wheel slot: its pending events, sorted lazily (descending by
/// `(at, seq)`, so the minimum pops from the back) the first time the
/// slot is inspected after a push.
#[derive(Default)]
struct WheelSlot {
    events: Vec<TimerEvent>,
    sorted: bool,
}

/// A calendar-queue timer wheel.
///
/// Events within `WHEEL_SLOTS` slots of the window base live in their
/// slot's vector; farther events sit in an overflow list that is
/// re-distributed whenever the window advances past it. Every insert
/// satisfies `at > now` ([`Sleep`] short-circuits past deadlines), so an
/// event can never land behind the scan cursor, and per-slot lazy sorting
/// by `(at, seq)` reproduces the global heap order exactly.
struct TimingWheel {
    /// Absolute slot index (`t >> WHEEL_SHIFT`) of relative slot 0.
    base: u64,
    /// Relative slot of the last occupied position found; slots below it
    /// are empty. The scan resumes here.
    cursor: usize,
    slots: Vec<WheelSlot>,
    /// One bit per slot: set while the slot holds events.
    occupied: [u64; WHEEL_WORDS],
    /// Events at or beyond the window end, un-ordered.
    overflow: Vec<TimerEvent>,
    /// Minimum `at` in `overflow` (`u64::MAX` when empty), nanoseconds.
    overflow_min: u64,
    len: usize,
}

impl TimingWheel {
    fn new() -> Self {
        TimingWheel {
            base: 0,
            cursor: 0,
            slots: (0..WHEEL_SLOTS)
                .map(|_| WheelSlot {
                    events: Vec::with_capacity(WHEEL_SLOT_PREALLOC),
                    sorted: false,
                })
                .collect(),
            occupied: [0; WHEEL_WORDS],
            overflow: Vec::with_capacity(WHEEL_SLOT_PREALLOC),
            overflow_min: u64::MAX,
            len: 0,
        }
    }

    fn push(&mut self, ev: TimerEvent) {
        self.len += 1;
        let abs = ev.at.as_nanos() >> WHEEL_SHIFT;
        let rel = abs.wrapping_sub(self.base);
        if rel < WHEEL_SLOTS as u64 {
            let i = rel as usize;
            // A push can land behind the scan cursor (the cursor may sit
            // on a later slot after draining the current instant, or past
            // a `run_until` horizon stop) — pull the cursor back so the
            // scan never skips it.
            if i < self.cursor {
                self.cursor = i;
            }
            let slot = &mut self.slots[i];
            slot.events.push(ev);
            slot.sorted = false;
            self.occupied[i / 64] |= 1u64 << (i % 64);
        } else {
            self.overflow_min = self.overflow_min.min(ev.at.as_nanos());
            self.overflow.push(ev);
        }
    }

    /// First occupied slot at or after `from`, via the bitmap.
    fn next_occupied(&self, from: usize) -> Option<usize> {
        let mut word = from / 64;
        let mut bits = self.occupied[word] & (!0u64 << (from % 64));
        loop {
            if bits != 0 {
                return Some(word * 64 + bits.trailing_zeros() as usize);
            }
            word += 1;
            if word >= WHEEL_WORDS {
                return None;
            }
            bits = self.occupied[word];
        }
    }

    /// Re-anchor the (empty) window at the earliest overflow event and
    /// pull every overflow event that now fits into its slot.
    fn rebase(&mut self) {
        debug_assert!(self.overflow_min != u64::MAX);
        self.base = self.overflow_min >> WHEEL_SHIFT;
        self.cursor = 0;
        self.overflow_min = u64::MAX;
        // In-place partition (keeping the vector's capacity — the
        // steady state must not allocate). `swap_remove` reorders the
        // remainder, which is fine: overflow is unordered, and slots
        // sort lazily by the unique `(at, seq)` key before popping.
        let mut j = 0;
        while j < self.overflow.len() {
            let rel = (self.overflow[j].at.as_nanos() >> WHEEL_SHIFT).wrapping_sub(self.base);
            if rel < WHEEL_SLOTS as u64 {
                let ev = self.overflow.swap_remove(j);
                let i = rel as usize;
                let slot = &mut self.slots[i];
                slot.events.push(ev);
                slot.sorted = false;
                self.occupied[i / 64] |= 1u64 << (i % 64);
            } else {
                self.overflow_min = self.overflow_min.min(self.overflow[j].at.as_nanos());
                j += 1;
            }
        }
    }

    /// Sort the slot (descending, so the minimum is at the back) if a
    /// push landed since the last sort.
    fn ensure_sorted(slot: &mut WheelSlot) {
        if !slot.sorted {
            slot.events.sort_unstable_by_key(|ev| Reverse(ev.key()));
            slot.sorted = true;
        }
    }

    /// The earliest pending deadline, advancing the cursor (and, when the
    /// window is exhausted, the window itself) past empty slots.
    fn next_at(&mut self) -> Option<SimTime> {
        if self.len == 0 {
            return None;
        }
        loop {
            if let Some(i) = self.next_occupied(self.cursor) {
                self.cursor = i;
                let slot = &mut self.slots[i];
                Self::ensure_sorted(slot);
                return Some(slot.events.last().expect("occupied slot empty").at);
            }
            self.rebase();
        }
    }

    /// Pop the earliest event iff its deadline is exactly `at`.
    ///
    /// Addresses `at`'s slot directly and leaves the cursor alone: `at`
    /// is always the instant `next_at` just returned, and moving the
    /// cursor here could stride past slots that later pushes target.
    fn pop_at(&mut self, at: SimTime) -> Option<TaskId> {
        let rel = (at.as_nanos() >> WHEEL_SHIFT).wrapping_sub(self.base);
        if rel >= WHEEL_SLOTS as u64 {
            return None;
        }
        let i = rel as usize;
        if self.occupied[i / 64] & (1u64 << (i % 64)) == 0 {
            return None;
        }
        let slot = &mut self.slots[i];
        Self::ensure_sorted(slot);
        if slot.events.last().map(|ev| ev.at) != Some(at) {
            return None;
        }
        let ev = slot.events.pop().expect("checked non-empty");
        if slot.events.is_empty() {
            self.occupied[i / 64] &= !(1u64 << (i % 64));
        }
        self.len -= 1;
        Some(ev.task)
    }
}

/// The pluggable timer queue: both variants pop in `(at, seq)` order.
enum TimerQueue {
    Wheel(Box<TimingWheel>),
    Heap(BinaryHeap<Reverse<TimerEvent>>),
}

impl TimerQueue {
    fn new(kind: SchedulerKind) -> Self {
        match kind {
            SchedulerKind::Wheel => TimerQueue::Wheel(Box::new(TimingWheel::new())),
            SchedulerKind::Heap => TimerQueue::Heap(BinaryHeap::new()),
        }
    }

    fn push(&mut self, ev: TimerEvent) {
        match self {
            TimerQueue::Wheel(w) => w.push(ev),
            TimerQueue::Heap(h) => h.push(Reverse(ev)),
        }
    }

    fn next_at(&mut self) -> Option<SimTime> {
        match self {
            TimerQueue::Wheel(w) => w.next_at(),
            TimerQueue::Heap(h) => h.peek().map(|Reverse(ev)| ev.at),
        }
    }

    fn pop_at(&mut self, at: SimTime) -> Option<TaskId> {
        match self {
            TimerQueue::Wheel(w) => w.pop_at(at),
            TimerQueue::Heap(h) => {
                if matches!(h.peek(), Some(Reverse(ev)) if ev.at == at) {
                    Some(h.pop().expect("peeked timer vanished").0.task)
                } else {
                    None
                }
            }
        }
    }
}

/// Wakes a task by pushing its id onto the shared ready queue.
///
/// The queue is behind a `std::sync::Mutex` only because `std::task::Wake`
/// requires `Send + Sync`; the executor itself is strictly single-threaded,
/// so the lock is never contended.
struct TaskWaker {
    task: TaskId,
    ready: ReadyQueue,
}

impl Wake for TaskWaker {
    fn wake(self: Arc<Self>) {
        self.wake_by_ref();
    }

    fn wake_by_ref(self: &Arc<Self>) {
        self.ready.with(|q| q.push_back(self.task));
    }
}

/// A live task: its future plus the one waker allocated for it at spawn
/// merge (cloning a `Waker` is a reference-count bump, so re-arming
/// timers never allocates).
struct TaskEntry {
    fut: BoxedFuture,
    waker: Waker,
}

struct SimInner {
    now: Cell<SimTime>,
    seq: Cell<u64>,
    next_task: Cell<u64>,
    timers: RefCell<TimerQueue>,
    /// Task slab indexed by spawn index ([`TaskId::as_u64`]). Completed
    /// tasks leave a `None` behind (slots are never reused — ids stay
    /// stable labels), so the hot-path lookup is one bounds-checked
    /// array index instead of a map walk.
    tasks: RefCell<Vec<Option<TaskEntry>>>,
    /// Tasks spawned while the executor is mid-poll; merged before each poll.
    incoming: RefCell<Vec<(TaskId, BoxedFuture)>>,
    /// Mirrors `!incoming.is_empty()` so the drain loop's per-poll check
    /// is one `Cell` read instead of a `RefCell` borrow.
    has_incoming: Cell<bool>,
    ready: ReadyQueue,
    live_tasks: Cell<usize>,
    /// The task the executor is currently polling; [`Sleep`] reads it to
    /// register its timer without touching the context waker.
    current: Cell<TaskId>,
    /// Installed schedule policy; `None` keeps the raw FIFO fast path.
    policy: RefCell<Option<Box<dyn SchedulePolicy>>>,
    /// Mirrors `policy.is_some()` (one `Cell` read on the hot path).
    has_policy: Cell<bool>,
}

/// Handle to the simulation: clock, spawner, and event loop.
///
/// Cheap to clone; all clones share the same world.
#[derive(Clone)]
pub struct Sim {
    inner: Rc<SimInner>,
}

impl Default for Sim {
    fn default() -> Self {
        Self::new()
    }
}

impl Sim {
    /// Create an empty simulation at `t = 0` on the default
    /// (timing-wheel) scheduler.
    pub fn new() -> Self {
        Self::with_scheduler(SchedulerKind::default())
    }

    /// Create an empty simulation at `t = 0` on the given timer-queue
    /// implementation. Runs are bit-identical across kinds.
    pub fn with_scheduler(kind: SchedulerKind) -> Self {
        Sim {
            inner: Rc::new(SimInner {
                now: Cell::new(SimTime::ZERO),
                seq: Cell::new(0),
                next_task: Cell::new(0),
                timers: RefCell::new(TimerQueue::new(kind)),
                tasks: RefCell::new(Vec::new()),
                incoming: RefCell::new(Vec::new()),
                has_incoming: Cell::new(false),
                ready: ReadyQueue::default(),
                live_tasks: Cell::new(0),
                current: Cell::new(TaskId(0)),
                policy: RefCell::new(None),
                has_policy: Cell::new(false),
            }),
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.inner.now.get()
    }

    /// Number of tasks that have been spawned and not yet completed.
    pub fn live_tasks(&self) -> usize {
        self.inner.live_tasks.get()
    }

    /// Total scheduling events sequenced so far (timers, wakeups,
    /// spawns). Monotone over the life of the simulation — the raw
    /// event-loop work metric the bench trajectory divides by wall
    /// time for its events/sec figure.
    pub fn events_processed(&self) -> u64 {
        self.inner.seq.get()
    }

    /// Install a [`SchedulePolicy`] that resolves every subsequent choice
    /// point. Replaces any previously installed policy.
    pub fn set_schedule_policy(&self, policy: Box<dyn SchedulePolicy>) {
        *self.inner.policy.borrow_mut() = Some(policy);
        self.inner.has_policy.set(true);
    }

    /// Remove the installed policy (returning it), restoring the raw FIFO
    /// fast path.
    pub fn clear_schedule_policy(&self) -> Option<Box<dyn SchedulePolicy>> {
        self.inner.has_policy.set(false);
        self.inner.policy.borrow_mut().take()
    }

    fn next_seq(&self) -> u64 {
        let s = self.inner.seq.get();
        self.inner.seq.set(s + 1);
        s
    }

    /// Spawn a task. It is polled for the first time when the event loop
    /// next runs (immediately at the current virtual time).
    pub fn spawn(&self, fut: impl Future<Output = ()> + 'static) -> TaskId {
        let id = TaskId(self.inner.next_task.get());
        self.inner.next_task.set(id.0 + 1);
        self.inner.incoming.borrow_mut().push((id, Box::pin(fut)));
        self.inner.has_incoming.set(true);
        self.inner.live_tasks.set(self.inner.live_tasks.get() + 1);
        self.inner.ready.with(|q| q.push_back(id));
        id
    }

    /// Future resolving at virtual instant `deadline` (immediately if the
    /// deadline has passed).
    pub fn sleep_until(&self, deadline: SimTime) -> Sleep {
        Sleep {
            sim: self.clone(),
            deadline,
            registered: false,
        }
    }

    /// Future resolving after `dur` of virtual time.
    pub fn sleep(&self, dur: SimDur) -> Sleep {
        self.sleep_until(self.now() + dur)
    }

    /// Run until no timers or runnable tasks remain.
    ///
    /// Returns the final virtual time.
    pub fn run(&self) -> SimTime {
        self.run_until(SimTime::MAX)
    }

    /// Run until the event queue is exhausted or the next timer lies
    /// strictly after `horizon`. The clock never exceeds `horizon`.
    ///
    /// Returns the virtual time at which execution stopped.
    pub fn run_until(&self, horizon: SimTime) -> SimTime {
        loop {
            self.drain_ready();
            // All tasks quiescent: advance the clock to the next timer.
            let next = match self.inner.timers.borrow_mut().next_at() {
                Some(at) => at,
                None => break,
            };
            if next > horizon {
                break;
            }
            self.inner.now.set(next);
            // Fire every timer scheduled for this instant before polling, so
            // same-instant wakeups are processed in seq order. Timer wakes
            // bypass the waker vtable entirely: the event carries its task
            // id, which goes straight onto the ready queue.
            {
                let mut timers = self.inner.timers.borrow_mut();
                self.inner.ready.with(|ready| {
                    while let Some(task) = timers.pop_at(next) {
                        ready.push_back(task);
                    }
                });
            }
        }
        if horizon != SimTime::MAX && self.inner.now.get() < horizon {
            self.inner.now.set(horizon);
        }
        self.inner.now.get()
    }

    /// Poll every ready task until the ready queue is empty.
    ///
    /// The task map stays borrowed across a poll: nothing a task can
    /// reach re-borrows it (spawns land in `incoming`, timers in
    /// `timers`, wakes in `ready`), and holding the borrow lets each
    /// poll run in place with the task's cached waker — no per-poll
    /// allocation or map churn.
    fn drain_ready(&self) {
        loop {
            // Merge tasks spawned during the previous polls.
            if self.inner.has_incoming.get() {
                self.inner.has_incoming.set(false);
                let mut incoming = self.inner.incoming.borrow_mut();
                let mut tasks = self.inner.tasks.borrow_mut();
                for (id, fut) in incoming.drain(..) {
                    let waker = Waker::from(Arc::new(TaskWaker {
                        task: id,
                        ready: Arc::clone(&self.inner.ready),
                    }));
                    let slot = id.0 as usize;
                    if tasks.len() <= slot {
                        tasks.resize_with(slot + 1, || None);
                    }
                    tasks[slot] = Some(TaskEntry { fut, waker });
                }
            }
            let id = if self.inner.has_policy.get() {
                match self.next_via_policy() {
                    Some(id) => id,
                    None => return,
                }
            } else {
                match self.inner.ready.with(|q| q.pop_front()) {
                    Some(id) => id,
                    None => return,
                }
            };
            let done = {
                let mut tasks = self.inner.tasks.borrow_mut();
                // The task may have completed already (spurious wake) — skip.
                // (With a policy installed the candidate list is pre-filtered,
                // so this never triggers on that path.)
                let Some(entry) = tasks.get_mut(id.0 as usize).and_then(Option::as_mut) else {
                    continue;
                };
                self.inner.current.set(id);
                let mut cx = Context::from_waker(&entry.waker);
                entry.fut.as_mut().poll(&mut cx).is_ready()
            };
            if done {
                // Remove outside the poll borrow; drop the future after
                // releasing the slab (its drop glue may wake other tasks).
                let entry = self.inner.tasks.borrow_mut()[id.0 as usize].take();
                self.inner.live_tasks.set(self.inner.live_tasks.get() - 1);
                drop(entry);
            }
        }
    }

    /// Resolve the next task to poll through the installed policy.
    ///
    /// Builds the duplicate-free list of *live* ready tasks in wake order.
    /// Two or more candidates form a choice point and the policy picks;
    /// one candidate is a forced move; zero means every queued entry was a
    /// stale wake for a completed task, so the drain is over. The chosen
    /// task's first queue occurrence is consumed — this yields exactly the
    /// poll sequence the uncontrolled path produces when the policy always
    /// answers `0` (see [`FifoPolicy`]).
    fn next_via_policy(&self) -> Option<TaskId> {
        self.inner.ready.with(|ready| {
            let candidates: Vec<TaskId> = {
                let tasks = self.inner.tasks.borrow();
                let mut seen = Vec::new();
                for &id in ready.iter() {
                    let live = tasks.get(id.0 as usize).is_some_and(Option::is_some);
                    if live && !seen.contains(&id) {
                        seen.push(id);
                    }
                }
                seen
            };
            let chosen = match candidates.len() {
                0 => {
                    ready.clear();
                    return None;
                }
                1 => candidates[0],
                n => {
                    let mut policy = self.inner.policy.borrow_mut();
                    let p = policy.as_mut().expect("policy removed mid-drain");
                    let i = p.choose(self.inner.now.get(), &candidates);
                    assert!(i < n, "SchedulePolicy chose index {i} of {n} candidates");
                    candidates[i]
                }
            };
            let pos = ready
                .iter()
                .position(|&id| id == chosen)
                .expect("chosen task vanished from ready queue");
            ready.remove(pos);
            Some(chosen)
        })
    }
}

/// Timer future created by [`Sim::sleep_until`].
pub struct Sleep {
    sim: Sim,
    deadline: SimTime,
    registered: bool,
}

impl Future for Sleep {
    type Output = ();

    fn poll(self: Pin<&mut Self>, _cx: &mut Context<'_>) -> Poll<()> {
        let this = self.get_mut();
        if this.sim.now() >= this.deadline {
            return Poll::Ready(());
        }
        if !this.registered {
            this.registered = true;
            let seq = this.sim.next_seq();
            // Register the *task*, not the context waker: `Sleep` is only
            // ever polled by this executor (the workspace has no
            // waker-wrapping combinators), so waking the owning task is
            // exactly what waking the context waker would do — minus the
            // clone, the allocation-backed vtable hop, and the
            // reference-count traffic.
            let task = this.sim.inner.current.get();
            this.sim.inner.timers.borrow_mut().push(TimerEvent {
                at: this.deadline,
                seq,
                task,
            });
        }
        Poll::Pending
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    #[test]
    fn clock_starts_at_zero() {
        let sim = Sim::new();
        assert_eq!(sim.now(), SimTime::ZERO);
    }

    #[test]
    fn sleep_advances_clock() {
        let sim = Sim::new();
        let s = sim.clone();
        let hit = Rc::new(Cell::new(false));
        let h = hit.clone();
        sim.spawn(async move {
            s.sleep(SimDur::from_micros(10)).await;
            assert_eq!(s.now().as_micros(), 10);
            h.set(true);
        });
        let end = sim.run();
        assert!(hit.get());
        assert_eq!(end.as_micros(), 10);
    }

    #[test]
    fn tasks_interleave_in_time_order() {
        let sim = Sim::new();
        let log = Rc::new(RefCell::new(Vec::new()));
        for (name, delay) in [("b", 20u64), ("a", 10), ("c", 30)] {
            let s = sim.clone();
            let l = log.clone();
            sim.spawn(async move {
                s.sleep(SimDur::from_micros(delay)).await;
                l.borrow_mut().push(name);
            });
        }
        sim.run();
        assert_eq!(*log.borrow(), vec!["a", "b", "c"]);
    }

    #[test]
    fn same_instant_fires_in_spawn_order() {
        let sim = Sim::new();
        let log = Rc::new(RefCell::new(Vec::new()));
        for name in ["x", "y", "z"] {
            let s = sim.clone();
            let l = log.clone();
            sim.spawn(async move {
                s.sleep(SimDur::from_micros(5)).await;
                l.borrow_mut().push(name);
            });
        }
        sim.run();
        assert_eq!(*log.borrow(), vec!["x", "y", "z"]);
    }

    #[test]
    fn run_until_stops_at_horizon() {
        let sim = Sim::new();
        let s = sim.clone();
        let hits = Rc::new(Cell::new(0));
        let h = hits.clone();
        sim.spawn(async move {
            for _ in 0..10 {
                s.sleep(SimDur::from_micros(10)).await;
                h.set(h.get() + 1);
            }
        });
        let end = sim.run_until(SimTime::from_micros(35));
        assert_eq!(hits.get(), 3); // 10, 20, 30 fired; 40 lies past horizon
        assert_eq!(end.as_micros(), 35);
        assert_eq!(sim.live_tasks(), 1);
    }

    #[test]
    fn spawn_from_within_task() {
        let sim = Sim::new();
        let s = sim.clone();
        let hit = Rc::new(Cell::new(false));
        let h = hit.clone();
        sim.spawn(async move {
            let s2 = s.clone();
            s.sleep(SimDur::from_micros(1)).await;
            s.spawn(async move {
                s2.sleep(SimDur::from_micros(1)).await;
                h.set(true);
            });
        });
        sim.run();
        assert!(hit.get());
        assert_eq!(sim.live_tasks(), 0);
    }

    #[test]
    fn sleep_until_past_deadline_is_immediate() {
        let sim = Sim::new();
        let s = sim.clone();
        let order = Rc::new(RefCell::new(Vec::new()));
        let o = order.clone();
        sim.spawn(async move {
            s.sleep(SimDur::from_micros(10)).await;
            o.borrow_mut().push("slept");
            s.sleep_until(SimTime::from_micros(5)).await; // already passed
            o.borrow_mut().push("immediate");
            assert_eq!(s.now().as_micros(), 10);
        });
        sim.run();
        assert_eq!(*order.borrow(), vec!["slept", "immediate"]);
    }

    /// Always picks the last candidate — the adversarial mirror of FIFO.
    struct ReversePolicy;
    impl SchedulePolicy for ReversePolicy {
        fn choose(&mut self, _now: SimTime, ready: &[TaskId]) -> usize {
            ready.len() - 1
        }
    }

    /// Records every candidate list it is offered, then plays FIFO.
    struct ProbePolicy {
        #[allow(clippy::type_complexity)]
        seen: Rc<RefCell<Vec<(SimTime, Vec<TaskId>)>>>,
    }
    impl SchedulePolicy for ProbePolicy {
        fn choose(&mut self, now: SimTime, ready: &[TaskId]) -> usize {
            self.seen.borrow_mut().push((now, ready.to_vec()));
            0
        }
    }

    fn interleave_log_on(kind: SchedulerKind, policy: Option<Box<dyn SchedulePolicy>>) -> Vec<u64> {
        let sim = Sim::with_scheduler(kind);
        if let Some(p) = policy {
            sim.set_schedule_policy(p);
        }
        let log = Rc::new(RefCell::new(Vec::new()));
        for i in 0..40u64 {
            let s = sim.clone();
            let l = log.clone();
            sim.spawn(async move {
                s.sleep(SimDur::from_nanos(i % 5 * 100)).await;
                s.sleep(SimDur::from_nanos(i % 3 * 50)).await;
                l.borrow_mut().push(i);
            });
        }
        sim.run();
        let result = log.borrow().clone();
        result
    }

    fn interleave_log(policy: Option<Box<dyn SchedulePolicy>>) -> Vec<u64> {
        interleave_log_on(SchedulerKind::default(), policy)
    }

    #[test]
    fn fifo_policy_is_bit_identical_to_uncontrolled() {
        assert_eq!(
            interleave_log(None),
            interleave_log(Some(Box::new(FifoPolicy)))
        );
    }

    #[test]
    fn wheel_and_heap_schedulers_are_bit_identical() {
        assert_eq!(
            interleave_log_on(SchedulerKind::Wheel, None),
            interleave_log_on(SchedulerKind::Heap, None)
        );
    }

    /// Deadlines far beyond the wheel window (overflow list, several
    /// rebases) and dense near deadlines interleave identically on both
    /// queue implementations.
    #[test]
    fn wheel_overflow_matches_heap_order() {
        let run = |kind: SchedulerKind| {
            let sim = Sim::with_scheduler(kind);
            let log = Rc::new(RefCell::new(Vec::new()));
            for i in 0..60u64 {
                let s = sim.clone();
                let l = log.clone();
                sim.spawn(async move {
                    // A mix of sub-slot, in-window, and multi-window sleeps
                    // (the wheel window is ~1 ms).
                    let nanos = match i % 4 {
                        0 => i * 7,                   // same-slot ties
                        1 => 10_000 + i * 131,        // in-window
                        2 => 3_000_000 + i * 977,     // ~3 ms: overflow
                        _ => 9_000_000 + (i % 3) * 5, // ~9 ms: deep overflow ties
                    };
                    s.sleep(SimDur::from_nanos(nanos)).await;
                    s.sleep(SimDur::from_nanos(i % 5 * 60)).await;
                    l.borrow_mut().push(i);
                });
            }
            sim.run();
            let result = log.borrow().clone();
            result
        };
        let wheel = run(SchedulerKind::Wheel);
        let heap = run(SchedulerKind::Heap);
        assert_eq!(wheel, heap);
        assert_eq!(wheel.len(), 60);
    }

    #[test]
    fn policy_reorders_same_instant_ties_only() {
        let fifo = interleave_log(None);
        let rev = interleave_log(Some(Box::new(ReversePolicy)));
        // The adversary produces a different interleaving...
        assert_ne!(fifo, rev);
        // ...but the same set of completions.
        let mut a = fifo.clone();
        let mut b = rev.clone();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    /// Regression pin for same-instant `TimerEvent` wake ordering: two
    /// timers armed for the same deadline from different tasks wake in
    /// *registration* (global seq) order, and a task whose timer fires
    /// later — or that was registered at a later virtual time — can never
    /// be offered to the policy before its own timer has fired. The
    /// policy may reorder *polls* among woken tasks, but never the wake
    /// enqueue order itself.
    #[test]
    fn same_instant_timer_wakes_cannot_invert_causally() {
        let seen = Rc::new(RefCell::new(Vec::new()));
        let sim = Sim::new();
        sim.set_schedule_policy(Box::new(ProbePolicy { seen: seen.clone() }));
        // Task A arms its deadline-100 timer at t=10; task B arms its own
        // deadline-100 timer at t=20; task C sleeps until 150.
        let ids: Vec<TaskId> = [(10u64, 100u64), (20, 100), (150, 150)]
            .into_iter()
            .map(|(first, last)| {
                let s = sim.clone();
                sim.spawn(async move {
                    s.sleep_until(SimTime::from_nanos(first)).await;
                    s.sleep_until(SimTime::from_nanos(last)).await;
                })
            })
            .collect();
        sim.run();
        let (a, b, c) = (ids[0], ids[1], ids[2]);
        let seen = seen.borrow();
        // The instant-100 choice point offers A before B (A's timer was
        // registered first) and never contains C (its timer is still
        // pending).
        let at_100: Vec<_> = seen.iter().filter(|(t, _)| t.as_nanos() == 100).collect();
        assert!(!at_100.is_empty(), "no choice point at t=100");
        for (_, cands) in &at_100 {
            assert!(!cands.contains(&c), "unwoken task offered to the policy");
            if let (Some(pa), Some(pb)) = (
                cands.iter().position(|&x| x == a),
                cands.iter().position(|&x| x == b),
            ) {
                assert!(pa < pb, "same-instant timer wakes inverted: {cands:?}");
            }
        }
        // And while C's timer is pending (registered at its t=0 spawn
        // poll, fires at 150) no choice point ever offers C.
        for (t, cands) in seen.iter() {
            if cands.contains(&c) {
                assert!(
                    t.as_nanos() == 0 || t.as_nanos() >= 150,
                    "task C offered at t={t:?} while its timer was pending"
                );
            }
        }
    }

    #[test]
    fn many_tasks_deterministic() {
        let run = || {
            let sim = Sim::new();
            let log = Rc::new(RefCell::new(Vec::new()));
            for i in 0..100u64 {
                let s = sim.clone();
                let l = log.clone();
                sim.spawn(async move {
                    s.sleep(SimDur::from_nanos(i % 7 * 100)).await;
                    s.sleep(SimDur::from_nanos(i % 3 * 50)).await;
                    l.borrow_mut().push(i);
                });
            }
            sim.run();
            let result = log.borrow().clone();
            result
        };
        assert_eq!(run(), run());
    }
}
