//! Virtual time types.
//!
//! Simulated time is an integer number of nanoseconds since simulation
//! start. Integer time keeps event ordering exact and runs reproducible;
//! floating-point clocks accumulate rounding that can reorder events.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// An instant on the virtual clock (nanoseconds since simulation start).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of virtual time (nanoseconds).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDur(u64);

impl SimTime {
    /// Simulation start.
    pub const ZERO: SimTime = SimTime(0);
    /// The greatest representable instant; used as an "infinite" horizon.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }
    /// Construct from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }
    /// Construct from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }
    /// Construct from seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// Raw nanoseconds since start.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }
    /// Whole microseconds since start.
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }
    /// Seconds since start as `f64`.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Time elapsed since `earlier`; saturates at zero if `earlier` is later.
    pub fn since(self, earlier: SimTime) -> SimDur {
        SimDur(self.0.saturating_sub(earlier.0))
    }
}

impl SimDur {
    /// Zero-length span.
    pub const ZERO: SimDur = SimDur(0);

    /// Construct from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDur(ns)
    }
    /// Construct from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDur(us * 1_000)
    }
    /// Construct from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDur(ms * 1_000_000)
    }
    /// Construct from seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDur(s * 1_000_000_000)
    }
    /// Construct from fractional seconds (rounded to whole nanoseconds).
    pub fn from_secs_f64(s: f64) -> Self {
        SimDur((s * 1e9).round() as u64)
    }

    /// Raw nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }
    /// Whole microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }
    /// Seconds as `f64`.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: SimDur) -> SimDur {
        SimDur(self.0.saturating_sub(rhs.0))
    }
}

impl Add<SimDur> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDur) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDur> for SimTime {
    fn add_assign(&mut self, rhs: SimDur) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDur;
    fn sub(self, rhs: SimTime) -> SimDur {
        SimDur(self.0 - rhs.0)
    }
}

impl Add for SimDur {
    type Output = SimDur;
    fn add(self, rhs: SimDur) -> SimDur {
        SimDur(self.0 + rhs.0)
    }
}

impl AddAssign for SimDur {
    fn add_assign(&mut self, rhs: SimDur) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDur {
    type Output = SimDur;
    fn sub(self, rhs: SimDur) -> SimDur {
        SimDur(self.0 - rhs.0)
    }
}

impl Mul<u64> for SimDur {
    type Output = SimDur;
    fn mul(self, rhs: u64) -> SimDur {
        SimDur(self.0 * rhs)
    }
}

impl Div<u64> for SimDur {
    type Output = SimDur;
    fn div(self, rhs: u64) -> SimDur {
        SimDur(self.0 / rhs)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{}ns", self.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Debug for SimDur {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}ns", self.0)
    }
}

impl fmt::Display for SimDur {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e6)
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}us", self.0 as f64 / 1e3)
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        assert_eq!(SimTime::from_micros(7).as_nanos(), 7_000);
        assert_eq!(SimTime::from_millis(3).as_micros(), 3_000);
        assert_eq!(SimTime::from_secs(2).as_nanos(), 2_000_000_000);
        assert_eq!(SimDur::from_micros(7).as_nanos(), 7_000);
        assert_eq!(SimDur::from_secs(1).as_micros(), 1_000_000);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_micros(10) + SimDur::from_micros(5);
        assert_eq!(t.as_micros(), 15);
        let d = t - SimTime::from_micros(5);
        assert_eq!(d.as_micros(), 10);
        assert_eq!((SimDur::from_nanos(10) * 3).as_nanos(), 30);
        assert_eq!((SimDur::from_nanos(10) / 2).as_nanos(), 5);
    }

    #[test]
    fn since_saturates() {
        let early = SimTime::from_nanos(5);
        let late = SimTime::from_nanos(9);
        assert_eq!(late.since(early).as_nanos(), 4);
        assert_eq!(early.since(late).as_nanos(), 0);
    }

    #[test]
    fn secs_f64_round_trip() {
        let d = SimDur::from_secs_f64(0.000_001_5);
        assert_eq!(d.as_nanos(), 1_500);
        assert!((d.as_secs_f64() - 1.5e-6).abs() < 1e-15);
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(format!("{}", SimDur::from_nanos(12)), "12ns");
        assert_eq!(format!("{}", SimDur::from_micros(12)), "12.000us");
        assert_eq!(format!("{}", SimDur::from_millis(12)), "12.000ms");
        assert_eq!(format!("{}", SimDur::from_secs(12)), "12.000s");
    }
}
