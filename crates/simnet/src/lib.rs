#![warn(missing_docs)]

//! # simnet — deterministic virtual-time simulation engine
//!
//! `simnet` is the substrate on which the RDMA cluster simulation is built.
//! It provides:
//!
//! * a **virtual clock** ([`SimTime`], [`SimDur`]) measured in integer
//!   nanoseconds,
//! * a **single-threaded async executor** ([`Sim`]) whose only suspension
//!   point is a timer (`sleep_until`), driven by a binary-heap event queue,
//! * **fluid FIFO resources** ([`resource::FifoLink`], [`resource::CpuPool`])
//!   that model queueing delay analytically (no scheduler machinery),
//! * a **deterministic RNG** and the YCSB Zipfian generator
//!   ([`rng`]), and
//! * **streaming statistics** ([`stats`]) including log-bucketed latency
//!   histograms.
//!
//! Every run is reproducible from a seed: tasks are woken in
//! `(virtual time, sequence number)` order and no wall-clock or OS
//! scheduling leaks into results.
//!
//! ## Example
//!
//! ```
//! use simnet::{Sim, SimDur};
//!
//! let sim = Sim::new();
//! let s = sim.clone();
//! sim.spawn(async move {
//!     s.sleep(SimDur::from_micros(5)).await;
//!     assert_eq!(s.now().as_micros(), 5);
//! });
//! sim.run();
//! ```

pub mod executor;
pub mod resource;
pub mod rng;
pub mod stats;
pub mod time;

pub use executor::{FifoPolicy, SchedulePolicy, SchedulerKind, Sim, TaskId};
pub use time::{SimDur, SimTime};
