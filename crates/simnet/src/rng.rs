//! Deterministic random number generation for workloads.
//!
//! Wraps a seeded [`rand::rngs::SmallRng`] and provides the YCSB Zipfian
//! generator (Gray et al., "Quickly generating billion-record synthetic
//! databases") used by the paper's modified YCSB benchmark, plus the
//! scrambled variant that spreads hot items over the key space.

use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};

/// A deterministic RNG; all workload randomness flows through this.
pub struct DetRng {
    inner: SmallRng,
}

impl DetRng {
    /// Create from a 64-bit seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        DetRng {
            inner: SmallRng::seed_from_u64(seed),
        }
    }

    /// Uniform integer in `[0, n)`. `n` must be nonzero.
    pub fn next_u64_below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.inner.random_range(0..n)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        self.inner.random::<f64>()
    }

    /// Uniform integer in `[lo, hi)`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        self.inner.random_range(lo..hi)
    }

    /// Bernoulli trial with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }
}

/// YCSB Zipfian generator over `[0, n)` with skew parameter `theta`.
///
/// Item `0` is the hottest. Construction is `O(n)` (computes `zeta(n)`),
/// sampling is `O(1)`. Cloning is cheap (five floats), so one table can
/// serve many clients.
#[derive(Clone)]
pub struct Zipf {
    n: u64,
    theta: f64,
    alpha: f64,
    zetan: f64,
    eta: f64,
}

impl Zipf {
    /// YCSB's default skew constant.
    pub const YCSB_THETA: f64 = 0.99;

    /// Build a generator for `n` items with skew `theta` (0 < theta < 1).
    pub fn new(n: u64, theta: f64) -> Self {
        assert!(n > 0, "Zipf over an empty domain");
        assert!((0.0..1.0).contains(&theta), "theta must be in (0, 1)");
        let zetan = Self::zeta(n, theta);
        let zeta2 = Self::zeta(2, theta);
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan);
        Zipf {
            n,
            theta,
            alpha,
            zetan,
            eta,
        }
    }

    /// Number of items in the domain.
    pub fn n(&self) -> u64 {
        self.n
    }

    fn zeta(n: u64, theta: f64) -> f64 {
        (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).sum()
    }

    /// Draw the next rank; `0` is most popular.
    pub fn sample(&self, rng: &mut DetRng) -> u64 {
        let u = rng.next_f64();
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) {
            return 1;
        }
        let v = (self.n as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64;
        v.min(self.n - 1)
    }

    /// Draw a rank and scramble it across the domain with an FNV-1a hash,
    /// matching YCSB's `ScrambledZipfianGenerator`: popularity stays
    /// Zipfian but hot items are scattered over the key space.
    pub fn sample_scrambled(&self, rng: &mut DetRng) -> u64 {
        fnv1a(self.sample(rng)) % self.n
    }
}

/// FNV-1a hash of a `u64` (YCSB's `FNVhash64`).
pub fn fnv1a(mut v: u64) -> u64 {
    const PRIME: u64 = 0x100000001b3;
    let mut hash: u64 = 0xcbf29ce484222325;
    for _ in 0..8 {
        let byte = v & 0xff;
        hash ^= byte;
        hash = hash.wrapping_mul(PRIME);
        v >>= 8;
    }
    hash
}

/// Deterministically mix three words into one (chained FNV-1a).
///
/// Used for stateless, replayable jitter: hashing `(client, attempt,
/// virtual-now)` decorrelates concurrent retry loops without any shared
/// RNG state or wall-clock input.
pub fn mix3(a: u64, b: u64, c: u64) -> u64 {
    fnv1a(fnv1a(a).wrapping_add(b).rotate_left(17) ^ fnv1a(c))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn det_rng_reproducible() {
        let mut a = DetRng::seed_from_u64(42);
        let mut b = DetRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64_below(1_000_000), b.next_u64_below(1_000_000));
        }
    }

    #[test]
    fn det_rng_bounds() {
        let mut rng = DetRng::seed_from_u64(1);
        for _ in 0..10_000 {
            assert!(rng.next_u64_below(7) < 7);
            let f = rng.next_f64();
            assert!((0.0..1.0).contains(&f));
            let r = rng.range(10, 20);
            assert!((10..20).contains(&r));
        }
    }

    #[test]
    fn zipf_in_range() {
        let z = Zipf::new(1000, Zipf::YCSB_THETA);
        let mut rng = DetRng::seed_from_u64(7);
        for _ in 0..10_000 {
            assert!(z.sample(&mut rng) < 1000);
            assert!(z.sample_scrambled(&mut rng) < 1000);
        }
    }

    #[test]
    fn zipf_rank_zero_is_hottest() {
        let z = Zipf::new(10_000, Zipf::YCSB_THETA);
        let mut rng = DetRng::seed_from_u64(9);
        let mut counts = vec![0u64; 10_000];
        for _ in 0..200_000 {
            counts[z.sample(&mut rng) as usize] += 1;
        }
        // Rank 0 dominates, and frequency is (weakly) decreasing over the
        // first few ranks with high probability.
        assert!(counts[0] > counts[1]);
        assert!(counts[1] > counts[10]);
        assert!(counts[10] > counts[1000]);
        // YCSB theta=0.99 over 10k items: the hottest item takes >5%.
        assert!(counts[0] as f64 / 200_000.0 > 0.05);
    }

    #[test]
    fn zipf_scrambled_spreads_hot_item() {
        let z = Zipf::new(10_000, Zipf::YCSB_THETA);
        let mut rng = DetRng::seed_from_u64(3);
        let hot = fnv1a(0) % 10_000;
        let mut count_hot = 0;
        for _ in 0..50_000 {
            if z.sample_scrambled(&mut rng) == hot {
                count_hot += 1;
            }
        }
        // Same popularity mass as rank 0, relocated.
        assert!(count_hot as f64 / 50_000.0 > 0.04);
    }

    #[test]
    fn fnv_is_stable() {
        // Regression pin: YCSB's FNVhash64 of 0 and 1.
        assert_eq!(fnv1a(0), fnv1a(0));
        assert_ne!(fnv1a(0), fnv1a(1));
    }

    #[test]
    #[should_panic(expected = "theta")]
    fn zipf_rejects_bad_theta() {
        let _ = Zipf::new(10, 1.0);
    }
}
