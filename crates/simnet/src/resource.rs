//! Fluid FIFO resources.
//!
//! Because the executor's only suspension point is a timer, a single-server
//! resource ([`FifoLink`]) is modelled *analytically*: it tracks when it next
//! becomes free, an acquirer computes its own start time as
//! `max(now, busy_until)`, reserves the slot, and sleeps until its service
//! completes. Calls arrive in non-decreasing virtual time, so program order
//! equals queue order and the model is an exact FIFO queue.
//!
//! A multi-server resource ([`CpuPool`]) needs true queueing because service
//! time is decided at *grant* time (the handler's work depends on state
//! observed when the core is granted), so it keeps an explicit ticketed
//! waiter queue.

use std::cell::{Cell, RefCell};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use std::future::Future;
use std::pin::Pin;
use std::task::{Context, Poll, Waker};

use crate::executor::Sim;
use crate::time::{SimDur, SimTime};

/// A single-server FIFO queue (e.g. one NIC port's wire).
///
/// `acquire(dur)` serialises holders: each holder occupies the link for its
/// duration, later arrivals queue behind it.
pub struct FifoLink {
    busy_until: Cell<SimTime>,
    busy_nanos: Cell<u64>,
}

impl Default for FifoLink {
    fn default() -> Self {
        Self::new()
    }
}

impl FifoLink {
    /// Create an idle link.
    pub fn new() -> Self {
        FifoLink {
            busy_until: Cell::new(SimTime::ZERO),
            busy_nanos: Cell::new(0),
        }
    }

    /// Occupy the link for `dur`, queueing FIFO behind earlier holders.
    /// Resolves when this holder's occupancy ends.
    pub async fn acquire(&self, sim: &Sim, dur: SimDur) {
        let end = self.reserve(sim.now(), dur);
        sim.sleep_until(end).await;
    }

    /// Reserve `dur` of link time starting no earlier than `now`; returns
    /// the instant the occupancy ends, without sleeping. Lets a caller
    /// reserve several links in one step and then wait for the latest
    /// completion (e.g. prefetch READs fanned out across servers).
    pub fn reserve(&self, now: SimTime, dur: SimDur) -> SimTime {
        let start = self.busy_until.get().max(now);
        let end = start + dur;
        self.busy_until.set(end);
        self.busy_nanos.set(self.busy_nanos.get() + dur.as_nanos());
        end
    }

    /// Instant at which the link next becomes idle.
    pub fn busy_until(&self) -> SimTime {
        self.busy_until.get()
    }

    /// How long an acquirer arriving at `now` would wait behind earlier
    /// holders before its own occupancy starts (zero on an idle link).
    pub fn queue_delay(&self, now: SimTime) -> SimDur {
        self.busy_until.get().max(now) - now
    }

    /// Total virtual time the link has been occupied (for utilization).
    pub fn busy_time(&self) -> SimDur {
        SimDur::from_nanos(self.busy_nanos.get())
    }
}

struct PoolState {
    /// Free cores, keyed by the instant each becomes idle.
    free: BinaryHeap<Reverse<SimTime>>,
    /// FIFO of waiting acquirers: (ticket, waker).
    waiters: VecDeque<(u64, Waker)>,
    next_ticket: u64,
}

/// A `k`-server FIFO queue (e.g. the RPC handler cores of a memory server).
///
/// Acquisition is two-phase so service time may depend on state observed at
/// grant time: [`CpuPool::acquire`] waits for a free core, then
/// [`CpuGrant::complete`] holds it for the computed service time.
pub struct CpuPool {
    state: RefCell<PoolState>,
    size: usize,
    busy_nanos: Cell<u64>,
}

impl CpuPool {
    /// Create a pool of `size` idle cores. `size` must be nonzero.
    pub fn new(size: usize) -> Self {
        assert!(size > 0, "CpuPool requires at least one core");
        let mut free = BinaryHeap::with_capacity(size);
        for _ in 0..size {
            free.push(Reverse(SimTime::ZERO));
        }
        CpuPool {
            state: RefCell::new(PoolState {
                free,
                waiters: VecDeque::new(),
                next_ticket: 0,
            }),
            size,
            busy_nanos: Cell::new(0),
        }
    }

    /// Number of cores.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Total core-occupancy time (for utilization: divide by
    /// `size * elapsed`).
    pub fn busy_time(&self) -> SimDur {
        SimDur::from_nanos(self.busy_nanos.get())
    }

    /// Number of acquirers currently waiting for a core.
    pub fn queue_len(&self) -> usize {
        self.state.borrow().waiters.len()
    }

    /// Wait (FIFO) for a core; the future resolves at the instant the core
    /// is granted. Dropping the grant without completing releases the core
    /// immediately.
    pub async fn acquire<'a>(&'a self, sim: &Sim) -> CpuGrant<'a> {
        let slot = ObtainSlot {
            pool: self,
            ticket: None,
        }
        .await;
        let start = slot.max(sim.now());
        sim.sleep_until(start).await;
        CpuGrant {
            pool: self,
            start,
            completed: false,
        }
    }

    /// Convenience: acquire a core, hold it for `service`, release.
    /// Returns the grant start time (after any queueing delay).
    pub async fn run(&self, sim: &Sim, service: SimDur) -> SimTime {
        let grant = self.acquire(sim).await;
        let start = grant.start();
        grant.complete(sim, service).await;
        start
    }

    fn release(&self, free_at: SimTime) {
        let mut st = self.state.borrow_mut();
        st.free.push(Reverse(free_at));
        if let Some((_, waker)) = st.waiters.front() {
            waker.wake_by_ref();
        }
    }
}

/// Future waiting for a free core; resolves to the instant the core becomes
/// idle (the acquirer still sleeps until `max(now, that instant)`).
struct ObtainSlot<'a> {
    pool: &'a CpuPool,
    ticket: Option<u64>,
}

impl Future for ObtainSlot<'_> {
    type Output = SimTime;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<SimTime> {
        let this = self.get_mut();
        let mut st = this.pool.state.borrow_mut();
        match this.ticket {
            None => {
                // First poll: take a core right away only if nobody is
                // already queued (FIFO fairness).
                if st.waiters.is_empty() {
                    if let Some(Reverse(slot)) = st.free.pop() {
                        return Poll::Ready(slot);
                    }
                }
                let ticket = st.next_ticket;
                st.next_ticket += 1;
                this.ticket = Some(ticket);
                st.waiters.push_back((ticket, cx.waker().clone()));
                Poll::Pending
            }
            Some(ticket) => {
                let at_front = st.waiters.front().is_some_and(|(t, _)| *t == ticket);
                if at_front && !st.free.is_empty() {
                    st.waiters.pop_front();
                    let Reverse(slot) = st.free.pop().expect("checked non-empty");
                    // If further cores are free, let the next waiter proceed.
                    if !st.free.is_empty() {
                        if let Some((_, w)) = st.waiters.front() {
                            w.wake_by_ref();
                        }
                    }
                    Poll::Ready(slot)
                } else {
                    // Refresh our waker in place (rare: only the front is
                    // ever woken, so the scan almost never runs deep).
                    if let Some(entry) = st.waiters.iter_mut().find(|(t, _)| *t == ticket) {
                        entry.1 = cx.waker().clone();
                    }
                    Poll::Pending
                }
            }
        }
    }
}

impl Drop for ObtainSlot<'_> {
    fn drop(&mut self) {
        if let Some(ticket) = self.ticket {
            let mut st = self.pool.state.borrow_mut();
            if let Some(pos) = st.waiters.iter().position(|(t, _)| *t == ticket) {
                let was_front = pos == 0;
                st.waiters.remove(pos);
                // A core may have been reserved for us; hand the wake on.
                if was_front && !st.free.is_empty() {
                    if let Some((_, w)) = st.waiters.front() {
                        w.wake_by_ref();
                    }
                }
            }
        }
    }
}

/// A reserved core of a [`CpuPool`]; see [`CpuPool::acquire`].
pub struct CpuGrant<'a> {
    pool: &'a CpuPool,
    start: SimTime,
    completed: bool,
}

impl CpuGrant<'_> {
    /// Virtual instant at which the core was granted.
    pub fn start(&self) -> SimTime {
        self.start
    }

    /// Hold the core for `service` time, then release it. Resolves when the
    /// service period ends.
    pub async fn complete(mut self, sim: &Sim, service: SimDur) {
        self.completed = true;
        let end = self.start + service;
        self.pool
            .busy_nanos
            .set(self.pool.busy_nanos.get() + service.as_nanos());
        self.pool.release(end);
        sim.sleep_until(end).await;
    }
}

impl Drop for CpuGrant<'_> {
    fn drop(&mut self) {
        if !self.completed {
            self.pool.release(self.start);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    #[test]
    fn fifo_link_serialises_holders() {
        let sim = Sim::new();
        let link = Rc::new(FifoLink::new());
        let ends = Rc::new(RefCell::new(Vec::new()));
        for i in 0..3u64 {
            let s = sim.clone();
            let l = link.clone();
            let e = ends.clone();
            sim.spawn(async move {
                l.acquire(&s, SimDur::from_micros(10)).await;
                e.borrow_mut().push((i, s.now().as_micros()));
            });
        }
        sim.run();
        assert_eq!(*ends.borrow(), vec![(0, 10), (1, 20), (2, 30)]);
        assert_eq!(link.busy_time().as_micros(), 30);
    }

    #[test]
    fn fifo_link_queue_delay_tracks_backlog() {
        let link = FifoLink::new();
        assert_eq!(link.queue_delay(SimTime::ZERO), SimDur::ZERO);
        link.reserve(SimTime::ZERO, SimDur::from_micros(10));
        assert_eq!(
            link.queue_delay(SimTime::ZERO + SimDur::from_micros(4)),
            SimDur::from_micros(6)
        );
        // After the backlog drains, arrivals wait nothing.
        assert_eq!(
            link.queue_delay(SimTime::ZERO + SimDur::from_micros(15)),
            SimDur::ZERO
        );
    }

    #[test]
    fn fifo_link_idle_gap_not_counted() {
        let sim = Sim::new();
        let link = Rc::new(FifoLink::new());
        let s = sim.clone();
        let l = link.clone();
        sim.spawn(async move {
            l.acquire(&s, SimDur::from_micros(5)).await;
            s.sleep(SimDur::from_micros(100)).await;
            l.acquire(&s, SimDur::from_micros(5)).await;
            assert_eq!(s.now().as_micros(), 110);
        });
        sim.run();
        assert_eq!(link.busy_time().as_micros(), 10);
    }

    #[test]
    fn cpu_pool_parallelism_equals_size() {
        let sim = Sim::new();
        let pool = Rc::new(CpuPool::new(2));
        let ends = Rc::new(RefCell::new(Vec::new()));
        for i in 0..4u64 {
            let s = sim.clone();
            let p = pool.clone();
            let e = ends.clone();
            sim.spawn(async move {
                p.run(&s, SimDur::from_micros(10)).await;
                e.borrow_mut().push((i, s.now().as_micros()));
            });
        }
        sim.run();
        // Two run 0-10, two run 10-20.
        assert_eq!(*ends.borrow(), vec![(0, 10), (1, 10), (2, 20), (3, 20)]);
        assert_eq!(pool.busy_time().as_micros(), 40);
    }

    #[test]
    fn cpu_pool_more_waiters_than_cores() {
        let sim = Sim::new();
        let pool = Rc::new(CpuPool::new(1));
        let ends = Rc::new(RefCell::new(Vec::new()));
        for i in 0..5u64 {
            let s = sim.clone();
            let p = pool.clone();
            let e = ends.clone();
            sim.spawn(async move {
                p.run(&s, SimDur::from_micros(10)).await;
                e.borrow_mut().push((i, s.now().as_micros()));
            });
        }
        sim.run();
        assert_eq!(
            *ends.borrow(),
            vec![(0, 10), (1, 20), (2, 30), (3, 40), (4, 50)]
        );
    }

    #[test]
    fn cpu_grant_two_phase_service() {
        let sim = Sim::new();
        let pool = Rc::new(CpuPool::new(1));
        let log = Rc::new(RefCell::new(Vec::new()));
        for i in 0..2u64 {
            let s = sim.clone();
            let p = pool.clone();
            let l = log.clone();
            sim.spawn(async move {
                let grant = p.acquire(&s).await;
                let granted_at = grant.start().as_micros();
                grant.complete(&s, SimDur::from_micros(7)).await;
                l.borrow_mut().push((i, granted_at, s.now().as_micros()));
            });
        }
        sim.run();
        assert_eq!(*log.borrow(), vec![(0, 0, 7), (1, 7, 14)]);
    }

    #[test]
    fn dropped_grant_releases_core() {
        let sim = Sim::new();
        let pool = Rc::new(CpuPool::new(1));
        {
            let s = sim.clone();
            let p = pool.clone();
            sim.spawn(async move {
                let _grant = p.acquire(&s).await;
                // dropped without complete
            });
        }
        let s = sim.clone();
        let p = pool.clone();
        let done = Rc::new(Cell::new(0u64));
        let d = done.clone();
        sim.spawn(async move {
            s.sleep(SimDur::from_micros(1)).await;
            p.run(&s, SimDur::from_micros(2)).await;
            d.set(s.now().as_micros());
        });
        sim.run();
        assert_eq!(done.get(), 3);
    }

    #[test]
    fn pool_run_returns_queueing_start() {
        let sim = Sim::new();
        let pool = Rc::new(CpuPool::new(1));
        let starts = Rc::new(RefCell::new(Vec::new()));
        for _ in 0..3 {
            let s = sim.clone();
            let p = pool.clone();
            let st = starts.clone();
            sim.spawn(async move {
                let begin = p.run(&s, SimDur::from_micros(4)).await;
                st.borrow_mut().push(begin.as_micros());
            });
        }
        sim.run();
        assert_eq!(*starts.borrow(), vec![0, 4, 8]);
    }

    #[test]
    fn pool_grants_are_fifo_across_arrival_times() {
        let sim = Sim::new();
        let pool = Rc::new(CpuPool::new(1));
        let order = Rc::new(RefCell::new(Vec::new()));
        // Client 0 arrives at t=0 and holds 100us. Clients 1..4 arrive at
        // 10, 20, 30us and must be served in arrival order.
        for (i, arrive) in [(0u64, 0u64), (1, 10), (2, 20), (3, 30)] {
            let s = sim.clone();
            let p = pool.clone();
            let o = order.clone();
            sim.spawn(async move {
                s.sleep(SimDur::from_micros(arrive)).await;
                p.run(&s, SimDur::from_micros(100)).await;
                o.borrow_mut().push(i);
            });
        }
        sim.run();
        assert_eq!(*order.borrow(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn pool_queue_len_observable() {
        let sim = Sim::new();
        let pool = Rc::new(CpuPool::new(1));
        for _ in 0..3 {
            let s = sim.clone();
            let p = pool.clone();
            sim.spawn(async move {
                p.run(&s, SimDur::from_micros(10)).await;
            });
        }
        let s = sim.clone();
        let p = pool.clone();
        let observed = Rc::new(Cell::new(usize::MAX));
        let ob = observed.clone();
        sim.spawn(async move {
            s.sleep(SimDur::from_micros(5)).await;
            ob.set(p.queue_len());
        });
        sim.run();
        // At t=5us: one holder on the core, one waiter already granted a
        // future start (released slots are handed out eagerly), one queued.
        assert_eq!(observed.get(), 1);
    }
}
