//! Streaming measurement statistics.
//!
//! [`Histogram`] is a log-bucketed latency histogram (HDR-style: power-of-two
//! major buckets, linear sub-buckets; ≤ ~3% relative error) suitable for
//! recording millions of samples with constant memory. [`Counter`] is a
//! plain monotone event counter.

use std::cell::Cell;
use std::fmt;

/// Sub-buckets per power-of-two range. 32 gives ≈3% value resolution.
const SUB_BUCKETS: usize = 32;
const SUB_SHIFT: u32 = 5; // log2(SUB_BUCKETS)
const MAJOR_BUCKETS: usize = 64;

/// Log-bucketed histogram of nonnegative `u64` samples (typically
/// nanoseconds).
#[derive(Clone)]
pub struct Histogram {
    buckets: Vec<u64>,
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Create an empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: vec![0; MAJOR_BUCKETS * SUB_BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    fn index_of(value: u64) -> usize {
        let v = value.max(1);
        let exp = 63 - v.leading_zeros();
        let sub = if exp >= SUB_SHIFT {
            ((v - (1u64 << exp)) >> (exp - SUB_SHIFT)) as usize
        } else {
            // Small values: each sub-bucket spans less than one unit; map
            // proportionally within the power-of-two range.
            (((v - (1u64 << exp)) as usize) << (SUB_SHIFT - exp)) & (SUB_BUCKETS - 1)
        };
        exp as usize * SUB_BUCKETS + sub
    }

    fn value_of(index: usize) -> u64 {
        let exp = (index / SUB_BUCKETS) as u32;
        let sub = (index % SUB_BUCKETS) as u64;
        let base = 1u64 << exp;
        if exp >= SUB_SHIFT {
            // Midpoint of the sub-bucket.
            base + (sub << (exp - SUB_SHIFT)) + (1u64 << (exp - SUB_SHIFT)) / 2
        } else {
            base + (sub >> (SUB_SHIFT - exp))
        }
    }

    /// Record one sample.
    pub fn record(&mut self, value: u64) {
        self.buckets[Self::index_of(value)] += 1;
        self.count += 1;
        self.sum += value as u128;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact minimum sample, or 0 if empty.
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Exact maximum sample.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Exact mean, or 0.0 if empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Approximate value at quantile `q` in `[0, 1]` (e.g. 0.99 for p99).
    /// Returns 0 if empty.
    pub fn percentile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let target = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Self::value_of(i).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Median (p50).
    pub fn median(&self) -> u64 {
        self.percentile(0.5)
    }

    /// Merge another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl fmt::Debug for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count)
            .field("mean", &self.mean())
            .field("p50", &self.median())
            .field("p99", &self.percentile(0.99))
            .field("max", &self.max)
            .finish()
    }
}

/// A monotone event/byte counter with interior mutability, so it can be
/// shared by `Rc` between simulation tasks.
#[derive(Default)]
pub struct Counter {
    value: Cell<u64>,
}

impl Counter {
    /// Create a zeroed counter.
    pub fn new() -> Self {
        Counter::default()
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.value.set(self.value.get() + n);
    }

    /// Increment by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.get()
    }

    /// Reset to zero, returning the previous value.
    pub fn take(&self) -> u64 {
        self.value.replace(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.percentile(0.5), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.min(), 0);
    }

    #[test]
    fn single_value() {
        let mut h = Histogram::new();
        h.record(1000);
        assert_eq!(h.count(), 1);
        assert_eq!(h.min(), 1000);
        assert_eq!(h.max(), 1000);
        assert_eq!(h.mean(), 1000.0);
        let p = h.percentile(0.5);
        assert!((p as f64 - 1000.0).abs() / 1000.0 < 0.05, "p50={p}");
    }

    #[test]
    fn percentiles_of_uniform_ramp() {
        let mut h = Histogram::new();
        for v in 1..=100_000u64 {
            h.record(v);
        }
        for (q, expect) in [(0.5, 50_000.0), (0.9, 90_000.0), (0.99, 99_000.0)] {
            let got = h.percentile(q) as f64;
            assert!(
                (got - expect).abs() / expect < 0.05,
                "q={q}: got {got}, want ~{expect}"
            );
        }
        assert_eq!(h.min(), 1);
        assert_eq!(h.max(), 100_000);
        assert!((h.mean() - 50_000.5).abs() < 1.0);
    }

    #[test]
    fn wide_dynamic_range() {
        let mut h = Histogram::new();
        h.record(1);
        h.record(1_000_000_000_000);
        assert_eq!(h.count(), 2);
        assert_eq!(h.min(), 1);
        assert_eq!(h.max(), 1_000_000_000_000);
        // p100 lands in the top bucket and is clamped to max.
        assert_eq!(h.percentile(1.0), 1_000_000_000_000);
    }

    #[test]
    fn zero_sample_is_accepted() {
        let mut h = Histogram::new();
        h.record(0);
        assert_eq!(h.count(), 1);
        assert_eq!(h.min(), 0);
    }

    #[test]
    fn merge_combines() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for v in 1..=50u64 {
            a.record(v);
        }
        for v in 51..=100u64 {
            b.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), 100);
        assert_eq!(a.min(), 1);
        assert_eq!(a.max(), 100);
        let p50 = a.percentile(0.5) as f64;
        assert!((p50 - 50.0).abs() / 50.0 < 0.1, "p50={p50}");
    }

    #[test]
    fn counter_ops() {
        let c = Counter::new();
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
        assert_eq!(c.take(), 42);
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn index_value_round_trip_error_bounded() {
        for v in [1u64, 2, 3, 10, 100, 1000, 12_345, 999_999, 1 << 40] {
            let rebuilt = Histogram::value_of(Histogram::index_of(v));
            let err = (rebuilt as f64 - v as f64).abs() / v as f64;
            assert!(err < 0.05, "v={v} rebuilt={rebuilt} err={err}");
        }
    }
}
