//! Property tests for `simnet::stats::Histogram`: percentile
//! monotonicity, merge/concatenation equivalence, and the documented
//! ≤3% relative-error bound of the log-bucketed representation.

use proptest::prelude::*;
use simnet::stats::Histogram;

/// The exact empirical percentile matching the histogram's definition:
/// the `ceil(q * n)`-th smallest sample (1-based, at least the 1st).
fn exact_percentile(sorted: &[u64], q: f64) -> u64 {
    let n = sorted.len() as f64;
    let target = ((q.clamp(0.0, 1.0) * n).ceil() as usize).max(1);
    sorted[target - 1]
}

fn histogram_of(values: &[u64]) -> Histogram {
    let mut h = Histogram::new();
    for &v in values {
        h.record(v);
    }
    h
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

    /// percentile(q) is non-decreasing in q.
    #[test]
    fn percentile_is_monotone(
        values in prop::collection::vec(1u64..1 << 40, 1..200),
        qa in 0.0f64..1.0,
        qb in 0.0f64..1.0,
    ) {
        let h = histogram_of(&values);
        let (lo, hi) = if qa <= qb { (qa, qb) } else { (qb, qa) };
        prop_assert!(
            h.percentile(lo) <= h.percentile(hi),
            "p({lo}) = {} > p({hi}) = {}",
            h.percentile(lo),
            h.percentile(hi)
        );
    }

    /// Merging two histograms is observationally identical to recording
    /// the concatenation of their samples into one histogram.
    #[test]
    fn merge_equals_concatenated_record(
        a in prop::collection::vec(1u64..1 << 40, 0..120),
        b in prop::collection::vec(1u64..1 << 40, 1..120),
    ) {
        let mut merged = histogram_of(&a);
        merged.merge(&histogram_of(&b));

        let mut concat = a.clone();
        concat.extend_from_slice(&b);
        let direct = histogram_of(&concat);

        prop_assert_eq!(merged.count(), direct.count());
        prop_assert_eq!(merged.min(), direct.min());
        prop_assert_eq!(merged.max(), direct.max());
        prop_assert_eq!(merged.mean(), direct.mean());
        for q in [0.0, 0.1, 0.25, 0.5, 0.9, 0.99, 0.999, 1.0] {
            prop_assert_eq!(merged.percentile(q), direct.percentile(q));
        }
    }

    /// Every percentile estimate is within 3% (relative) of the exact
    /// empirical percentile — the bound the log-bucketed layout
    /// (32 sub-buckets per power of two) documents.
    #[test]
    fn percentile_relative_error_within_3_percent(
        values in prop::collection::vec(1u64..1 << 40, 1..200),
        q in 0.0f64..1.0,
    ) {
        let h = histogram_of(&values);
        let mut sorted = values.clone();
        sorted.sort_unstable();
        let exact = exact_percentile(&sorted, q);
        let approx = h.percentile(q);
        let err = approx.abs_diff(exact) as f64;
        prop_assert!(
            err <= 0.03 * exact as f64,
            "p({q}): approx {approx} vs exact {exact} (err {err})"
        );
    }

    /// min/max/count are exact regardless of bucketing.
    #[test]
    fn extremes_and_count_are_exact(
        values in prop::collection::vec(1u64..1 << 40, 1..200),
    ) {
        let h = histogram_of(&values);
        prop_assert_eq!(h.count(), values.len() as u64);
        prop_assert_eq!(h.min(), *values.iter().min().unwrap());
        prop_assert_eq!(h.max(), *values.iter().max().unwrap());
    }
}
