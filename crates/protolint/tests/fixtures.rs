//! The fixture corpus and the workspace lint as a cargo test, so plain
//! `cargo test` exercises the analyzer without going through xtask.

use std::path::PathBuf;

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crate lives two levels under the repo root")
        .to_path_buf()
}

/// Every negative fixture must fire exactly the rules it declares via
/// `expect(...)`, and every false-positive guard must stay silent.
#[test]
fn fixture_corpus_matches_expectations() {
    let dir = repo_root().join("crates/protolint/fixtures");
    let paths = protolint::fixture_paths(&dir).expect("fixtures dir readable");
    assert!(
        paths.len() >= 10,
        "fixture corpus shrank to {} files",
        paths.len()
    );
    let mut bad = Vec::new();
    for p in &paths {
        let res = protolint::run_fixture(p).expect("fixture parses");
        if !res.pass() {
            bad.push(format!(
                "{}: expected {:?}, found {:?}",
                res.name, res.expected, res.found
            ));
        }
    }
    assert!(bad.is_empty(), "fixture mismatches:\n{}", bad.join("\n"));
}

/// The rule families the negative corpus covers: at least one fixture
/// per enforced discipline.
#[test]
fn fixture_corpus_covers_all_rule_families() {
    let dir = repo_root().join("crates/protolint/fixtures");
    let paths = protolint::fixture_paths(&dir).expect("fixtures dir readable");
    let mut covered = std::collections::BTreeSet::new();
    for p in &paths {
        let res = protolint::run_fixture(p).expect("fixture parses");
        covered.extend(res.expected);
    }
    for rule in [
        "lock-leak",
        "double-release",
        "cs-verb-bound",
        "cs-loop",
        "unmodeled-verb-loop",
        "unmodeled-ep-method",
        "retry-idempotent",
        "hot-panic",
        "deadline-thread",
        "validated-before-use",
    ] {
        assert!(covered.contains(rule), "no fixture exercises `{rule}`");
    }
}

/// The real hot paths lint clean and the widest discovered critical
/// section equals the spec bound the lease-recovery proof uses.
#[test]
fn workspace_hot_paths_lint_clean() {
    let root = repo_root();
    let prog = protolint::load_workspace(&root).expect("workspace loads");
    let max = protolint::spec_max_verbs(&root).expect("spec parses");
    let out = protolint::run_lint(&prog, max, false);
    assert!(
        out.findings.is_empty(),
        "hot-path findings:\n{}",
        out.findings
            .iter()
            .map(|f| format!("{}:{}: [{}] {}", f.file, f.line, f.rule, f.msg))
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert_eq!(out.max_section_verbs(), max);
}

/// The static cost table keeps the paper's §4–§5 per-op verb counts.
#[test]
fn cost_table_matches_paper_protocol() {
    let root = repo_root();
    let prog = protolint::load_workspace(&root).expect("workspace loads");
    let max = protolint::spec_max_verbs(&root).expect("spec parses");
    let rows = protolint::cost_table(&prog, max);
    let cell = |design: &str, op: &str| {
        rows.iter()
            .find(|r| r.design == design)
            .and_then(|r| r.cells.iter().find(|(l, _)| *l == op))
            .map(|(_, c)| c.render())
            .unwrap_or_else(|| panic!("no cell {design}/{op}"))
    };
    assert_eq!(cell("cg", "lookup"), "1 RPC");
    assert_eq!(cell("cg", "insert (no split)"), "1 RPC");
    assert_eq!(cell("fg", "lookup"), "L os");
    assert_eq!(cell("fg", "insert (no split)"), "L+3 os");
    assert_eq!(cell("fg", "delete (miss)"), "L+2 os");
    assert_eq!(cell("fg", "delete (hit)"), "L+3 os");
    assert_eq!(cell("hybrid", "lookup"), "1 RPC + 1 os");
    assert_eq!(cell("hybrid", "insert (no split)"), "1 RPC + 4 os");
    assert_eq!(cell("hybrid", "delete (miss)"), "1 RPC + 3 os");
    assert_eq!(cell("hybrid", "delete (hit)"), "1 RPC + 4 os");
    // Design 4: the model resolves the leaf client-side, so a point
    // lookup is a single one-sided READ and no RPC ever leaves.
    assert_eq!(cell("learned", "lookup"), "1 os");
    assert_eq!(cell("learned", "insert (no split)"), "4 os");
    assert_eq!(cell("learned", "delete (miss)"), "3 os");
    assert_eq!(cell("learned", "delete (hit)"), "4 os");
}
