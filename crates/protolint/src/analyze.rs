//! Path-sensitive protocol analysis: lock-state tracking, verb
//! accounting, and the static verbs-per-op cost model.
//!
//! The walker (`walk.rs`) inlines calls between the analyzed
//! functions. Five one-sided primitives are *not* inlined; they carry
//! `// protolint: role(...)` annotations and are modelled at the call
//! site (their bodies implement the role with raw verbs and are only
//! scanned structurally for panic-freedom):
//!
//! * `role(acquire)` — lock CAS; `Ok` leaves the lock held with an
//!   empty critical section, `Err` leaves it free.
//! * `role(spin-read)` — one READ (per attempt); lock state unchanged.
//! * `role(release)` — the bare unlock FAA; requires the lock held.
//! * `role(commit-release)` — WRITE-back (+ optional sibling WRITE)
//!   then unlock FAA; `Err` leaves the lock held (undischarged).
//! * `role(rescue)` — `release_on_error`: passes `Ok` through, and on
//!   `Err` discharges the still-held lock with a best-effort FAA. The
//!   rescue FAA reuses the unlock slot of the verb budget, so it does
//!   not count against the critical-section bound.

use std::collections::{BTreeMap, BTreeSet};

use crate::lex::AnnItem;
use crate::syntax::{FnItem, Program, Tree};

/// Analysis context: which design's `match design` arm to select and
/// how to resolve `NodeSource` generics.
#[derive(Clone, Copy, Debug)]
pub struct Ctx {
    pub key: &'static str,
    /// `Design::<variant>` arm selected for this context.
    pub variant: &'static str,
    /// Concrete type bound to `S: NodeSource` generics.
    pub design_ty: &'static str,
    pub client_descent: bool,
    /// Inner levels crossed by an annotated `loop(levels)`; `None`
    /// keeps the count symbolic (the `L` of the cost table).
    pub levels: Option<i64>,
}

pub const CTXS: [Ctx; 4] = [
    Ctx {
        key: "cg",
        variant: "Cg",
        design_ty: "CoarseGrained",
        client_descent: false,
        levels: Some(1),
    },
    Ctx {
        key: "fg",
        variant: "Fg",
        design_ty: "FineGrained",
        client_descent: true,
        levels: None,
    },
    Ctx {
        key: "hybrid",
        variant: "Hybrid",
        design_ty: "Hybrid",
        client_descent: false,
        levels: Some(1),
    },
    Ctx {
        key: "learned",
        variant: "Learned",
        design_ty: "Learned",
        client_descent: false,
        levels: Some(1),
    },
];

/// Fixture context: client-descent shape with a concrete level count.
pub const FIXTURE_CTX: Ctx = Ctx {
    key: "fixture",
    variant: "Fg",
    design_ty: "FineGrained",
    client_descent: true,
    levels: Some(2),
};

#[derive(Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Explore all branches, track lock states, emit findings.
    Lint,
    /// Prune error paths, count verbs, keep symbolic level terms.
    Cost,
}

/// `k + l·L` verbs, where `L` is the (symbolic) number of tree levels.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default, Debug)]
pub struct Poly {
    pub l: i64,
    pub k: i64,
}

impl Poly {
    pub const fn new(l: i64, k: i64) -> Self {
        Poly { l, k }
    }

    pub fn eval(&self, levels: i64) -> i64 {
        self.l * levels + self.k
    }

    pub fn render(&self) -> String {
        match (self.l, self.k) {
            (0, k) => format!("{k}"),
            (1, 0) => "L".to_string(),
            (l, 0) => format!("{l}L"),
            (1, k) if k > 0 => format!("L+{k}"),
            (l, k) if k > 0 => format!("{l}L+{k}"),
            (1, k) => format!("L{k}"),
            (l, k) => format!("{l}L{k}"),
        }
    }
}

/// Static cost of one path (or one op): RPC round trips plus one-sided
/// verbs, with an `unbounded` flag for data-dependent loops.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default, Debug)]
pub struct Cost {
    pub rpc: Poly,
    pub os: Poly,
    pub unbounded: bool,
    /// Allocation verbs on this path (splits allocate; the steady-state
    /// cost rows are the allocation-free paths).
    pub allocs: i64,
}

impl Cost {
    /// Total-order key used for min/max path selection: unbounded last,
    /// then by level terms, then by constant terms.
    pub fn key(&self) -> (u8, i64, i64, i64) {
        (
            self.unbounded as u8,
            self.rpc.l + self.os.l,
            self.rpc.k + self.os.k,
            self.rpc.k,
        )
    }

    pub fn render(&self) -> String {
        if self.unbounded {
            return "unbounded".to_string();
        }
        let mut parts = Vec::new();
        if self.rpc != Poly::default() {
            parts.push(format!("{} RPC", self.rpc.render()));
        }
        if self.os != Poly::default() {
            parts.push(format!("{} os", self.os.render()));
        }
        if parts.is_empty() {
            parts.push("0".to_string());
        }
        parts.join(" + ")
    }
}

/// Lock state of one path.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Debug, Default)]
pub enum Lock {
    #[default]
    Free,
    Held {
        /// Source line of the acquiring call.
        line: u32,
        /// Verbs issued since the acquire (the critical section).
        verbs: Vec<String>,
    },
}

/// One abstract state on one path.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Default, Debug)]
pub struct St {
    pub lock: Lock,
    /// Verb cost so far (Cost mode only; stays zero in Lint mode so
    /// state dedup converges).
    pub cost: Cost,
    /// Forked `Result` bindings: depth-scoped var name -> is-Ok side.
    pub vars: BTreeMap<String, bool>,
    /// Ok/Err tag of the most recent modelled call on this path.
    pub res: Option<bool>,
}

/// How a path left a function.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum EK {
    Ok,
    Err,
    Plain,
}

/// Control-flow summary of one evaluated region.
#[derive(Default, Debug)]
pub struct Flow {
    pub next: Vec<St>,
    pub rets: Vec<(St, EK)>,
    pub brks: Vec<St>,
    pub conts: Vec<St>,
}

impl Flow {
    pub fn absorb_inner(&mut self, o: Flow) -> Vec<St> {
        self.rets.extend(o.rets);
        self.brks.extend(o.brks);
        self.conts.extend(o.conts);
        o.next
    }
}

/// One rule violation.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub struct Finding {
    pub rule: &'static str,
    pub file: String,
    pub line: u32,
    pub msg: String,
}

/// One critical section observed on a happy-path release.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub struct Section {
    pub func: String,
    pub verbs: Vec<String>,
}

/// One call frame of the inlining walker.
pub(crate) struct Frame {
    pub fi: usize,
    /// Local variable -> concrete type (for method resolution).
    pub types: BTreeMap<String, String>,
    /// Enclosing `impl` target, for `Self::` and `self`.
    pub self_ty: Option<String>,
}

pub struct Analysis<'p> {
    pub prog: &'p Program,
    pub mode: Mode,
    pub ctx: Ctx,
    pub max_verbs: usize,
    pub findings: Vec<Finding>,
    pub sections: BTreeSet<Section>,
    pub visited: BTreeSet<usize>,
    /// Monotone count of verbs issued on any path (loop-progress probe).
    pub verb_events: u64,
    pub(crate) frames: Vec<Frame>,
    pub(crate) stack: Vec<usize>,
    pub(crate) fuel: i64,
}

pub const STATE_CAP: usize = 64;

impl<'p> Analysis<'p> {
    pub fn new(prog: &'p Program, mode: Mode, ctx: Ctx, max_verbs: usize) -> Self {
        Analysis {
            prog,
            mode,
            ctx,
            max_verbs,
            findings: Vec::new(),
            sections: BTreeSet::new(),
            visited: BTreeSet::new(),
            verb_events: 0,
            frames: Vec::new(),
            stack: Vec::new(),
            fuel: 4_000_000,
        }
    }

    pub(crate) fn frame(&self) -> &Frame {
        self.frames
            .last()
            .expect("walker always runs inside a frame")
    }

    pub(crate) fn fn_item(&self) -> &FnItem {
        &self.prog.fns[self.frame().fi]
    }

    pub(crate) fn depth_key(&self, name: &str) -> String {
        format!("{}:{name}", self.frames.len())
    }

    pub(crate) fn emit(&mut self, rule: &'static str, line: u32, msg: String) {
        let file = self.fn_item().file.clone();
        if self.prog.allowed(&file, line, rule) {
            return;
        }
        self.findings.push(Finding {
            rule,
            file,
            line,
            msg,
        });
    }

    /// Issue one verb of class `label` on every state: cost accounting,
    /// critical-section growth, and the verb bound.
    pub(crate) fn issue_verb(&mut self, states: &mut [St], label: &str, line: u32) {
        self.verb_events += 1;
        let mut over: Option<usize> = None;
        for st in states.iter_mut() {
            if self.mode == Mode::Cost {
                if label == "RPC" {
                    st.cost.rpc.k += 1;
                } else {
                    st.cost.os.k += 1;
                }
                if label == "alloc" {
                    st.cost.allocs += 1;
                }
            }
            if let Lock::Held { verbs, .. } = &mut st.lock {
                verbs.push(label.to_string());
                if verbs.len() > self.max_verbs {
                    over = Some(verbs.len());
                }
            }
        }
        if let Some(n) = over {
            self.emit(
                "cs-verb-bound",
                line,
                format!(
                    "critical section issues {n} verbs while holding the lock \
                     (MAX_LOCK_HOLD_VERBS = {})",
                    self.max_verbs
                ),
            );
        }
    }

    /// Close a critical section on a happy-path release.
    pub(crate) fn close_section(&mut self, st: &St) {
        if let Lock::Held { verbs, .. } = &st.lock {
            self.sections.insert(Section {
                func: self.fn_item().name.clone(),
                verbs: verbs.clone(),
            });
        }
    }

    /// In Cost mode, drop states tagged as error paths.
    pub(crate) fn prune(&self, mut states: Vec<St>) -> Vec<St> {
        if self.mode == Mode::Cost {
            states.retain(|s| s.res != Some(false));
        }
        states
    }

    /// Dedup and cap a state set.
    pub(crate) fn squash(&self, states: Vec<St>) -> Vec<St> {
        let mut set: BTreeSet<St> = states.into_iter().collect();
        while set.len() > STATE_CAP {
            let last = set.iter().next_back().cloned();
            if let Some(l) = last {
                set.remove(&l);
            }
        }
        set.into_iter().collect()
    }

    pub(crate) fn role_of(&self, fi: usize) -> Option<(String, bool)> {
        let mut role = None;
        let mut primitive = false;
        for a in &self.prog.fns[fi].anns {
            match a {
                AnnItem::Role(r) => role = Some(r.clone()),
                AnnItem::Primitive => primitive = true,
                _ => {}
            }
        }
        role.map(|r| (r, primitive))
    }

    /// Loop-kind annotation attached within three lines above `line`.
    pub(crate) fn loop_kind_at(&self, line: u32) -> Option<String> {
        let file = &self.fn_item().file;
        for a in self.prog.anns_in(file, line.saturating_sub(3), line) {
            if let AnnItem::LoopKind(k) = a {
                return Some(k.clone());
            }
        }
        None
    }

    pub(crate) fn ann_at(&self, line: u32, want: &AnnItem) -> bool {
        let file = &self.fn_item().file;
        self.prog
            .anns_in(file, line.saturating_sub(3), line)
            .contains(&want)
    }

    /// Syntactic type of a call argument: `&`/`mut`-stripped identifier
    /// chains, with `.source()`/`.clone()` as type-preserving suffixes.
    pub(crate) fn arg_type(&self, span: &[Tree]) -> Option<String> {
        let mut i = 0;
        while i < span.len() {
            match &span[i] {
                Tree::T(t) if t.text == "&" || t.text == "*" => i += 1,
                Tree::T(t) if t.text == "mut" => i += 1,
                _ => break,
            }
        }
        let id = span.get(i)?.ident()?;
        let ty = if id == "self" {
            self.frame().self_ty.clone()?
        } else {
            self.frame().types.get(id)?.clone()
        };
        i += 1;
        // Only type-preserving suffixes may follow; any other projection
        // (field access, indexing) yields an unknown type.
        while i < span.len() {
            if i + 2 < span.len()
                && span[i].is_punct(".")
                && matches!(span[i + 1].ident(), Some("source" | "clone"))
                && span[i + 2].group().map(|g| g.open) == Some('(')
            {
                i += 3;
            } else {
                return None;
            }
        }
        Some(ty)
    }
}

/// Endpoint methods that issue wire verbs, mapped to their verb class.
pub(crate) fn ep_verb(name: &str) -> Option<&'static str> {
    match name {
        "read" | "read_many" => Some("READ"),
        "write" => Some("WRITE"),
        "cas" => Some("CAS"),
        "fetch_add" => Some("FAA"),
        "alloc" => Some("alloc"),
        "rpc" => Some("RPC"),
        _ => None,
    }
}

/// Endpoint methods that issue no wire verb: pure bookkeeping, plus
/// server-local waits (`local_work` models handler CPU;
/// `durability_barrier` parks on the co-located server's WAL flush —
/// both cost virtual time but never touch the verb budget).
pub(crate) fn ep_pure(name: &str) -> bool {
    matches!(
        name,
        "cluster" | "client_id" | "is_local" | "local_work" | "durability_barrier"
    )
}
