//! Call evaluation: inlining analyzed functions, call-site models for
//! the annotated one-sided primitives, and the `Endpoint` verb table.

use std::collections::BTreeMap;

use crate::analyze::{ep_pure, ep_verb, Analysis, Finding, Flow, Lock, Mode, St, EK};
use crate::syntax::{Group, Tree};
use crate::walk::{first_ident, split_commas};

impl Analysis<'_> {
    /// Evaluate a call to an analyzed function: role model or inline.
    pub(crate) fn eval_user_call(
        &mut self,
        fi: usize,
        g: &Group,
        line: u32,
        flow: &mut Flow,
        states: Vec<St>,
    ) -> Vec<St> {
        self.visited.insert(fi);
        let arg_spans = split_commas(&g.items);
        if let Some((role, primitive)) = self.role_of(fi) {
            // A non-primitive acquire (`lock_covering_leaf`) is modelled
            // in Lint mode (its body is checked as a pseudo-root) but
            // inlined in Cost mode so its verbs are counted.
            let inline_acquire = role == "acquire" && !primitive && self.mode == Mode::Cost;
            if !inline_acquire {
                return self.model_role(&role, &arg_spans, line, flow, states);
            }
        }
        if self.stack.contains(&fi) {
            // Recursive edge: evaluate arguments, treat the call as pure.
            let mut states = states;
            for part in &arg_spans {
                states = self.eval_expr(part, flow, states);
            }
            for st in &mut states {
                st.res = None;
            }
            return states;
        }
        self.inline_call(fi, &arg_spans, flow, states)
    }

    fn inline_call(
        &mut self,
        fi: usize,
        arg_spans: &[&[Tree]],
        flow: &mut Flow,
        states: Vec<St>,
    ) -> Vec<St> {
        let prog = self.prog;
        let f = &prog.fns[fi];
        let pos_params: Vec<&String> = f.params.iter().filter(|p| *p != "self").collect();
        let mut types: BTreeMap<String, String> = BTreeMap::new();
        let mut states = states;
        for (idx, span) in arg_spans.iter().enumerate() {
            let ty = self.arg_type(span);
            states = self.eval_expr(span, flow, states);
            if let (Some(ty), Some(p)) = (ty, pos_params.get(idx)) {
                types.insert((*p).clone(), ty);
            }
        }
        for st in &mut states {
            st.res = None;
        }
        let rets = self.inline_states(fi, types, f.impl_ty.clone(), states);
        let mut out = Vec::new();
        for (mut st, ek) in rets {
            st.res = match ek {
                EK::Ok => Some(true),
                EK::Err => Some(false),
                EK::Plain => None,
            };
            out.push(st);
        }
        self.prune(out)
    }

    /// Push a frame, evaluate a function body, and collect its exits.
    pub(crate) fn inline_states(
        &mut self,
        fi: usize,
        types: BTreeMap<String, String>,
        self_ty: Option<String>,
        states: Vec<St>,
    ) -> Vec<(St, EK)> {
        let prog = self.prog;
        self.stack.push(fi);
        self.frames
            .push(crate::analyze::Frame { fi, types, self_ty });
        let mut entry = states;
        for st in &mut entry {
            st.res = None;
        }
        let f = self.eval_block(&prog.fns[fi].body, entry);
        let mut rets = f.rets;
        for st in f.next {
            let ek = match st.res {
                Some(true) => EK::Ok,
                Some(false) => EK::Err,
                None => EK::Plain,
            };
            rets.push((st, ek));
        }
        self.frames.pop();
        self.stack.pop();
        // Forked bindings scoped to the popped frame die with it.
        let depth_limit = self.frames.len();
        for (st, _) in &mut rets {
            st.vars.retain(|k, _| {
                k.split(':')
                    .next()
                    .and_then(|n| n.parse::<usize>().ok())
                    .map(|n| n <= depth_limit)
                    .unwrap_or(false)
            });
        }
        rets
    }

    /// Walk a root function from a clean state with seeded param types.
    pub fn run_fn(&mut self, fi: usize, seed: &[(&str, &str)]) -> Vec<(St, EK)> {
        let types = seed
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        self.visited.insert(fi);
        let self_ty = self.prog.fns[fi].impl_ty.clone();
        self.inline_states(fi, types, self_ty, vec![St::default()])
    }

    /// Root-exit discipline: no path may return with the lock held. For
    /// acquire-role pseudo-roots, `Ok` exits are *expected* to hold it.
    pub fn check_root_exits(&mut self, fi: usize, rets: &[(St, EK)], acquire_root: bool) {
        let file = self.prog.fns[fi].file.clone();
        let name = self.prog.fns[fi].name.clone();
        for (st, ek) in rets {
            if let Lock::Held { line, .. } = &st.lock {
                if acquire_root && *ek == EK::Ok {
                    continue;
                }
                if self.prog.allowed(&file, *line, "lock-leak") {
                    continue;
                }
                self.findings.push(Finding {
                    rule: "lock-leak",
                    file: file.clone(),
                    line: *line,
                    msg: format!(
                        "`{name}` can return with the lock acquired at line {line} \
                         still held"
                    ),
                });
            }
        }
    }

    /// Fork every state into an Ok and (Lint only) an Err continuation.
    fn tag_result(&mut self, states: Vec<St>) -> Vec<St> {
        let lint = self.mode == Mode::Lint;
        let mut out = Vec::new();
        for st in states {
            let mut ok = st.clone();
            ok.res = Some(true);
            out.push(ok);
            if lint {
                let mut e = st;
                e.res = Some(false);
                out.push(e);
            }
        }
        out
    }

    /// Best-effort unlock on the error path. Reuses the unlock slot of
    /// the verb budget, so it does not count against the CS bound.
    fn rescue_discharge(&mut self, st: &mut St) {
        if matches!(st.lock, Lock::Held { .. }) {
            self.verb_events += 1;
            st.lock = Lock::Free;
        }
    }

    fn model_role(
        &mut self,
        role: &str,
        arg_spans: &[&[Tree]],
        line: u32,
        flow: &mut Flow,
        states: Vec<St>,
    ) -> Vec<St> {
        match role {
            "spin-read" => {
                let mut states = states;
                self.issue_verb(&mut states, "READ", line);
                self.tag_result(states)
            }
            "acquire" => {
                let mut states = states;
                self.issue_verb(&mut states, "CAS", line);
                let lint = self.mode == Mode::Lint;
                let mut out = Vec::new();
                for st in states {
                    let mut ok = st.clone();
                    ok.lock = Lock::Held {
                        line,
                        verbs: Vec::new(),
                    };
                    ok.res = Some(true);
                    out.push(ok);
                    if lint {
                        let mut e = st;
                        e.lock = Lock::Free;
                        e.res = Some(false);
                        out.push(e);
                    }
                }
                out
            }
            "release" => {
                if states.iter().any(|s| matches!(s.lock, Lock::Free)) {
                    self.emit(
                        "double-release",
                        line,
                        "unlock of a lock that is not held on some path".to_string(),
                    );
                }
                let mut states = states;
                self.issue_verb(&mut states, "unlock FAA", line);
                for st in &states {
                    self.close_section(st);
                }
                for st in &mut states {
                    st.lock = Lock::Free;
                }
                self.tag_result(states)
            }
            "commit-release" => {
                if states.iter().any(|s| matches!(s.lock, Lock::Free)) {
                    self.emit(
                        "double-release",
                        line,
                        "write-unlock of a lock that is not held on some path".to_string(),
                    );
                }
                let in_place_only = arg_spans.get(3).and_then(|s| first_ident(s)) == Some("None");
                let labels: &[&str] = if in_place_only {
                    &["in-place WRITE", "unlock FAA"]
                } else {
                    &["sibling WRITE", "in-place WRITE", "unlock FAA"]
                };
                let mut states = states;
                for l in labels {
                    self.issue_verb(&mut states, l, line);
                }
                let lint = self.mode == Mode::Lint;
                let mut out = Vec::new();
                for st in states {
                    let mut ok = st.clone();
                    self.close_section(&ok);
                    ok.lock = Lock::Free;
                    ok.res = Some(true);
                    out.push(ok);
                    if lint {
                        // Err: the WRITE/FAA did not land — still held.
                        let mut e = st;
                        e.res = Some(false);
                        out.push(e);
                    }
                }
                out
            }
            "rescue" => {
                let span: &[Tree] = arg_spans.get(2).copied().unwrap_or(&[]);
                let mut out = Vec::new();
                if span.len() == 1 {
                    if let Some(v) = span[0].ident() {
                        let key = self.depth_key(v);
                        if states.iter().any(|s| s.vars.contains_key(&key)) {
                            for mut st in states {
                                match st.vars.remove(&key) {
                                    Some(true) => {
                                        st.res = Some(true);
                                        out.push(st);
                                    }
                                    Some(false) => {
                                        self.rescue_discharge(&mut st);
                                        st.res = Some(false);
                                        out.push(st);
                                    }
                                    None => {
                                        st.res = None;
                                        out.push(st);
                                    }
                                }
                            }
                            return self.prune(out);
                        }
                    }
                }
                match first_ident(span) {
                    Some("Err") => {
                        for mut st in states {
                            self.rescue_discharge(&mut st);
                            st.res = Some(false);
                            out.push(st);
                        }
                    }
                    Some("Ok") => {
                        for mut st in states {
                            st.res = Some(true);
                            out.push(st);
                        }
                    }
                    _ => {
                        let evaled = self.eval_expr(span, flow, states);
                        for mut st in evaled {
                            if st.res == Some(false) {
                                self.rescue_discharge(&mut st);
                            }
                            out.push(st);
                        }
                    }
                }
                self.prune(out)
            }
            _ => {
                // Unknown role: treat as pure.
                states
            }
        }
    }

    /// Builtin model for `Endpoint` methods.
    pub(crate) fn eval_ep_method(
        &mut self,
        name: &str,
        g: &Group,
        line: u32,
        flow: &mut Flow,
        states: Vec<St>,
    ) -> Vec<St> {
        let mut states = states;
        for part in split_commas(&g.items) {
            states = self.eval_expr(part, flow, states);
        }
        for st in &mut states {
            st.res = None;
        }
        if ep_pure(name) {
            return states;
        }
        match ep_verb(name) {
            Some(label) => {
                self.issue_verb(&mut states, label, line);
                let out = self.tag_result(states);
                self.prune(out)
            }
            None => {
                self.emit(
                    "unmodeled-ep-method",
                    line,
                    format!("call to unmodeled Endpoint method `{name}` on a protocol hot path"),
                );
                states
            }
        }
    }
}
