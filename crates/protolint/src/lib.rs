//! protolint — build-time protocol-flow analysis for the NAM-tree
//! designs.
//!
//! The analyzer lexes the protocol hot-path sources directly (no
//! rustc/proc-macro dependency), recovers control flow from the token
//! tree, and checks four rule families over every path of every
//! operation root (`lookup_op` / `insert_op` / `delete_op` /
//! `range_op`), once per design context (CG / FG / Hybrid):
//!
//! * **lock discipline** — `lock-leak`, `double-release`, `cs-loop`;
//! * **verb budget** — `cs-verb-bound` against `MAX_LOCK_HOLD_VERBS`
//!   (parsed out of `crates/rdma/src/spec.rs`, never duplicated here);
//! * **retry/deadline discipline** — `retry-idempotent`,
//!   `deadline-thread`;
//! * **panic freedom** — `hot-panic` plus the `unmodeled-*` fences that
//!   keep the model honest when new verbs or loops appear;
//! * **validation discipline** — `validated-before-use`: optimistic
//!   reads must carry validation vocabulary, cached-artifact uses must
//!   sit behind a restart-epoch fence, and release-role functions must
//!   not WRITE after the unlock FAA (the static twin of the `racecheck`
//!   crate's dynamic happens-before rules).
//!
//! The same walker, run in Cost mode, produces the static verbs-per-op
//! table that `verb_model_check` cross-checks against simulator
//! telemetry and that the `cs-inventory` doc blocks are generated from.

pub mod analyze;
mod call;
mod ctrl;
pub mod lex;
mod scan;
pub mod syntax;
mod walk;

use std::collections::BTreeSet;
use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

use analyze::EK;
pub use analyze::{Analysis, Cost, Ctx, Finding, Mode, Section, CTXS, FIXTURE_CTX};
use lex::AnnItem;
use syntax::Program;

/// The protocol hot-path files, relative to the repo root.
pub const HOT_FILES: [&str; 7] = [
    "crates/core/src/engine.rs",
    "crates/core/src/onesided.rs",
    "crates/core/src/resolve.rs",
    "crates/core/src/cg.rs",
    "crates/core/src/fg.rs",
    "crates/core/src/hybrid.rs",
    "crates/core/src/learned.rs",
];

/// The four operation roots in `engine.rs`.
pub const OP_ROOTS: [&str; 4] = ["lookup_op", "insert_op", "delete_op", "range_op"];

/// Load and parse the hot-path files under `root`.
pub fn load_workspace(root: &Path) -> io::Result<Program> {
    let mut prog = Program::default();
    for rel in HOT_FILES {
        let src = fs::read_to_string(root.join(rel))?;
        prog.add_file(rel, &src);
    }
    Ok(prog)
}

/// Parse `MAX_LOCK_HOLD_VERBS` out of the RDMA spec constants so the
/// analyzer and the runtime assertion share one source of truth.
pub fn spec_max_verbs(root: &Path) -> io::Result<usize> {
    let src = fs::read_to_string(root.join("crates/rdma/src/spec.rs"))?;
    let at = src.find("MAX_LOCK_HOLD_VERBS").ok_or_else(|| {
        io::Error::new(
            io::ErrorKind::NotFound,
            "MAX_LOCK_HOLD_VERBS not found in crates/rdma/src/spec.rs",
        )
    })?;
    let rest = &src[at..];
    let eq = rest.find('=').ok_or_else(|| {
        io::Error::new(
            io::ErrorKind::InvalidData,
            "MAX_LOCK_HOLD_VERBS has no value",
        )
    })?;
    let digits: String = rest[eq + 1..]
        .chars()
        .skip_while(|c| c.is_whitespace())
        .take_while(|c| c.is_ascii_digit())
        .collect();
    digits.parse::<usize>().map_err(|_| {
        io::Error::new(
            io::ErrorKind::InvalidData,
            "MAX_LOCK_HOLD_VERBS is not numeric",
        )
    })
}

fn unique_free_fn(prog: &Program, name: &str) -> Option<usize> {
    match prog.free_global.get(name).map(Vec::as_slice) {
        Some([only]) => Some(*only),
        _ => None,
    }
}

fn op_roots(prog: &Program) -> Vec<usize> {
    OP_ROOTS
        .iter()
        .filter_map(|n| unique_free_fn(prog, n))
        .collect()
}

fn entry_roots(prog: &Program) -> Vec<usize> {
    prog.fns
        .iter()
        .enumerate()
        .filter(|(_, f)| f.anns.contains(&AnnItem::Entry))
        .map(|(i, _)| i)
        .collect()
}

/// Non-primitive acquire-role functions (`lock_covering_leaf`): walked
/// as pseudo-roots so their bodies satisfy acquire exit expectations.
fn acquire_roots(prog: &Program) -> Vec<usize> {
    prog.fns
        .iter()
        .enumerate()
        .filter(|(_, f)| {
            f.anns
                .iter()
                .any(|a| matches!(a, AnnItem::Role(r) if r == "acquire"))
                && !f.anns.contains(&AnnItem::Primitive)
        })
        .map(|(i, _)| i)
        .collect()
}

pub struct LintOutcome {
    pub findings: Vec<Finding>,
    pub sections: BTreeSet<Section>,
}

impl LintOutcome {
    pub fn max_section_verbs(&self) -> usize {
        self.sections
            .iter()
            .map(|s| s.verbs.len())
            .max()
            .unwrap_or(0)
    }
}

/// Run the Lint-mode analysis. `fixture` selects `entry`-annotated
/// roots under [`FIXTURE_CTX`] instead of the engine ops under all
/// three design contexts.
pub fn run_lint(prog: &Program, max_verbs: usize, fixture: bool) -> LintOutcome {
    let ctxs: Vec<Ctx> = if fixture {
        vec![FIXTURE_CTX]
    } else {
        CTXS.to_vec()
    };
    let mut findings: Vec<Finding> = Vec::new();
    let mut seen: BTreeSet<(&'static str, String, u32)> = BTreeSet::new();
    let mut sections: BTreeSet<Section> = BTreeSet::new();
    for ctx in ctxs {
        let mut an = Analysis::new(prog, Mode::Lint, ctx, max_verbs);
        let seed = [
            ("design", "Design"),
            ("ep", "Endpoint"),
            ("src", ctx.design_ty),
            ("up", ctx.design_ty),
        ];
        let roots = if fixture {
            entry_roots(prog)
        } else {
            op_roots(prog)
        };
        for fi in roots {
            let rets = an.run_fn(fi, &seed);
            an.check_root_exits(fi, &rets, false);
        }
        for fi in acquire_roots(prog) {
            let rets = an.run_fn(fi, &seed);
            an.check_root_exits(fi, &rets, true);
        }
        an.structural_scan();
        sections.extend(an.sections);
        for f in an.findings {
            if seen.insert((f.rule, f.file.clone(), f.line)) {
                findings.push(f);
            }
        }
    }
    findings.sort();
    LintOutcome { findings, sections }
}

/// One design row of the static cost table.
pub struct CostRow {
    pub design: &'static str,
    /// (op label, cost) in [`COST_OPS`] order.
    pub cells: Vec<(&'static str, Cost)>,
}

pub const COST_OPS: [&str; 5] = [
    "lookup",
    "insert (no split)",
    "delete (miss)",
    "delete (hit)",
    "range",
];

fn steady(costs: &[Cost]) -> Vec<Cost> {
    costs
        .iter()
        .copied()
        .filter(|c| !c.unbounded && c.allocs == 0)
        .collect()
}

fn min_cost(costs: &[Cost]) -> Cost {
    costs
        .iter()
        .copied()
        .min_by_key(Cost::key)
        .unwrap_or_default()
}

fn max_cost(costs: &[Cost]) -> Cost {
    costs
        .iter()
        .copied()
        .max_by_key(Cost::key)
        .unwrap_or_default()
}

/// Run the Cost-mode analysis and summarize per-op verb counts.
pub fn cost_table(prog: &Program, max_verbs: usize) -> Vec<CostRow> {
    CTXS.iter()
        .map(|ctx| {
            let mut an = Analysis::new(prog, Mode::Cost, *ctx, max_verbs);
            let seed = [
                ("design", "Design"),
                ("ep", "Endpoint"),
                ("src", ctx.design_ty),
                ("up", ctx.design_ty),
            ];
            let mut op_costs = |name: &str| -> Vec<Cost> {
                match unique_free_fn(prog, name) {
                    Some(fi) => an
                        .run_fn(fi, &seed)
                        .into_iter()
                        .filter(|(_, ek)| *ek != EK::Err)
                        .map(|(st, _)| st.cost)
                        .collect(),
                    None => Vec::new(),
                }
            };
            let inserts = op_costs("insert_op");
            let deletes = op_costs("delete_op");
            let ranges = op_costs("range_op");
            let lookups = op_costs("lookup_op");
            let del_steady = steady(&deletes);
            let range = if ranges.iter().any(|c| c.unbounded) {
                Cost {
                    unbounded: true,
                    ..Default::default()
                }
            } else {
                max_cost(&ranges)
            };
            CostRow {
                design: ctx.key,
                cells: vec![
                    (COST_OPS[0], min_cost(&lookups)),
                    (COST_OPS[1], max_cost(&steady(&inserts))),
                    (COST_OPS[2], min_cost(&del_steady)),
                    (COST_OPS[3], max_cost(&del_steady)),
                    (COST_OPS[4], range),
                ],
            }
        })
        .collect()
}

/// Render the cost table (ops as rows, designs as columns).
pub fn render_cost_table(rows: &[CostRow]) -> String {
    let mut out = String::new();
    let mut header = format!("{:<20}", "op");
    for r in rows {
        let _ = write!(header, " | {:<14}", r.design);
    }
    out.push_str(header.trim_end());
    out.push('\n');
    for (i, op) in COST_OPS.iter().enumerate() {
        let mut line = format!("{op:<20}");
        for r in rows {
            let cell = r.cells.get(i).map(|(_, c)| c.render()).unwrap_or_default();
            let _ = write!(line, " | {cell:<14}");
        }
        out.push_str(line.trim_end());
        out.push('\n');
    }
    out
}

// ---------------------------------------------------------------------
// Generated cs-inventory doc blocks.

pub const DESIGN_MD: &str = "DESIGN.md";
pub const DESIGN_BEGIN: &str = "<!-- protolint:cs-inventory:begin -->";
pub const DESIGN_END: &str = "<!-- protolint:cs-inventory:end -->";
pub const ONESIDED_RS: &str = "crates/core/src/onesided.rs";
pub const ONESIDED_BEGIN: &str = "//! [protolint:cs-inventory:begin]";
pub const ONESIDED_END: &str = "//! [protolint:cs-inventory:end]";

/// Render the critical-section inventory body (no markers, no prefix).
pub fn render_inventory(sections: &BTreeSet<Section>, max_verbs: usize) -> Vec<String> {
    let mut lines = vec![
        "Critical sections discovered by `cargo xtask protolint` (verbs issued".to_string(),
        "between a lock acquire and its happy-path release; the best-effort".to_string(),
        "rescue FAA on error paths reuses the unlock slot and is not counted):".to_string(),
        String::new(),
    ];
    for s in sections {
        lines.push(format!(
            "- `{}`: {} ({} verb{})",
            s.func,
            s.verbs.join(" + "),
            s.verbs.len(),
            if s.verbs.len() == 1 { "" } else { "s" },
        ));
    }
    let widest = sections.iter().map(|s| s.verbs.len()).max().unwrap_or(0);
    lines.push(String::new());
    lines.push(format!(
        "Widest section: {widest} verbs = MAX_LOCK_HOLD_VERBS ({max_verbs}), \
         enforced statically by the `cs-verb-bound` rule."
    ));
    lines
}

/// Replace the text between `begin` and `end` markers with `body`.
/// Returns `None` if either marker is missing.
pub fn splice_block(text: &str, begin: &str, end: &str, body: &str) -> Option<String> {
    let b = text.find(begin)? + begin.len();
    let e = text[b..].find(end)? + b;
    let mut out = String::with_capacity(text.len() + body.len());
    out.push_str(&text[..b]);
    out.push('\n');
    out.push_str(body);
    out.push_str(&text[e..]);
    Some(out)
}

fn design_body(sections: &BTreeSet<Section>, max_verbs: usize) -> String {
    let mut s = render_inventory(sections, max_verbs).join("\n");
    s.push('\n');
    s
}

fn onesided_body(sections: &BTreeSet<Section>, max_verbs: usize) -> String {
    let mut s = render_inventory(sections, max_verbs)
        .iter()
        .map(|l| {
            if l.is_empty() {
                "//!".to_string()
            } else {
                format!("//! {l}")
            }
        })
        .collect::<Vec<_>>()
        .join("\n");
    s.push('\n');
    s
}

/// Check that both generated doc blocks match the analysis. Returns a
/// list of human-readable errors (empty = up to date).
pub fn check_docs(root: &Path, sections: &BTreeSet<Section>, max_verbs: usize) -> Vec<String> {
    let mut errs = Vec::new();
    let specs = [
        (
            DESIGN_MD,
            DESIGN_BEGIN,
            DESIGN_END,
            design_body(sections, max_verbs),
        ),
        (
            ONESIDED_RS,
            ONESIDED_BEGIN,
            ONESIDED_END,
            onesided_body(sections, max_verbs),
        ),
    ];
    for (rel, begin, end, body) in specs {
        let path = root.join(rel);
        let text = match fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) => {
                errs.push(format!("{rel}: unreadable: {e}"));
                continue;
            }
        };
        match splice_block(&text, begin, end, &body) {
            Some(updated) => {
                if updated != text {
                    errs.push(format!(
                        "{rel}: cs-inventory block is stale; run \
                         `cargo xtask protolint --emit-docs` to regenerate"
                    ));
                }
            }
            None => errs.push(format!("{rel}: cs-inventory markers missing")),
        }
    }
    errs
}

/// Rewrite both generated doc blocks in place. Returns updated files.
pub fn emit_docs(
    root: &Path,
    sections: &BTreeSet<Section>,
    max_verbs: usize,
) -> io::Result<Vec<String>> {
    let mut updated = Vec::new();
    let specs = [
        (
            DESIGN_MD,
            DESIGN_BEGIN,
            DESIGN_END,
            design_body(sections, max_verbs),
        ),
        (
            ONESIDED_RS,
            ONESIDED_BEGIN,
            ONESIDED_END,
            onesided_body(sections, max_verbs),
        ),
    ];
    for (rel, begin, end, body) in specs {
        let path = root.join(rel);
        let text = fs::read_to_string(&path)?;
        let Some(new_text) = splice_block(&text, begin, end, &body) else {
            return Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!("{rel}: cs-inventory markers missing"),
            ));
        };
        if new_text != text {
            fs::write(&path, new_text)?;
            updated.push(rel.to_string());
        }
    }
    Ok(updated)
}

// ---------------------------------------------------------------------
// Fixture corpus.

pub struct FixtureResult {
    pub name: String,
    pub expected: BTreeSet<String>,
    pub found: BTreeSet<String>,
}

impl FixtureResult {
    pub fn pass(&self) -> bool {
        self.expected == self.found
    }
}

/// Analyze one fixture file: `entry`-annotated roots are walked under
/// [`FIXTURE_CTX`], and the set of fired rule ids must equal the union
/// of the file's `expect(...)` annotations.
pub fn run_fixture(path: &Path) -> io::Result<FixtureResult> {
    let name = path
        .file_name()
        .and_then(|n| n.to_str())
        .unwrap_or("fixture")
        .to_string();
    let src = fs::read_to_string(path)?;
    let mut prog = Program::default();
    prog.add_file(&name, &src);
    let expected: BTreeSet<String> = prog
        .anns
        .values()
        .flatten()
        .filter_map(|a| match a {
            AnnItem::Expect(r) => Some(r.clone()),
            _ => None,
        })
        .collect();
    let out = run_lint(&prog, 4, true);
    let found: BTreeSet<String> = out.findings.iter().map(|f| f.rule.to_string()).collect();
    Ok(FixtureResult {
        name,
        expected,
        found,
    })
}

/// All `.rs` fixtures under `dir`, sorted.
pub fn fixture_paths(dir: &Path) -> io::Result<Vec<std::path::PathBuf>> {
    let mut out = Vec::new();
    for entry in fs::read_dir(dir)? {
        let p = entry?.path();
        if p.extension().and_then(|e| e.to_str()) == Some("rs") {
            out.push(p);
        }
    }
    out.sort();
    Ok(out)
}
