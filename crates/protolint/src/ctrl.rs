//! Control-flow constructs: `if`, `match`, and the three loop forms.
//!
//! Lint mode explores both sides of every branch and runs loops to a
//! bounded fixpoint; Cost mode selects the design-determined branch
//! (`CLIENT_DESCENT`, `match design`, `arm-by` annotations) and applies
//! the annotated loop-shape formula (`levels`, `spin`, `chain`, …).

use std::collections::BTreeSet;

use crate::analyze::{Analysis, Cost, Flow, Lock, Mode, St};
use crate::lex::{AnnItem, Kind};
use crate::syntax::Tree;
use crate::walk::{contains_ident, first_ident, top_assign, top_brace};

/// The sole identifier of a span, looking through `&`, `*` and `mut`.
fn single_ident(span: &[Tree]) -> Option<&str> {
    let mut id = None;
    for t in span {
        match t {
            Tree::T(tok) if tok.kind == Kind::Ident && tok.text == "mut" => {}
            Tree::T(tok) if tok.kind == Kind::Ident => {
                if id.is_some() {
                    return None;
                }
                id = Some(tok.text.as_str());
            }
            Tree::T(tok) if tok.kind == Kind::Punct && matches!(tok.text.as_str(), "&" | "*") => {}
            _ => return None,
        }
    }
    id
}

enum ArmBody<'a> {
    Block(&'a [Tree]),
    Expr(&'a [Tree]),
}

impl Analysis<'_> {
    pub(crate) fn eval_if(
        &mut self,
        trees: &[Tree],
        i: usize,
        flow: &mut Flow,
        states: Vec<St>,
    ) -> (Vec<St>, usize) {
        let Some(body_at) = top_brace(trees, i + 1) else {
            return (states, i + 1);
        };
        let cond = &trees[i + 1..body_at];
        let cond_eval: &[Tree] = if cond.first().map(|t| t.is_ident("let")).unwrap_or(false) {
            match top_assign(trees, i + 2, body_at) {
                Some(eq) => &trees[eq + 1..body_at],
                None => cond,
            }
        } else {
            cond
        };
        // Branch selection: CLIENT_DESCENT splits are design-determined
        // in both modes; `retrying`/`is_local` fast paths are skipped in
        // Cost mode (the static table models the steady remote path).
        let mut sel: Option<bool> = None;
        if contains_ident(cond, "CLIENT_DESCENT") {
            sel = Some(self.ctx.client_descent);
        } else if self.mode == Mode::Cost
            && (first_ident(cond) == Some("retrying") || contains_ident(cond, "is_local"))
        {
            sel = Some(false);
        }
        let mut after = self.eval_expr(cond_eval, flow, states);
        for st in &mut after {
            st.res = None;
        }
        let after = self.squash(after);
        let then_items: &[Tree] = match trees[body_at].group() {
            Some(g) => &g.items,
            None => &[],
        };
        let mut out = Vec::new();
        let j = body_at + 1;
        if trees.get(j).map(|t| t.is_ident("else")).unwrap_or(false) {
            if trees.get(j + 1).map(|t| t.is_ident("if")).unwrap_or(false) {
                if sel != Some(false) {
                    let f = self.eval_block(then_items, after.clone());
                    out.extend(flow.absorb_inner(f));
                }
                let take_else = sel != Some(true);
                let arm_states = if take_else { after } else { Vec::new() };
                let (eout, end) = self.eval_if(trees, j + 1, flow, arm_states);
                if take_else {
                    out.extend(eout);
                }
                (out, end)
            } else if let Some(g) = trees.get(j + 1).and_then(|t| t.group()) {
                if sel != Some(false) {
                    let f = self.eval_block(then_items, after.clone());
                    out.extend(flow.absorb_inner(f));
                }
                if sel != Some(true) {
                    let f = self.eval_block(&g.items, after);
                    out.extend(flow.absorb_inner(f));
                }
                (out, j + 2)
            } else {
                // `else` with nothing we recognize; fall through.
                out.extend(after);
                (out, j + 1)
            }
        } else {
            if sel != Some(false) {
                let f = self.eval_block(then_items, after.clone());
                out.extend(flow.absorb_inner(f));
            }
            if sel != Some(true) {
                out.extend(after); // no else: condition-false fallthrough
            }
            (out, j)
        }
    }

    pub(crate) fn eval_match(
        &mut self,
        trees: &[Tree],
        i: usize,
        flow: &mut Flow,
        states: Vec<St>,
    ) -> (Vec<St>, usize) {
        let Some(arms_at) = top_brace(trees, i + 1) else {
            return (states, i + 1);
        };
        let scrut = &trees[i + 1..arms_at];
        let match_line = trees[i].line();
        let end = arms_at + 1;

        // Classify the match.
        enum Sel {
            /// `match design { Design::Cg(d) => … }` — pick this ctx's arm.
            Design,
            /// Scrutinee is a forked `Result` binding — route by side.
            Fork(String),
            /// `arm-by(first-page)`: pick Some/None by CLIENT_DESCENT.
            ArmBy(&'static str),
            Generic,
        }
        let mut sel = Sel::Generic;
        if let Some(v) = single_ident(scrut) {
            let key = self.depth_key(v);
            if self.frame().types.get(v).map(String::as_str) == Some("Design") {
                sel = Sel::Design;
            } else if states.iter().any(|s| s.vars.contains_key(&key)) {
                sel = Sel::Fork(key);
            }
        }
        if matches!(sel, Sel::Generic)
            && self.mode == Mode::Cost
            && self.ann_at(match_line, &AnnItem::ArmBy("first-page".to_string()))
        {
            sel = Sel::ArmBy(if self.ctx.client_descent {
                "Some"
            } else {
                "None"
            });
        }

        // Scrutinee effects (pure for Design/Fork idents, harmless).
        let mut states = self.eval_expr(scrut, flow, states);
        if !matches!(sel, Sel::Fork(_)) {
            for st in &mut states {
                st.res = None;
            }
        }
        let states = self.squash(states);

        // Parse the arms.
        let items: &[Tree] = match trees[arms_at].group() {
            Some(g) => &g.items,
            None => &[],
        };
        let mut arms: Vec<(&[Tree], ArmBody<'_>)> = Vec::new();
        let mut k = 0;
        while k < items.len() {
            let pat_start = k;
            while k < items.len() && !items[k].is_punct("=>") {
                k += 1;
            }
            if k >= items.len() {
                break;
            }
            let pat = &items[pat_start..k];
            k += 1;
            let body = if let Some(g) = items
                .get(k)
                .and_then(|t| t.group())
                .filter(|g| g.open == '{')
            {
                k += 1;
                if items.get(k).map(|t| t.is_punct(",")).unwrap_or(false) {
                    k += 1;
                }
                ArmBody::Block(&g.items)
            } else {
                let b_start = k;
                while k < items.len() && !items[k].is_punct(",") {
                    k += 1;
                }
                let span = &items[b_start..k];
                k += 1;
                ArmBody::Expr(span)
            };
            arms.push((pat, body));
        }

        // Route states into arms and evaluate.
        let mut out = Vec::new();
        for (pat, body) in arms {
            let mut arm_states: Vec<St> = Vec::new();
            let mut bind: Option<(String, String)> = None;
            match &sel {
                Sel::Design => {
                    if contains_ident(pat, self.ctx.variant) {
                        arm_states = states.clone();
                        if let Some(name) = pat
                            .iter()
                            .find_map(|t| t.group())
                            .and_then(|g| first_ident(&g.items))
                        {
                            bind = Some((name.to_string(), self.ctx.design_ty.to_string()));
                        }
                    }
                }
                Sel::Fork(key) => {
                    let want = match first_ident(pat) {
                        Some("Ok") => Some(true),
                        Some("Err") => Some(false),
                        _ => None,
                    };
                    for st in &states {
                        let side = st.vars.get(key).copied();
                        let take = match want {
                            Some(w) => side == Some(w),
                            None => true,
                        };
                        if take {
                            let mut st = st.clone();
                            st.vars.remove(key);
                            st.res = None;
                            arm_states.push(st);
                        }
                    }
                }
                Sel::ArmBy(want) => {
                    if first_ident(pat) == Some(want) {
                        arm_states = states.clone();
                    }
                }
                Sel::Generic => arm_states = states.clone(),
            }
            if arm_states.is_empty() {
                continue;
            }
            if let Some((name, ty)) = bind {
                self.frames
                    .last_mut()
                    .expect("walker always runs inside a frame")
                    .types
                    .insert(name, ty);
            }
            let arm_out = match body {
                ArmBody::Block(b) => {
                    let f = self.eval_block(b, arm_states);
                    flow.absorb_inner(f)
                }
                ArmBody::Expr(span) => self.eval_expr(span, flow, arm_states),
            };
            out.extend(arm_out);
        }
        (self.squash(out), end)
    }

    pub(crate) fn eval_loop(
        &mut self,
        trees: &[Tree],
        i: usize,
        flow: &mut Flow,
        states: Vec<St>,
    ) -> (Vec<St>, usize) {
        let kw = trees[i].ident().unwrap_or("loop").to_string();
        let loop_line = trees[i].line();
        let Some(body_at) = top_brace(trees, i + 1) else {
            return (states, i + 1);
        };
        let body: &[Tree] = match trees[body_at].group() {
            Some(g) => &g.items,
            None => &[],
        };
        let end = body_at + 1;
        // Pre-span evaluated once: while-condition or for-iterable.
        let head = &trees[i + 1..body_at];
        let pre: &[Tree] = match kw.as_str() {
            "while" => {
                if head.first().map(|t| t.is_ident("let")).unwrap_or(false) {
                    match top_assign(trees, i + 2, body_at) {
                        Some(eq) => &trees[eq + 1..body_at],
                        None => head,
                    }
                } else {
                    head
                }
            }
            "for" => match (i + 1..body_at).find(|&k| trees[k].is_ident("in")) {
                Some(at) => &trees[at + 1..body_at],
                None => &[],
            },
            _ => &[],
        };
        let kind = self.loop_kind_at(loop_line);
        let mut states = self.eval_expr(pre, flow, states);
        for st in &mut states {
            st.res = None;
        }
        let states = self.squash(states);
        let conditional = kw != "loop"; // while/for can run zero times

        match self.mode {
            Mode::Lint => {
                let exits = self.lint_fixpoint(body, &states, conditional, loop_line, kind, flow);
                (exits, end)
            }
            Mode::Cost => {
                let exits = self.cost_loop(body, states, conditional, kind, flow);
                (exits, end)
            }
        }
    }

    /// Lint mode: run the body to a bounded fixpoint, checking that the
    /// critical section does not grow along the back edge.
    fn lint_fixpoint(
        &mut self,
        body: &[Tree],
        entry: &[St],
        conditional: bool,
        loop_line: u32,
        kind: Option<String>,
        flow: &mut Flow,
    ) -> Vec<St> {
        let mut seen: BTreeSet<St> = entry.iter().cloned().collect();
        let mut frontier: Vec<St> = entry.to_vec();
        let mut exits: Vec<St> = if conditional {
            entry.to_vec()
        } else {
            Vec::new()
        };
        let verbs_before = self.verb_events;
        let mut cs_loop_hit = false;
        for _ in 0..6 {
            if frontier.is_empty() {
                break;
            }
            let f = self.eval_block(body, frontier);
            flow.rets.extend(f.rets);
            exits.extend(f.brks);
            let mut back = f.next;
            back.extend(f.conts);
            if !cs_loop_hit && !entry.is_empty() {
                let grew = back.iter().any(|b| match &b.lock {
                    Lock::Held { verbs, .. } => entry.iter().all(|e| match &e.lock {
                        Lock::Held { verbs: ev, .. } => verbs.len() > ev.len(),
                        Lock::Free => true,
                    }),
                    Lock::Free => false,
                });
                if grew {
                    cs_loop_hit = true;
                    self.emit(
                        "cs-loop",
                        loop_line,
                        "loop re-enters with the lock held and the critical section \
                         growing; verbs issued while locked scale with the iteration \
                         count"
                            .to_string(),
                    );
                }
            }
            if conditional {
                exits.extend(back.iter().cloned());
            }
            let mut fresh = Vec::new();
            for b in back {
                if seen.insert(b.clone()) {
                    fresh.push(b);
                }
            }
            frontier = self.squash(fresh);
        }
        if kind.is_none() && self.verb_events > verbs_before {
            self.emit(
                "unmodeled-verb-loop",
                loop_line,
                "verb-issuing loop without a `// protolint: loop(...)` shape \
                 annotation; its verb count cannot be bounded statically"
                    .to_string(),
            );
        }
        self.squash(exits)
    }

    /// Cost mode: evaluate the body once and apply the annotated shape.
    fn cost_loop(
        &mut self,
        body: &[Tree],
        entry: Vec<St>,
        conditional: bool,
        kind: Option<String>,
        flow: &mut Flow,
    ) -> Vec<St> {
        let f = self.eval_block(body, entry.clone());
        let mut back = f.next;
        back.extend(f.conts);
        let mut brks = f.brks;
        let mut rets = f.rets;
        match kind.as_deref() {
            Some("levels") => {
                // One iteration per tree level: exits already paid one
                // traversal, add (L-1) copies of the back-edge cycle.
                let base = entry
                    .iter()
                    .map(|s| s.cost)
                    .min_by_key(Cost::key)
                    .unwrap_or_default();
                let cyc = back
                    .iter()
                    .map(|b| (b.cost.rpc.k - base.rpc.k, b.cost.os.k - base.os.k))
                    .min_by_key(|&(r, o)| r + o);
                if let Some((cr, co)) = cyc {
                    let adjust = |c: &mut Cost| match self.ctx.levels {
                        None => {
                            c.rpc.l += cr;
                            c.rpc.k -= cr;
                            c.os.l += co;
                            c.os.k -= co;
                        }
                        Some(n) => {
                            c.rpc.k += (n - 1) * cr;
                            c.os.k += (n - 1) * co;
                        }
                    };
                    for s in &mut brks {
                        adjust(&mut s.cost);
                    }
                    for (s, _) in &mut rets {
                        adjust(&mut s.cost);
                    }
                }
                flow.rets.extend(rets);
                self.squash(brks)
            }
            None | Some("spin") | Some("probe") => {
                // Bounded retry/probe: the steady path succeeds on the
                // first attempt; the back edge is the retry.
                flow.rets.extend(rets);
                let mut exits = brks;
                if conditional {
                    exits.extend(entry);
                }
                self.squash(exits)
            }
            Some(_) => {
                // chain | partition | ascend: data-dependent trip count.
                for s in &mut brks {
                    s.cost.unbounded = true;
                }
                for s in &mut back {
                    s.cost.unbounded = true;
                }
                for (s, _) in &mut rets {
                    s.cost.unbounded = true;
                }
                flow.rets.extend(rets);
                let mut exits = brks;
                exits.extend(back);
                if conditional {
                    exits.extend(entry);
                }
                self.squash(exits)
            }
        }
    }
}
