//! Statement/expression walking over the token tree.
//!
//! The walker recovers control flow (blocks, `if`, `match`, loops,
//! calls, `?`) from the bracket tree directly. Constructs it does not
//! model evaluate as inert token runs — total, never a parse error.

use crate::analyze::{Analysis, Flow, St, EK};
use crate::lex::Kind;
use crate::syntax::Tree;

/// Index of the first top-level `;` at or after `from`, else `len`.
pub(crate) fn top_semi(trees: &[Tree], from: usize) -> usize {
    (from..trees.len())
        .find(|&i| trees[i].is_punct(";"))
        .unwrap_or(trees.len())
}

/// Index of the `let` binder `=` in `[from, to)`. Only called with
/// `from` pointing just past a `let`, where the pattern and type
/// ascription cannot contain `=`, so the first `=` that is not half of
/// `==` is the binder — even when a generic type ascription puts a `>`
/// right before it (`let x: Option<u64> = …`).
pub(crate) fn top_assign(trees: &[Tree], from: usize, to: usize) -> Option<usize> {
    (from..to.min(trees.len())).find(|&i| {
        if !trees[i].is_punct("=") {
            return false;
        }
        let prev_eq = i > from && trees[i - 1].is_punct("=");
        let next_eq = trees.get(i + 1).map(|t| t.is_punct("=")).unwrap_or(false);
        !prev_eq && !next_eq
    })
}

/// Index of the first top-level `{` group at or after `from`.
pub(crate) fn top_brace(trees: &[Tree], from: usize) -> Option<usize> {
    (from..trees.len()).find(|&i| trees[i].group().map(|g| g.open) == Some('{'))
}

/// Split a group's items at top-level commas.
pub(crate) fn split_commas(items: &[Tree]) -> Vec<&[Tree]> {
    let mut out = Vec::new();
    let mut start = 0;
    for (i, t) in items.iter().enumerate() {
        if t.is_punct(",") {
            out.push(&items[start..i]);
            start = i + 1;
        }
    }
    if start < items.len() {
        out.push(&items[start..]);
    }
    out
}

/// First identifier in a span, looking through leading `&`/`mut`/`*`.
pub(crate) fn first_ident(span: &[Tree]) -> Option<&str> {
    span.iter().find_map(|t| t.ident())
}

pub(crate) fn contains_ident(span: &[Tree], name: &str) -> bool {
    span.iter().any(|t| match t {
        Tree::T(tok) => tok.kind == Kind::Ident && tok.text == name,
        Tree::G(g) => contains_ident(&g.items, name),
    })
}

const DIVERGING_MACROS: [&str; 4] = ["panic", "unreachable", "todo", "unimplemented"];

impl Analysis<'_> {
    /// Evaluate a block body. Returned `Flow.next` holds fall-through
    /// states; rets/brks/conts are collected for the caller to route.
    pub(crate) fn eval_block(&mut self, trees: &[Tree], states: Vec<St>) -> Flow {
        let mut flow = Flow::default();
        let mut states = self.squash(states);
        let mut i = 0;
        while i < trees.len() && !states.is_empty() {
            let (next, ni) = self.eval_stmt(trees, i, &mut flow, states);
            states = self.squash(next);
            i = ni.max(i + 1);
        }
        flow.next = states;
        flow
    }

    fn eval_stmt(
        &mut self,
        trees: &[Tree],
        i: usize,
        flow: &mut Flow,
        states: Vec<St>,
    ) -> (Vec<St>, usize) {
        self.fuel -= 1;
        if self.fuel < 0 {
            return (Vec::new(), trees.len());
        }
        match &trees[i] {
            Tree::T(t) if t.kind == Kind::Punct && t.text == ";" => (states, i + 1),
            Tree::T(t) if t.kind == Kind::Life => (states, i + 1),
            Tree::T(t) if t.kind == Kind::Punct && t.text == ":" => (states, i + 1),
            Tree::T(t) if t.kind == Kind::Punct && t.text == "#" => {
                // Attribute: skip `#[...]`.
                let skip = if trees.get(i + 1).and_then(|t| t.group()).is_some() {
                    2
                } else {
                    1
                };
                (states, i + skip)
            }
            Tree::T(t) if t.kind == Kind::Ident => match t.text.as_str() {
                "let" => self.eval_let(trees, i, flow, states),
                "return" => {
                    let semi = top_semi(trees, i + 1);
                    let out = self.eval_expr(&trees[i + 1..semi], flow, states);
                    for st in out {
                        let ek = match st.res {
                            Some(true) => EK::Ok,
                            Some(false) => EK::Err,
                            None => EK::Plain,
                        };
                        flow.rets.push((st, ek));
                    }
                    (Vec::new(), semi + 1)
                }
                "break" => {
                    let semi = top_semi(trees, i + 1);
                    let out = self.eval_expr(&trees[i + 1..semi], flow, states);
                    flow.brks.extend(out);
                    (Vec::new(), semi + 1)
                }
                "continue" => {
                    flow.conts.extend(states);
                    (Vec::new(), top_semi(trees, i + 1) + 1)
                }
                "if" => self.eval_if(trees, i, flow, states),
                "match" => self.eval_match(trees, i, flow, states),
                "loop" | "while" | "for" => self.eval_loop(trees, i, flow, states),
                "unsafe" => (states, i + 1),
                _ => {
                    // Expression statement.
                    let semi = top_semi(trees, i);
                    let mut out = self.eval_expr(&trees[i..semi], flow, states);
                    if semi < trees.len() {
                        // Result discarded at `;`: clear call tags.
                        for st in &mut out {
                            st.res = None;
                        }
                    }
                    (out, semi + 1)
                }
            },
            Tree::G(g) if g.open == '{' => {
                let inner = self.eval_block(&g.items, states);
                (flow.absorb_inner(inner), i + 1)
            }
            _ => {
                let semi = top_semi(trees, i);
                let mut out = self.eval_expr(&trees[i..semi], flow, states);
                if semi < trees.len() {
                    for st in &mut out {
                        st.res = None;
                    }
                }
                (out, semi + 1)
            }
        }
    }

    fn eval_let(
        &mut self,
        trees: &[Tree],
        i: usize,
        flow: &mut Flow,
        states: Vec<St>,
    ) -> (Vec<St>, usize) {
        let semi = top_semi(trees, i);
        let Some(eq) = top_assign(trees, i + 1, semi) else {
            return (states, semi + 1); // `let x;` — no initializer
        };
        // Pattern: strip `mut` and a `: Type` ascription.
        let pat_end = (i + 1..eq).find(|&k| trees[k].is_punct(":")).unwrap_or(eq);
        let pat: Vec<&Tree> = trees[i + 1..pat_end]
            .iter()
            .filter(|t| !t.is_ident("mut") && !t.is_ident("ref"))
            .collect();
        let rhs = &trees[eq + 1..semi];
        let mut out = self.eval_expr(rhs, flow, states);
        if pat.len() == 1 {
            if let Some(name) = pat[0].ident() {
                // Fork binding: remember which Result side each state
                // carries, then clear the call tag.
                if out.iter().any(|s| s.res.is_some()) {
                    let key = self.depth_key(name);
                    for st in &mut out {
                        if let Some(ok) = st.res.take() {
                            st.vars.insert(key.clone(), ok);
                        }
                    }
                }
                if let Some(ty) = self.arg_type(rhs) {
                    let name = name.to_string();
                    self.frames
                        .last_mut()
                        .expect("walker always runs inside a frame")
                        .types
                        .insert(name, ty);
                }
            }
        } else {
            for st in &mut out {
                st.res = None;
            }
        }
        (out, semi + 1)
    }

    /// Evaluate an expression span left to right.
    pub(crate) fn eval_expr(&mut self, span: &[Tree], flow: &mut Flow, states: Vec<St>) -> Vec<St> {
        let mut states = states;
        let mut recv: Option<String> = None;
        let mut j = 0;
        while j < span.len() && !states.is_empty() {
            self.fuel -= 1;
            if self.fuel < 0 {
                return Vec::new();
            }
            match &span[j] {
                Tree::T(t) if t.kind == Kind::Ident => match t.text.as_str() {
                    "if" => {
                        let (out, nj) = self.eval_if(span, j, flow, states);
                        states = self.squash(out);
                        j = nj;
                        recv = None;
                    }
                    "match" => {
                        let (out, nj) = self.eval_match(span, j, flow, states);
                        states = self.squash(out);
                        j = nj;
                        recv = None;
                    }
                    "loop" | "while" | "for" => {
                        let (out, nj) = self.eval_loop(span, j, flow, states);
                        states = self.squash(out);
                        j = nj;
                        recv = None;
                    }
                    "return" => {
                        let out = self.eval_expr(&span[j + 1..], flow, states);
                        for st in out {
                            let ek = match st.res {
                                Some(true) => EK::Ok,
                                Some(false) => EK::Err,
                                None => EK::Plain,
                            };
                            flow.rets.push((st, ek));
                        }
                        return Vec::new();
                    }
                    "break" => {
                        let out = self.eval_expr(&span[j + 1..], flow, states);
                        flow.brks.extend(out);
                        return Vec::new();
                    }
                    "continue" => {
                        flow.conts.extend(states);
                        return Vec::new();
                    }
                    "move" | "mut" | "ref" | "as" | "in" | "async" | "await" | "unsafe" | "dyn"
                    | "impl" => {
                        j += 1;
                    }
                    "self" => {
                        recv = self.frame().self_ty.clone();
                        j += 1;
                    }
                    "Ok" | "Err" | "Some"
                        if span.get(j + 1).and_then(|t| t.group()).map(|g| g.open) == Some('(') =>
                    {
                        let name = t.text.clone();
                        let g = span[j + 1].group().expect("checked above").items.clone();
                        for part in split_commas(&g) {
                            states = self.eval_expr(part, flow, states);
                        }
                        match name.as_str() {
                            "Ok" => states.iter_mut().for_each(|s| s.res = Some(true)),
                            "Err" => states.iter_mut().for_each(|s| s.res = Some(false)),
                            _ => {}
                        }
                        j += 2;
                        recv = None;
                    }
                    _ if span.get(j + 1).map(|n| n.is_punct("!")).unwrap_or(false) => {
                        // Macro invocation.
                        let name = t.text.clone();
                        let line = t.line;
                        let has_group = span.get(j + 2).and_then(|t| t.group()).is_some();
                        if DIVERGING_MACROS.contains(&name.as_str()) {
                            return Vec::new(); // this path panics
                        }
                        if name == "with_retry" && has_group {
                            let g = span[j + 2].group().expect("checked above").items.clone();
                            states = self.eval_with_retry(&g, line, flow, states);
                        }
                        j += if has_group { 3 } else { 2 };
                        recv = None;
                    }
                    _ => {
                        let (out, nrecv, nj) = self.eval_chain(span, j, flow, states);
                        states = out;
                        recv = nrecv;
                        j = nj;
                    }
                },
                Tree::T(t) if t.kind == Kind::Punct && t.text == "?" => {
                    let line = t.line;
                    let mut keep = Vec::new();
                    for mut st in states {
                        match st.res.take() {
                            Some(true) | None => keep.push(st),
                            Some(false) => {
                                if let crate::analyze::Lock::Held { line: al, .. } = &st.lock {
                                    let al = *al;
                                    self.emit(
                                        "lock-leak",
                                        line,
                                        format!(
                                            "`?` propagates an error while the lock taken at \
                                             line {al} is still held"
                                        ),
                                    );
                                    st.lock = crate::analyze::Lock::Free;
                                }
                                flow.rets.push((st, EK::Err));
                            }
                        }
                    }
                    states = keep;
                    j += 1;
                }
                Tree::T(t) if t.kind == Kind::Punct && t.text == "." => {
                    let (out, nrecv, nj) = self.eval_postfix(span, j, &recv, flow, states);
                    states = out;
                    recv = nrecv;
                    j = nj;
                }
                Tree::G(g) if g.open == '{' => {
                    let inner = self.eval_block(&g.items, states);
                    states = flow.absorb_inner(inner);
                    states = self.squash(states);
                    j += 1;
                    recv = None;
                }
                Tree::G(g) => {
                    // Paren/bracket group: evaluate comma parts for their
                    // effects; a single-part paren keeps the call tag.
                    let parts = split_commas(&g.items);
                    let single = parts.len() <= 1 && g.open == '(';
                    for part in &parts {
                        states = self.eval_expr(part, flow, states);
                    }
                    if !single {
                        for st in &mut states {
                            st.res = None;
                        }
                    }
                    j += 1;
                    recv = None;
                }
                _ => {
                    // Punctuation / literals: inert.
                    if !span[j].is_punct(".") {
                        recv = None;
                    }
                    j += 1;
                }
            }
        }
        states
    }

    /// Evaluate an identifier chain `a::b::c` optionally followed by a
    /// call group. Returns (states, receiver type, next index).
    fn eval_chain(
        &mut self,
        span: &[Tree],
        j: usize,
        flow: &mut Flow,
        states: Vec<St>,
    ) -> (Vec<St>, Option<String>, usize) {
        let mut segs: Vec<String> = Vec::new();
        let mut k = j;
        while let Some(id) = span.get(k).and_then(|t| t.ident()) {
            segs.push(id.to_string());
            if span.get(k + 1).map(|t| t.is_punct("::")).unwrap_or(false)
                && span.get(k + 2).and_then(|t| t.ident()).is_some()
            {
                k += 2;
            } else {
                k += 1;
                break;
            }
        }
        let call_group = span
            .get(k)
            .and_then(|t| t.group())
            .filter(|g| g.open == '(');
        let line = span[j].line();
        if let Some(g) = call_group {
            let out = match self.resolve_call(&segs) {
                Some(fi) => self.eval_user_call(fi, g, line, flow, states),
                None => {
                    // Unknown callee: evaluate args, treat as pure.
                    let mut states = states;
                    for part in split_commas(&g.items) {
                        states = self.eval_expr(part, flow, states);
                    }
                    for st in &mut states {
                        st.res = None;
                    }
                    states
                }
            };
            return (out, None, k + 1);
        }
        // Plain variable / path read.
        let recv = if segs.len() == 1 {
            self.frame().types.get(&segs[0]).cloned()
        } else {
            None
        };
        (states, recv, k)
    }

    /// Resolve a call chain to an analyzed function index.
    fn resolve_call(&self, segs: &[String]) -> Option<usize> {
        let name = segs.last()?;
        if segs.len() == 2 {
            let ty = if segs[0] == "Self" {
                self.frame().self_ty.clone()?
            } else {
                segs[0].clone()
            };
            if let Some(fi) = self.prog.method(&ty, name) {
                return Some(fi);
            }
        }
        if segs.len() == 1 {
            let file = self.fn_item().file.clone();
            return self.prog.free_fn(&file, name);
        }
        // Module-qualified free function (`engine::rr_alloc`, …).
        match self.prog.free_global.get(name.as_str()).map(Vec::as_slice) {
            Some([only]) => Some(*only),
            _ => None,
        }
    }

    /// Postfix after `.`: method call, field access, or `.await`.
    fn eval_postfix(
        &mut self,
        span: &[Tree],
        j: usize,
        recv: &Option<String>,
        flow: &mut Flow,
        states: Vec<St>,
    ) -> (Vec<St>, Option<String>, usize) {
        let Some(name) = span.get(j + 1).and_then(|t| t.ident()) else {
            // `.0` tuple index or similar.
            return (states, None, j + 2);
        };
        if name == "await" {
            return (states, recv.clone(), j + 2);
        }
        let name = name.to_string();
        let line = span[j + 1].line();
        let call_group = span
            .get(j + 2)
            .and_then(|t| t.group())
            .filter(|g| g.open == '(');
        let Some(g) = call_group else {
            return (states, None, j + 2); // field access
        };
        if matches!(name.as_str(), "source" | "clone") {
            return (states, recv.clone(), j + 3);
        }
        let out = match recv.as_deref() {
            Some("Endpoint") => self.eval_ep_method(&name, g, line, flow, states),
            Some(ty) => {
                let ty = ty.to_string();
                match self.prog.method(&ty, &name) {
                    Some(fi) => self.eval_user_call(fi, g, line, flow, states),
                    None => {
                        let mut states = states;
                        for part in split_commas(&g.items) {
                            states = self.eval_expr(part, flow, states);
                        }
                        for st in &mut states {
                            st.res = None;
                        }
                        states
                    }
                }
            }
            None => {
                let mut states = states;
                for part in split_commas(&g.items) {
                    states = self.eval_expr(part, flow, states);
                }
                for st in &mut states {
                    st.res = None;
                }
                states
            }
        };
        (out, None, j + 3)
    }

    /// The `with_retry!(ep, [retrying,] op)` macro: check the
    /// idempotency rule, then evaluate one attempt of `op`.
    fn eval_with_retry(
        &mut self,
        items: &[Tree],
        line: u32,
        flow: &mut Flow,
        states: Vec<St>,
    ) -> Vec<St> {
        let parts = split_commas(items);
        let op = match parts.len() {
            2 => {
                let marked = self
                    .fn_item()
                    .anns
                    .contains(&crate::lex::AnnItem::Idempotent)
                    || self.ann_at(line, &crate::lex::AnnItem::Idempotent);
                if !marked {
                    self.emit(
                        "retry-idempotent",
                        line,
                        "two-argument `with_retry!` re-runs its operation without a \
                         `retrying` hint; mark the enclosing function \
                         `// protolint: idempotent` or thread the hint"
                            .to_string(),
                    );
                }
                parts[1]
            }
            3 => parts[2],
            _ => return states,
        };
        // One attempt; the retry loop re-runs the same attempt from a
        // clean state, so a single evaluation covers it.
        self.eval_expr(op, flow, states)
    }
}
