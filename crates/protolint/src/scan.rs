//! Structural rules over every function reachable from a protocol
//! root: panic-freedom (`hot-panic`) and deadline threading
//! (`deadline-thread`). These are token-shape scans — no path
//! sensitivity needed.

use crate::analyze::{ep_verb, Analysis, Finding};
use crate::lex::Kind;
use crate::syntax::Tree;

const PANIC_MACROS: [&str; 4] = ["panic", "unreachable", "todo", "unimplemented"];

/// Keywords that can legitimately precede a `[` without indexing.
fn non_indexing_kw(id: &str) -> bool {
    matches!(
        id,
        "return"
            | "break"
            | "in"
            | "as"
            | "mut"
            | "ref"
            | "else"
            | "move"
            | "static"
            | "const"
            | "let"
            | "impl"
            | "dyn"
            | "where"
            | "box"
    )
}

fn scan_trees(trees: &[Tree], has_ep: bool, out: &mut Vec<(&'static str, u32, String)>) {
    for (k, t) in trees.iter().enumerate() {
        match t {
            Tree::T(tok) if tok.kind == Kind::Ident => {
                let next_bang = trees.get(k + 1).map(|n| n.is_punct("!")).unwrap_or(false);
                if next_bang && PANIC_MACROS.contains(&tok.text.as_str()) {
                    out.push((
                        "hot-panic",
                        tok.line,
                        format!("`{}!` can abort a protocol hot path", tok.text),
                    ));
                }
                let after_dot = k > 0 && trees[k - 1].is_punct(".");
                let next_call = trees
                    .get(k + 1)
                    .and_then(|n| n.group())
                    .map(|g| g.open == '(')
                    .unwrap_or(false);
                if after_dot && next_call && matches!(tok.text.as_str(), "unwrap" | "expect") {
                    out.push((
                        "hot-panic",
                        tok.line,
                        format!(
                            "`.{}()` can panic on a protocol hot path; return a typed \
                             error instead",
                            tok.text
                        ),
                    ));
                }
                if tok.text == "ep"
                    && !has_ep
                    && trees.get(k + 1).map(|n| n.is_punct(".")).unwrap_or(false)
                {
                    if let Some(m) = trees.get(k + 2).and_then(|n| n.ident()) {
                        if ep_verb(m).is_some() {
                            out.push((
                                "deadline-thread",
                                tok.line,
                                format!(
                                    "issues `ep.{m}` without taking the deadline-carrying \
                                     `ep: &Endpoint` as a parameter"
                                ),
                            ));
                        }
                    }
                }
                if tok.text == "Endpoint"
                    && trees.get(k + 1).map(|n| n.is_punct("::")).unwrap_or(false)
                    && trees.get(k + 2).map(|n| n.is_ident("new")).unwrap_or(false)
                {
                    out.push((
                        "deadline-thread",
                        tok.line,
                        "constructs a fresh `Endpoint` on a hot path; the operation \
                         deadline is not threaded through"
                            .to_string(),
                    ));
                }
            }
            Tree::G(g) => {
                if g.open == '[' {
                    let indexing = match k.checked_sub(1).map(|p| &trees[p]) {
                        Some(Tree::T(pt)) if pt.kind == Kind::Ident => !non_indexing_kw(&pt.text),
                        Some(Tree::G(pg)) => pg.open == '(' || pg.open == '[',
                        _ => false, // `#[...]`, `&[...]`, `= [...]`, types
                    };
                    if indexing {
                        out.push((
                            "hot-panic",
                            g.line,
                            "slice/array indexing can panic on a protocol hot path; \
                             use `.get()` or mark `allow(hot-panic)` with a rationale"
                                .to_string(),
                        ));
                    }
                }
                scan_trees(&g.items, has_ep, out);
            }
            _ => {}
        }
    }
}

impl Analysis<'_> {
    /// Run the structural rules over every visited function.
    pub fn structural_scan(&mut self) {
        let prog = self.prog;
        let visited: Vec<usize> = self.visited.iter().copied().collect();
        for fi in visited {
            let f = &prog.fns[fi];
            let has_ep = f.params.iter().any(|p| p == "ep");
            let mut raw = Vec::new();
            scan_trees(&f.body, has_ep, &mut raw);
            let mut deadline_done = false;
            for (rule, line, msg) in raw {
                if rule == "deadline-thread" {
                    if deadline_done {
                        continue;
                    }
                    deadline_done = true;
                }
                if prog.allowed(&f.file, line, rule) {
                    continue;
                }
                self.findings.push(Finding {
                    rule,
                    file: f.file.clone(),
                    line,
                    msg,
                });
            }
        }
    }
}
