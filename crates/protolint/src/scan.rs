//! Structural rules over every function reachable from a protocol
//! root: panic-freedom (`hot-panic`), deadline threading
//! (`deadline-thread`) and validation-before-use
//! (`validated-before-use`). These are token-shape scans — no path
//! sensitivity needed.

use crate::analyze::{ep_verb, Analysis, Finding};
use crate::lex::{AnnItem, Kind};
use crate::syntax::Tree;

const PANIC_MACROS: [&str; 4] = ["panic", "unreachable", "todo", "unimplemented"];

/// Keywords that can legitimately precede a `[` without indexing.
fn non_indexing_kw(id: &str) -> bool {
    matches!(
        id,
        "return"
            | "break"
            | "in"
            | "as"
            | "mut"
            | "ref"
            | "else"
            | "move"
            | "static"
            | "const"
            | "let"
            | "impl"
            | "dyn"
            | "where"
            | "box"
    )
}

fn scan_trees(trees: &[Tree], has_ep: bool, out: &mut Vec<(&'static str, u32, String)>) {
    for (k, t) in trees.iter().enumerate() {
        match t {
            Tree::T(tok) if tok.kind == Kind::Ident => {
                let next_bang = trees.get(k + 1).map(|n| n.is_punct("!")).unwrap_or(false);
                if next_bang && PANIC_MACROS.contains(&tok.text.as_str()) {
                    out.push((
                        "hot-panic",
                        tok.line,
                        format!("`{}!` can abort a protocol hot path", tok.text),
                    ));
                }
                let after_dot = k > 0 && trees[k - 1].is_punct(".");
                let next_call = trees
                    .get(k + 1)
                    .and_then(|n| n.group())
                    .map(|g| g.open == '(')
                    .unwrap_or(false);
                if after_dot && next_call && matches!(tok.text.as_str(), "unwrap" | "expect") {
                    out.push((
                        "hot-panic",
                        tok.line,
                        format!(
                            "`.{}()` can panic on a protocol hot path; return a typed \
                             error instead",
                            tok.text
                        ),
                    ));
                }
                if tok.text == "ep"
                    && !has_ep
                    && trees.get(k + 1).map(|n| n.is_punct(".")).unwrap_or(false)
                {
                    if let Some(m) = trees.get(k + 2).and_then(|n| n.ident()) {
                        if ep_verb(m).is_some() {
                            out.push((
                                "deadline-thread",
                                tok.line,
                                format!(
                                    "issues `ep.{m}` without taking the deadline-carrying \
                                     `ep: &Endpoint` as a parameter"
                                ),
                            ));
                        }
                    }
                }
                if tok.text == "Endpoint"
                    && trees.get(k + 1).map(|n| n.is_punct("::")).unwrap_or(false)
                    && trees.get(k + 2).map(|n| n.is_ident("new")).unwrap_or(false)
                {
                    out.push((
                        "deadline-thread",
                        tok.line,
                        "constructs a fresh `Endpoint` on a hot path; the operation \
                         deadline is not threaded through"
                            .to_string(),
                    ));
                }
            }
            Tree::G(g) => {
                if g.open == '[' {
                    let indexing = match k.checked_sub(1).map(|p| &trees[p]) {
                        Some(Tree::T(pt)) if pt.kind == Kind::Ident => !non_indexing_kw(&pt.text),
                        Some(Tree::G(pg)) => pg.open == '(' || pg.open == '[',
                        _ => false, // `#[...]`, `&[...]`, `= [...]`, types
                    };
                    if indexing {
                        out.push((
                            "hot-panic",
                            g.line,
                            "slice/array indexing can panic on a protocol hot path; \
                             use `.get()` or mark `allow(hot-panic)` with a rationale"
                                .to_string(),
                        ));
                    }
                }
                scan_trees(&g.items, has_ep, out);
            }
            _ => {}
        }
    }
}

/// One call site, in source-token order: `(name, was-method-call, line)`.
type CallSite = (String, bool, u32);

/// Flatten every call in `trees` (free `name(...)` and method
/// `.name(...)`) in token order, recursing into argument groups.
fn collect_calls(trees: &[Tree], out: &mut Vec<CallSite>) {
    for (k, t) in trees.iter().enumerate() {
        match t {
            Tree::T(tok) if tok.kind == Kind::Ident => {
                let next_call = trees
                    .get(k + 1)
                    .and_then(|n| n.group())
                    .map(|g| g.open == '(')
                    .unwrap_or(false);
                if next_call {
                    let after_dot = k > 0 && trees[k - 1].is_punct(".");
                    out.push((tok.text.clone(), after_dot, tok.line));
                }
            }
            Tree::G(g) => collect_calls(&g.items, out),
            _ => {}
        }
    }
}

/// Dot-method reads whose bytes arrive optimistically (the snapshot may
/// race with a concurrent writer). `read_unlocked` is deliberately
/// absent: it spin-rereads until the lock word is clean, so the
/// primitive validates its own snapshot.
const VBU_READS: [&str; 3] = ["read", "read_many", "load"];

/// Calls that validate an optimistic snapshot: version / fence
/// re-checks, lock-word probes, and structural probes that re-derive
/// the route. A lock-word `.cas(...)` also counts (checked by shape in
/// [`vbu_scan`], since `cas` must be a method call).
const VBU_MARKERS: [&str; 7] = [
    "covers",
    "find_child",
    "is_locked",
    "version_lock_of",
    "version_of",
    "contains",
    "live_count",
];

/// Cached-artifact uses that must be preceded by a restart-epoch fence.
const VBU_CACHED: [&str; 2] = ["page_hit", "route_hit"];

/// Restart-epoch fences that make a later cached-artifact use safe.
const VBU_EPOCH_FENCES: [&str; 2] = ["flush_if_restarted", "sync_model"];

/// `validated-before-use` over one function's flattened call sequence.
///
/// Three shapes, one discipline — remote bytes must not flow into a
/// result without a happens-before-restoring check:
///
/// * a function issuing optimistic reads (`.read` / `.read_many` /
///   `.load`) must contain validation vocabulary *somewhere*: a
///   version/fence re-check, a structural probe, or a lock CAS (a read
///   under the lock is not optimistic; a CAS after the read validates
///   the word it observed). Call order is deliberately ignored — the
///   validating re-check of a loop iteration's read commonly sits at
///   the top of the next iteration, which token order cannot see;
/// * a cached-artifact use (`page_hit` / `route_hit`) must be preceded
///   by a restart-epoch fence (`flush_if_restarted` / `sync_model`) —
///   here the fence genuinely must come first;
/// * in a release-role function, no in-place WRITE may follow the
///   unlock FAA — the page must be published before the release edge.
fn vbu_scan(
    calls: &[CallSite],
    anns: &[AnnItem],
    acquire_names: &[&str],
    out: &mut Vec<(&'static str, u32, String)>,
) {
    let is_marker = |c: &CallSite| {
        (c.1 && c.0 == "cas")
            || VBU_MARKERS.contains(&c.0.as_str())
            || acquire_names.contains(&c.0.as_str())
    };
    if !calls.iter().any(is_marker) {
        if let Some(c) = calls
            .iter()
            .find(|c| c.1 && VBU_READS.contains(&c.0.as_str()))
        {
            out.push((
                "validated-before-use",
                c.2,
                format!(
                    "optimistic `.{}(...)` is never validated: the function \
                     contains no version/fence re-check \
                     (covers/find_child/lock-word probe) or lock CAS, so the \
                     bytes can escape into a result unchecked",
                    c.0
                ),
            ));
        }
    }
    if let Some(c) = calls.iter().enumerate().find_map(|(i, c)| {
        (VBU_CACHED.contains(&c.0.as_str())
            && !calls[..i]
                .iter()
                .any(|p| VBU_EPOCH_FENCES.contains(&p.0.as_str())))
        .then_some(c)
    }) {
        out.push((
            "validated-before-use",
            c.2,
            format!(
                "cached artifact served via `{}(...)` without a preceding \
                 restart-epoch fence (flush_if_restarted/sync_model): a \
                 server restart leaves the cache pointing into a rebuilt pool",
                c.0
            ),
        ));
    }
    let release_role = anns
        .iter()
        .any(|a| matches!(a, AnnItem::Role(r) if r == "release" || r == "commit-release"));
    if release_role {
        if let Some(fa) = calls.iter().position(|c| c.1 && c.0 == "fetch_add") {
            if let Some(w) = calls[fa + 1..].iter().find(|c| c.1 && c.0 == "write") {
                out.push((
                    "validated-before-use",
                    w.2,
                    "in-place WRITE after the unlock FAA: the release edge is \
                     published before the page bytes land, so a concurrent \
                     optimistic reader races with this write by construction"
                        .to_string(),
                ));
            }
        }
    }
}

impl Analysis<'_> {
    /// Run the structural rules over every visited function.
    pub fn structural_scan(&mut self) {
        let prog = self.prog;
        let acquire_names: Vec<&str> = prog
            .fns
            .iter()
            .filter(|f| {
                f.anns
                    .iter()
                    .any(|a| matches!(a, AnnItem::Role(r) if r == "acquire"))
            })
            .map(|f| f.name.as_str())
            .collect();
        let visited: Vec<usize> = self.visited.iter().copied().collect();
        for fi in visited {
            let f = &prog.fns[fi];
            let has_ep = f.params.iter().any(|p| p == "ep");
            let mut raw = Vec::new();
            scan_trees(&f.body, has_ep, &mut raw);
            let mut calls = Vec::new();
            collect_calls(&f.body, &mut calls);
            vbu_scan(&calls, &f.anns, &acquire_names, &mut raw);
            let mut deadline_done = false;
            for (rule, line, msg) in raw {
                if rule == "deadline-thread" {
                    if deadline_done {
                        continue;
                    }
                    deadline_done = true;
                }
                if prog.allowed(&f.file, line, rule) {
                    continue;
                }
                self.findings.push(Finding {
                    rule,
                    file: f.file.clone(),
                    line,
                    msg,
                });
            }
        }
    }
}
