//! Tokenizer for the analyzed Rust sources.
//!
//! Comments and string contents are stripped (their *positions* are
//! kept so line numbers in findings stay accurate), and `// protolint:`
//! marker comments are captured as structured [`AnnItem`]s. The token
//! stream is deliberately lossless enough for control-flow recovery —
//! `::`, `->` and `=>` are fused, everything else stays single-char —
//! and total: unknown input never aborts the lex.

/// Token class.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Kind {
    /// Identifier or keyword.
    Ident,
    /// Numeric literal (prefix/suffix kept verbatim).
    Num,
    /// Punctuation; `::`, `->` and `=>` arrive fused, all else single.
    Punct,
    /// One of `(`, `[`, `{`.
    Open,
    /// One of `)`, `]`, `}`.
    Close,
    /// String/char/byte literal (content dropped).
    Str,
    /// Lifetime or loop label (`'a`, `'outer`).
    Life,
}

/// One token with its 1-based source line.
#[derive(Clone, Debug)]
pub struct Tok {
    pub kind: Kind,
    pub text: String,
    pub line: u32,
}

/// One structured item from a `// protolint: ...` marker comment.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum AnnItem {
    /// `role(acquire|release|commit-release|rescue|spin-read)` — the
    /// hand-modelled protocol role of a function.
    Role(String),
    /// `primitive` — the function *implements* its role with raw verbs;
    /// its body is scanned structurally (panic-freedom) only.
    Primitive,
    /// `loop(levels|spin|probe|chain|partition|ascend)` — bounded-shape
    /// annotation for a verb-issuing loop.
    LoopKind(String),
    /// `idempotent` — the operation under `with_retry!` may re-run.
    Idempotent,
    /// `allow(<rule-id>)` — suppress a rule in a 3-line window.
    Allow(String),
    /// `entry` — fixture analysis root.
    Entry,
    /// `arm-by(first-page)` — bind match-arm choice to the design's
    /// `CLIENT_DESCENT` in cost mode.
    ArmBy(String),
    /// `expect(<rule-id>)` — fixture expectation: the rule must fire.
    Expect(String),
}

/// Parse the text after `protolint:` into items. Unknown words end the
/// parse (the rest of the comment is free-form rationale).
pub fn parse_ann(body: &str) -> Vec<AnnItem> {
    let mut out = Vec::new();
    let mut rest = body.trim();
    loop {
        let word_end = rest
            .find(|c: char| !(c.is_ascii_alphanumeric() || c == '-' || c == '_'))
            .unwrap_or(rest.len());
        let word = &rest[..word_end];
        let mut after = rest[word_end..].trim_start();
        let arg = if let Some(stripped) = after.strip_prefix('(') {
            match stripped.find(')') {
                Some(end) => {
                    let a = stripped[..end].trim().to_string();
                    after = stripped[end + 1..].trim_start();
                    Some(a)
                }
                None => return out,
            }
        } else {
            None
        };
        let item = match (word, arg) {
            ("role", Some(a)) => AnnItem::Role(a),
            ("primitive", None) => AnnItem::Primitive,
            ("loop", Some(a)) => AnnItem::LoopKind(a),
            ("idempotent", None) => AnnItem::Idempotent,
            ("allow", Some(a)) => AnnItem::Allow(a),
            ("entry", None) => AnnItem::Entry,
            ("arm-by", Some(a)) => AnnItem::ArmBy(a),
            ("expect", Some(a)) => AnnItem::Expect(a),
            _ => return out,
        };
        out.push(item);
        rest = after;
        match rest.strip_prefix(',') {
            Some(r) => rest = r.trim_start(),
            None => return out,
        }
    }
}

/// Lex `src`: token stream plus captured annotations keyed by line.
pub fn lex(src: &str) -> (Vec<Tok>, Vec<(u32, Vec<AnnItem>)>) {
    let b = src.as_bytes();
    let mut toks = Vec::new();
    let mut anns = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;
    while i < b.len() {
        let c = b[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            b' ' | b'\t' | b'\r' => i += 1,
            b'/' if i + 1 < b.len() && b[i + 1] == b'/' => {
                let start = i;
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
                let comment = &src[start..i];
                let body = comment.trim_start_matches('/').trim_start_matches('!');
                if let Some(rest) = body.trim_start().strip_prefix("protolint:") {
                    let items = parse_ann(rest);
                    if !items.is_empty() {
                        anns.push((line, items));
                    }
                }
            }
            b'/' if i + 1 < b.len() && b[i + 1] == b'*' => {
                let mut depth = 1u32;
                i += 2;
                while i < b.len() && depth > 0 {
                    if b[i] == b'\n' {
                        line += 1;
                        i += 1;
                    } else if b[i] == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
                        depth += 1;
                        i += 2;
                    } else if b[i] == b'*' && i + 1 < b.len() && b[i + 1] == b'/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
            }
            b'"' => {
                i = skip_string(b, i + 1, &mut line);
                toks.push(Tok {
                    kind: Kind::Str,
                    text: String::new(),
                    line,
                });
            }
            b'r' | b'b' if is_raw_or_byte_string(b, i) => {
                // r"...", r#"..."#, b"...", br"..." — find the quote,
                // count the hashes, then skip to the matching close.
                let mut j = i;
                while j < b.len() && (b[j] == b'r' || b[j] == b'b') {
                    j += 1;
                }
                let mut hashes = 0usize;
                while j < b.len() && b[j] == b'#' {
                    hashes += 1;
                    j += 1;
                }
                debug_assert!(j < b.len() && b[j] == b'"');
                j += 1;
                if hashes == 0 {
                    i = skip_string(b, j, &mut line);
                } else {
                    let close = format!("\"{}", "#".repeat(hashes));
                    match src[j..].find(&close) {
                        Some(off) => {
                            line += src[j..j + off].matches('\n').count() as u32;
                            i = j + off + close.len();
                        }
                        None => i = b.len(),
                    }
                }
                toks.push(Tok {
                    kind: Kind::Str,
                    text: String::new(),
                    line,
                });
            }
            b'\'' => {
                // Lifetime/label vs char literal.
                let is_life = i + 1 < b.len()
                    && (b[i + 1].is_ascii_alphabetic() || b[i + 1] == b'_')
                    && !(i + 2 < b.len() && b[i + 2] == b'\'');
                if is_life {
                    let start = i;
                    i += 1;
                    while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                        i += 1;
                    }
                    toks.push(Tok {
                        kind: Kind::Life,
                        text: src[start..i].to_string(),
                        line,
                    });
                } else {
                    // Char literal: 'x' or '\..'.
                    i += 1;
                    if i < b.len() && b[i] == b'\\' {
                        i += 2;
                    } else {
                        i += 1;
                    }
                    while i < b.len() && b[i] != b'\'' {
                        i += 1;
                    }
                    i += 1;
                    toks.push(Tok {
                        kind: Kind::Str,
                        text: String::new(),
                        line,
                    });
                }
            }
            _ if c.is_ascii_digit() => {
                let start = i;
                i += 1;
                while i < b.len()
                    && (b[i].is_ascii_alphanumeric()
                        || b[i] == b'_'
                        || (b[i] == b'.'
                            && i + 1 < b.len()
                            && b[i + 1].is_ascii_digit()
                            && !src[start..i].contains('.')))
                {
                    i += 1;
                }
                toks.push(Tok {
                    kind: Kind::Num,
                    text: src[start..i].to_string(),
                    line,
                });
            }
            _ if c.is_ascii_alphabetic() || c == b'_' => {
                let start = i;
                while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                    i += 1;
                }
                toks.push(Tok {
                    kind: Kind::Ident,
                    text: src[start..i].to_string(),
                    line,
                });
            }
            b'(' | b'[' | b'{' => {
                toks.push(Tok {
                    kind: Kind::Open,
                    text: (c as char).to_string(),
                    line,
                });
                i += 1;
            }
            b')' | b']' | b'}' => {
                toks.push(Tok {
                    kind: Kind::Close,
                    text: (c as char).to_string(),
                    line,
                });
                i += 1;
            }
            _ => {
                // Punctuation; fuse `::`, `->`, `=>`.
                let two = if i + 1 < b.len() { &src[i..i + 2] } else { "" };
                let text = match two {
                    "::" | "->" | "=>" => {
                        i += 2;
                        two.to_string()
                    }
                    _ => {
                        i += 1;
                        (c as char).to_string()
                    }
                };
                toks.push(Tok {
                    kind: Kind::Punct,
                    text,
                    line,
                });
            }
        }
    }
    (toks, anns)
}

fn is_raw_or_byte_string(b: &[u8], i: usize) -> bool {
    // r" r#" b" br" rb" — a string opener, not an identifier.
    let mut j = i;
    while j < b.len() && (b[j] == b'r' || b[j] == b'b') && j - i < 2 {
        j += 1;
    }
    while j < b.len() && b[j] == b'#' {
        j += 1;
    }
    j < b.len() && b[j] == b'"' && (j > i)
}

/// Skip past a (non-raw) string body starting just after the opening
/// quote; returns the index after the closing quote.
fn skip_string(b: &[u8], mut i: usize, line: &mut u32) -> usize {
    while i < b.len() {
        match b[i] {
            b'\\' => i += 2,
            b'\n' => {
                *line += 1;
                i += 1;
            }
            b'"' => return i + 1,
            _ => i += 1,
        }
    }
    i
}
