//! Token trees and item extraction.
//!
//! The analyzer works on a bracket-matched token *tree* rather than a
//! full AST: control-flow recovery (if/match/loop/call shapes) happens
//! in the walker, which keeps this layer total — any valid Rust
//! tokenizes into a tree, and constructs the walker does not model
//! degrade to inert token runs instead of parse errors.

use std::collections::BTreeMap;

use crate::lex::{lex, AnnItem, Kind, Tok};

/// A token or a bracketed group.
#[derive(Clone, Debug)]
pub enum Tree {
    T(Tok),
    G(Group),
}

/// A bracketed `(...)`, `[...]` or `{...}` group.
#[derive(Clone, Debug)]
pub struct Group {
    pub open: char,
    pub line: u32,
    pub items: Vec<Tree>,
}

impl Tree {
    pub fn line(&self) -> u32 {
        match self {
            Tree::T(t) => t.line,
            Tree::G(g) => g.line,
        }
    }

    pub fn is_ident(&self, s: &str) -> bool {
        matches!(self, Tree::T(t) if t.kind == Kind::Ident && t.text == s)
    }

    pub fn is_punct(&self, s: &str) -> bool {
        matches!(self, Tree::T(t) if t.kind == Kind::Punct && t.text == s)
    }

    pub fn ident(&self) -> Option<&str> {
        match self {
            Tree::T(t) if t.kind == Kind::Ident => Some(&t.text),
            _ => None,
        }
    }

    pub fn group(&self) -> Option<&Group> {
        match self {
            Tree::G(g) => Some(g),
            _ => None,
        }
    }
}

/// Build the bracket tree. Tolerates unbalanced input (truncated close).
pub fn treeify(toks: &[Tok]) -> Vec<Tree> {
    let mut stack: Vec<(char, u32, Vec<Tree>)> = Vec::new();
    let mut cur: Vec<Tree> = Vec::new();
    for t in toks {
        match t.kind {
            Kind::Open => {
                stack.push((
                    t.text.chars().next().unwrap_or('('),
                    t.line,
                    std::mem::take(&mut cur),
                ));
            }
            Kind::Close => {
                if let Some((open, line, outer)) = stack.pop() {
                    let items = std::mem::replace(&mut cur, outer);
                    cur.push(Tree::G(Group { open, line, items }));
                }
            }
            _ => cur.push(Tree::T(t.clone())),
        }
    }
    while let Some((open, line, outer)) = stack.pop() {
        let items = std::mem::replace(&mut cur, outer);
        cur.push(Tree::G(Group { open, line, items }));
    }
    cur
}

/// One function item extracted from a source file.
#[derive(Clone, Debug)]
pub struct FnItem {
    pub name: String,
    /// Enclosing `impl` target type (or trait name for trait bodies).
    pub impl_ty: Option<String>,
    pub file: String,
    pub line: u32,
    /// Parameter names (patterns reduced to their first identifier;
    /// `&self`/`self` recorded as `self`).
    pub params: Vec<String>,
    pub body: Vec<Tree>,
    /// `// protolint:` items attached directly above the declaration.
    pub anns: Vec<AnnItem>,
}

/// A fully lexed + extracted source file set.
#[derive(Default)]
pub struct Program {
    pub fns: Vec<FnItem>,
    /// `(impl_ty, name)` → index into `fns` (methods).
    pub methods: BTreeMap<(String, String), usize>,
    /// `(file, name)` → index into `fns` (free functions, per file).
    pub free_by_file: BTreeMap<(String, String), usize>,
    /// `name` → all free-function indices (for cross-file resolution).
    pub free_global: BTreeMap<String, Vec<usize>>,
    /// `(file, line)` → annotation items (for proximity lookups).
    pub anns: BTreeMap<(String, u32), Vec<AnnItem>>,
}

impl Program {
    /// Parse `src` as file `name` and add its items.
    pub fn add_file(&mut self, name: &str, src: &str) {
        let (toks, anns) = lex(src);
        for (line, items) in anns {
            self.anns
                .entry((name.to_string(), line))
                .or_default()
                .extend(items);
        }
        let trees = treeify(&toks);
        self.extract(name, &trees, None);
    }

    /// Annotation items attached to `file` within `[lo, hi]`.
    pub fn anns_in(&self, file: &str, lo: u32, hi: u32) -> Vec<&AnnItem> {
        self.anns
            .range((file.to_string(), lo)..=(file.to_string(), hi))
            .flat_map(|(_, v)| v.iter())
            .collect()
    }

    /// Whether `allow(rule)` covers `line` (3-line window above).
    pub fn allowed(&self, file: &str, line: u32, rule: &str) -> bool {
        self.anns_in(file, line.saturating_sub(3), line)
            .iter()
            .any(|a| matches!(a, AnnItem::Allow(r) if r == rule))
    }

    fn extract(&mut self, file: &str, trees: &[Tree], impl_ty: Option<&str>) {
        let mut i = 0usize;
        while i < trees.len() {
            match &trees[i] {
                Tree::T(t) if t.kind == Kind::Ident && t.text == "impl" => {
                    // Scan to the body group; target type = ident after
                    // `for`, else first ident at angle-depth 0.
                    let mut ty: Option<String> = None;
                    let mut after_for = false;
                    let mut angle = 0i32;
                    let mut j = i + 1;
                    while j < trees.len() {
                        match &trees[j] {
                            Tree::G(g) if g.open == '{' => break,
                            Tree::T(t) if t.kind == Kind::Punct && t.text == "<" => angle += 1,
                            Tree::T(t) if t.kind == Kind::Punct && t.text == ">" => angle -= 1,
                            Tree::T(t) if t.kind == Kind::Ident && t.text == "for" => {
                                after_for = true;
                                ty = None;
                            }
                            Tree::T(t)
                                if t.kind == Kind::Ident
                                    && angle == 0
                                    && (ty.is_none() || after_for) =>
                            {
                                ty = Some(t.text.clone());
                                after_for = false;
                            }
                            _ => {}
                        }
                        j += 1;
                    }
                    if let Some(Tree::G(g)) = trees.get(j) {
                        self.extract(file, &g.items, ty.as_deref());
                    }
                    i = j + 1;
                }
                Tree::T(t) if t.kind == Kind::Ident && t.text == "macro_rules" => {
                    // Skip `macro_rules! name { ... }` entirely.
                    let mut j = i + 1;
                    while j < trees.len() && trees[j].group().map(|g| g.open) != Some('{') {
                        j += 1;
                    }
                    i = j + 1;
                }
                Tree::T(t) if t.kind == Kind::Ident && (t.text == "mod" || t.text == "trait") => {
                    // Recurse into module bodies; skip trait bodies
                    // (default methods resolve to the concrete impls).
                    let recurse = t.text == "mod";
                    let mut j = i + 1;
                    while j < trees.len() {
                        if let Tree::G(g) = &trees[j] {
                            if g.open == '{' {
                                if recurse {
                                    self.extract(file, &g.items, impl_ty);
                                }
                                break;
                            }
                        }
                        if trees[j].is_punct(";") {
                            break; // `mod foo;`
                        }
                        j += 1;
                    }
                    i = j + 1;
                }
                Tree::T(t) if t.kind == Kind::Ident && t.text == "fn" => {
                    let name = trees
                        .get(i + 1)
                        .and_then(|t| t.ident())
                        .unwrap_or("")
                        .to_string();
                    let decl_line = t.line;
                    // Params: first `(` group after the name.
                    let mut params = Vec::new();
                    let mut j = i + 1;
                    let mut param_group: Option<&Group> = None;
                    while j < trees.len() {
                        match &trees[j] {
                            Tree::G(g) if g.open == '(' && param_group.is_none() => {
                                param_group = Some(g);
                            }
                            Tree::G(g) if g.open == '{' => break,
                            Tree::T(t) if t.kind == Kind::Punct && t.text == ";" => break,
                            _ => {}
                        }
                        j += 1;
                    }
                    if let Some(g) = param_group {
                        params = param_names(g);
                    }
                    if let Some(Tree::G(body)) = trees.get(j) {
                        if body.open == '{' && !name.is_empty() {
                            let anns = self
                                .anns_in(file, decl_line.saturating_sub(3), decl_line)
                                .into_iter()
                                .cloned()
                                .collect();
                            let idx = self.fns.len();
                            self.fns.push(FnItem {
                                name: name.clone(),
                                impl_ty: impl_ty.map(str::to_string),
                                file: file.to_string(),
                                line: decl_line,
                                params,
                                body: body.items.clone(),
                                anns,
                            });
                            match impl_ty {
                                Some(ty) => {
                                    self.methods.insert((ty.to_string(), name), idx);
                                }
                                None => {
                                    self.free_by_file
                                        .insert((file.to_string(), name.clone()), idx);
                                    self.free_global.entry(name).or_default().push(idx);
                                }
                            }
                        }
                    }
                    i = j + 1;
                }
                _ => i += 1,
            }
        }
    }

    /// Resolve a method `name` on impl target `ty`.
    pub fn method(&self, ty: &str, name: &str) -> Option<usize> {
        self.methods
            .get(&(ty.to_string(), name.to_string()))
            .copied()
    }

    /// Resolve a free function: same file first, then globally unique.
    pub fn free_fn(&self, file: &str, name: &str) -> Option<usize> {
        if let Some(&i) = self.free_by_file.get(&(file.to_string(), name.to_string())) {
            return Some(i);
        }
        match self.free_global.get(name).map(Vec::as_slice) {
            Some([only]) => Some(*only),
            _ => None,
        }
    }
}

/// Parameter names from a signature `(...)` group: idents directly
/// followed by `:` at the top level, plus bare/borrowed `self`.
fn param_names(g: &Group) -> Vec<String> {
    let mut out = Vec::new();
    let items = &g.items;
    for (i, t) in items.iter().enumerate() {
        if let Some(id) = t.ident() {
            if id == "self" {
                out.push("self".to_string());
            } else if items.get(i + 1).map(|n| n.is_punct(":")).unwrap_or(false) {
                out.push(id.to_string());
            }
        }
    }
    out
}
