//! Cross-check the protolint static verbs-per-op cost table against
//! verb counts measured from the simulator's server telemetry.
//!
//! For each design a fresh single-client cluster runs four phases —
//! lookup (present keys), insert (fresh keys, no splits), delete (miss),
//! delete (hit) — of `K` widely-spaced ops each, and the per-phase delta
//! of summed `ServerStats { rpcs, onesided_ops }` must equal `K` times
//! the statically predicted cost. The symbolic level count `L` of the
//! fine-grained design is derived from its measured lookup phase, not
//! assumed, so the check also pins the static `L`-polynomials to the
//! actual tree height.

use std::cell::RefCell;
use std::path::PathBuf;
use std::process::ExitCode;
use std::rc::Rc;

use blink::PageLayout;
use nam::{NamCluster, PartitionMap};
use namdex_core::{CoarseGrained, Design, FgConfig, FineGrained, Hybrid, Learned};
use rdma_sim::{ClusterSpec, Endpoint};
use simnet::Sim;

const PAGE_SIZE: usize = 256;
/// Preloaded keys `0, 8, .., (KEYS-1)*8` (value = key/8).
const KEYS: u64 = 2_000;
/// Ops per phase.
const K: u64 = 32;
/// Key-unit stride between ops: far enough apart that every op hits its
/// own leaf, so inserts never split a page another phase op touched.
const STRIDE: u64 = KEYS / K;

#[derive(Clone, Copy, PartialEq, Eq)]
enum Phase {
    Lookup,
    Insert,
    DeleteMiss,
    DeleteHit,
}

const PHASES: [Phase; 4] = [
    Phase::Lookup,
    Phase::Insert,
    Phase::DeleteMiss,
    Phase::DeleteHit,
];

impl Phase {
    fn label(self) -> &'static str {
        match self {
            Phase::Lookup => "lookup",
            Phase::Insert => "insert (no split)",
            Phase::DeleteMiss => "delete (miss)",
            Phase::DeleteHit => "delete (hit)",
        }
    }
}

fn build(kind: &str, nam: &NamCluster) -> Design {
    let items = (0..KEYS).map(|i| (i * 8, i));
    let partition = PartitionMap::range_uniform(nam.num_servers(), KEYS * 8);
    let cfg = FgConfig {
        layout: PageLayout::new(PAGE_SIZE),
        fill: 0.7,
        head_stride: 4,
        cache_capacity: None,
    };
    match kind {
        "cg" => Design::Cg(CoarseGrained::build(
            nam,
            PageLayout::new(PAGE_SIZE),
            partition,
            items,
            0.7,
        )),
        "fg" => Design::Fg(FineGrained::build(&nam.rdma, cfg, items)),
        "learned" => Design::Learned(Learned::build(nam, cfg, partition, items)),
        _ => Design::Hybrid(Hybrid::build(nam, cfg, partition, items)),
    }
}

/// Partition-boundary-safe op index. A key that lives in the leaf
/// *spanning* a partition boundary resolves through the next partition
/// (the leaf is registered under its high key), so the hybrid's
/// leaf-pointer probe pays one extra RPC there. The static model prices
/// the first probe only — `loop(probe)` fall-throughs are boundary/
/// contention artifacts — so the sweep samples keys at least one leaf
/// width away from every boundary. MARGIN (50 indexes) is several leaf
/// widths at this page size and below the op stride, so shifted indexes
/// stay distinct.
fn safe_index(pm: &PartitionMap, i: u64) -> u64 {
    const MARGIN: u64 = 50;
    if pm.server_of(i * 8) != pm.server_of((i + MARGIN) * 8) {
        i + MARGIN
    } else {
        i
    }
}

/// Summed (rpcs, onesided_ops) across all servers.
fn totals(nam: &NamCluster) -> (u64, u64) {
    let mut rpcs = 0;
    let mut os = 0;
    for s in 0..nam.num_servers() {
        let st = nam.rdma.server_stats(s);
        rpcs += st.rpcs;
        os += st.onesided_ops;
    }
    (rpcs, os)
}

/// Run one phase of `K` ops and return the (rpc, onesided) verb delta.
fn run_phase(
    sim: &Sim,
    nam: &NamCluster,
    idx: &Design,
    phase: Phase,
    errs: &Rc<RefCell<Vec<String>>>,
) -> (u64, u64) {
    let before = totals(nam);
    let ep = Endpoint::new(&nam.rdma);
    let idx = idx.clone();
    let errs = errs.clone();
    let pm = PartitionMap::range_uniform(nam.num_servers(), KEYS * 8);
    sim.spawn(async move {
        for j in 0..K {
            let base = safe_index(&pm, j * STRIDE);
            let outcome: Result<(), String> = match phase {
                Phase::Lookup => {
                    let key = (base + 3) * 8;
                    match idx.lookup(&ep, key).await {
                        Ok(Some(v)) if v == base + 3 => Ok(()),
                        other => Err(format!("lookup({key}) -> {other:?}")),
                    }
                }
                Phase::Insert => {
                    let key = (base + 1) * 8 + 4;
                    match idx.insert(&ep, key, key ^ 1).await {
                        Ok(()) => Ok(()),
                        Err(e) => Err(format!("insert({key}) -> {e:?}")),
                    }
                }
                Phase::DeleteMiss => {
                    let key = (base + 5) * 8 + 2;
                    match idx.delete(&ep, key).await {
                        Ok(false) => Ok(()),
                        other => Err(format!("delete-miss({key}) -> {other:?}")),
                    }
                }
                Phase::DeleteHit => {
                    let key = (base + 7) * 8;
                    match idx.delete(&ep, key).await {
                        Ok(true) => Ok(()),
                        other => Err(format!("delete-hit({key}) -> {other:?}")),
                    }
                }
            };
            if let Err(e) = outcome {
                errs.borrow_mut().push(e);
            }
        }
    });
    sim.run();
    let after = totals(nam);
    (after.0 - before.0, after.1 - before.1)
}

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crate lives two levels under the repo root")
        .to_path_buf()
}

fn main() -> ExitCode {
    let root = repo_root();
    let prog = match protolint::load_workspace(&root) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("verb_model_check: load: {e}");
            return ExitCode::FAILURE;
        }
    };
    let max = match protolint::spec_max_verbs(&root) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("verb_model_check: spec: {e}");
            return ExitCode::FAILURE;
        }
    };
    let rows = protolint::cost_table(&prog, max);

    let errs: Rc<RefCell<Vec<String>>> = Rc::default();
    let mut measured: Vec<(&'static str, [(u64, u64); 4])> = Vec::new();
    for kind in ["cg", "fg", "hybrid", "learned"] {
        let sim = Sim::new();
        let nam = NamCluster::new(&sim, ClusterSpec::default());
        let idx = build(kind, &nam);
        let mut per = [(0u64, 0u64); 4];
        for (i, ph) in PHASES.iter().enumerate() {
            per[i] = run_phase(&sim, &nam, &idx, *ph, &errs);
        }
        measured.push((kind, per));
    }
    if !errs.borrow().is_empty() {
        for e in errs.borrow().iter() {
            eprintln!("verb_model_check: op failed: {e}");
        }
        return ExitCode::FAILURE;
    }

    // Derive L from the fine-grained lookup phase: with caching off, a
    // lookup is exactly one READ per level and nothing else.
    let Some((_, fg)) = measured.iter().find(|(k, _)| *k == "fg") else {
        eprintln!("verb_model_check: no fg measurement");
        return ExitCode::FAILURE;
    };
    let (fg_rpc, fg_os) = fg[0];
    if fg_rpc != 0 || fg_os == 0 || fg_os % K != 0 {
        eprintln!(
            "verb_model_check: fg lookup phase is not L reads/op \
             (rpc delta {fg_rpc}, onesided delta {fg_os} over {K} ops)"
        );
        return ExitCode::FAILURE;
    }
    let levels = (fg_os / K) as i64;
    if !(2..=8).contains(&levels) {
        eprintln!("verb_model_check: implausible derived tree height L = {levels}");
        return ExitCode::FAILURE;
    }

    println!("verb model cross-check: K = {K} ops/phase, derived L = {levels}");
    let mut bad = 0usize;
    for (kind, per) in &measured {
        let Some(row) = rows.iter().find(|r| r.design == *kind) else {
            eprintln!("verb_model_check: no static row for {kind}");
            return ExitCode::FAILURE;
        };
        for (i, ph) in PHASES.iter().enumerate() {
            let (_, cost) = row.cells[i];
            let (got_rpc, got_os) = per[i];
            let want_rpc = cost.rpc.eval(levels) as u64 * K;
            let want_os = cost.os.eval(levels) as u64 * K;
            let ok = !cost.unbounded && got_rpc == want_rpc && got_os == want_os;
            println!(
                "  {kind:<7} {:<18} static {:<14} -> want {want_rpc:>4} rpc {want_os:>4} os, \
                 measured {got_rpc:>4} rpc {got_os:>4} os  {}",
                ph.label(),
                cost.render(),
                if ok { "ok" } else { "MISMATCH" },
            );
            if !ok {
                bad += 1;
            }
        }
    }
    if bad > 0 {
        eprintln!("verb_model_check: FAILED: {bad} cell(s) diverge from telemetry");
        return ExitCode::FAILURE;
    }
    println!("verb_model_check: static table matches telemetry for all designs");
    ExitCode::SUCCESS
}
