//! protolint CLI.
//!
//! * `protolint check [--emit-docs]` — lint the workspace hot paths,
//!   verify the generated cs-inventory doc blocks (or rewrite them with
//!   `--emit-docs`), assert the widest critical section equals
//!   `MAX_LOCK_HOLD_VERBS`, and run the fixture corpus.
//! * `protolint table` — print the static verbs-per-op cost table.
//! * `protolint fixtures` — run only the fixture corpus.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crate lives two levels under the repo root")
        .to_path_buf()
}

fn check(root: &Path, emit: bool) -> Result<(), String> {
    let prog = protolint::load_workspace(root).map_err(|e| format!("load: {e}"))?;
    let max = protolint::spec_max_verbs(root).map_err(|e| format!("spec: {e}"))?;
    let out = protolint::run_lint(&prog, max, false);
    if !out.findings.is_empty() {
        for f in &out.findings {
            eprintln!("{}:{}: [{}] {}", f.file, f.line, f.rule, f.msg);
        }
        return Err(format!(
            "{} finding(s) on the protocol hot paths",
            out.findings.len()
        ));
    }
    let widest = out.max_section_verbs();
    if widest != max {
        return Err(format!(
            "widest discovered critical section is {widest} verbs but \
             MAX_LOCK_HOLD_VERBS = {max}; the spec bound and the code have \
             drifted apart"
        ));
    }
    if emit {
        let updated = protolint::emit_docs(root, &out.sections, max)
            .map_err(|e| format!("emit-docs: {e}"))?;
        for f in &updated {
            println!("updated {f}");
        }
    } else {
        let errs = protolint::check_docs(root, &out.sections, max);
        if !errs.is_empty() {
            for e in &errs {
                eprintln!("{e}");
            }
            return Err("generated doc blocks out of date".to_string());
        }
    }
    println!(
        "protolint: clean — {} critical sections (widest {widest} = \
         MAX_LOCK_HOLD_VERBS), docs in sync",
        out.sections.len()
    );
    Ok(())
}

fn table(root: &Path) -> Result<(), String> {
    let prog = protolint::load_workspace(root).map_err(|e| format!("load: {e}"))?;
    let max = protolint::spec_max_verbs(root).map_err(|e| format!("spec: {e}"))?;
    let rows = protolint::cost_table(&prog, max);
    print!("{}", protolint::render_cost_table(&rows));
    Ok(())
}

fn fixtures(root: &Path) -> Result<(), String> {
    let dir = root.join("crates/protolint/fixtures");
    let paths = protolint::fixture_paths(&dir).map_err(|e| format!("fixtures: {e}"))?;
    if paths.is_empty() {
        return Err(format!("no fixtures found under {}", dir.display()));
    }
    let mut failed = 0usize;
    for p in &paths {
        let r = protolint::run_fixture(p).map_err(|e| format!("{}: {e}", p.display()))?;
        if r.pass() {
            println!("fixture {:<36} ok ({:?})", r.name, r.expected);
        } else {
            failed += 1;
            eprintln!(
                "fixture {:<36} MISMATCH\n  expected: {:?}\n  found:    {:?}",
                r.name, r.expected, r.found
            );
        }
    }
    if failed > 0 {
        return Err(format!("{failed} fixture(s) mismatched"));
    }
    println!("protolint: {} fixtures ok", paths.len());
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = args.first().map(String::as_str).unwrap_or("check");
    let emit = args.iter().any(|a| a == "--emit-docs");
    let root = repo_root();
    let res = match cmd {
        "check" => check(&root, emit).and_then(|()| fixtures(&root)),
        "table" => table(&root),
        "fixtures" => fixtures(&root),
        _ => {
            eprintln!("usage: protolint [check [--emit-docs] | table | fixtures]");
            return ExitCode::from(2);
        }
    };
    match res {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("protolint: FAILED: {e}");
            ExitCode::FAILURE
        }
    }
}
