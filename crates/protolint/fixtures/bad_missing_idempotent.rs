//! Negative fixture: a two-argument `with_retry!` re-runs its attempt
//! with no `retrying` hint, and the enclosing operation is not marked
//! idempotent — a lost-response retry could duplicate its effect.

async fn attempt_install(ep: &Endpoint, key: u64, value: u64) -> Result<(), VerbError> {
    let ptr = ptr_of(key);
    ep.write(ptr, value).await
}

// protolint: entry, expect(retry-idempotent)
async fn install_no_hint(ep: &Endpoint, key: u64, value: u64) -> Result<(), VerbError> {
    with_retry!(ep, attempt_install(ep, key, value))
}
