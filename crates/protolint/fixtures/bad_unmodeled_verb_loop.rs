//! Negative fixture: a pointer-chasing loop that issues a READ per
//! iteration with no `loop(...)` shape annotation — the analyzer cannot
//! bound its verb count, so the cost model would silently undercount.

// protolint: entry, expect(unmodeled-verb-loop)
async fn chase_unannotated(ep: &Endpoint, ptr: RemotePtr) -> Result<u64, VerbError> {
    let mut cur = ptr;
    loop {
        let page = ep.read(cur).await?;
        if is_leaf(page) {
            return Ok(head_value(page));
        }
        cur = find_child(page);
    }
}
