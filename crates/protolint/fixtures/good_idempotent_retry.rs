//! False-positive guard: the twin of `bad_missing_idempotent` — a
//! two-argument `with_retry!` is fine when the enclosing operation is
//! declared idempotent. Must produce no findings.

async fn attempt_lookup(ep: &Endpoint, key: u64) -> Result<u64, VerbError> {
    let ptr = ptr_of(key);
    // protolint: allow(validated-before-use) -- single-rule probe
    // for retry idempotence; validation is out of scope here.
    ep.read(ptr).await
}

// protolint: entry, idempotent -- a lookup has no remote effect to duplicate.
async fn lookup_marked(ep: &Endpoint, key: u64) -> Result<u64, VerbError> {
    with_retry!(ep, attempt_lookup(ep, key))
}
