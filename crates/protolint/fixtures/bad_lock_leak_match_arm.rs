//! Negative fixture: one match arm returns early without releasing the
//! lock the surrounding protocol acquired.

// protolint: role(acquire), primitive -- fixture lock CAS.
async fn lock_node(ep: &Endpoint, ptr: RemotePtr) -> Result<u64, VerbError> {
    ep.cas(ptr, 0, 1).await
}

// protolint: role(release), primitive -- fixture unlock FAA.
async fn unlock_only(ep: &Endpoint, ptr: RemotePtr) -> Result<(), VerbError> {
    ep.fetch_add(ptr, 1).await
}

// protolint: entry, expect(lock-leak)
async fn forgetful_delete(ep: &Endpoint, ptr: RemotePtr) -> Result<bool, VerbError> {
    lock_node(ep, ptr).await?;
    let page = ep.read(ptr).await?;
    let hit = decode(page);
    match hit {
        Some(v) => {
            ep.write(ptr, v).await?;
        }
        None => return Ok(false), // forgets the unlock on the miss arm
    }
    unlock_only(ep, ptr).await?;
    Ok(true)
}
