//! Negative fixture: constructs a fresh `Endpoint` inside the
//! operation instead of taking the deadline-carrying `ep` parameter,
//! so the operation deadline is not threaded through to its verbs.

// protolint: entry, expect(deadline-thread)
async fn probe_fresh_endpoint(cluster: &Cluster, ptr: RemotePtr) -> Result<u64, VerbError> {
    let ep = Endpoint::new(cluster);
    // protolint: allow(validated-before-use) -- single-rule probe
    // for deadline threading; validation is out of scope here.
    ep.read(ptr).await
}
