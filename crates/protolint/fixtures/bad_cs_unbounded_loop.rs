//! Negative fixture: an unannotated loop that issues verbs while the
//! lock is held. The critical section grows with the iteration count
//! (cs-loop), the verb total cannot be bounded statically
//! (unmodeled-verb-loop), and the fixpoint blows the hold budget
//! (cs-verb-bound).

// protolint: role(acquire), primitive -- fixture lock CAS.
async fn lock_node(ep: &Endpoint, ptr: RemotePtr) -> Result<u64, VerbError> {
    ep.cas(ptr, 0, 1).await
}

// protolint: role(release), primitive -- fixture unlock FAA.
async fn unlock_only(ep: &Endpoint, ptr: RemotePtr) -> Result<(), VerbError> {
    ep.fetch_add(ptr, 1).await
}

// protolint: entry, expect(cs-loop), expect(unmodeled-verb-loop), expect(cs-verb-bound)
async fn scan_while_locked(ep: &Endpoint, ptr: RemotePtr) -> Result<(), VerbError> {
    lock_node(ep, ptr).await?;
    let mut cur = ptr;
    loop {
        let _ = ep.read(cur).await; // one verb per iteration, lock held
        cur = next_ptr(cur);
        if at_end(cur) {
            break;
        }
    }
    unlock_only(ep, ptr).await
}
