//! False-positive guard: the disciplined twins of the four
//! `validated-before-use` shapes. Optimistic reads re-derive the route
//! via `find_child` and re-check coverage via `covers`; cached hits sit
//! behind the `flush_if_restarted` restart-epoch fence; the
//! commit-release helper writes back before the unlock FAA. Must
//! produce no findings.

// protolint: entry
async fn lookup_validated(ep: &Endpoint, ptr: RemotePtr, key: u64) -> Result<u64, VerbError> {
    let page = ep.read(ptr).await?;
    if !covers(page, key) {
        return Err(VerbError::Cancelled);
    }
    let child = find_child(page);
    let leaf = ep.read(child).await?;
    if !covers(leaf, key) {
        return Err(VerbError::Cancelled);
    }
    Ok(head_value(leaf))
}

// protolint: entry
async fn cached_lookup_fenced(
    ep: &Endpoint,
    cache: &CacheLayer,
    ptr: RemotePtr,
    key: u64,
) -> Result<u64, VerbError> {
    cache.flush_if_restarted();
    if let Some(page) = cache.page_hit(ep.client_id(), ptr) {
        if covers(page, key) {
            return Ok(head_value(page));
        }
    }
    lookup_validated(ep, ptr, key).await
}

// protolint: role(commit-release), primitive, entry
async fn write_unlock_ordered(
    ep: &Endpoint,
    ptr: RemotePtr,
    page: &[u8],
) -> Result<(), VerbError> {
    ep.write(ptr, page).await?;
    ep.fetch_add(ptr, 1).await?;
    Ok(())
}
