//! Negative fixture: the `descend-no-covers` race shape — an optimistic
//! descent that trusts every snapshot outright. No `covers()` re-check,
//! no `find_child()` re-derivation, no lock-word probe: a page split
//! concurrently with the READ routes the lookup to a node that no
//! longer covers the key, and nothing ever notices.

// protolint: entry, expect(validated-before-use)
async fn lookup_trusting(ep: &Endpoint, ptr: RemotePtr, key: u64) -> Result<u64, VerbError> {
    let page = ep.read(ptr).await?;
    // Route straight off the raw bytes — the snapshot may predate a
    // split that moved `key` to a sibling.
    let child = raw_child_ptr(page, key);
    let leaf = ep.read(child).await?;
    Ok(head_value(leaf))
}
