//! Negative fixture: five WRITEs plus the unlock while holding the lock
//! — over the MAX_LOCK_HOLD_VERBS = 4 budget the lease-recovery proof
//! depends on.

// protolint: role(acquire), primitive -- fixture lock CAS.
async fn lock_node(ep: &Endpoint, ptr: RemotePtr) -> Result<u64, VerbError> {
    ep.cas(ptr, 0, 1).await
}

// protolint: role(release), primitive -- fixture unlock FAA.
async fn unlock_only(ep: &Endpoint, ptr: RemotePtr) -> Result<(), VerbError> {
    ep.fetch_add(ptr, 1).await
}

// protolint: entry, expect(cs-verb-bound)
async fn wide_section(ep: &Endpoint, ptr: RemotePtr) -> Result<(), VerbError> {
    lock_node(ep, ptr).await?;
    let _ = ep.write(ptr, 1).await;
    let _ = ep.write(ptr, 2).await;
    let _ = ep.write(ptr, 3).await;
    let _ = ep.write(ptr, 4).await;
    let _ = ep.write(ptr, 5).await; // fifth verb breaks the hold bound
    unlock_only(ep, ptr).await
}
