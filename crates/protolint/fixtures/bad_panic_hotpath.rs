//! Negative fixture: `.unwrap()` and unchecked slice indexing on a
//! protocol hot path — either aborts the client mid-protocol, possibly
//! while a remote lock is held.

// protolint: entry, expect(hot-panic)
async fn fetch_unchecked(ep: &Endpoint, ptrs: Vec<RemotePtr>, i: usize) -> Result<u64, VerbError> {
    let ptr = ptrs[i]; // indexing can panic
    // protolint: allow(validated-before-use) -- single-rule probe
    // for panic freedom; validation is out of scope here.
    let v = ep.read(ptr).await.unwrap(); // unwrap can panic
    Ok(v)
}
