//! False-positive guard: the twin of `bad_unmodeled_verb_loop` — the
//! same pointer-chasing descent, but carrying the `loop(levels)` shape
//! annotation that bounds its verb count by the tree height. Must
//! produce no findings.

// protolint: entry
async fn chase_annotated(ep: &Endpoint, ptr: RemotePtr) -> Result<u64, VerbError> {
    let mut cur = ptr;
    // protolint: loop(levels) -- one READ per tree level.
    loop {
        let page = ep.read(cur).await?;
        if is_leaf(page) {
            return Ok(head_value(page));
        }
        cur = find_child(page);
    }
}
