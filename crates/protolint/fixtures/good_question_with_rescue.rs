//! False-positive guard: the twin of `bad_lock_leak_question` — the
//! same verbs inside the critical section, but the fallible WRITE is
//! routed through the rescue primitive, so every error arm discharges
//! the lock before returning. Must produce no findings.

// protolint: role(acquire), primitive -- fixture lock CAS.
async fn lock_node(ep: &Endpoint, ptr: RemotePtr) -> Result<u64, VerbError> {
    ep.cas(ptr, 0, 1).await
}

// protolint: role(release), primitive -- fixture unlock FAA.
async fn unlock_only(ep: &Endpoint, ptr: RemotePtr) -> Result<(), VerbError> {
    ep.fetch_add(ptr, 1).await
}

// protolint: role(rescue), primitive -- discharges the lock on Err.
async fn release_on_error(
    ep: &Endpoint,
    ptr: RemotePtr,
    res: Result<(), VerbError>,
) -> Result<(), VerbError> {
    if res.is_err() {
        let _ = ep.fetch_add(ptr, 1).await;
    }
    res
}

// protolint: entry
async fn guarded_update(ep: &Endpoint, ptr: RemotePtr) -> Result<(), VerbError> {
    lock_node(ep, ptr).await?;
    let wrote = ep.write(ptr, 1).await;
    release_on_error(ep, ptr, wrote).await?;
    unlock_only(ep, ptr).await
}
