//! Negative fixture: calls an `Endpoint` method the verb model does not
//! know — its cost and lock behaviour would be silently dropped from
//! the analysis.

// protolint: entry, expect(unmodeled-ep-method)
async fn flush_path(ep: &Endpoint, ptr: RemotePtr) -> Result<(), VerbError> {
    ep.flush(ptr).await
}
