//! False-positive guard: the twin of `bad_lock_leak_match_arm` — every
//! match arm releases the lock before the function returns. Must
//! produce no findings.

// protolint: role(acquire), primitive -- fixture lock CAS.
async fn lock_node(ep: &Endpoint, ptr: RemotePtr) -> Result<u64, VerbError> {
    ep.cas(ptr, 0, 1).await
}

// protolint: role(release), primitive -- fixture unlock FAA.
async fn unlock_only(ep: &Endpoint, ptr: RemotePtr) -> Result<(), VerbError> {
    ep.fetch_add(ptr, 1).await
}

// protolint: entry
async fn careful_delete(ep: &Endpoint, ptr: RemotePtr) -> Result<bool, VerbError> {
    let page = ep.read(ptr).await?; // load before locking: no CS leak on Err
    let hit = decode(page);
    lock_node(ep, ptr).await?;
    match hit {
        Some(v) => {
            let _ = ep.write(ptr, v).await;
            unlock_only(ep, ptr).await?;
            Ok(true)
        }
        None => {
            unlock_only(ep, ptr).await?;
            Ok(false)
        }
    }
}
