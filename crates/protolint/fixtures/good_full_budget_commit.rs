//! False-positive guard: a split-shaped critical section that uses the
//! entire MAX_LOCK_HOLD_VERBS = 4 budget (alloc + sibling WRITE +
//! in-place WRITE + unlock FAA) without exceeding it, with an allowed
//! indexing site carrying its rationale. Must produce no findings.

// protolint: role(acquire), primitive -- fixture lock CAS.
async fn lock_node(ep: &Endpoint, ptr: RemotePtr) -> Result<u64, VerbError> {
    ep.cas(ptr, 0, 1).await
}

// protolint: role(release), primitive -- fixture unlock FAA.
async fn unlock_only(ep: &Endpoint, ptr: RemotePtr) -> Result<(), VerbError> {
    ep.fetch_add(ptr, 1).await
}

// protolint: entry
async fn split_commit(ep: &Endpoint, ptr: RemotePtr, rights: Vec<RemotePtr>) -> Result<(), VerbError> {
    lock_node(ep, ptr).await?;
    let _ = ep.alloc(64).await;
    // protolint: allow(hot-panic) -- the caller sizes `rights` to the
    // split arity; index 0 always exists.
    let sibling = rights[0];
    let _ = ep.write(sibling, 1).await;
    let _ = ep.write(ptr, 2).await;
    unlock_only(ep, ptr).await
}
