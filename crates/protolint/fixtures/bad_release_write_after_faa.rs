//! Negative fixture: the `unlock-before-write` race shape — a
//! commit-release helper that publishes the unlock FAA *before* the
//! in-place write-back. The release edge lands first, so a contender
//! can acquire the lock (or an optimistic reader can trust the bumped
//! version) while the page bytes are still in flight.

// protolint: role(commit-release), primitive, entry, expect(validated-before-use)
async fn write_unlock_reordered(
    ep: &Endpoint,
    ptr: RemotePtr,
    page: &[u8],
) -> Result<(), VerbError> {
    ep.fetch_add(ptr, 1).await?;
    ep.write(ptr, page).await?;
    Ok(())
}
