//! Negative fixture: the unlock FAA runs twice — the second bumps the
//! version word of a lock nobody holds, corrupting optimistic readers'
//! version checks.

// protolint: role(acquire), primitive -- fixture lock CAS.
async fn lock_node(ep: &Endpoint, ptr: RemotePtr) -> Result<u64, VerbError> {
    ep.cas(ptr, 0, 1).await
}

// protolint: role(release), primitive -- fixture unlock FAA.
async fn unlock_only(ep: &Endpoint, ptr: RemotePtr) -> Result<(), VerbError> {
    ep.fetch_add(ptr, 1).await
}

// protolint: entry, expect(double-release)
async fn unlock_twice(ep: &Endpoint, ptr: RemotePtr) -> Result<(), VerbError> {
    lock_node(ep, ptr).await?;
    let _ = ep.write(ptr, 7).await;
    unlock_only(ep, ptr).await?;
    unlock_only(ep, ptr).await
}
