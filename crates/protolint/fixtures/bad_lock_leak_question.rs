//! Negative fixture: a `?` on a verb issued inside the critical
//! section returns on the error arm with the leaf lock still held —
//! the classic leak the lock-discipline rule exists for.

// protolint: role(acquire), primitive -- fixture lock CAS.
async fn lock_node(ep: &Endpoint, ptr: RemotePtr) -> Result<u64, VerbError> {
    ep.cas(ptr, 0, 1).await
}

// protolint: role(release), primitive -- fixture unlock FAA.
async fn unlock_only(ep: &Endpoint, ptr: RemotePtr) -> Result<(), VerbError> {
    ep.fetch_add(ptr, 1).await
}

// protolint: entry, expect(lock-leak)
async fn leaky_update(ep: &Endpoint, ptr: RemotePtr) -> Result<(), VerbError> {
    lock_node(ep, ptr).await?;
    let page = ep.read(ptr).await?; // Err arm returns still holding the lock
    ep.write(ptr, page).await?;
    unlock_only(ep, ptr).await
}
