//! Negative fixture: the `cached-no-fence` race shape — a client-side
//! cached page served without first reconciling against the cluster
//! restart epoch. After a server crash the backing pool is rebuilt; the
//! cached artifact points into memory that no longer exists, and only
//! the `flush_if_restarted()` fence before the hit can notice.

// protolint: entry, expect(validated-before-use)
async fn cached_lookup(ep: &Endpoint, cache: &CacheLayer, ptr: RemotePtr) -> Result<u64, VerbError> {
    if let Some(page) = cache.page_hit(ep.client_id(), ptr) {
        return Ok(head_value(page));
    }
    let page = fetch_validated(ep, ptr).await?;
    Ok(head_value(page))
}
