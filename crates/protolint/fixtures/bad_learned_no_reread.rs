//! Negative fixture: the `learned-no-reread` race shape — a learned
//! model's leaf route served without the `sync_model()` restart-epoch
//! reconciliation. The model was trained against a pre-crash pool; its
//! prediction is a pointer into rebuilt memory, and the route is used
//! with no fence between training epoch and serving epoch.

// protolint: entry, expect(validated-before-use)
async fn routed_lookup(ep: &Endpoint, model: &Model, key: u64) -> Result<u64, VerbError> {
    if let Some(leaf) = model.route_hit(ep.client_id(), key) {
        return Ok(probe_rpc(ep, leaf, key).await?);
    }
    Ok(probe_rpc(ep, root_of(model), key).await?)
}
