//! `cargo xtask` — repo automation, chiefly the **determinism lint**.
//!
//! The whole value of the simulator rests on runs being a pure function
//! of the seed: the executor is single-threaded over virtual time, the
//! RNG is seeded, and every container the simulation iterates has a
//! deterministic order. One stray wall-clock read, OS-entropy draw,
//! spawned thread, or hash-order iteration silently breaks replayability
//! — and usually only shows up later as an unreproducible CI failure.
//!
//! `cargo xtask lint` scans every simulation-relevant source file for
//! nondeterminism escapes and fails the build if one appears. It is a
//! deliberately dumb, dependency-free line scanner: the point is a fast
//! gate that cannot itself rot, not a type-aware analysis — the
//! `clippy.toml` `disallowed-methods` / `disallowed-types` lists (driven
//! through `[workspace.lints]`) provide the type-aware second layer.
//!
//! A finding can be suppressed for one line with a trailing
//! `// xtask: allow(<rule-id>)` comment — grep-able, reviewable, loud.
//!
//! `cargo xtask lint --self-test` runs the scanner over embedded seeded
//! violations and fails unless every rule fires (and the allow marker
//! suppresses), so the gate is itself gated.
//!
//! `cargo xtask trace-check` exercises the telemetry exporter: it runs
//! the seeded `trace_demo` experiment twice with `--trace`, validates
//! the Chrome-trace JSON line by line (required fields, matched B/E
//! stacks per track, non-decreasing duration-event timestamps), and
//! fails unless the two same-seed traces are byte-identical (FNV-1a
//! digest) — the telemetry counterpart of the determinism lint.
//!
//! `cargo xtask mc [--quick]` is the model-checking gate (see
//! `crates/mc`): FIFO-policy engine parity, the clean schedule-
//! exploration matrix, and the mutation hunts that prove the checkers
//! catch the re-introduced historical bugs and the seeded races.
//!
//! `cargo xtask perf-smoke` is the performance gate: engine-parity
//! digest first (speed from a changed engine is meaningless), then a
//! quick fig08 run whose events/sec is compared — warn-only, CI
//! machines vary — against the last entry of `results/BENCH_fig08.json`,
//! then the same run with `NAMDEX_RACECHECK=1` to pin the race
//! detector's zero-perturbation invariant and record its wall-clock
//! overhead as a trajectory note.
//!
//! `cargo xtask racecheck` is the dynamic race-detector gate (unit
//! tests, clean matrix, observer-order regression), and `cargo xtask
//! check-all` umbrellas every static and dynamic gate: lint, protolint,
//! verb-model, trace-check, engine-parity, racecheck.

use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// One lint rule: a substring that must not appear in simulation code.
struct Rule {
    /// Stable identifier, used in `// xtask: allow(<id>)`.
    id: &'static str,
    /// Substring matched against comment-stripped source lines.
    needle: &'static str,
    /// Why the pattern is banned / what to use instead.
    why: &'static str,
}

/// The banned patterns. Substrings are matched after stripping `//`
/// comments, so prose mentioning a pattern is fine.
const RULES: &[Rule] = &[
    Rule {
        id: "wall-clock-instant",
        needle: "Instant::now",
        why: "wall-clock time; use the simulation clock (`Sim::now`)",
    },
    Rule {
        id: "wall-clock-system-time",
        needle: "SystemTime",
        why: "wall-clock time; use the simulation clock (`Sim::now`)",
    },
    Rule {
        id: "os-entropy-thread-rng",
        needle: "thread_rng",
        why: "OS-seeded RNG; use `simnet::rng::DetRng::seed_from_u64`",
    },
    Rule {
        id: "os-entropy-osrng",
        needle: "OsRng",
        why: "OS entropy; use `simnet::rng::DetRng::seed_from_u64`",
    },
    Rule {
        id: "os-entropy-from-entropy",
        needle: "from_entropy",
        why: "OS entropy; use `simnet::rng::DetRng::seed_from_u64`",
    },
    Rule {
        id: "thread-spawn",
        needle: "thread::spawn",
        why: "real threads race; simulation tasks go through `Sim::spawn`",
    },
    Rule {
        id: "hash-order-map",
        needle: "HashMap",
        why: "iteration order is randomized per process; use `BTreeMap`",
    },
    Rule {
        id: "hash-order-set",
        needle: "HashSet",
        why: "iteration order is randomized per process; use `BTreeSet`",
    },
    // Added with the model checker (crates/mc): a schedule explorer that
    // quietly drew OS entropy or hashed its state would make decision
    // traces non-replayable — the exact failure the counterexample
    // format exists to prevent.
    Rule {
        id: "os-entropy-rand-random",
        needle: "rand::random",
        why: "OS-seeded convenience RNG; use `simnet::rng::DetRng::seed_from_u64`",
    },
    Rule {
        id: "hash-order-random-state",
        needle: "RandomState",
        why: "per-process random hasher; use `BTreeMap`/`BTreeSet` or a fixed hasher",
    },
];

/// Directory names never descended into, anywhere in the tree.
const SKIP_DIRS: &[&str] = &[".git", "target", "vendor", "xtask", "results"];

/// One lint hit.
struct Finding {
    path: PathBuf,
    line: usize,
    rule: &'static str,
    needle: &'static str,
    why: &'static str,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] `{}` — {}",
            self.path.display(),
            self.line,
            self.rule,
            self.needle,
            self.why
        )
    }
}

/// Strip a line-comment, unless it carries the allow marker (then the
/// caller has already bailed). Naive about `//` inside string literals,
/// which is fine for a deny-list gate: it can only under-report on lines
/// that embed the pattern in a *string*, and over-reporting is handled by
/// the allow marker.
fn strip_comment(line: &str) -> &str {
    match line.find("//") {
        Some(i) => &line[..i],
        None => line,
    }
}

/// Scan one file's contents; `path` is only used for reporting.
fn scan_source(path: &Path, contents: &str, out: &mut Vec<Finding>) {
    for (no, raw) in contents.lines().enumerate() {
        for rule in RULES {
            if !strip_comment(raw).contains(rule.needle) {
                continue;
            }
            let allow = format!("xtask: allow({})", rule.id);
            if raw.contains(&allow) {
                continue;
            }
            out.push(Finding {
                path: path.to_path_buf(),
                line: no + 1,
                rule: rule.id,
                needle: rule.needle,
                why: rule.why,
            });
        }
    }
}

fn walk(dir: &Path, files: &mut Vec<PathBuf>) {
    let entries = match fs::read_dir(dir) {
        Ok(e) => e,
        Err(_) => return,
    };
    let mut paths: Vec<PathBuf> = entries.filter_map(|e| e.ok().map(|e| e.path())).collect();
    paths.sort(); // deterministic report order, naturally
    for p in paths {
        if p.is_dir() {
            let name = p.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if !SKIP_DIRS.contains(&name) {
                walk(&p, files);
            }
        } else if p.extension().and_then(|e| e.to_str()) == Some("rs") {
            files.push(p);
        }
    }
}

fn repo_root() -> PathBuf {
    // crates/xtask/ -> repo root.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("xtask lives two levels under the repo root")
        .to_path_buf()
}

fn lint() -> ExitCode {
    let root = repo_root();
    let mut files = Vec::new();
    walk(&root, &mut files);
    let mut findings = Vec::new();
    for f in &files {
        match fs::read_to_string(f) {
            Ok(s) => scan_source(f.strip_prefix(&root).unwrap_or(f), &s, &mut findings),
            Err(e) => eprintln!("warning: skipping unreadable {}: {e}", f.display()),
        }
    }
    if findings.is_empty() {
        println!(
            "determinism lint: {} files scanned, {} rules, clean",
            files.len(),
            RULES.len()
        );
        ExitCode::SUCCESS
    } else {
        eprintln!("determinism lint: {} violation(s):", findings.len());
        for f in &findings {
            eprintln!("  {f}");
        }
        eprintln!("suppress a deliberate use with a trailing `// xtask: allow(<rule-id>)` comment");
        ExitCode::FAILURE
    }
}

/// Seeded violations: each pair is (source snippet, rule-id that must
/// fire). The scanner runs over these in-memory, proving the gate trips.
const SEEDED: &[(&str, &str)] = &[
    ("let t0 = std::time::Instant::now();", "wall-clock-instant"),
    (
        "let epoch = SystemTime::now().duration_since(UNIX_EPOCH);",
        "wall-clock-system-time",
    ),
    ("let mut rng = rand::thread_rng();", "os-entropy-thread-rng"),
    ("let mut rng = OsRng;", "os-entropy-osrng"),
    (
        "let rng = SmallRng::from_entropy();",
        "os-entropy-from-entropy",
    ),
    ("std::thread::spawn(move || loop {});", "thread-spawn"),
    (
        "let mut m: HashMap<u64, u64> = HashMap::new();",
        "hash-order-map",
    ),
    ("let mut s = HashSet::new();", "hash-order-set"),
    ("let x: u64 = rand::random();", "os-entropy-rand-random"),
    (
        "let m = HashMap::with_hasher(RandomState::new());",
        "hash-order-random-state",
    ),
];

fn self_test() -> ExitCode {
    let mut failures = 0;
    for (snippet, want) in SEEDED {
        let mut out = Vec::new();
        scan_source(Path::new("<seeded>"), snippet, &mut out);
        if out.iter().any(|f| f.rule == *want) {
            println!("self-test: rule `{want}` fires on seeded violation ... ok");
        } else {
            eprintln!("self-test: rule `{want}` MISSED seeded violation: {snippet}");
            failures += 1;
        }
    }
    // The allow marker must suppress, and comment prose must not trip.
    let mut out = Vec::new();
    scan_source(
        Path::new("<seeded>"),
        "let m = HashMap::new(); // xtask: allow(hash-order-map)\n\
         // a comment talking about Instant::now is fine\n",
        &mut out,
    );
    if out.is_empty() {
        println!("self-test: allow marker suppresses, comments ignored ... ok");
    } else {
        eprintln!("self-test: suppression failed: {}", out[0]);
        failures += 1;
    }
    if failures == 0 {
        println!("self-test: all {} rules verified", RULES.len());
        ExitCode::SUCCESS
    } else {
        eprintln!("self-test: {failures} failure(s)");
        ExitCode::FAILURE
    }
}

// ---------------------------------------------------------------------
// trace-check: schema + determinism gate for the telemetry exporter.

/// FNV-1a 64-bit digest (dependency-free, stable across platforms).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Pull a JSON string field (`"key":"value"`) out of one event line.
fn json_str_field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\":\"");
    let start = line.find(&pat)? + pat.len();
    let end = line[start..].find('"')?;
    Some(&line[start..start + end])
}

/// Pull a JSON number field (`"key":123.456`) out of one event line.
fn json_num_field(line: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\":");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Validate one Chrome-trace JSON file; returns an error string naming
/// the first offending line. Open `B` spans at end-of-file are legal
/// (the simulation stops mid-operation), unmatched `E`s are not.
fn validate_trace(contents: &str) -> Result<(), String> {
    let lines: Vec<&str> = contents.lines().collect();
    if lines.first() != Some(&"[") || lines.last() != Some(&"]") {
        return Err("trace must be a one-object-per-line JSON array".into());
    }
    // Per-(tid, cat) stacks of open B event names.
    let mut stacks: std::collections::BTreeMap<(u64, String), Vec<String>> =
        std::collections::BTreeMap::new();
    let mut last_ts = f64::MIN;
    let mut events = 0usize;
    for (no, raw) in lines[1..lines.len() - 1].iter().enumerate() {
        let lineno = no + 2;
        let line = raw.strip_suffix(',').unwrap_or(raw);
        if !(line.starts_with('{') && line.ends_with('}')) {
            return Err(format!("line {lineno}: not a JSON object: {line}"));
        }
        let ph =
            json_str_field(line, "ph").ok_or_else(|| format!("line {lineno}: missing \"ph\""))?;
        let name = json_str_field(line, "name")
            .ok_or_else(|| format!("line {lineno}: missing \"name\""))?
            .to_string();
        let cat = json_str_field(line, "cat")
            .ok_or_else(|| format!("line {lineno}: missing \"cat\""))?
            .to_string();
        let ts =
            json_num_field(line, "ts").ok_or_else(|| format!("line {lineno}: missing \"ts\""))?;
        let tid = json_num_field(line, "tid")
            .ok_or_else(|| format!("line {lineno}: missing \"tid\""))? as u64;
        if json_num_field(line, "pid").is_none() {
            return Err(format!("line {lineno}: missing \"pid\""));
        }
        events += 1;
        match ph {
            "M" => {}
            "X" => {
                let dur = json_num_field(line, "dur")
                    .ok_or_else(|| format!("line {lineno}: X event missing \"dur\""))?;
                if dur < 0.0 {
                    return Err(format!("line {lineno}: negative duration"));
                }
            }
            "i" => {
                let scope = json_str_field(line, "s")
                    .ok_or_else(|| format!("line {lineno}: instant missing \"s\""))?;
                if scope != "g" && scope != "t" {
                    return Err(format!("line {lineno}: instant scope must be g or t"));
                }
            }
            "B" => {
                // B/E/i events are appended at their event instant and
                // virtual time never runs backwards.
                if ts < last_ts {
                    return Err(format!("line {lineno}: timestamp went backwards"));
                }
                stacks.entry((tid, cat)).or_default().push(name);
            }
            "E" => {
                if ts < last_ts {
                    return Err(format!("line {lineno}: timestamp went backwards"));
                }
                match stacks.entry((tid, cat.clone())).or_default().pop() {
                    Some(open) if open == name => {}
                    Some(open) => {
                        return Err(format!(
                            "line {lineno}: E \"{name}\" closes open B \"{open}\" (tid {tid}, cat {cat})"
                        ));
                    }
                    None => {
                        return Err(format!(
                            "line {lineno}: E \"{name}\" with no open B (tid {tid}, cat {cat})"
                        ));
                    }
                }
            }
            other => return Err(format!("line {lineno}: unknown phase {other:?}")),
        }
        if matches!(ph, "B" | "E" | "i") {
            last_ts = ts;
        }
    }
    if events == 0 {
        return Err("trace contains no events".into());
    }
    Ok(())
}

fn run_trace_demo(root: &Path, out: &Path) -> Result<(), String> {
    let status = std::process::Command::new("cargo")
        .current_dir(root)
        .args([
            "run",
            "--release",
            "-p",
            "bench",
            "--bin",
            "trace_demo",
            "--",
            "--seed",
            "42",
            "--trace",
        ])
        .arg(out)
        .status()
        .map_err(|e| format!("failed to launch cargo: {e}"))?;
    if !status.success() {
        return Err(format!("trace_demo exited with {status}"));
    }
    Ok(())
}

fn trace_check() -> ExitCode {
    let root = repo_root();
    let dir = root.join("target").join("trace-check");
    if let Err(e) = fs::create_dir_all(&dir) {
        eprintln!("trace-check: cannot create {}: {e}", dir.display());
        return ExitCode::FAILURE;
    }
    let runs = [dir.join("run1.json"), dir.join("run2.json")];
    let mut digests = Vec::new();
    for out in &runs {
        if let Err(e) = run_trace_demo(&root, out) {
            eprintln!("trace-check: {e}");
            return ExitCode::FAILURE;
        }
        let contents = match fs::read_to_string(out) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("trace-check: cannot read {}: {e}", out.display());
                return ExitCode::FAILURE;
            }
        };
        if let Err(e) = validate_trace(&contents) {
            eprintln!("trace-check: {} is malformed: {e}", out.display());
            return ExitCode::FAILURE;
        }
        digests.push(fnv1a(contents.as_bytes()));
        println!(
            "trace-check: {} valid ({} lines, fnv1a {:016x})",
            out.display(),
            contents.lines().count(),
            digests.last().unwrap()
        );
    }
    if digests[0] != digests[1] {
        eprintln!(
            "trace-check: same-seed traces differ ({:016x} vs {:016x}) — telemetry is nondeterministic",
            digests[0], digests[1]
        );
        return ExitCode::FAILURE;
    }
    println!("trace-check: same seed, same trace — ok");
    ExitCode::SUCCESS
}

/// Committed digest the parity sweep must reproduce. Regenerate (and
/// review the perf diff!) with `cargo xtask engine-parity --bless`.
const ENGINE_PARITY_GOLDEN: &str = "crates/xtask/golden/engine_parity.digest";

/// Traversal-engine parity gate: the quick uncached uniform-throughput
/// sweep (fig. 8, `NAMDEX_QUICK=1`, seed 42) must produce a CSV that is
/// byte-identical — digest-checked — to the committed golden captured
/// before the engine refactor. Catches any accidental change to the
/// verb sequence or timing of the uncached operation path.
fn engine_parity(bless: bool) -> ExitCode {
    engine_parity_inner(bless, false)
}

/// `mc_fifo` additionally sets `NAMDEX_MC_FIFO=1`, routing every
/// scheduling decision through the explicit FIFO policy — the digest
/// must STILL match the golden, proving the controlled scheduler is
/// bit-identical to the uncontrolled executor.
fn engine_parity_inner(bless: bool, mc_fifo: bool) -> ExitCode {
    let root = repo_root();
    let dir = root.join("target").join("engine-parity");
    // Fresh scratch results dir every run: the sweep caches its rows as
    // CSV, and a stale cache would turn the gate into a self-compare.
    if dir.exists() {
        if let Err(e) = fs::remove_dir_all(&dir) {
            eprintln!("engine-parity: cannot clear {}: {e}", dir.display());
            return ExitCode::FAILURE;
        }
    }
    if let Err(e) = fs::create_dir_all(&dir) {
        eprintln!("engine-parity: cannot create {}: {e}", dir.display());
        return ExitCode::FAILURE;
    }
    let mut cmd = std::process::Command::new("cargo");
    // The golden digest predates the learned design; pin the sweep to
    // the original three so adding designs never invalidates the gate.
    cmd.current_dir(&root)
        .env("NAMDEX_QUICK", "1")
        .env("NAMDEX_DESIGNS", "cg,fg,hybrid")
        .env("NAMDEX_RESULTS_DIR", &dir);
    if mc_fifo {
        cmd.env("NAMDEX_MC_FIFO", "1");
    }
    let status = cmd
        .args([
            "run",
            "--release",
            "-p",
            "bench",
            "--bin",
            "fig08_throughput_unif",
            "--",
            "--seed",
            "42",
        ])
        .status();
    match status {
        Ok(s) if s.success() => {}
        Ok(s) => {
            eprintln!("engine-parity: fig08_throughput_unif exited with {s}");
            return ExitCode::FAILURE;
        }
        Err(e) => {
            eprintln!("engine-parity: failed to launch cargo: {e}");
            return ExitCode::FAILURE;
        }
    }
    let csv = dir.join("fig08_throughput_unif.csv");
    let contents = match fs::read(&csv) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("engine-parity: cannot read {}: {e}", csv.display());
            return ExitCode::FAILURE;
        }
    };
    let digest = format!("{:016x}", fnv1a(&contents));
    let golden_path = root.join(ENGINE_PARITY_GOLDEN);
    if bless {
        if let Err(e) = fs::write(&golden_path, format!("{digest}\n")) {
            eprintln!("engine-parity: cannot write {}: {e}", golden_path.display());
            return ExitCode::FAILURE;
        }
        println!("engine-parity: blessed {digest} -> {ENGINE_PARITY_GOLDEN}");
        return ExitCode::SUCCESS;
    }
    let golden = match fs::read_to_string(&golden_path) {
        Ok(g) => g.trim().to_string(),
        Err(e) => {
            eprintln!(
                "engine-parity: cannot read {} (run with --bless to create): {e}",
                golden_path.display()
            );
            return ExitCode::FAILURE;
        }
    };
    if digest != golden {
        eprintln!(
            "engine-parity: digest {digest} != golden {golden} — the uncached \
             operation path changed behaviour (if intended, re-bless with \
             `cargo xtask engine-parity --bless` and justify in the PR)"
        );
        return ExitCode::FAILURE;
    }
    println!(
        "engine-parity{}: quick fig08 sweep matches golden {golden} — ok",
        if mc_fifo { " (FIFO policy)" } else { "" }
    );
    ExitCode::SUCCESS
}

// ---------------------------------------------------------------------
// perf-smoke: behaviour-pinned speed check for CI.

/// A trajectory point: `(design label, events/sec, sim events)`.
type DesignPoint = (String, f64, u64);

/// Pull `(design label, events/sec, sim events)` triples out of a
/// `BENCH_*.json` trajectory file, keeping the **last** occurrence per
/// design — in the appended-entries format, later entries supersede
/// earlier ones, and a legacy single-snapshot file degenerates to the
/// same thing.
fn bench_design_points(text: &str) -> Vec<DesignPoint> {
    let mut out: Vec<DesignPoint> = Vec::new();
    for line in text.lines() {
        let line = line.replace("\": ", "\":");
        let Some(design) = json_str_field(&line, "design").map(String::from) else {
            continue;
        };
        let Some(eps) = json_num_field(&line, "events_per_sec") else {
            continue;
        };
        let events = json_num_field(&line, "sim_events").unwrap_or(0.0) as u64;
        if let Some(slot) = out.iter_mut().find(|(d, ..)| *d == design) {
            slot.1 = eps;
            slot.2 = events;
        } else {
            out.push((design, eps, events));
        }
    }
    out
}

/// The last `"date"` field in a trajectory file (the entry the most
/// recent run appended), or "unknown".
fn bench_last_date(text: &str) -> String {
    text.lines()
        .rev()
        .find_map(|l| json_str_field(&l.replace("\": ", "\":"), "date").map(String::from))
        .unwrap_or_else(|| "unknown".to_string())
}

/// Run the quick seed-pinned fig08 sweep into `results_dir` (cleared
/// first) with `extra_env` set, and parse its trajectory points.
fn quick_fig08_points(
    root: &Path,
    results_dir: &Path,
    extra_env: &[(&str, &str)],
) -> Result<(Vec<DesignPoint>, String), ExitCode> {
    if results_dir.exists() {
        if let Err(e) = fs::remove_dir_all(results_dir) {
            eprintln!("perf-smoke: cannot clear {}: {e}", results_dir.display());
            return Err(ExitCode::FAILURE);
        }
    }
    if let Err(e) = fs::create_dir_all(results_dir) {
        eprintln!("perf-smoke: cannot create {}: {e}", results_dir.display());
        return Err(ExitCode::FAILURE);
    }
    let mut cmd = std::process::Command::new("cargo");
    cmd.current_dir(root)
        .env("NAMDEX_QUICK", "1")
        .env("NAMDEX_RESULTS_DIR", results_dir);
    for (k, v) in extra_env {
        cmd.env(k, v);
    }
    let status = cmd
        .args([
            "run",
            "--release",
            "-p",
            "bench",
            "--bin",
            "fig08_throughput_unif",
            "--",
            "--seed",
            "42",
        ])
        .status();
    match status {
        Ok(s) if s.success() => {}
        Ok(s) => {
            eprintln!("perf-smoke: fig08_throughput_unif exited with {s}");
            return Err(ExitCode::FAILURE);
        }
        Err(e) => {
            eprintln!("perf-smoke: failed to launch cargo: {e}");
            return Err(ExitCode::FAILURE);
        }
    }
    match fs::read_to_string(results_dir.join("BENCH_fig08.json")) {
        Ok(t) => Ok((bench_design_points(&t), bench_last_date(&t))),
        Err(e) => {
            eprintln!("perf-smoke: quick run produced no BENCH_fig08.json: {e}");
            Err(ExitCode::FAILURE)
        }
    }
}

/// Append `note` to the `"notes": [...]` array of the committed
/// trajectory file at `path` (creating the array after the `"figure"`
/// line when absent). A note that is already present verbatim is not
/// duplicated. Best-effort: a missing or unparseable file only warns —
/// the measurement was already printed.
fn append_bench_note(path: &Path, note: &str) {
    let Ok(text) = fs::read_to_string(path) else {
        println!(
            "perf-smoke: no committed {} — note not recorded",
            path.display()
        );
        return;
    };
    if text.contains(note) {
        return;
    }
    let updated = if let Some(start) = text.find("\"notes\": [") {
        // Existing array: insert before its closing bracket.
        match text[start..].find(']') {
            Some(i) => {
                let close = start + i;
                let body = text[start + "\"notes\": [".len()..close].trim_end();
                let sep = if body.trim().is_empty() { "" } else { "," };
                format!(
                    "{}{sep}\n    \"{note}\"\n  {}",
                    &text[..start + "\"notes\": [".len() + body.len()],
                    &text[close..]
                )
            }
            None => return,
        }
    } else if let Some(line_end) = text
        .find("\"figure\":")
        .and_then(|i| text[i..].find('\n').map(|j| i + j))
    {
        format!(
            "{}\n  \"notes\": [\n    \"{note}\"\n  ],{}",
            &text[..line_end],
            &text[line_end..]
        )
    } else {
        eprintln!(
            "perf-smoke: warning: {} has no figure line; note not recorded",
            path.display()
        );
        return;
    };
    match fs::write(path, updated) {
        Ok(()) => println!("perf-smoke: recorded note in {}", path.display()),
        Err(e) => eprintln!("perf-smoke: warning: cannot write {}: {e}", path.display()),
    }
}

/// `cargo xtask perf-smoke` — the CI perf gate, two steps:
///
/// 1. **Parity first**: re-run the engine-parity digest check, because a
///    speed number from a behaviourally-changed engine is meaningless.
/// 2. **Speed delta, warn-only**: run the quick fig08 sweep (all four
///    designs) into a scratch results dir and compare its trajectory
///    events/sec per design against the last appended entry in
///    `results/BENCH_fig08.json`. Wall-clock speed varies across CI
///    runners, so a slowdown only *warns*; the committed trajectory is
///    re-baselined by deliberate fig08 runs on the dev machine.
/// 3. **Racecheck overhead, warn-only**: the same sweep re-run with
///    `NAMDEX_RACECHECK=1`. The detector must not perturb the
///    simulation (identical per-design sim_events — hard failure if
///    not); its wall-clock cost per design is printed, warned about
///    past 2.5x, and recorded as a note in the committed
///    `results/BENCH_fig08.json` so the overhead has a PR-over-PR
///    trajectory too.
fn perf_smoke() -> ExitCode {
    let code = engine_parity(false);
    if code != ExitCode::SUCCESS {
        return code;
    }
    let root = repo_root();
    let dir = root.join("target").join("perf-smoke");
    let (fresh, _) = match quick_fig08_points(&root, &dir, &[]) {
        Ok(v) => v,
        Err(code) => return code,
    };
    let baseline_path = root.join("results").join("BENCH_fig08.json");
    let mut warned = false;
    match fs::read_to_string(&baseline_path) {
        Ok(t) => {
            for (design, base_eps, _) in &bench_design_points(&t) {
                let Some((_, eps, _)) = fresh.iter().find(|(d, ..)| d == design) else {
                    eprintln!("perf-smoke: warning: {design} missing from fresh run");
                    warned = true;
                    continue;
                };
                let ratio = if *base_eps > 0.0 { eps / base_eps } else { 1.0 };
                println!(
                    "perf-smoke: {design}: {:.2}M ev/s vs baseline {:.2}M ({:+.0}%)",
                    eps / 1e6,
                    base_eps / 1e6,
                    (ratio - 1.0) * 100.0
                );
                if ratio < 0.7 {
                    eprintln!(
                        "perf-smoke: warning: {design} events/sec dropped more than 30% \
                         below the committed trajectory (machine noise, or a real \
                         event-loop regression — check locally)"
                    );
                    warned = true;
                }
            }
        }
        Err(_) => {
            println!(
                "perf-smoke: no committed {} — nothing to compare",
                baseline_path.display()
            );
        }
    }
    // Racecheck overhead: same sweep, detector installed.
    let race_dir = root.join("target").join("perf-smoke-racecheck");
    let (raced, date) = match quick_fig08_points(&root, &race_dir, &[("NAMDEX_RACECHECK", "1")]) {
        Ok(v) => v,
        Err(code) => return code,
    };
    let mut note = format!("racecheck-overhead {date}:");
    for (design, eps, events) in &fresh {
        let Some((_, r_eps, r_events)) = raced.iter().find(|(d, ..)| d == design) else {
            eprintln!("perf-smoke: {design} missing from racecheck run");
            return ExitCode::FAILURE;
        };
        // The detector observes; it must not perturb. Virtual time is
        // deterministic, so this is a hard failure, not a warning.
        if events != r_events {
            eprintln!(
                "perf-smoke: racecheck run changed {design} sim_events \
                 ({events} -> {r_events}) — the detector perturbed the simulation"
            );
            return ExitCode::FAILURE;
        }
        let overhead = if *r_eps > 0.0 { eps / r_eps } else { 1.0 };
        println!(
            "perf-smoke: {design}: racecheck overhead {overhead:.2}x \
             ({:.2}M -> {:.2}M ev/s)",
            eps / 1e6,
            r_eps / 1e6
        );
        if overhead > 2.5 {
            eprintln!(
                "perf-smoke: warning: racecheck slows {design} more than 2.5x \
                 (machine noise, or new per-verb work on the detector hot path)"
            );
            warned = true;
        }
        note.push_str(&format!(" {design} {overhead:.2}x,"));
    }
    append_bench_note(&baseline_path, note.trim_end_matches(','));
    println!(
        "perf-smoke: parity ok, racecheck non-perturbing, speed delta {} (warn-only)",
        if warned { "WARNED" } else { "clean" }
    );
    ExitCode::SUCCESS
}

/// Run `cargo <args...>` from the repo root, failing loudly.
fn cargo_step(label: &str, args: &[&str]) -> Result<(), ExitCode> {
    println!("mc: {label}: cargo {}", args.join(" "));
    match std::process::Command::new("cargo")
        .current_dir(repo_root())
        .args(args)
        .status()
    {
        Ok(s) if s.success() => Ok(()),
        Ok(s) => {
            eprintln!("mc: {label} failed with {s}");
            Err(ExitCode::FAILURE)
        }
        Err(e) => {
            eprintln!("mc: {label} failed to launch cargo: {e}");
            Err(ExitCode::FAILURE)
        }
    }
}

/// `cargo xtask mc [--quick]` — the model-checking gate, three steps:
///
/// 1. **FIFO parity**: the engine-parity sweep re-run with
///    `NAMDEX_MC_FIFO=1` must still match the committed golden digest —
///    the controlled scheduler's deterministic-FIFO policy is
///    bit-identical to the uncontrolled executor.
/// 2. **Clean matrix**: `mc_explore explore` over 4 designs ×
///    {no-fault, chaos} × {random-walk, PCT} (+ bounded DFS) must find
///    zero violations.
/// 3. **Mutation hunts**: with `--features mutations`, every seeded bug
///    — the two re-introduced historical ones (CG duplicate insert on
///    lost-response retry; lease break without epoch bump) plus the four
///    env-gated race mutations (dropped descent re-check, skipped cache
///    fence, skipped mispredict re-read, unlock-before-write reorder) —
///    must be detected within the budget, each leaving a replayable
///    minimized counterexample.
fn mc(quick: bool) -> ExitCode {
    let code = engine_parity_inner(false, true);
    if code != ExitCode::SUCCESS {
        return code;
    }
    let mut explore = vec!["run", "--release", "-p", "mc", "--bin", "mc_explore", "--"];
    explore.push("explore");
    if quick {
        explore.push("--quick");
    }
    if let Err(code) = cargo_step("clean explore matrix", &explore) {
        return code;
    }
    let mut hunt = vec![
        "run",
        "--release",
        "-p",
        "mc",
        "--features",
        "mutations",
        "--bin",
        "mc_explore",
        "--",
        "mutation",
    ];
    if quick {
        hunt.push("--quick");
    }
    if let Err(code) = cargo_step("mutation hunts", &hunt) {
        return code;
    }
    println!("mc: FIFO parity + clean matrix + all mutation hunts — ok");
    ExitCode::SUCCESS
}

/// `cargo xtask protolint [--emit-docs]` — the protocol-flow static
/// analyzer: lock/verb/deadline discipline over the hot paths, the
/// fixture corpus, and the generated critical-section doc blocks.
fn protolint_gate(emit_docs: bool) -> ExitCode {
    let mut run = vec![
        "run",
        "-q",
        "-p",
        "protolint",
        "--bin",
        "protolint",
        "--",
        "check",
    ];
    if emit_docs {
        run.push("--emit-docs");
    }
    if let Err(code) = cargo_step("protolint", &run) {
        return code;
    }
    ExitCode::SUCCESS
}

/// `cargo xtask verb-model` — cross-check the static verbs-per-op cost
/// table against telemetry-measured verb counts from a quick sweep of
/// all three designs.
fn verb_model() -> ExitCode {
    let run = [
        "run",
        "--release",
        "-q",
        "-p",
        "protolint",
        "--bin",
        "verb_model_check",
    ];
    if let Err(code) = cargo_step("verb-model", &run) {
        return code;
    }
    ExitCode::SUCCESS
}

/// `cargo xtask racecheck` — the dynamic race-detector gate: the
/// detector's own unit tests, the clean-matrix integration suite
/// (every design × fault mode runs race-free with the detector
/// installed, and seeded protocol races are caught), and the
/// observer-ordering regression the detector's clock model depends on.
fn racecheck_gate() -> ExitCode {
    if let Err(code) = cargo_step("racecheck unit tests", &["test", "-p", "racecheck"]) {
        return code;
    }
    if let Err(code) = cargo_step(
        "racecheck clean matrix + seeded races",
        &["test", "--release", "--test", "racecheck"],
    ) {
        return code;
    }
    if let Err(code) = cargo_step(
        "observer-order regression",
        &["test", "--release", "--test", "observer_order"],
    ) {
        return code;
    }
    println!("racecheck: unit + clean matrix + observer order — ok");
    ExitCode::SUCCESS
}

/// `cargo xtask check-all` — umbrella over every static and dynamic
/// correctness gate that does not need a full CI matrix: determinism
/// lint, protolint, verb-cost model, trace determinism, engine parity,
/// and the race-detector gate. One command for "is this tree sound".
fn check_all() -> ExitCode {
    type Gate = fn() -> ExitCode;
    let steps: [(&str, Gate); 6] = [
        ("lint", lint),
        ("protolint", || protolint_gate(false)),
        ("verb-model", verb_model),
        ("trace-check", trace_check),
        ("engine-parity", || engine_parity(false)),
        ("racecheck", racecheck_gate),
    ];
    for (name, step) in steps {
        println!("check-all: {name}");
        let code = step();
        if code != ExitCode::SUCCESS {
            eprintln!("check-all: {name} FAILED");
            return code;
        }
    }
    println!("check-all: all gates passed");
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") if args.len() == 1 => lint(),
        Some("lint") if args[1] == "--self-test" => self_test(),
        Some("trace-check") if args.len() == 1 => trace_check(),
        Some("engine-parity") if args.len() == 1 => engine_parity(false),
        Some("engine-parity") if args[1] == "--bless" => engine_parity(true),
        Some("mc") if args.len() == 1 => mc(false),
        Some("mc") if args[1] == "--quick" => mc(true),
        Some("protolint") if args.len() == 1 => protolint_gate(false),
        Some("protolint") if args[1] == "--emit-docs" => protolint_gate(true),
        Some("verb-model") if args.len() == 1 => verb_model(),
        Some("perf-smoke") if args.len() == 1 => perf_smoke(),
        Some("racecheck") if args.len() == 1 => racecheck_gate(),
        Some("check-all") if args.len() == 1 => check_all(),
        _ => {
            eprintln!(
                "usage: cargo xtask <lint [--self-test] | trace-check | engine-parity [--bless] | mc [--quick] | protolint [--emit-docs] | verb-model | perf-smoke | racecheck | check-all>"
            );
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_rule_fires_on_its_seeded_violation() {
        for (snippet, want) in SEEDED {
            let mut out = Vec::new();
            scan_source(Path::new("t.rs"), snippet, &mut out);
            assert!(
                out.iter().any(|f| f.rule == *want),
                "rule {want} missed: {snippet}"
            );
        }
    }

    #[test]
    fn every_rule_has_a_seeded_violation() {
        for rule in RULES {
            assert!(
                SEEDED.iter().any(|(_, want)| want == &rule.id),
                "rule {} lacks a self-test seed",
                rule.id
            );
        }
    }

    #[test]
    fn allow_marker_suppresses_only_its_rule() {
        let mut out = Vec::new();
        scan_source(
            Path::new("t.rs"),
            "let m = HashMap::new(); // xtask: allow(hash-order-map)",
            &mut out,
        );
        assert!(out.is_empty());
        // Wrong id does not suppress.
        let mut out = Vec::new();
        scan_source(
            Path::new("t.rs"),
            "let m = HashMap::new(); // xtask: allow(wall-clock-instant)",
            &mut out,
        );
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn comments_and_clean_code_pass() {
        let mut out = Vec::new();
        scan_source(
            Path::new("t.rs"),
            "// HashMap would be wrong here; BTreeMap keeps iteration stable\n\
             let m: std::collections::BTreeMap<u64, u64> = Default::default();\n\
             let now = sim.now();\n",
            &mut out,
        );
        assert!(out.is_empty(), "{:?}", out.first().map(|f| f.to_string()));
    }

    #[test]
    fn trace_validator_accepts_well_formed_trace() {
        let trace = "[\n\
            {\"name\":\"process_name\",\"cat\":\"__metadata\",\"ph\":\"M\",\"ts\":0.000,\"pid\":0,\"tid\":0,\"args\":{\"name\":\"x\"}},\n\
            {\"name\":\"lookup\",\"cat\":\"op\",\"ph\":\"B\",\"ts\":1.000,\"pid\":0,\"tid\":3},\n\
            {\"name\":\"read\",\"cat\":\"verb\",\"ph\":\"X\",\"ts\":1.100,\"dur\":0.500,\"pid\":0,\"tid\":3},\n\
            {\"name\":\"crash_server(1)\",\"cat\":\"fault\",\"ph\":\"i\",\"ts\":1.500,\"pid\":0,\"tid\":0,\"s\":\"g\"},\n\
            {\"name\":\"lookup\",\"cat\":\"op\",\"ph\":\"E\",\"ts\":2.000,\"pid\":0,\"tid\":3},\n\
            {\"name\":\"insert\",\"cat\":\"op\",\"ph\":\"B\",\"ts\":3.000,\"pid\":0,\"tid\":3}\n\
            ]";
        // Trailing open B is legal: the simulation stops mid-operation.
        assert_eq!(validate_trace(trace), Ok(()));
    }

    #[test]
    fn trace_validator_rejects_defects() {
        let wrap = |events: &str| format!("[\n{events}\n]");
        // Unmatched E.
        let bad = wrap(
            "{\"name\":\"lookup\",\"cat\":\"op\",\"ph\":\"E\",\"ts\":1.000,\"pid\":0,\"tid\":3}",
        );
        assert!(validate_trace(&bad).unwrap_err().contains("no open B"));
        // Mismatched close.
        let bad = wrap(
            "{\"name\":\"lookup\",\"cat\":\"op\",\"ph\":\"B\",\"ts\":1.000,\"pid\":0,\"tid\":3},\n\
             {\"name\":\"insert\",\"cat\":\"op\",\"ph\":\"E\",\"ts\":2.000,\"pid\":0,\"tid\":3}",
        );
        assert!(validate_trace(&bad).unwrap_err().contains("closes open B"));
        // Backwards time on duration events.
        let bad = wrap(
            "{\"name\":\"a\",\"cat\":\"op\",\"ph\":\"B\",\"ts\":5.000,\"pid\":0,\"tid\":1},\n\
             {\"name\":\"b\",\"cat\":\"op\",\"ph\":\"B\",\"ts\":4.000,\"pid\":0,\"tid\":2}",
        );
        assert!(validate_trace(&bad).unwrap_err().contains("backwards"));
        // Missing field.
        let bad = wrap("{\"name\":\"a\",\"cat\":\"op\",\"ph\":\"B\",\"ts\":1.000,\"tid\":1}");
        assert!(validate_trace(&bad).unwrap_err().contains("pid"));
        // Empty array.
        assert!(validate_trace("[\n]").is_err());
    }

    #[test]
    fn bench_points_keep_last_entry_per_design() {
        // Appended-entries shape: the same design appears once per entry;
        // the later (newer) number must win.
        let text = "{\n  \"figure\": \"fig08\",\n  \"entries\": [\n\
            {\"date\": \"2026-07-01\", \"designs\": [\n\
            {\"design\": \"Hybrid\", \"ops_per_sec\": 1.0, \"sim_events\": 9, \"events_per_sec\": 1000000},\n\
            {\"design\": \"Learned\", \"ops_per_sec\": 1.0, \"sim_events\": 9, \"events_per_sec\": 1500000}]},\n\
            {\"date\": \"2026-08-01\", \"designs\": [\n\
            {\"design\": \"Hybrid\", \"ops_per_sec\": 1.0, \"sim_events\": 9, \"events_per_sec\": 4000000}]}\n\
            ]\n}\n";
        let pts = bench_design_points(text);
        assert_eq!(pts.len(), 2);
        assert_eq!(pts[0], ("Hybrid".to_string(), 4_000_000.0, 9));
        assert_eq!(pts[1], ("Learned".to_string(), 1_500_000.0, 9));
        // Legacy single-snapshot files parse the same way.
        let legacy = "{\"designs\": [\n\
            {\"design\": \"Coarse-Grained\", \"ops_per_sec\": 2.0, \"sim_events\": 3, \"events_per_sec\": 2158651}\n]}";
        assert_eq!(
            bench_design_points(legacy),
            vec![("Coarse-Grained".to_string(), 2_158_651.0, 3)]
        );
    }

    #[test]
    fn fnv1a_is_stable() {
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), fnv1a(b"a"));
        assert_ne!(fnv1a(b"a"), fnv1a(b"b"));
    }

    #[test]
    fn json_field_extraction() {
        let line = "{\"name\":\"rpc\",\"ph\":\"X\",\"ts\":12.345,\"pid\":0,\"tid\":7}";
        assert_eq!(json_str_field(line, "name"), Some("rpc"));
        assert_eq!(json_str_field(line, "ph"), Some("X"));
        assert_eq!(json_num_field(line, "ts"), Some(12.345));
        assert_eq!(json_num_field(line, "tid"), Some(7.0));
        assert_eq!(json_num_field(line, "dur"), None);
    }

    #[test]
    fn line_numbers_are_one_based_and_exact() {
        let mut out = Vec::new();
        scan_source(
            Path::new("t.rs"),
            "fn ok() {}\nlet t = Instant::now();\n",
            &mut out,
        );
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].line, 2);
        assert_eq!(out[0].rule, "wall-clock-instant");
    }
}
