//! Property-based tests of the B-link page format and the local tree.

use blink::layout::{PageLayout, Ptr, KEY_MAX};
use blink::node::{LeafNodeMut, LeafNodeRef};
use blink::LocalTree;
use proptest::prelude::*;
use std::collections::BTreeMap;

proptest! {
    /// Sorted order and retrievability hold for any insertion order.
    #[test]
    fn leaf_insert_any_order(keys in prop::collection::vec(0u64..10_000, 1..50)) {
        let layout = PageLayout::default();
        let mut page = layout.alloc_page();
        let mut leaf = LeafNodeMut::init(&mut page, KEY_MAX, Ptr::NULL, Ptr::NULL);
        for (i, &k) in keys.iter().enumerate() {
            leaf.insert(k, i as u64).unwrap();
        }
        let view = LeafNodeRef::new(&page);
        prop_assert_eq!(view.count(), keys.len());
        // Sorted.
        for i in 1..view.count() {
            prop_assert!(view.entry(i - 1).0 <= view.entry(i).0);
        }
        // Every key findable.
        for &k in &keys {
            prop_assert!(view.get(k).is_some());
        }
    }

    /// Split preserves the multiset of entries and the key ordering
    /// between halves, for any contents.
    #[test]
    fn leaf_split_preserves_entries(
        mut keys in prop::collection::vec(0u64..1_000, 4..60),
    ) {
        // Need at least two distinct keys to split.
        keys.sort_unstable();
        prop_assume!(keys.first() != keys.last());

        let layout = PageLayout::default();
        let mut page = layout.alloc_page();
        let mut leaf = LeafNodeMut::init(&mut page, KEY_MAX, Ptr::NULL, Ptr::NULL);
        for (i, &k) in keys.iter().enumerate() {
            leaf.push(k, i as u64).unwrap();
        }
        let mut right = layout.alloc_page();
        let sep = LeafNodeMut::new(&mut page).split_into(&mut right, Ptr(1), Ptr(2));

        let l = LeafNodeRef::new(&page);
        let r = LeafNodeRef::new(&right);
        prop_assert_eq!(l.count() + r.count(), keys.len());
        prop_assert!(l.count() >= 1 && r.count() >= 1);
        // All left keys <= sep < all right keys.
        for i in 0..l.count() {
            prop_assert!(l.entry(i).0 <= sep);
        }
        for i in 0..r.count() {
            prop_assert!(r.entry(i).0 > sep);
        }
        prop_assert_eq!(l.high_key(), sep);
        prop_assert_eq!(l.right_sibling(), Ptr(2));
        prop_assert_eq!(r.left_sibling(), Ptr(1));
    }

    /// The local tree agrees with a BTreeMap oracle across arbitrary
    /// insert/delete/lookup/range scripts, at any page size, and its
    /// structural invariants survive.
    #[test]
    fn local_tree_matches_oracle(
        page_size in 136usize..600,
        ops in prop::collection::vec((0u8..4, 0u64..3_000, 0u64..1_000_000), 1..300),
    ) {
        let layout = PageLayout::new(page_size);
        let mut tree = LocalTree::new(layout);
        let mut oracle: BTreeMap<u64, u64> = BTreeMap::new();
        for (op, key, val) in ops {
            match op {
                0 => {
                    if let std::collections::btree_map::Entry::Vacant(e) = oracle.entry(key) {
                        let v = val % blink::MAX_VALUE;
                        e.insert(v);
                        tree.insert(key, v);
                    }
                }
                1 => {
                    let expected = oracle.remove(&key).is_some();
                    let (got, _) = tree.delete(key);
                    prop_assert_eq!(got, expected);
                }
                2 => {
                    let (got, _) = tree.get(key);
                    prop_assert_eq!(got, oracle.get(&key).copied());
                }
                _ => {
                    let hi = key + 200;
                    let mut out = Vec::new();
                    tree.range(key, hi, &mut out);
                    let want: Vec<(u64, u64)> =
                        oracle.range(key..=hi).map(|(&k, &v)| (k, v)).collect();
                    prop_assert_eq!(out, want);
                }
            }
        }
        tree.check_invariants();
        prop_assert_eq!(tree.len_live(), oracle.len());
    }

    /// Bulk load is equivalent to repeated inserts for any sorted input
    /// and fill factor.
    #[test]
    fn bulk_load_equivalent_to_inserts(
        mut keys in prop::collection::vec(0u64..100_000, 1..400),
        fill in 0.3f64..1.0,
    ) {
        keys.sort_unstable();
        keys.dedup();
        let layout = PageLayout::new(264);
        let bulk = LocalTree::bulk_load(layout, keys.iter().map(|&k| (k, k + 1)), fill);
        bulk.check_invariants();
        let mut incr = LocalTree::new(layout);
        for &k in &keys {
            incr.insert(k, k + 1);
        }
        incr.check_invariants();
        for &k in &keys {
            prop_assert_eq!(bulk.get(k).0, Some(k + 1));
            prop_assert_eq!(incr.get(k).0, Some(k + 1));
        }
        prop_assert_eq!(bulk.len_live(), incr.len_live());
    }

    /// GC compaction never loses live entries, for any delete pattern.
    #[test]
    fn gc_preserves_live_entries(
        n in 10u64..500,
        delete_mask in prop::collection::vec(any::<bool>(), 500),
    ) {
        let layout = PageLayout::new(264);
        let mut tree = LocalTree::bulk_load(layout, (0..n).map(|i| (i, i * 2)), 0.7);
        let mut live = 0u64;
        for i in 0..n {
            if delete_mask[i as usize] {
                tree.delete(i);
            } else {
                live += 1;
            }
        }
        let reclaimed = tree.gc_compact();
        prop_assert_eq!(reclaimed as u64 + live, n);
        tree.check_invariants();
        for i in 0..n {
            let expect = if delete_mask[i as usize] { None } else { Some(i * 2) };
            prop_assert_eq!(tree.get(i).0, expect);
        }
    }
}
