//! Binary page layout shared by every node type.
//!
//! A page is a fixed-size byte array (default 1024 B, the paper's `P`).
//! All nodes share a 40-byte header:
//!
//! ```text
//! offset  size  field
//! 0       8     version_lock   (bit 0 = lock bit, rest = version counter)
//! 8       1     kind           (0 = inner, 1 = leaf, 2 = head)
//! 9       1     level          (0 = leaf level)
//! 10      2     count          (number of entries)
//! 12      4     padding
//! 16      8     high_key       (inclusive upper bound; KEY_MAX = +inf)
//! 24      8     right_sibling  (Ptr; 0 = null)
//! 32      8     left_sibling   (Ptr; 0 = null)
//! 40      ...   entries
//! ```
//!
//! Inner and leaf entries are 16 bytes: `(key: u64, word: u64)` where the
//! word is a child [`Ptr`] (inner) or a value with the top bit reserved as
//! the *delete bit* (leaf). Head-node entries are 8-byte [`Ptr`]s.
//!
//! The `(version, lock-bit)` word implements the paper's optimistic lock
//! coupling: an even word is unlocked; CAS to `word | 1` locks; the unlock
//! fetch-and-add of 1 clears the bit and bumps the version in one atomic
//! step (§3.2, Listing 3/4).

/// Index key type. The full `u64` range is usable except `u64::MAX`,
/// reserved as the +infinity high-key sentinel.
pub type Key = u64;

/// Leaf value type; only the low 63 bits are usable (see [`MAX_VALUE`]).
pub type Value = u64;

/// Largest storable value: the value word's top bit is the delete bit.
pub const MAX_VALUE: Value = (1 << 63) - 1;

/// High-key sentinel meaning "+infinity" (rightmost node on its level).
pub const KEY_MAX: Key = u64::MAX;

/// Delete bit within a leaf entry's value word.
pub(crate) const DELETE_BIT: u64 = 1 << 63;

/// Opaque node pointer stored in pages. The encoding is owned by the
/// caller (a local page id, or an RDMA remote pointer); `0` is null.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default, PartialOrd, Ord)]
pub struct Ptr(pub u64);

impl Ptr {
    /// The null pointer.
    pub const NULL: Ptr = Ptr(0);

    /// Whether this pointer is null.
    pub fn is_null(self) -> bool {
        self.0 == 0
    }

    /// Raw bits.
    pub fn raw(self) -> u64 {
        self.0
    }
}

/// Header field offsets.
pub(crate) mod off {
    pub const VERSION_LOCK: usize = 0;
    pub const KIND: usize = 8;
    pub const LEVEL: usize = 9;
    pub const COUNT: usize = 10;
    pub const HIGH_KEY: usize = 16;
    pub const RIGHT_SIBLING: usize = 24;
    pub const LEFT_SIBLING: usize = 32;
    pub const ENTRIES: usize = 40;
}

/// Size of the common node header in bytes.
pub const HEADER_SIZE: usize = off::ENTRIES;

/// Size of an inner/leaf entry in bytes (8-byte key + 8-byte word).
pub const ENTRY_SIZE: usize = 16;

/// Size of a head-node entry in bytes (one remote pointer).
pub const HEAD_ENTRY_SIZE: usize = 8;

/// Describes page geometry: entry capacities for a given page size.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PageLayout {
    page_size: usize,
}

impl PageLayout {
    /// The paper's default page size `P = 1024` bytes.
    pub const DEFAULT_PAGE_SIZE: usize = 1024;

    /// Create a layout. `page_size` must fit the header plus at least two
    /// entries (a node must be splittable).
    pub fn new(page_size: usize) -> Self {
        assert!(
            page_size >= HEADER_SIZE + 2 * ENTRY_SIZE,
            "page size {page_size} too small"
        );
        PageLayout { page_size }
    }

    /// Page size in bytes.
    pub fn page_size(self) -> usize {
        self.page_size
    }

    /// Max entries per leaf or inner node (the paper's fanout `M`).
    pub fn entry_capacity(self) -> usize {
        (self.page_size - HEADER_SIZE) / ENTRY_SIZE
    }

    /// Max pointers per head node.
    pub fn head_capacity(self) -> usize {
        (self.page_size - HEADER_SIZE) / HEAD_ENTRY_SIZE
    }

    /// Allocate a zeroed page buffer of this size.
    pub fn alloc_page(self) -> Box<[u8]> {
        vec![0u8; self.page_size].into_boxed_slice()
    }
}

impl Default for PageLayout {
    fn default() -> Self {
        PageLayout::new(Self::DEFAULT_PAGE_SIZE)
    }
}

/// Helpers for the `(version, lock-bit)` word.
///
/// Layout of the 8-byte word at page offset 0:
///
/// ```text
/// bit  0      : lock bit
/// bits 1..=47 : version counter (bumped by every unlock / lease break)
/// bits 48..=55: owner id of the current/last lock holder (client id & 0xff)
/// bits 56..=63: lease epoch, bumped every time an orphaned lock is broken
/// ```
///
/// The classic OLC cycle `v --CAS--> locked_by(v, me) --FAA(+1)--> v'`
/// still works: the FAA of 1 clears the lock bit and carries into the
/// version counter, leaving the (now stale) owner bits untouched. Stale
/// owner bits in an *unlocked* word are harmless — the protocol always
/// compares full words, and the next acquire CAS overwrites the owner
/// field. The lease epoch lets recovery distinguish "holder unlocked and
/// someone re-locked" from "contender broke my orphaned lease".
pub mod lock_word {
    /// Bits holding the version counter and the lock bit.
    pub const VERSION_LOCK_MASK: u64 = (1 << OWNER_SHIFT) - 1;
    /// Shift of the owner-id field.
    pub const OWNER_SHIFT: u32 = 48;
    /// Bits holding the owner id.
    pub const OWNER_MASK: u64 = 0xff << OWNER_SHIFT;
    /// Shift of the lease-epoch field.
    pub const EPOCH_SHIFT: u32 = 56;
    /// Bits holding the lease epoch.
    pub const EPOCH_MASK: u64 = 0xff << EPOCH_SHIFT;

    /// Whether the lock bit is set.
    pub fn is_locked(word: u64) -> bool {
        word & 1 == 1
    }

    /// The word with the lock bit set (the CAS target when locking
    /// without recording an owner — legacy shape, owner field untouched).
    pub fn locked(word: u64) -> u64 {
        word | 1
    }

    /// The word with the lock bit set and `owner` recorded (the CAS
    /// target when locking with lease support).
    pub fn locked_by(word: u64, owner: u64) -> u64 {
        (word & !OWNER_MASK) | ((owner & 0xff) << OWNER_SHIFT) | 1
    }

    /// The owner-id field (only meaningful while the word is locked).
    pub fn owner_of(word: u64) -> u64 {
        (word & OWNER_MASK) >> OWNER_SHIFT
    }

    /// The lease-epoch field.
    pub fn epoch_of(word: u64) -> u64 {
        (word & EPOCH_MASK) >> EPOCH_SHIFT
    }

    /// The version counter (bits 1..=47).
    pub fn version_of(word: u64) -> u64 {
        (word & VERSION_LOCK_MASK) >> 1
    }

    /// The word after the unlocking fetch-and-add of 1: the lock bit is
    /// cleared and the carry bumps the version counter (§3.2).
    pub fn unlocked_next(word: u64) -> u64 {
        debug_assert!(is_locked(word), "unlocking an unlocked word");
        word + 1
    }

    /// The word after a contender breaks an expired lease via CAS:
    /// lock bit cleared, version bumped (so optimistic readers restart),
    /// owner cleared, lease epoch bumped.
    pub fn break_lease(word: u64) -> u64 {
        debug_assert!(is_locked(word), "breaking an unlocked word");
        let version_lock = ((word & VERSION_LOCK_MASK) + 1) & VERSION_LOCK_MASK;
        let epoch = (epoch_of(word) + 1) & 0xff;
        version_lock | (epoch << EPOCH_SHIFT)
    }

    /// Whether a CAS `expected -> new` has the shape of a lock acquire:
    /// unlocked to locked, version and epoch unchanged, any owner.
    pub fn is_acquire(expected: u64, new: u64) -> bool {
        !is_locked(expected)
            && is_locked(new)
            && (new & VERSION_LOCK_MASK) == (expected & VERSION_LOCK_MASK) | 1
            && (new & EPOCH_MASK) == expected & EPOCH_MASK
    }

    /// Whether a CAS `expected -> new` has the shape of a lease break.
    pub fn is_lease_break(expected: u64, new: u64) -> bool {
        is_locked(expected) && new == break_lease(expected)
    }
}

// ---- little-endian field access -------------------------------------------

pub(crate) fn read_u64(page: &[u8], off: usize) -> u64 {
    u64::from_le_bytes(page[off..off + 8].try_into().expect("8-byte field"))
}

pub(crate) fn write_u64(page: &mut [u8], off: usize, v: u64) {
    page[off..off + 8].copy_from_slice(&v.to_le_bytes());
}

pub(crate) fn read_u16(page: &[u8], off: usize) -> u16 {
    u16::from_le_bytes(page[off..off + 2].try_into().expect("2-byte field"))
}

pub(crate) fn write_u16(page: &mut [u8], off: usize, v: u16) {
    page[off..off + 2].copy_from_slice(&v.to_le_bytes());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_layout_matches_paper() {
        let l = PageLayout::default();
        assert_eq!(l.page_size(), 1024);
        // (1024 - 40) / 16 = 61 entries; same regime as the paper's
        // M = P/(3K) = 42 (heights differ by < 1 level at realistic N).
        assert_eq!(l.entry_capacity(), 61);
        assert_eq!(l.head_capacity(), 123);
    }

    #[test]
    #[should_panic(expected = "too small")]
    fn tiny_page_rejected() {
        let _ = PageLayout::new(64);
    }

    #[test]
    fn lock_word_cycle() {
        let v0 = 0u64;
        assert!(!lock_word::is_locked(v0));
        let locked = lock_word::locked(v0);
        assert!(lock_word::is_locked(locked));
        let v1 = lock_word::unlocked_next(locked);
        assert!(!lock_word::is_locked(v1));
        assert!(v1 > v0, "version must advance across a lock cycle");
    }

    #[test]
    fn lock_word_owner_encoding() {
        let v0 = 6u64; // version 3, unlocked
        let locked = lock_word::locked_by(v0, 0x2a);
        assert!(lock_word::is_locked(locked));
        assert_eq!(lock_word::owner_of(locked), 0x2a);
        assert_eq!(lock_word::version_of(locked), 3);
        assert!(lock_word::is_acquire(v0, locked));
        // The FAA(+1) unlock clears the lock bit, bumps the version and
        // leaves the stale owner bits behind.
        let v1 = lock_word::unlocked_next(locked);
        assert!(!lock_word::is_locked(v1));
        assert_eq!(lock_word::version_of(v1), 4);
        assert_eq!(lock_word::owner_of(v1), 0x2a);
        // Re-acquiring overwrites the stale owner.
        let relocked = lock_word::locked_by(v1, 0x07);
        assert_eq!(lock_word::owner_of(relocked), 0x07);
        assert!(lock_word::is_acquire(v1, relocked));
    }

    #[test]
    fn lock_word_lease_break() {
        let locked = lock_word::locked_by(2, 0x11);
        let broken = lock_word::break_lease(locked);
        assert!(!lock_word::is_locked(broken));
        assert_eq!(lock_word::version_of(broken), 2, "version bumped");
        assert_eq!(lock_word::owner_of(broken), 0, "owner cleared");
        assert_eq!(lock_word::epoch_of(broken), 1, "epoch bumped");
        assert!(lock_word::is_lease_break(locked, broken));
        assert!(!lock_word::is_lease_break(locked, locked));
        assert!(!lock_word::is_acquire(locked, broken));
        // A plain unlock is not a lease break.
        assert!(!lock_word::is_lease_break(
            locked,
            lock_word::unlocked_next(locked)
        ));
    }

    #[test]
    fn ptr_null() {
        assert!(Ptr::NULL.is_null());
        assert!(!Ptr(7).is_null());
        assert_eq!(Ptr(7).raw(), 7);
    }

    #[test]
    fn field_round_trip() {
        let mut page = vec![0u8; 64];
        write_u64(&mut page, 16, 0xdead_beef_cafe_f00d);
        assert_eq!(read_u64(&page, 16), 0xdead_beef_cafe_f00d);
        write_u16(&mut page, 10, 999);
        assert_eq!(read_u16(&page, 10), 999);
    }

    #[test]
    fn alloc_page_zeroed() {
        let l = PageLayout::default();
        let page = l.alloc_page();
        assert_eq!(page.len(), 1024);
        assert!(page.iter().all(|&b| b == 0));
    }
}
