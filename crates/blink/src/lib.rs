#![warn(missing_docs)]

//! # blink — B-link tree pages and local trees
//!
//! This crate implements the index structure of the paper: a B-link tree
//! (Lehman & Yao) adapted for RDMA access, following §2.2–§5 of
//! *"Designing Distributed Tree-based Index Structures for Fast
//! RDMA-capable Networks"* (SIGMOD '19).
//!
//! Three layers:
//!
//! * [`layout`] — the fixed binary page format: every node starts with an
//!   8-byte `(version, lock-bit)` word, carries a high key and sibling
//!   pointers, and stores sorted `(key, value)` entries. Pages are plain
//!   byte arrays so they can live in an RDMA-registered memory pool and be
//!   fetched with one-sided READs.
//! * [`node`] — node-level operations on page bytes: binary search,
//!   sorted insert, Lehman-Yao splits, tombstone deletes, head-node
//!   (prefetch) pages.
//! * [`local`] — a complete single-machine B-link tree over an owned page
//!   pool. Memory servers in the coarse-grained and hybrid designs run
//!   this tree locally when serving two-sided RPCs; it also reports
//!   [`local::WorkStats`] so the simulator can charge CPU time
//!   proportional to real work.
//!
//! Keys are `u64`. Values are 63-bit (`value <= MAX_VALUE`): the top bit
//! of the value word is the per-entry *delete bit* the paper uses for
//! tombstone deletes reclaimed by epoch-based garbage collection.

pub mod layout;
pub mod local;
pub mod node;

pub use layout::{Key, PageLayout, Ptr, Value, KEY_MAX, MAX_VALUE};
pub use local::{LocalTree, WorkStats};
pub use node::{InnerNodeMut, InnerNodeRef, LeafNodeMut, LeafNodeRef, NodeKind};
