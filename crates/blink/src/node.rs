//! Node-level operations on raw page bytes.
//!
//! Views decode a page in place: [`LeafNodeRef`]/[`InnerNodeRef`] for
//! reading, [`LeafNodeMut`]/[`InnerNodeMut`] for mutation, plus
//! [`HeadNodeRef`]/[`HeadNodeMut`] for the fine-grained design's prefetch
//! head nodes (§4.3). Working on bytes (not structs) is what lets the same
//! code serve local trees and pages fetched over one-sided RDMA READs.
//!
//! ## Key ordering invariants
//!
//! * Entries in a node are sorted by key (duplicates adjacent).
//! * A node holds keys `k` with `low < k <= high_key` where `low` is the
//!   left neighbour's high key; `high_key == KEY_MAX` means rightmost.
//! * Inner entry `(sep, child)` means `child` covers keys in
//!   `(previous sep, sep]`; the rightmost inner node's last separator is
//!   `KEY_MAX`, so a descent never falls off the end of the tree.
//! * Searches that find `key > high_key` must chase `right_sibling`
//!   (the Lehman-Yao correction for in-flight splits).

use crate::layout::{
    off, read_u16, read_u64, write_u16, write_u64, Key, Ptr, Value, DELETE_BIT, ENTRY_SIZE,
    HEAD_ENTRY_SIZE, KEY_MAX, MAX_VALUE,
};

/// Discriminates page types.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum NodeKind {
    /// Inner node: `(separator, child pointer)` entries.
    Inner = 0,
    /// Leaf node: `(key, value)` entries with per-entry delete bits.
    Leaf = 1,
    /// Head node: an array of leaf pointers used for range-scan prefetch.
    Head = 2,
}

/// Error returned when an insert does not fit; the caller must split.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct NodeFull;

impl std::fmt::Display for NodeFull {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "node full: split required")
    }
}

impl std::error::Error for NodeFull {}

/// Decode the node kind of a raw page.
pub fn kind_of(page: &[u8]) -> NodeKind {
    match page[off::KIND] {
        0 => NodeKind::Inner,
        1 => NodeKind::Leaf,
        2 => NodeKind::Head,
        k => panic!("corrupt page: unknown node kind {k}"),
    }
}

/// Read the `(version, lock-bit)` word of a raw page.
pub fn version_lock_of(page: &[u8]) -> u64 {
    read_u64(page, off::VERSION_LOCK)
}

/// Write the `(version, lock-bit)` word of a raw page.
pub fn set_version_lock(page: &mut [u8], word: u64) {
    write_u64(page, off::VERSION_LOCK, word);
}

/// Tree level of a raw page (0 = leaf level).
pub fn level_of(page: &[u8]) -> u8 {
    page[off::LEVEL]
}

fn entry_capacity(page: &[u8]) -> usize {
    (page.len() - off::ENTRIES) / ENTRY_SIZE
}

fn entry_key(page: &[u8], i: usize) -> Key {
    read_u64(page, off::ENTRIES + i * ENTRY_SIZE)
}

fn entry_word(page: &[u8], i: usize) -> u64 {
    read_u64(page, off::ENTRIES + i * ENTRY_SIZE + 8)
}

fn set_entry(page: &mut [u8], i: usize, key: Key, word: u64) {
    write_u64(page, off::ENTRIES + i * ENTRY_SIZE, key);
    write_u64(page, off::ENTRIES + i * ENTRY_SIZE + 8, word);
}

fn count_of(page: &[u8]) -> usize {
    read_u16(page, off::COUNT) as usize
}

fn set_count(page: &mut [u8], n: usize) {
    write_u16(page, off::COUNT, u16::try_from(n).expect("count fits u16"));
}

/// First index whose key is `>= key` (sorted entries).
fn lower_bound(page: &[u8], key: Key) -> usize {
    let mut lo = 0usize;
    let mut hi = count_of(page);
    while lo < hi {
        let mid = (lo + hi) / 2;
        if entry_key(page, mid) < key {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    lo
}

/// First index whose key is `> key` (sorted entries).
fn upper_bound(page: &[u8], key: Key) -> usize {
    let mut lo = 0usize;
    let mut hi = count_of(page);
    while lo < hi {
        let mid = (lo + hi) / 2;
        if entry_key(page, mid) <= key {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    lo
}

/// Shift entries `[i, count)` one slot right and insert at `i`.
fn insert_at(page: &mut [u8], i: usize, key: Key, word: u64) {
    let n = count_of(page);
    let base = off::ENTRIES;
    page.copy_within(
        base + i * ENTRY_SIZE..base + n * ENTRY_SIZE,
        base + (i + 1) * ENTRY_SIZE,
    );
    set_entry(page, i, key, word);
    set_count(page, n + 1);
}

/// Pick a split index near the middle that falls on a key boundary, so no
/// key value spans both halves (required because separators are plain
/// keys).
///
/// Panics if every entry holds the same key: a node full of one key
/// cannot be split, so **the duplicates of any single key must fit in
/// one leaf** (≈ the page's entry capacity). Indexes expecting heavier
/// duplication should index a composite key — e.g. `(key, record-id)` —
/// exactly as classical secondary indexes do.
fn split_point(page: &[u8]) -> usize {
    let n = count_of(page);
    debug_assert!(n >= 2, "splitting a node with fewer than 2 entries");
    let mid = n / 2;
    // Forward: first boundary at or after mid.
    let mut m = mid;
    while m < n && entry_key(page, m) == entry_key(page, m - 1) {
        m += 1;
    }
    if m < n {
        return m;
    }
    // Backward: last boundary before mid.
    let mut m = mid;
    while m > 1 && entry_key(page, m - 1) == entry_key(page, m - 2) {
        m -= 1;
    }
    assert!(
        m > 1 || entry_key(page, 0) != entry_key(page, 1),
        "node contains a single duplicated key and cannot be split"
    );
    m
}

/// Core split: move entries `[at, n)` into `right_page`, fix fences and
/// sibling pointers, return the separator (left's new high key).
fn split_common(
    page: &mut [u8],
    right_page: &mut [u8],
    self_ptr: Ptr,
    right_ptr: Ptr,
    kind: NodeKind,
) -> Key {
    let at = split_point(page);
    let n = count_of(page);
    let level = level_of(page);

    // Initialise the right node.
    right_page.fill(0);
    right_page[off::KIND] = kind as u8;
    right_page[off::LEVEL] = level;
    for (j, i) in (at..n).enumerate() {
        set_entry(right_page, j, entry_key(page, i), entry_word(page, i));
    }
    set_count(right_page, n - at);
    write_u64(right_page, off::HIGH_KEY, read_u64(page, off::HIGH_KEY));
    write_u64(
        right_page,
        off::RIGHT_SIBLING,
        read_u64(page, off::RIGHT_SIBLING),
    );
    write_u64(right_page, off::LEFT_SIBLING, self_ptr.raw());

    // Shrink the left node.
    let sep = entry_key(page, at - 1);
    set_count(page, at);
    write_u64(page, off::HIGH_KEY, sep);
    write_u64(page, off::RIGHT_SIBLING, right_ptr.raw());
    sep
}

macro_rules! header_reads {
    () => {
        /// Number of entries.
        pub fn count(&self) -> usize {
            count_of(self.page)
        }

        /// `(version, lock-bit)` word.
        pub fn version_lock(&self) -> u64 {
            version_lock_of(self.page)
        }

        /// Tree level (0 = leaf level).
        pub fn level(&self) -> u8 {
            level_of(self.page)
        }

        /// Inclusive upper bound of keys this node may hold.
        pub fn high_key(&self) -> Key {
            read_u64(self.page, off::HIGH_KEY)
        }

        /// Right sibling pointer (null on the rightmost node).
        pub fn right_sibling(&self) -> Ptr {
            Ptr(read_u64(self.page, off::RIGHT_SIBLING))
        }

        /// Left sibling pointer (best-effort; null on the leftmost node).
        pub fn left_sibling(&self) -> Ptr {
            Ptr(read_u64(self.page, off::LEFT_SIBLING))
        }

        /// Whether `key` is within this node's key range.
        pub fn covers(&self, key: Key) -> bool {
            key <= self.high_key()
        }

        /// Whether no further entry fits.
        pub fn is_full(&self) -> bool {
            self.count() >= entry_capacity(self.page)
        }
    };
}

// ---------------------------------------------------------------- leaf ----

/// Read-only view of a leaf page.
#[derive(Clone, Copy)]
pub struct LeafNodeRef<'a> {
    page: &'a [u8],
}

impl<'a> LeafNodeRef<'a> {
    /// Wrap a page; panics if it is not a leaf.
    pub fn new(page: &'a [u8]) -> Self {
        assert_eq!(kind_of(page), NodeKind::Leaf, "expected a leaf page");
        LeafNodeRef { page }
    }

    header_reads!();

    /// Entry `i` as `(key, value, deleted)`.
    pub fn entry(&self, i: usize) -> (Key, Value, bool) {
        debug_assert!(i < self.count());
        let word = entry_word(self.page, i);
        (
            entry_key(self.page, i),
            word & MAX_VALUE,
            word & DELETE_BIT != 0,
        )
    }

    /// First index with key `>= key`.
    pub fn lower_bound(&self, key: Key) -> usize {
        lower_bound(self.page, key)
    }

    /// First live (non-deleted) value stored under `key`, if any.
    pub fn get(&self, key: Key) -> Option<Value> {
        let mut i = self.lower_bound(key);
        while i < self.count() {
            let (k, v, deleted) = self.entry(i);
            if k != key {
                return None;
            }
            if !deleted {
                return Some(v);
            }
            i += 1;
        }
        None
    }

    /// Whether a live (non-deleted) entry `(key, value)` exists. Used by
    /// the retry layer to recognise its own committed install from a
    /// previous attempt (exactly-once insert under retries).
    pub fn contains(&self, key: Key, value: Value) -> bool {
        let mut i = self.lower_bound(key);
        while i < self.count() {
            let (k, v, deleted) = self.entry(i);
            if k != key {
                return false;
            }
            if !deleted && v == value {
                return true;
            }
            i += 1;
        }
        false
    }

    /// Append live entries with keys in `[lo, hi]` to `out`. Returns the
    /// number of entries examined (for CPU-cost accounting).
    pub fn collect_range(&self, lo: Key, hi: Key, out: &mut Vec<(Key, Value)>) -> usize {
        let mut i = self.lower_bound(lo);
        let start = i;
        while i < self.count() {
            let (k, v, deleted) = self.entry(i);
            if k > hi {
                break;
            }
            if !deleted {
                out.push((k, v));
            }
            i += 1;
        }
        i - start
    }

    /// Number of live (non-deleted) entries.
    pub fn live_count(&self) -> usize {
        (0..self.count()).filter(|&i| !self.entry(i).2).count()
    }
}

/// Mutable view of a leaf page.
pub struct LeafNodeMut<'a> {
    page: &'a mut [u8],
}

impl<'a> LeafNodeMut<'a> {
    /// Wrap a page; panics if it is not a leaf.
    pub fn new(page: &'a mut [u8]) -> Self {
        assert_eq!(kind_of(page), NodeKind::Leaf, "expected a leaf page");
        LeafNodeMut { page }
    }

    /// Format a blank page as an empty leaf.
    pub fn init(page: &'a mut [u8], high_key: Key, left: Ptr, right: Ptr) -> Self {
        page.fill(0);
        page[off::KIND] = NodeKind::Leaf as u8;
        page[off::LEVEL] = 0;
        write_u64(page, off::HIGH_KEY, high_key);
        write_u64(page, off::LEFT_SIBLING, left.raw());
        write_u64(page, off::RIGHT_SIBLING, right.raw());
        LeafNodeMut { page }
    }

    /// Read-only view of the same page.
    pub fn as_ref(&self) -> LeafNodeRef<'_> {
        LeafNodeRef { page: self.page }
    }

    header_reads!();

    /// Insert `(key, value)` keeping entries sorted (duplicates go after
    /// existing equals). `value` must be `<= MAX_VALUE`.
    pub fn insert(&mut self, key: Key, value: Value) -> Result<(), NodeFull> {
        assert!(value <= MAX_VALUE, "value uses the reserved delete bit");
        if self.is_full() {
            return Err(NodeFull);
        }
        let pos = upper_bound(self.page, key);
        insert_at(self.page, pos, key, value);
        Ok(())
    }

    /// Append `(key, value)` at the end; `key` must be `>=` the current
    /// last key. Used by bulk loading to avoid per-insert searches.
    pub fn push(&mut self, key: Key, value: Value) -> Result<(), NodeFull> {
        assert!(value <= MAX_VALUE, "value uses the reserved delete bit");
        if self.is_full() {
            return Err(NodeFull);
        }
        let n = count_of(self.page);
        debug_assert!(
            n == 0 || entry_key(self.page, n - 1) <= key,
            "push out of order"
        );
        set_entry(self.page, n, key, value);
        set_count(self.page, n + 1);
        Ok(())
    }

    /// Set the delete bit on the first live entry matching `key`.
    /// Returns `true` if an entry was tombstoned.
    pub fn mark_deleted(&mut self, key: Key) -> bool {
        let n = count_of(self.page);
        let mut i = lower_bound(self.page, key);
        while i < n && entry_key(self.page, i) == key {
            let word = entry_word(self.page, i);
            if word & DELETE_BIT == 0 {
                set_entry(self.page, i, key, word | DELETE_BIT);
                return true;
            }
            i += 1;
        }
        false
    }

    /// Remove tombstoned entries (epoch GC compaction). Returns how many
    /// entries were reclaimed.
    pub fn compact(&mut self) -> usize {
        let n = count_of(self.page);
        let mut kept = 0usize;
        for i in 0..n {
            let key = entry_key(self.page, i);
            let word = entry_word(self.page, i);
            if word & DELETE_BIT == 0 {
                if kept != i {
                    set_entry(self.page, kept, key, word);
                }
                kept += 1;
            }
        }
        set_count(self.page, kept);
        n - kept
    }

    /// Lehman-Yao split: move the upper half into `right_page`, link
    /// siblings, shrink this node. Returns the separator key (this node's
    /// new high key).
    pub fn split_into(&mut self, right_page: &mut [u8], self_ptr: Ptr, right_ptr: Ptr) -> Key {
        split_common(self.page, right_page, self_ptr, right_ptr, NodeKind::Leaf)
    }

    /// Overwrite the left-sibling pointer (after a neighbour split).
    pub fn set_left_sibling(&mut self, p: Ptr) {
        write_u64(self.page, off::LEFT_SIBLING, p.raw());
    }

    /// Overwrite the right-sibling pointer (head-node maintenance
    /// relinks the chain through rebuilt head nodes).
    pub fn set_right_sibling(&mut self, p: Ptr) {
        write_u64(self.page, off::RIGHT_SIBLING, p.raw());
    }

    /// Raw page bytes (crate-internal: bulk-load fence patching).
    pub(crate) fn raw_page_mut(&mut self) -> &mut [u8] {
        self.page
    }

    /// Overwrite the `(version, lock-bit)` word.
    pub fn set_version_lock(&mut self, word: u64) {
        set_version_lock(self.page, word);
    }
}

// --------------------------------------------------------------- inner ----

/// Read-only view of an inner page.
#[derive(Clone, Copy)]
pub struct InnerNodeRef<'a> {
    page: &'a [u8],
}

impl<'a> InnerNodeRef<'a> {
    /// Wrap a page; panics if it is not an inner node.
    pub fn new(page: &'a [u8]) -> Self {
        assert_eq!(kind_of(page), NodeKind::Inner, "expected an inner page");
        InnerNodeRef { page }
    }

    header_reads!();

    /// Entry `i` as `(separator, child)`: `child` covers keys in
    /// `(previous separator, separator]`.
    pub fn entry(&self, i: usize) -> (Key, Ptr) {
        debug_assert!(i < self.count());
        (entry_key(self.page, i), Ptr(entry_word(self.page, i)))
    }

    /// Child covering `key`, or `None` if `key > high_key` (the caller
    /// must chase the right sibling).
    pub fn find_child(&self, key: Key) -> Option<Ptr> {
        let i = lower_bound(self.page, key);
        if i < self.count() {
            Some(Ptr(entry_word(self.page, i)))
        } else {
            None
        }
    }
}

/// Mutable view of an inner page.
pub struct InnerNodeMut<'a> {
    page: &'a mut [u8],
}

impl<'a> InnerNodeMut<'a> {
    /// Wrap a page; panics if it is not an inner node.
    pub fn new(page: &'a mut [u8]) -> Self {
        assert_eq!(kind_of(page), NodeKind::Inner, "expected an inner page");
        InnerNodeMut { page }
    }

    /// Format a blank page as an empty inner node.
    pub fn init(page: &'a mut [u8], level: u8, high_key: Key, right: Ptr) -> Self {
        assert!(level > 0, "inner nodes live above level 0");
        page.fill(0);
        page[off::KIND] = NodeKind::Inner as u8;
        page[off::LEVEL] = level;
        write_u64(page, off::HIGH_KEY, high_key);
        write_u64(page, off::RIGHT_SIBLING, right.raw());
        InnerNodeMut { page }
    }

    /// Format a blank page as a new root over a freshly split pair:
    /// entries `[(sep, left), (KEY_MAX, right)]`.
    pub fn init_root(page: &'a mut [u8], level: u8, sep: Key, left: Ptr, right: Ptr) -> Self {
        let node = Self::init(page, level, KEY_MAX, Ptr::NULL);
        insert_at(node.page, 0, sep, left.raw());
        insert_at(node.page, 1, KEY_MAX, right.raw());
        node
    }

    /// Read-only view of the same page.
    pub fn as_ref(&self) -> InnerNodeRef<'_> {
        InnerNodeRef { page: self.page }
    }

    header_reads!();

    /// Entry `i` as `(separator, child)`.
    pub fn entry(&self, i: usize) -> (Key, Ptr) {
        self.as_ref().entry(i)
    }

    /// Install a child split (§4.2): a child covering `sep_new` split in
    /// place, its upper half moving to the new page `right`. Inserts
    /// `(sep_new, current covering child)` and repoints the covering
    /// entry at `right`.
    ///
    /// Taking the covering entry's *current* child (rather than a caller-
    /// supplied left pointer) makes installation commute with concurrent
    /// splits of the same subtree, whose installs may have raced ahead;
    /// B-link sibling chases keep searches correct in the interim.
    pub fn install_split(&mut self, sep_new: Key, right: Ptr) -> Result<(), NodeFull> {
        if self.is_full() {
            return Err(NodeFull);
        }
        let idx = lower_bound(self.page, sep_new);
        debug_assert!(idx < self.count(), "split separator beyond high key");
        debug_assert_ne!(
            entry_key(self.page, idx),
            sep_new,
            "separator already installed"
        );
        let covering_sep = entry_key(self.page, idx);
        let covering_child = entry_word(self.page, idx);
        set_entry(self.page, idx, covering_sep, right.raw());
        insert_at(self.page, idx, sep_new, covering_child);
        Ok(())
    }

    /// Child covering `key`, or `None` if `key > high_key`.
    pub fn find_child(&self, key: Key) -> Option<Ptr> {
        self.as_ref().find_child(key)
    }

    /// Append `(sep, child)` at the end; `sep` must be `>` the current
    /// last separator. Used by bulk loading.
    pub fn push(&mut self, sep: Key, child: Ptr) -> Result<(), NodeFull> {
        if self.is_full() {
            return Err(NodeFull);
        }
        let n = count_of(self.page);
        debug_assert!(
            n == 0 || entry_key(self.page, n - 1) < sep,
            "push out of order"
        );
        set_entry(self.page, n, sep, child.raw());
        set_count(self.page, n + 1);
        Ok(())
    }

    /// Lehman-Yao split; see [`LeafNodeMut::split_into`].
    pub fn split_into(&mut self, right_page: &mut [u8], self_ptr: Ptr, right_ptr: Ptr) -> Key {
        split_common(self.page, right_page, self_ptr, right_ptr, NodeKind::Inner)
    }

    /// Overwrite the `(version, lock-bit)` word.
    pub fn set_version_lock(&mut self, word: u64) {
        set_version_lock(self.page, word);
    }

    /// Raw page bytes (crate-internal: bulk-load fence patching).
    pub(crate) fn raw_page_mut(&mut self) -> &mut [u8] {
        self.page
    }
}

// ---------------------------------------------------------------- head ----

/// Read-only view of a head node (§4.3): pointers to the following `n-1`
/// leaves, enabling prefetch during leaf-level scans.
#[derive(Clone, Copy)]
pub struct HeadNodeRef<'a> {
    page: &'a [u8],
}

impl<'a> HeadNodeRef<'a> {
    /// Wrap a page; panics if it is not a head node.
    pub fn new(page: &'a [u8]) -> Self {
        assert_eq!(kind_of(page), NodeKind::Head, "expected a head page");
        HeadNodeRef { page }
    }

    /// Number of stored leaf pointers.
    pub fn count(&self) -> usize {
        count_of(self.page)
    }

    /// Stored pointer `i`.
    pub fn ptr(&self, i: usize) -> Ptr {
        debug_assert!(i < self.count());
        Ptr(read_u64(self.page, off::ENTRIES + i * HEAD_ENTRY_SIZE))
    }

    /// All stored pointers.
    pub fn ptrs(&self) -> Vec<Ptr> {
        (0..self.count()).map(|i| self.ptr(i)).collect()
    }

    /// The head's sibling pointer (first leaf of its group).
    pub fn right_sibling(&self) -> Ptr {
        Ptr(read_u64(self.page, off::RIGHT_SIBLING))
    }
}

/// Mutable view of a head node.
pub struct HeadNodeMut<'a> {
    page: &'a mut [u8],
}

impl<'a> HeadNodeMut<'a> {
    /// Format a blank page as a head node holding `ptrs`, with its
    /// sibling pointer set to `next` (the first leaf of its group), so a
    /// client that lands on a head during a sibling chase can proceed
    /// even without decoding the pointer list.
    pub fn init(page: &'a mut [u8], ptrs: &[Ptr], next: Ptr) -> Self {
        let cap = (page.len() - off::ENTRIES) / HEAD_ENTRY_SIZE;
        assert!(ptrs.len() <= cap, "too many pointers for a head node");
        page.fill(0);
        page[off::KIND] = NodeKind::Head as u8;
        write_u64(page, off::RIGHT_SIBLING, next.raw());
        for (i, p) in ptrs.iter().enumerate() {
            write_u64(page, off::ENTRIES + i * HEAD_ENTRY_SIZE, p.raw());
        }
        set_count(page, ptrs.len());
        HeadNodeMut { page }
    }

    /// Replace the stored pointers in place (head-node maintenance after
    /// leaf splits, §4.3).
    pub fn set_ptrs(&mut self, ptrs: &[Ptr]) {
        let cap = (self.page.len() - off::ENTRIES) / HEAD_ENTRY_SIZE;
        assert!(ptrs.len() <= cap, "too many pointers for a head node");
        for (i, p) in ptrs.iter().enumerate() {
            write_u64(self.page, off::ENTRIES + i * HEAD_ENTRY_SIZE, p.raw());
        }
        set_count(self.page, ptrs.len());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::PageLayout;

    fn leaf_page() -> Box<[u8]> {
        let mut page = PageLayout::default().alloc_page();
        LeafNodeMut::init(&mut page, KEY_MAX, Ptr::NULL, Ptr::NULL);
        page
    }

    #[test]
    fn leaf_insert_and_get() {
        let mut page = leaf_page();
        let mut leaf = LeafNodeMut::new(&mut page);
        for k in [5u64, 1, 9, 3, 7] {
            leaf.insert(k, k * 100).unwrap();
        }
        let view = leaf.as_ref();
        assert_eq!(view.count(), 5);
        assert_eq!(view.get(3), Some(300));
        assert_eq!(view.get(4), None);
        // Sorted order.
        let keys: Vec<_> = (0..5).map(|i| view.entry(i).0).collect();
        assert_eq!(keys, vec![1, 3, 5, 7, 9]);
    }

    #[test]
    fn leaf_duplicate_keys() {
        let mut page = leaf_page();
        let mut leaf = LeafNodeMut::new(&mut page);
        leaf.insert(5, 1).unwrap();
        leaf.insert(5, 2).unwrap();
        leaf.insert(5, 3).unwrap();
        let view = leaf.as_ref();
        assert_eq!(view.count(), 3);
        // get returns the first live entry.
        assert_eq!(view.get(5), Some(1));
        let mut out = Vec::new();
        view.collect_range(5, 5, &mut out);
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn leaf_full_rejects() {
        let mut page = leaf_page();
        let mut leaf = LeafNodeMut::new(&mut page);
        let cap = PageLayout::default().entry_capacity();
        for k in 0..cap as u64 {
            leaf.insert(k, k).unwrap();
        }
        assert!(leaf.is_full());
        assert_eq!(leaf.insert(9999, 0), Err(NodeFull));
    }

    #[test]
    fn leaf_tombstone_and_compact() {
        let mut page = leaf_page();
        let mut leaf = LeafNodeMut::new(&mut page);
        for k in 0..10u64 {
            leaf.insert(k, k).unwrap();
        }
        assert!(leaf.mark_deleted(4));
        assert!(!leaf.mark_deleted(4), "already tombstoned");
        assert_eq!(leaf.as_ref().get(4), None);
        assert_eq!(leaf.as_ref().live_count(), 9);
        let mut out = Vec::new();
        leaf.as_ref().collect_range(0, 9, &mut out);
        assert_eq!(out.len(), 9);
        assert_eq!(leaf.compact(), 1);
        assert_eq!(leaf.count(), 9);
        assert_eq!(leaf.as_ref().get(5), Some(5));
    }

    #[test]
    fn leaf_split_preserves_order_and_links() {
        let mut page = leaf_page();
        let mut right_page = PageLayout::default().alloc_page();
        let mut leaf = LeafNodeMut::new(&mut page);
        for k in 0..20u64 {
            leaf.insert(k, k).unwrap();
        }
        let sep = leaf.split_into(&mut right_page, Ptr(111), Ptr(222));
        assert_eq!(sep, 9);
        assert_eq!(leaf.high_key(), 9);
        assert_eq!(leaf.right_sibling(), Ptr(222));
        let right = LeafNodeRef::new(&right_page);
        assert_eq!(right.count(), 10);
        assert_eq!(right.entry(0).0, 10);
        assert_eq!(right.high_key(), KEY_MAX);
        assert_eq!(right.left_sibling(), Ptr(111));
        assert_eq!(right.right_sibling(), Ptr::NULL);
    }

    #[test]
    fn leaf_split_respects_duplicate_boundary() {
        let mut page = leaf_page();
        let mut right_page = PageLayout::default().alloc_page();
        let mut leaf = LeafNodeMut::new(&mut page);
        // 3 copies of key 5 straddling the midpoint of 6 entries.
        for (k, v) in [(1u64, 0u64), (2, 0), (5, 1), (5, 2), (5, 3), (9, 0)] {
            leaf.insert(k, v).unwrap();
        }
        let sep = leaf.split_into(&mut right_page, Ptr(1), Ptr(2));
        // All copies of 5 stay on one side.
        assert_eq!(sep, 5);
        let right = LeafNodeRef::new(&right_page);
        assert_eq!(right.entry(0).0, 9);
        assert_eq!(leaf.as_ref().get(5), Some(1));
    }

    #[test]
    fn inner_find_child_ranges() {
        let mut page = PageLayout::default().alloc_page();
        let inner = InnerNodeMut::init_root(&mut page, 1, 10, Ptr(100), Ptr(200));
        assert_eq!(inner.count(), 2);
        assert_eq!(inner.find_child(5), Some(Ptr(100)));
        assert_eq!(inner.find_child(10), Some(Ptr(100)), "sep is inclusive");
        assert_eq!(inner.find_child(11), Some(Ptr(200)));
        assert_eq!(inner.find_child(u64::MAX - 1), Some(Ptr(200)));
    }

    #[test]
    fn inner_install_split() {
        let mut page = PageLayout::default().alloc_page();
        let mut inner = InnerNodeMut::init_root(&mut page, 1, 10, Ptr(100), Ptr(200));
        // Child 100 (covering ..=10) split at sep 5 into (100, new 150).
        inner.install_split(5, Ptr(150)).unwrap();
        assert_eq!(inner.count(), 3);
        assert_eq!(inner.find_child(3), Some(Ptr(100)));
        assert_eq!(inner.find_child(5), Some(Ptr(100)));
        assert_eq!(inner.find_child(7), Some(Ptr(150)));
        assert_eq!(inner.find_child(10), Some(Ptr(150)));
        assert_eq!(inner.find_child(11), Some(Ptr(200)));
    }

    #[test]
    fn inner_split() {
        let mut page = PageLayout::default().alloc_page();
        let mut right_page = PageLayout::default().alloc_page();
        let mut inner = InnerNodeMut::init(&mut page, 2, KEY_MAX, Ptr::NULL);
        for i in 0..10u64 {
            let sep = if i == 9 { KEY_MAX } else { (i + 1) * 10 };
            inner.insert_raw_for_test(sep, Ptr(1000 + i));
        }
        let sep = inner.split_into(&mut right_page, Ptr(7), Ptr(8));
        assert_eq!(sep, 50);
        assert_eq!(inner.high_key(), 50);
        let right = InnerNodeRef::new(&right_page);
        assert_eq!(right.count(), 5);
        assert_eq!(right.high_key(), KEY_MAX);
        assert_eq!(right.find_child(55), Some(Ptr(1005)));
        assert_eq!(inner.find_child(55), None, "past high key -> sibling");
        assert_eq!(inner.right_sibling(), Ptr(8));
    }

    #[test]
    fn head_node_round_trip() {
        let mut page = PageLayout::default().alloc_page();
        let ptrs: Vec<Ptr> = (1..=8).map(Ptr).collect();
        HeadNodeMut::init(&mut page, &ptrs, Ptr(1));
        let head = HeadNodeRef::new(&page);
        assert_eq!(head.count(), 8);
        assert_eq!(head.ptr(3), Ptr(4));
        assert_eq!(head.ptrs(), ptrs);
        assert_eq!(head.right_sibling(), Ptr(1));
        assert_eq!(kind_of(&page), NodeKind::Head);
    }

    #[test]
    fn version_lock_round_trip() {
        let mut page = leaf_page();
        assert_eq!(version_lock_of(&page), 0);
        set_version_lock(&mut page, 42);
        assert_eq!(version_lock_of(&page), 42);
        let leaf = LeafNodeRef::new(&page);
        assert_eq!(leaf.version_lock(), 42);
    }

    impl InnerNodeMut<'_> {
        /// Test-only: append a raw (sep, child) pair in sorted order.
        fn insert_raw_for_test(&mut self, sep: Key, child: Ptr) {
            let pos = lower_bound(self.page, sep);
            insert_at(self.page, pos, sep, child.raw());
        }
    }
}
