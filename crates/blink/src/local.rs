//! A complete single-machine B-link tree over an owned page pool.
//!
//! This is the tree each memory server builds for its partition in the
//! coarse-grained design (§3) and for the upper levels in the hybrid
//! design (§5). Handlers run it *locally* when serving two-sided RPCs.
//!
//! Every operation returns [`WorkStats`] describing the work actually
//! performed (nodes visited, entries scanned, splits); the simulator uses
//! these to charge CPU service time, so a taller tree or a bigger range
//! scan genuinely costs more simulated time.
//!
//! Deletes follow the paper: the delete *bit* is set on the entry and the
//! space is reclaimed later by [`LocalTree::gc_compact`] (epoch-based GC).

use crate::layout::{Key, PageLayout, Ptr, Value, KEY_MAX};
use crate::node::{kind_of, InnerNodeMut, InnerNodeRef, LeafNodeMut, LeafNodeRef, NodeKind};

/// Work performed by one index operation; the basis for CPU cost models.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WorkStats {
    /// Index nodes traversed (including sibling hops).
    pub nodes_visited: u32,
    /// Leaf entries examined during scans.
    pub entries_scanned: u32,
    /// Node splits performed.
    pub splits: u32,
    /// Lehman-Yao right-sibling hops taken.
    pub sibling_hops: u32,
    /// Leaf pages touched by a range scan.
    pub leaves_scanned: u32,
}

impl WorkStats {
    /// Merge another operation's stats into this one.
    pub fn absorb(&mut self, other: WorkStats) {
        self.nodes_visited += other.nodes_visited;
        self.entries_scanned += other.entries_scanned;
        self.splits += other.splits;
        self.sibling_hops += other.sibling_hops;
        self.leaves_scanned += other.leaves_scanned;
    }
}

/// A local B-link tree. Pointers are page ids into an owned pool.
pub struct LocalTree {
    layout: PageLayout,
    pages: Vec<Box<[u8]>>,
    root: Ptr,
    leftmost_leaf: Ptr,
    height: u8,
}

impl LocalTree {
    /// Create an empty tree (a single empty leaf root).
    pub fn new(layout: PageLayout) -> Self {
        let mut tree = LocalTree {
            layout,
            pages: Vec::new(),
            root: Ptr::NULL,
            leftmost_leaf: Ptr::NULL,
            height: 1,
        };
        let root = tree.alloc();
        LeafNodeMut::init(tree.page_mut(root), KEY_MAX, Ptr::NULL, Ptr::NULL);
        tree.root = root;
        tree.leftmost_leaf = root;
        tree
    }

    /// Bulk-load from keys sorted ascending (duplicates allowed).
    /// `fill` is the target node fill factor in `(0, 1]`.
    pub fn bulk_load(
        layout: PageLayout,
        items: impl IntoIterator<Item = (Key, Value)>,
        fill: f64,
    ) -> Self {
        assert!(
            (0.0..=1.0).contains(&fill) && fill > 0.0,
            "fill factor in (0,1]"
        );
        let mut tree = LocalTree {
            layout,
            pages: Vec::new(),
            root: Ptr::NULL,
            leftmost_leaf: Ptr::NULL,
            height: 1,
        };
        let per_leaf = ((layout.entry_capacity() as f64 * fill) as usize).max(2);

        // Build the leaf level.
        let mut leaves: Vec<(Key, Ptr)> = Vec::new(); // (high_key, ptr)
        let mut cur: Option<Ptr> = None;
        let mut cur_n = 0usize;
        let mut prev_key: Option<Key> = None;
        let mut prev_leaf = Ptr::NULL;
        for (k, v) in items {
            debug_assert!(prev_key.is_none_or(|p| p <= k), "bulk_load input unsorted");
            // Never split identical keys across leaves.
            let start_new = match (cur, prev_key) {
                (None, _) => true,
                (Some(_), Some(p)) => cur_n >= per_leaf && p != k,
                (Some(_), None) => false,
            };
            if start_new {
                let ptr = tree.alloc();
                LeafNodeMut::init(tree.page_mut(ptr), KEY_MAX, prev_leaf, Ptr::NULL);
                if let Some(prev) = cur {
                    // Seal the previous leaf: high key = its last key.
                    let last = prev_key.expect("previous leaf is non-empty");
                    let mut node = LeafNodeMut::new(tree.page_mut(prev));
                    node.split_seal_for_bulk(last, ptr);
                    leaves.push((last, prev));
                } else {
                    tree.leftmost_leaf = ptr;
                }
                cur = Some(ptr);
                cur_n = 0;
                prev_leaf = ptr;
            }
            let ptr = cur.expect("leaf exists");
            LeafNodeMut::new(tree.page_mut(ptr))
                .push(k, v)
                .expect("fill factor keeps leaves under capacity");
            cur_n += 1;
            prev_key = Some(k);
        }
        match cur {
            None => {
                // Empty input: single empty leaf root.
                let root = tree.alloc();
                LeafNodeMut::init(tree.page_mut(root), KEY_MAX, Ptr::NULL, Ptr::NULL);
                tree.root = root;
                tree.leftmost_leaf = root;
                return tree;
            }
            Some(last_leaf) => {
                leaves.push((KEY_MAX, last_leaf));
            }
        }

        // Build inner levels bottom-up.
        let per_inner = ((layout.entry_capacity() as f64 * fill) as usize).max(2);
        let mut level: Vec<(Key, Ptr)> = leaves;
        let mut height = 1u8;
        while level.len() > 1 {
            height += 1;
            let mut next: Vec<(Key, Ptr)> = Vec::new();
            let mut i = 0usize;
            let mut prev_ptr = Ptr::NULL;
            while i < level.len() {
                let n = per_inner.min(level.len() - i);
                // Avoid a trailing 1-entry node: rebalance the tail.
                let n = if level.len() - i - n == 1 { n - 1 } else { n };
                let ptr = tree.alloc();
                {
                    let mut node =
                        InnerNodeMut::init(tree.page_mut(ptr), height - 1, KEY_MAX, Ptr::NULL);
                    for (sep, child) in &level[i..i + n] {
                        node.push(*sep, *child).expect("inner under capacity");
                    }
                }
                let high = level[i + n - 1].0;
                if !prev_ptr.is_null() {
                    let prev_page = tree.page_mut(prev_ptr);
                    let mut prev_node = InnerNodeMut::new(prev_page);
                    prev_node.seal_for_bulk(ptr);
                }
                // Seal this node's high key unless it is the last.
                if i + n < level.len() {
                    let page = tree.page_mut(ptr);
                    crate::layout::write_u64(page, crate::layout::off::HIGH_KEY, high);
                }
                next.push((high, ptr));
                prev_ptr = ptr;
                i += n;
            }
            level = next;
        }
        tree.root = level[0].1;
        tree.height = height;
        tree
    }

    /// Page geometry.
    pub fn layout(&self) -> PageLayout {
        self.layout
    }

    /// Number of levels (1 = a single leaf).
    pub fn height(&self) -> u8 {
        self.height
    }

    /// Total pages allocated.
    pub fn num_pages(&self) -> usize {
        self.pages.len()
    }

    /// Root pointer.
    pub fn root(&self) -> Ptr {
        self.root
    }

    /// Pointer to the leftmost leaf (start of the leaf chain).
    pub fn leftmost_leaf(&self) -> Ptr {
        self.leftmost_leaf
    }

    fn alloc(&mut self) -> Ptr {
        self.pages.push(self.layout.alloc_page());
        Ptr(self.pages.len() as u64) // ids start at 1; 0 is null
    }

    fn page(&self, p: Ptr) -> &[u8] {
        &self.pages[(p.raw() - 1) as usize]
    }

    fn page_mut(&mut self, p: Ptr) -> &mut [u8] {
        &mut self.pages[(p.raw() - 1) as usize]
    }

    /// Descend to the leaf that covers `key`, recording the inner path.
    fn descend(&self, key: Key, stats: &mut WorkStats, path: Option<&mut Vec<Ptr>>) -> Ptr {
        let mut path = path;
        let mut cur = self.root;
        loop {
            stats.nodes_visited += 1;
            match kind_of(self.page(cur)) {
                NodeKind::Inner => {
                    let node = InnerNodeRef::new(self.page(cur));
                    match node.find_child(key) {
                        Some(child) => {
                            if let Some(p) = path.as_deref_mut() {
                                p.push(cur);
                            }
                            cur = child;
                        }
                        None => {
                            stats.sibling_hops += 1;
                            cur = node.right_sibling();
                            assert!(!cur.is_null(), "rightmost node must cover KEY_MAX");
                        }
                    }
                }
                NodeKind::Leaf => {
                    let node = LeafNodeRef::new(self.page(cur));
                    if node.covers(key) {
                        return cur;
                    }
                    stats.sibling_hops += 1;
                    cur = node.right_sibling();
                    assert!(!cur.is_null(), "rightmost leaf must cover KEY_MAX");
                }
                NodeKind::Head => unreachable!("local trees have no head nodes"),
            }
        }
    }

    /// Point lookup: first live value under `key`.
    pub fn get(&self, key: Key) -> (Option<Value>, WorkStats) {
        let mut stats = WorkStats::default();
        let leaf = self.descend(key, &mut stats, None);
        let node = LeafNodeRef::new(self.page(leaf));
        stats.entries_scanned += 1;
        (node.get(key), stats)
    }

    /// Smallest stored live `(key, value)` with key `>= key`, if any.
    /// Used by the hybrid design's upper levels to map a search key to a
    /// leaf pointer.
    pub fn ceiling(&self, key: Key) -> (Option<(Key, Value)>, WorkStats) {
        let mut stats = WorkStats::default();
        let mut cur = self.descend(key, &mut stats, None);
        loop {
            let node = LeafNodeRef::new(self.page(cur));
            let mut i = node.lower_bound(key);
            while i < node.count() {
                let (k, v, deleted) = node.entry(i);
                stats.entries_scanned += 1;
                if !deleted {
                    return (Some((k, v)), stats);
                }
                i += 1;
            }
            let next = node.right_sibling();
            if next.is_null() {
                return (None, stats);
            }
            stats.nodes_visited += 1;
            stats.sibling_hops += 1;
            cur = next;
        }
    }

    /// Range scan: append live entries with keys in `[lo, hi]` to `out`.
    pub fn range(&self, lo: Key, hi: Key, out: &mut Vec<(Key, Value)>) -> WorkStats {
        let mut stats = WorkStats::default();
        let mut cur = self.descend(lo, &mut stats, None);
        loop {
            let node = LeafNodeRef::new(self.page(cur));
            stats.leaves_scanned += 1;
            stats.entries_scanned += node.collect_range(lo, hi, out) as u32;
            if node.high_key() >= hi {
                return stats;
            }
            let next = node.right_sibling();
            if next.is_null() {
                return stats;
            }
            stats.nodes_visited += 1;
            cur = next;
        }
    }

    /// Insert `(key, value)`; splits propagate up and may grow the tree.
    pub fn insert(&mut self, key: Key, value: Value) -> WorkStats {
        self.insert_at_leaf(key, value).1
    }

    /// As [`Self::insert`], additionally reporting the leaf the entry
    /// landed in (used by handlers to model page-lock contention).
    pub fn insert_at_leaf(&mut self, key: Key, value: Value) -> (Ptr, WorkStats) {
        let mut stats = WorkStats::default();
        let mut path = Vec::with_capacity(self.height as usize);
        let leaf = self.descend(key, &mut stats, Some(&mut path));

        {
            let mut node = LeafNodeMut::new(self.page_mut(leaf));
            if node.insert(key, value).is_ok() {
                return (leaf, stats);
            }
        }

        // Leaf is full: split, insert into the correct half, propagate.
        stats.splits += 1;
        let right = self.alloc();
        let sep = {
            let (left_page, right_page) = self.two_pages_mut(leaf, right);
            LeafNodeMut::new(left_page).split_into(right_page, leaf, right)
        };
        // Fix the next leaf's left-sibling back pointer.
        let next = LeafNodeRef::new(self.page(right)).right_sibling();
        if !next.is_null() {
            LeafNodeMut::new(self.page_mut(next)).set_left_sibling(right);
        }
        let target = if key <= sep { leaf } else { right };
        {
            let mut node = LeafNodeMut::new(self.page_mut(target));
            node.insert(key, value).expect("half-full after split");
        }
        self.propagate_split(sep, leaf, right, path, &mut stats);
        (target, stats)
    }

    /// Replace the value of the first live entry under `key` (used by the
    /// hybrid design's upper levels when a leaf split repoints its high
    /// key). Returns whether an entry was updated.
    pub fn update_value(&mut self, key: Key, new_value: Value) -> (bool, WorkStats) {
        let mut stats = WorkStats::default();
        let leaf = self.descend(key, &mut stats, None);
        stats.entries_scanned += 1;
        let page = self.page_mut(leaf);
        let node = LeafNodeRef::new(page);
        let mut i = node.lower_bound(key);
        while i < node.count() {
            let (k, _, deleted) = node.entry(i);
            if k != key {
                return (false, stats);
            }
            if !deleted {
                // Rewrite the entry word in place.
                let off = crate::layout::off::ENTRIES + i * crate::layout::ENTRY_SIZE + 8;
                crate::layout::write_u64(page, off, new_value);
                return (true, stats);
            }
            i += 1;
        }
        (false, stats)
    }

    /// Propagate `(sep, left, right)` into the recorded parent path,
    /// splitting parents as needed; grows a new root at the top.
    fn propagate_split(
        &mut self,
        mut sep: Key,
        mut left: Ptr,
        mut right: Ptr,
        mut path: Vec<Ptr>,
        stats: &mut WorkStats,
    ) {
        while let Some(parent) = path.pop() {
            {
                let mut node = InnerNodeMut::new(self.page_mut(parent));
                if node.install_split(sep, right).is_ok() {
                    return;
                }
            }
            // Parent full: split it first, then install into the half that
            // covers `sep`.
            stats.splits += 1;
            let parent_right = self.alloc();
            let parent_sep = {
                let (left_page, right_page) = self.two_pages_mut(parent, parent_right);
                InnerNodeMut::new(left_page).split_into(right_page, parent, parent_right)
            };
            let target = if sep <= parent_sep {
                parent
            } else {
                parent_right
            };
            InnerNodeMut::new(self.page_mut(target))
                .install_split(sep, right)
                .expect("half-full after split");
            sep = parent_sep;
            left = parent;
            right = parent_right;
        }
        // Split reached the root: grow the tree.
        let new_root = self.alloc();
        let level = self.height;
        InnerNodeMut::init_root(self.page_mut(new_root), level, sep, left, right);
        self.root = new_root;
        self.height += 1;
    }

    /// Tombstone the first live entry under `key` (the paper's delete
    /// bit); space is reclaimed by [`Self::gc_compact`].
    pub fn delete(&mut self, key: Key) -> (bool, WorkStats) {
        let (deleted, _, stats) = self.delete_at_leaf(key);
        (deleted, stats)
    }

    /// As [`Self::delete`], additionally reporting the leaf touched
    /// (used by handlers to model page-lock contention).
    pub fn delete_at_leaf(&mut self, key: Key) -> (bool, Ptr, WorkStats) {
        let mut stats = WorkStats::default();
        let leaf = self.descend(key, &mut stats, None);
        stats.entries_scanned += 1;
        let mut node = LeafNodeMut::new(self.page_mut(leaf));
        (node.mark_deleted(key), leaf, stats)
    }

    /// Epoch GC: compact every leaf, removing tombstoned entries.
    /// Returns the number of entries reclaimed.
    pub fn gc_compact(&mut self) -> usize {
        let mut reclaimed = 0;
        let mut cur = self.leftmost_leaf;
        while !cur.is_null() {
            let next = {
                let mut node = LeafNodeMut::new(self.page_mut(cur));
                reclaimed += node.compact();
                node.right_sibling()
            };
            cur = next;
        }
        reclaimed
    }

    /// Count live entries by walking the leaf chain.
    pub fn len_live(&self) -> usize {
        let mut n = 0;
        let mut cur = self.leftmost_leaf;
        while !cur.is_null() {
            let node = LeafNodeRef::new(self.page(cur));
            n += node.live_count();
            cur = node.right_sibling();
        }
        n
    }

    /// Split-borrow two distinct pages mutably.
    fn two_pages_mut(&mut self, a: Ptr, b: Ptr) -> (&mut [u8], &mut [u8]) {
        let ia = (a.raw() - 1) as usize;
        let ib = (b.raw() - 1) as usize;
        assert_ne!(ia, ib);
        if ia < ib {
            let (lo, hi) = self.pages.split_at_mut(ib);
            (&mut lo[ia], &mut hi[0])
        } else {
            let (lo, hi) = self.pages.split_at_mut(ia);
            (&mut hi[0], &mut lo[ib])
        }
    }

    /// Verify structural invariants; panics with a description on
    /// violation. Test/debug aid.
    pub fn check_invariants(&self) {
        // Walk the leaf chain: keys sorted, within fences, chain ordered.
        let mut cur = self.leftmost_leaf;
        let mut prev_high: Option<Key> = None;
        let mut prev_ptr = Ptr::NULL;
        while !cur.is_null() {
            let node = LeafNodeRef::new(self.page(cur));
            let mut last: Option<Key> = None;
            for i in 0..node.count() {
                let (k, _, _) = node.entry(i);
                assert!(last.is_none_or(|l| l <= k), "leaf keys unsorted");
                assert!(k <= node.high_key(), "leaf key above high fence");
                if let Some(ph) = prev_high {
                    assert!(k > ph, "leaf key below low fence");
                }
                last = Some(k);
            }
            assert_eq!(node.left_sibling(), prev_ptr, "left sibling broken");
            prev_high = Some(node.high_key());
            prev_ptr = cur;
            cur = node.right_sibling();
        }
        assert_eq!(prev_high, Some(KEY_MAX), "rightmost leaf must cover +inf");
        // Every inner entry's child high key equals its separator.
        self.check_inner(self.root);
    }

    fn check_inner(&self, ptr: Ptr) {
        if kind_of(self.page(ptr)) != NodeKind::Inner {
            return;
        }
        let node = InnerNodeRef::new(self.page(ptr));
        assert!(node.count() > 0, "empty inner node");
        let mut prev: Option<Key> = None;
        for i in 0..node.count() {
            let (sep, child) = node.entry(i);
            assert!(prev.is_none_or(|p| p < sep), "inner separators unsorted");
            prev = Some(sep);
            let child_high = match kind_of(self.page(child)) {
                NodeKind::Leaf => LeafNodeRef::new(self.page(child)).high_key(),
                NodeKind::Inner => InnerNodeRef::new(self.page(child)).high_key(),
                NodeKind::Head => panic!("head node in local tree"),
            };
            assert_eq!(child_high, sep, "child fence != separator");
            self.check_inner(child);
        }
        assert_eq!(
            node.entry(node.count() - 1).0,
            node.high_key(),
            "last separator != high key"
        );
    }
}

// Bulk-load helpers that reach into page internals.
impl LeafNodeMut<'_> {
    /// Seal a bulk-built leaf: set its high key and right sibling.
    fn split_seal_for_bulk(&mut self, high: Key, right: Ptr) {
        let page = self.raw_page_mut();
        crate::layout::write_u64(page, crate::layout::off::HIGH_KEY, high);
        crate::layout::write_u64(page, crate::layout::off::RIGHT_SIBLING, right.raw());
    }
}

impl InnerNodeMut<'_> {
    /// Seal a bulk-built inner node: set its right sibling.
    fn seal_for_bulk(&mut self, right: Ptr) {
        let page = self.raw_page_mut();
        crate::layout::write_u64(page, crate::layout::off::RIGHT_SIBLING, right.raw());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layout() -> PageLayout {
        // Small pages force deep trees in tests.
        PageLayout::new(200) // capacity = (200-40)/16 = 10 entries
    }

    #[test]
    fn empty_tree() {
        let tree = LocalTree::new(layout());
        assert_eq!(tree.height(), 1);
        assert_eq!(tree.get(42).0, None);
        assert_eq!(tree.len_live(), 0);
        tree.check_invariants();
    }

    #[test]
    fn insert_then_get() {
        let mut tree = LocalTree::new(layout());
        for k in 0..1000u64 {
            tree.insert(k * 2, k);
        }
        tree.check_invariants();
        assert!(tree.height() > 2, "1000 keys at fanout 10 must be deep");
        for k in 0..1000u64 {
            assert_eq!(tree.get(k * 2).0, Some(k), "key {}", k * 2);
            assert_eq!(tree.get(k * 2 + 1).0, None);
        }
        assert_eq!(tree.len_live(), 1000);
    }

    #[test]
    fn insert_random_order() {
        let mut tree = LocalTree::new(layout());
        // Deterministic pseudo-shuffle.
        let mut keys: Vec<u64> = (0..500).map(|i| (i * 2654435761u64) % 100_000).collect();
        keys.sort_unstable();
        keys.dedup();
        let mut shuffled = keys.clone();
        shuffled.reverse();
        for &k in &shuffled {
            tree.insert(k, k + 1);
        }
        tree.check_invariants();
        for &k in &keys {
            assert_eq!(tree.get(k).0, Some(k + 1));
        }
    }

    #[test]
    fn lookup_work_grows_with_height() {
        let mut tree = LocalTree::new(layout());
        for k in 0..2000u64 {
            tree.insert(k, k);
        }
        let (_, stats) = tree.get(1234);
        assert_eq!(stats.nodes_visited as u8, tree.height());
    }

    #[test]
    fn range_scan() {
        let mut tree = LocalTree::new(layout());
        for k in 0..300u64 {
            tree.insert(k, k * 10);
        }
        let mut out = Vec::new();
        let stats = tree.range(100, 199, &mut out);
        assert_eq!(out.len(), 100);
        assert_eq!(out.first(), Some(&(100, 1000)));
        assert_eq!(out.last(), Some(&(199, 1990)));
        assert!(out.windows(2).all(|w| w[0].0 < w[1].0));
        assert!(stats.entries_scanned >= 100);
    }

    #[test]
    fn range_scan_empty_and_full() {
        let mut tree = LocalTree::new(layout());
        for k in 0..100u64 {
            tree.insert(k, k);
        }
        let mut out = Vec::new();
        tree.range(500, 600, &mut out);
        assert!(out.is_empty());
        tree.range(0, KEY_MAX - 1, &mut out);
        assert_eq!(out.len(), 100);
    }

    #[test]
    fn delete_and_gc() {
        let mut tree = LocalTree::new(layout());
        for k in 0..200u64 {
            tree.insert(k, k);
        }
        for k in (0..200u64).step_by(2) {
            let (ok, _) = tree.delete(k);
            assert!(ok);
        }
        assert_eq!(tree.len_live(), 100);
        assert_eq!(tree.get(4).0, None);
        assert_eq!(tree.get(5).0, Some(5));
        let reclaimed = tree.gc_compact();
        assert_eq!(reclaimed, 100);
        assert_eq!(tree.len_live(), 100);
        tree.check_invariants();
        // Deleted keys can be reinserted.
        tree.insert(4, 40);
        assert_eq!(tree.get(4).0, Some(40));
    }

    #[test]
    fn delete_missing_key() {
        let mut tree = LocalTree::new(layout());
        tree.insert(1, 1);
        let (ok, _) = tree.delete(99);
        assert!(!ok);
    }

    #[test]
    fn duplicates_supported() {
        let mut tree = LocalTree::new(layout());
        for v in 0..5u64 {
            tree.insert(7, v);
        }
        tree.insert(6, 60);
        tree.insert(8, 80);
        tree.check_invariants();
        let mut out = Vec::new();
        tree.range(7, 7, &mut out);
        assert_eq!(out.len(), 5);
        assert_eq!(tree.get(7).0, Some(0));
    }

    #[test]
    fn bulk_load_matches_inserts() {
        let items: Vec<(u64, u64)> = (0..5000u64).map(|k| (k * 3, k)).collect();
        let tree = LocalTree::bulk_load(layout(), items.iter().copied(), 0.8);
        tree.check_invariants();
        assert_eq!(tree.len_live(), 5000);
        for &(k, v) in items.iter().step_by(97) {
            assert_eq!(tree.get(k).0, Some(v));
        }
        assert_eq!(tree.get(1).0, None);
        let mut out = Vec::new();
        tree.range(300, 600, &mut out);
        assert_eq!(out.len(), 101); // keys 300,303,...,600
    }

    #[test]
    fn bulk_load_empty() {
        let tree = LocalTree::bulk_load(layout(), std::iter::empty(), 0.8);
        tree.check_invariants();
        assert_eq!(tree.len_live(), 0);
        assert_eq!(tree.get(1).0, None);
    }

    #[test]
    fn bulk_load_single() {
        let tree = LocalTree::bulk_load(layout(), [(5u64, 50u64)], 0.8);
        tree.check_invariants();
        assert_eq!(tree.get(5).0, Some(50));
        assert_eq!(tree.height(), 1);
    }

    #[test]
    fn bulk_load_then_insert() {
        let items: Vec<(u64, u64)> = (0..1000u64).map(|k| (k * 2, k)).collect();
        let mut tree = LocalTree::bulk_load(layout(), items, 0.7);
        for k in 0..1000u64 {
            tree.insert(k * 2 + 1, k);
        }
        tree.check_invariants();
        assert_eq!(tree.len_live(), 2000);
        for k in 0..2000u64 {
            assert!(tree.get(k).0.is_some(), "key {k}");
        }
    }

    #[test]
    fn ceiling_queries() {
        let tree = LocalTree::bulk_load(layout(), (0..100u64).map(|k| (k * 10, k)), 0.8);
        assert_eq!(tree.ceiling(0).0, Some((0, 0)));
        assert_eq!(tree.ceiling(11).0, Some((20, 2)));
        assert_eq!(tree.ceiling(990).0, Some((990, 99)));
        assert_eq!(tree.ceiling(991).0, None);
    }

    #[test]
    fn split_work_counted() {
        let mut tree = LocalTree::new(layout());
        let mut total_splits = 0;
        for k in 0..100u64 {
            total_splits += tree.insert(k, k).splits;
        }
        assert!(total_splits > 0);
        // 100 keys / 10-entry pages: at least 10 leaves exist.
        assert!(tree.num_pages() >= 10);
    }
}
