//! A memory server's RDMA-registered memory region.
//!
//! Backed by one flat byte vector with a bump allocator (`RDMA_ALLOC` in
//! the paper's Listing 4). Offsets start at 8 so that offset 0 never
//! names a live object and the all-zero [`crate::RemotePtr`] stays NULL.

/// Registered memory of one memory server.
pub struct MemPool {
    mem: Vec<u8>,
    next: u64,
}

impl MemPool {
    /// Alignment of every allocation (atomics operate on 8-byte words).
    pub const ALIGN: u64 = 8;

    /// Create a pool; memory grows on demand.
    pub fn new() -> Self {
        MemPool {
            mem: Vec::new(),
            next: Self::ALIGN, // offset 0 reserved for NULL
        }
    }

    /// Bump-allocate `size` bytes; returns the offset.
    pub fn alloc(&mut self, size: u64) -> u64 {
        let off = self.next;
        self.next = (off + size).div_ceil(Self::ALIGN) * Self::ALIGN;
        let need = self.next as usize;
        if self.mem.len() < need {
            // Grow geometrically to amortise.
            let new_len = need.next_power_of_two().max(64 * 1024);
            self.mem.resize(new_len, 0);
        }
        off
    }

    /// Bytes currently allocated (high-water mark).
    pub fn allocated(&self) -> u64 {
        self.next
    }

    fn check(&self, off: u64, len: usize) {
        assert!(
            off + len as u64 <= self.next,
            "access [{off}, {off}+{len}) beyond allocated {}",
            self.next
        );
    }

    /// Copy `dst.len()` bytes out of the region at `off`.
    pub fn copy_out(&self, off: u64, dst: &mut [u8]) {
        self.check(off, dst.len());
        dst.copy_from_slice(&self.mem[off as usize..off as usize + dst.len()]);
    }

    /// Copy `src` into the region at `off`.
    pub fn copy_in(&mut self, off: u64, src: &[u8]) {
        self.check(off, src.len());
        self.mem[off as usize..off as usize + src.len()].copy_from_slice(src);
    }

    /// Read one aligned 8-byte word.
    pub fn read_u64(&self, off: u64) -> u64 {
        debug_assert_eq!(off % 8, 0, "atomics require 8-byte alignment");
        self.check(off, 8);
        u64::from_le_bytes(
            self.mem[off as usize..off as usize + 8]
                .try_into()
                .expect("8 bytes"),
        )
    }

    /// Write one aligned 8-byte word.
    pub fn write_u64(&mut self, off: u64, v: u64) {
        debug_assert_eq!(off % 8, 0, "atomics require 8-byte alignment");
        self.check(off, 8);
        self.mem[off as usize..off as usize + 8].copy_from_slice(&v.to_le_bytes());
    }

    /// Atomic compare-and-swap on one word; returns the previous value
    /// (the swap happened iff it equals `expected`).
    pub fn cas(&mut self, off: u64, expected: u64, new: u64) -> u64 {
        let old = self.read_u64(off);
        if old == expected {
            self.write_u64(off, new);
        }
        old
    }

    /// Atomic fetch-and-add on one word; returns the previous value.
    pub fn fetch_add(&mut self, off: u64, add: u64) -> u64 {
        let old = self.read_u64(off);
        self.write_u64(off, old.wrapping_add(add));
        old
    }

    // ---- durability hooks (checkpoint images + crash recovery) ----

    /// Snapshot the allocated region for a checkpoint image. The backing
    /// vector may lag the watermark (a fresh pool holds no bytes yet);
    /// the missing suffix is implicitly zero and stays implicit.
    pub fn image(&self) -> Vec<u8> {
        self.mem[..(self.next as usize).min(self.mem.len())].to_vec()
    }

    /// Lose all contents, as a crash with volatile DRAM does: the region
    /// empties and the allocator resets.
    pub fn wipe(&mut self) {
        self.mem.clear();
        self.next = Self::ALIGN;
    }

    /// Restore from a checkpoint image: contents become exactly `image`
    /// and the allocator watermark becomes `allocated`.
    pub fn restore(&mut self, image: &[u8], allocated: u64) {
        debug_assert!(image.len() as u64 <= allocated.max(Self::ALIGN));
        self.next = allocated.max(Self::ALIGN);
        let need = (self.next as usize).max(image.len());
        self.mem.clear();
        self.mem.resize(need.next_power_of_two().max(64 * 1024), 0);
        self.mem[..image.len()].copy_from_slice(image);
    }

    /// Replay-apply a logged write. Unlike [`MemPool::copy_in`] this may
    /// land beyond the current watermark: the log interleaves writes and
    /// allocator advances, and a fuzzy checkpoint image can predate the
    /// alloc record covering a write that follows it.
    pub fn replay_write(&mut self, off: u64, src: &[u8]) {
        let end = off as usize + src.len();
        if self.mem.len() < end {
            self.mem.resize(end.next_power_of_two().max(64 * 1024), 0);
        }
        self.mem[off as usize..end].copy_from_slice(src);
        self.next = self
            .next
            .max((end as u64).div_ceil(Self::ALIGN) * Self::ALIGN);
    }

    /// Replay-apply a logged allocator advance: the watermark becomes at
    /// least `next` (max-merge makes re-application idempotent).
    pub fn replay_alloc_to(&mut self, next: u64) {
        if next > self.next {
            self.next = next;
            let need = next as usize;
            if self.mem.len() < need {
                self.mem.resize(need.next_power_of_two().max(64 * 1024), 0);
            }
        }
    }
}

impl Default for MemPool {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_never_returns_zero_and_aligns() {
        let mut p = MemPool::new();
        let a = p.alloc(10);
        let b = p.alloc(1);
        let c = p.alloc(8);
        assert_ne!(a, 0);
        assert_eq!(a % 8, 0);
        assert_eq!(b % 8, 0);
        assert_eq!(c % 8, 0);
        assert!(a < b && b < c);
    }

    #[test]
    fn copy_round_trip() {
        let mut p = MemPool::new();
        let off = p.alloc(16);
        p.copy_in(off, &[1, 2, 3, 4]);
        let mut out = [0u8; 4];
        p.copy_out(off, &mut out);
        assert_eq!(out, [1, 2, 3, 4]);
    }

    #[test]
    fn word_ops() {
        let mut p = MemPool::new();
        let off = p.alloc(8);
        p.write_u64(off, 7);
        assert_eq!(p.read_u64(off), 7);
        assert_eq!(p.cas(off, 7, 9), 7);
        assert_eq!(p.read_u64(off), 9);
        assert_eq!(p.cas(off, 7, 11), 9, "failed CAS leaves value");
        assert_eq!(p.read_u64(off), 9);
        assert_eq!(p.fetch_add(off, 1), 9);
        assert_eq!(p.read_u64(off), 10);
    }

    #[test]
    fn growth_preserves_content() {
        let mut p = MemPool::new();
        let off = p.alloc(8);
        p.write_u64(off, 0xabcd);
        for _ in 0..100 {
            p.alloc(1 << 16);
        }
        assert_eq!(p.read_u64(off), 0xabcd);
    }

    #[test]
    fn wipe_then_restore_round_trips() {
        let mut p = MemPool::new();
        let off = p.alloc(32);
        p.copy_in(off, &[5; 32]);
        let image = p.image();
        let mark = p.allocated();
        p.wipe();
        assert_eq!(p.allocated(), MemPool::ALIGN, "crash resets the allocator");
        p.restore(&image, mark);
        let mut out = [0u8; 32];
        p.copy_out(off, &mut out);
        assert_eq!(out, [5; 32]);
        assert_eq!(p.allocated(), mark);
    }

    #[test]
    fn replay_writes_may_outrun_the_watermark() {
        let mut p = MemPool::new();
        // A write whose alloc record the checkpoint image already
        // absorbed: replay must grow the region rather than panic.
        p.replay_write(1 << 16, &9u64.to_le_bytes());
        assert_eq!(p.read_u64(1 << 16), 9);
        p.replay_alloc_to(1 << 18);
        assert_eq!(p.allocated(), 1 << 18);
        // Re-application is idempotent (max-merge).
        p.replay_alloc_to(1 << 16);
        assert_eq!(p.allocated(), 1 << 18);
    }

    #[test]
    #[should_panic(expected = "beyond allocated")]
    fn oob_read_panics() {
        let p = MemPool::new();
        let mut buf = [0u8; 8];
        p.copy_out(1 << 20, &mut buf);
    }
}
