//! Reusable verb buffers: a size-classed free list of page buffers and
//! the [`PageBuf`] checkout guard.
//!
//! Every one-sided READ used to allocate a fresh `Vec<u8>` for its
//! payload — at millions of simulated verbs per wall second the
//! allocator, not the event loop, dominated the profile. The arena keeps
//! returned buffers on power-of-two free lists; a steady-state descent
//! (READ page → inspect → drop) recycles the same handful of buffers and
//! performs zero heap allocations.
//!
//! ## Ownership and guard rules
//!
//! * [`BufArena::checkout`] hands out a [`PageBuf`] holding exactly the
//!   requested length; its bytes are *uninitialised in value* (recycled
//!   contents) — the verb layer always overwrites the full buffer before
//!   returning it to a caller.
//! * Dropping a `PageBuf` returns its storage to the arena (bounded per
//!   size class; surplus buffers free normally). Buffers may outlive any
//!   await point and be held across operations — the arena is not
//!   borrowed, so there is no lifetime coupling to the cluster.
//! * [`PageBuf::detached`] / `From<Vec<u8>>` wrap plain vectors with no
//!   arena (setup paths, caches, tests); dropping those frees normally.
//! * `Clone` checks a fresh buffer out of the owning arena (or detaches),
//!   so clones never alias.
//!
//! The arena is strictly single-threaded (`Rc`), like the simulation that
//! owns it; parallel sweep cells each build their own cluster and arena.

use std::cell::RefCell;
use std::rc::Rc;

/// Free buffers are binned by power-of-two capacity: class `c` holds
/// vectors of capacity `1 << c`. 25 classes cover up to 16 MiB.
const NUM_CLASSES: usize = 25;

/// At most this many free buffers are retained per class; extras are
/// dropped. Bounds arena memory at a few MiB for page-sized classes.
const MAX_FREE_PER_CLASS: usize = 128;

#[derive(Default)]
struct ArenaInner {
    free: Vec<Vec<Vec<u8>>>,
    checkouts: u64,
    reuses: u64,
}

fn class_of(len: usize) -> usize {
    len.next_power_of_two().trailing_zeros() as usize
}

/// A single-threaded pool of reusable byte buffers.
#[derive(Clone, Default)]
pub struct BufArena {
    inner: Rc<RefCell<ArenaInner>>,
}

impl BufArena {
    /// Fresh, empty arena.
    pub fn new() -> Self {
        BufArena::default()
    }

    /// Check out a buffer of exactly `len` bytes. Contents are recycled
    /// garbage; the caller must overwrite before exposing them.
    pub fn checkout(&self, len: usize) -> PageBuf {
        let class = class_of(len);
        assert!(
            class < NUM_CLASSES,
            "buffer of {len} bytes exceeds arena classes"
        );
        let mut inner = self.inner.borrow_mut();
        inner.checkouts += 1;
        let data = if let Some(mut v) = inner.free.get_mut(class).and_then(Vec::pop) {
            inner.reuses += 1;
            // Capacity is the class size ≥ len: truncate (no-op for u8)
            // or zero-extend only the delta from the buffer's last use.
            v.resize(len, 0);
            v
        } else {
            let mut v = Vec::with_capacity(1 << class);
            v.resize(len, 0);
            v
        };
        PageBuf {
            data,
            arena: Some(Rc::clone(&self.inner)),
        }
    }

    /// Check out a buffer initialised with a copy of `bytes`.
    pub fn checkout_copy(&self, bytes: &[u8]) -> PageBuf {
        let mut buf = self.checkout(bytes.len());
        buf.copy_from_slice(bytes);
        buf
    }

    /// Total checkouts and how many were served from the free list.
    pub fn stats(&self) -> (u64, u64) {
        let inner = self.inner.borrow();
        (inner.checkouts, inner.reuses)
    }
}

fn arena_put(inner: &Rc<RefCell<ArenaInner>>, v: Vec<u8>) {
    let class = class_of(v.capacity());
    // Only recycle exact class-sized capacities (everything the arena
    // itself hands out); odd capacities from detached conversions drop.
    if v.capacity() != (1usize << class) || class >= NUM_CLASSES {
        return;
    }
    let mut inner = inner.borrow_mut();
    if inner.free.len() <= class {
        inner.free.resize_with(class + 1, Vec::new);
    }
    let bin = &mut inner.free[class];
    if bin.len() < MAX_FREE_PER_CLASS {
        bin.push(v);
    }
}

/// An owned byte buffer, returned to its arena on drop.
///
/// Dereferences to `[u8]`, so existing page-view code (`LeafNodeRef`,
/// `kind_of`, slice indexing) works unchanged.
pub struct PageBuf {
    data: Vec<u8>,
    arena: Option<Rc<RefCell<ArenaInner>>>,
}

impl PageBuf {
    /// Wrap a plain vector with no arena backing (setup paths, tests);
    /// dropping frees normally.
    pub fn detached(data: Vec<u8>) -> Self {
        PageBuf { data, arena: None }
    }

    /// Consume the buffer, keeping its bytes as a plain `Vec` (the
    /// storage is *not* returned to the arena).
    pub fn into_vec(mut self) -> Vec<u8> {
        self.arena = None;
        std::mem::take(&mut self.data)
    }
}

impl From<Vec<u8>> for PageBuf {
    fn from(data: Vec<u8>) -> Self {
        PageBuf::detached(data)
    }
}

impl Drop for PageBuf {
    fn drop(&mut self) {
        if let Some(arena) = self.arena.take() {
            arena_put(&arena, std::mem::take(&mut self.data));
        }
    }
}

impl std::ops::Deref for PageBuf {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl std::ops::DerefMut for PageBuf {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }
}

impl AsRef<[u8]> for PageBuf {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl Clone for PageBuf {
    fn clone(&self) -> Self {
        match &self.arena {
            Some(arena) => {
                let a = BufArena {
                    inner: Rc::clone(arena),
                };
                a.checkout_copy(&self.data)
            }
            None => PageBuf::detached(self.data.clone()),
        }
    }
}

impl std::fmt::Debug for PageBuf {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PageBuf")
            .field("len", &self.data.len())
            .field("arena", &self.arena.is_some())
            .finish()
    }
}

impl PartialEq for PageBuf {
    fn eq(&self, other: &Self) -> bool {
        self.data == other.data
    }
}
impl Eq for PageBuf {}

impl PartialEq<Vec<u8>> for PageBuf {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.data == *other
    }
}

impl PartialEq<PageBuf> for Vec<u8> {
    fn eq(&self, other: &PageBuf) -> bool {
        *self == other.data
    }
}

impl PartialEq<[u8]> for PageBuf {
    fn eq(&self, other: &[u8]) -> bool {
        self.data == other
    }
}

impl<const N: usize> PartialEq<[u8; N]> for PageBuf {
    fn eq(&self, other: &[u8; N]) -> bool {
        self.data == other
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checkout_is_len_exact_and_reused_after_drop() {
        let arena = BufArena::new();
        let a = arena.checkout(1024);
        assert_eq!(a.len(), 1024);
        drop(a);
        let b = arena.checkout(1024);
        assert_eq!(b.len(), 1024);
        let (checkouts, reuses) = arena.stats();
        assert_eq!(checkouts, 2);
        assert_eq!(reuses, 1, "second checkout must hit the free list");
    }

    #[test]
    fn size_classes_do_not_mix_small_into_large() {
        let arena = BufArena::new();
        drop(arena.checkout(64));
        // A 1 KiB checkout must not get the 64-byte buffer back.
        let big = arena.checkout(1024);
        assert_eq!(big.len(), 1024);
        let (_, reuses) = arena.stats();
        assert_eq!(reuses, 0);
    }

    #[test]
    fn same_class_different_len_resizes() {
        let arena = BufArena::new();
        {
            let mut a = arena.checkout(1000);
            a[999] = 77; // garbage a later, longer checkout must not leak...
        }
        let b = arena.checkout(1024); // same class (1024)
        assert_eq!(b.len(), 1024);
        // The zero-extended tail is defined (resize zero-fills the delta).
        assert_eq!(b[1023], 0);
    }

    #[test]
    fn clone_does_not_alias() {
        let arena = BufArena::new();
        let mut a = arena.checkout(16);
        a.copy_from_slice(&[9; 16]);
        let mut b = a.clone();
        b[0] = 1;
        assert_eq!(a[0], 9);
        assert_eq!(&b[1..], &[9; 15]);
    }

    #[test]
    fn detached_roundtrip_and_eq() {
        let v = vec![1u8, 2, 3];
        let p = PageBuf::from(v.clone());
        assert_eq!(p, v);
        assert_eq!(v, p);
        assert_eq!(p, [1u8, 2, 3]);
        assert_eq!(p.into_vec(), vec![1, 2, 3]);
    }

    #[test]
    fn free_list_is_bounded() {
        let arena = BufArena::new();
        let bufs: Vec<_> = (0..200).map(|_| arena.checkout(64)).collect();
        drop(bufs);
        let free = arena.inner.borrow().free[class_of(64)].len();
        assert!(free <= MAX_FREE_PER_CLASS);
    }
}
