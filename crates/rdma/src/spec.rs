//! Cluster configuration and cost model.
//!
//! One struct gathers every calibration constant of the simulation, with
//! defaults matched to the paper's testbed (§6: dual-port Mellanox
//! Connect-IB on InfiniBand FDR 4×, two Xeon E5-2660 v2 sockets per
//! machine, two memory servers per machine each on its own NIC port, the
//! NIC attached to one socket so the second server crosses QPI).
//!
//! Absolute magnitudes are modelled, not measured; what the defaults are
//! calibrated for is the *ordering of bottlenecks* the paper reports:
//! two-sided designs saturate memory-server CPU first, one-sided designs
//! saturate NIC bandwidth first, and the QPI-crossing server saturates
//! before its sibling.

use simnet::SimDur;

/// Durability model of the cluster's memory servers.
///
/// The NAM paper assumes recoverable memory regions and leaves the
/// mechanism open (§3.2 sketches battery-backed DRAM or logging to an
/// attached NVMe device). `Off` keeps the historical simulator behaviour:
/// a crashed server's memory magically survives, restart is instant.
/// `Wal` models the logging mechanism for real: every acknowledged
/// mutation is first made durable on a per-server simulated NVMe log
/// device (group-committed), a crash *wipes RAM*, and restart replays
/// checkpoint + log before the server reports healthy — so recovery time
/// is measured, not assumed away.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Durability {
    /// Magic-durable memory: crashes keep RAM, restarts are instant.
    /// The default, byte-compatible with every pre-durability run.
    #[default]
    Off,
    /// Per-server WAL + fuzzy checkpoints on a simulated NVMe device;
    /// crashes lose RAM and recovery replays the log.
    Wal,
}

/// All tunable parameters of the simulated cluster.
#[derive(Clone, Debug)]
pub struct ClusterSpec {
    /// Physical machines hosting memory servers.
    pub machines: usize,
    /// Memory servers per machine (the paper deploys 2, one per NIC port).
    pub servers_per_machine: usize,
    /// RPC handler cores per memory server (one socket's worth).
    pub rpc_cores_per_server: usize,

    /// NIC port bandwidth per memory server, bytes/second (FDR 4× ≈ 6.8 GB/s).
    pub nic_bandwidth: f64,
    /// Per-message wire/NIC processing overhead for synchronous verbs
    /// (each READ in a descent pays full request processing).
    pub op_wire_overhead: SimDur,
    /// Per-message overhead for *batched* (selectively signalled, §4.3)
    /// verbs: pipelined request processing overlaps the wire, so a batch
    /// approaches line rate — this is what lets range scans saturate the
    /// aggregated bandwidth in Fig. 9.
    pub batched_wire_overhead: SimDur,
    /// Extra wire overhead for remote atomics (CAS / FETCH_AND_ADD).
    pub atomic_wire_overhead: SimDur,
    /// One-sided verb round-trip latency (uncontended).
    pub rt_latency: SimDur,

    /// Bandwidth factor for the memory server that must cross QPI
    /// (the one not co-located with the NIC socket). Mild: QPI capacity
    /// exceeds one FDR port, so wire flows lose little.
    pub qpi_bandwidth_factor: f64,
    /// CPU service-time multiplier for the QPI-crossing server. This is
    /// where crossing QPI really hurts — every RPC's memory traffic
    /// crosses the socket interconnect, which is §6.1's explanation for
    /// the coarse-grained design saturating at ~20 clients/machine.
    pub qpi_cpu_factor: f64,

    /// Whether compute servers are co-located with memory servers
    /// (Appendix A.3); when true, accesses to a memory server on the
    /// client's machine take the local path.
    pub colocated_compute: bool,
    /// Local-path latency (local memory access instead of the wire).
    pub local_latency: SimDur,
    /// Local-path bandwidth, bytes/second (one socket's memory bus).
    pub local_bandwidth: f64,

    // --- CPU cost model for two-sided RPC handlers ---
    /// Fixed per-RPC handling cost (receive, dispatch, send).
    pub rpc_fixed_cpu: SimDur,
    /// Cost per index node visited by a handler.
    pub cpu_per_node: SimDur,
    /// Cost per leaf entry scanned/copied by a handler.
    pub cpu_per_entry: SimDur,
    /// Cost per node split performed by a handler.
    pub cpu_per_split: SimDur,
    /// Extra CPU a server-side *write* (insert/delete) costs beyond the
    /// traversal: amortised page allocation, split bookkeeping, and the
    /// per-server epoch GC / rebalancing the paper runs on memory servers
    /// (§3.2). The fine-grained design pays none of this on servers — its
    /// writes and GC run from compute servers (§4.2), which is why it
    /// overtakes the two-sided designs under insert-heavy load (Fig. 12).
    pub cpu_insert_extra: SimDur,
    /// Virtual lock hold time for a leaf update: the handler's whole
    /// critical section (modify + response prep) holds the page lock, and
    /// waiters *spin on a core* — the degradation mechanism §6.3 names
    /// for the two-sided designs under insert-heavy load (Fig. 12).
    pub leaf_lock_hold: SimDur,
    /// Extra CPU per RPC per connected client: reliable-connection QP
    /// state thrashes CPU/NIC caches as clients scale (the effect FaSST
    /// FaSST documents for RC; the paper's design uses RC + SRQs, §3.2).
    /// This is what makes two-sided designs *decline* — not just plateau —
    /// under high load (Fig. 7a, Fig. 12).
    pub rpc_client_penalty: SimDur,

    // --- failure model (fault injection + recovery) ---
    /// Completion deadline for a single verb: if a verb cannot complete
    /// by `issue + verb_timeout` (queueing, degradation, or a dropped
    /// message), it fails with `VerbError::Timeout` at the deadline.
    /// Generous by default so fault-free RPC queueing never trips it.
    pub verb_timeout: SimDur,
    /// First retry backoff step for retryable verb failures.
    pub retry_backoff_base: SimDur,
    /// Retry backoff ceiling (exponential growth is clamped here).
    pub retry_backoff_cap: SimDur,
    /// Retries before an operation gives up with `OpError`.
    pub retry_limit: u32,
    /// Virtual-time lease on a held page lock: a contender observing the
    /// *same* locked word for this long may break the lock via CAS
    /// (see `blink::layout::lock_word::break_lease`).
    ///
    /// Safety invariant (checked by [`ClusterSpec::validate`]): the lease
    /// must exceed the longest *legitimate* hold. A live holder's
    /// critical section issues at most [`MAX_LOCK_HOLD_VERBS`] verbs
    /// after its acquire CAS (page alloc, split-sibling WRITE, in-place
    /// WRITE-back, unlock FAA), and every verb either applies its effect
    /// or fails with no effect by `issue + verb_timeout`. So after
    /// `MAX_LOCK_HOLD_VERBS * verb_timeout` of an unchanged locked word,
    /// no effect of a live holder can still land — only then is the
    /// break CAS safe, and "a live holder can never be broken" holds.
    pub lease_duration: SimDur,

    // --- durability model (per-server WAL on a simulated NVMe device) ---
    /// Which durability model memory servers run (see [`Durability`]).
    pub durability: Durability,
    /// Log-device sequential write bandwidth, bytes/second (enterprise
    /// NVMe, ≈2 GB/s sustained with forced-unit-access writes).
    pub wal_write_bandwidth: f64,
    /// Log-device sequential read bandwidth, bytes/second (recovery
    /// replay streams the log back at read speed).
    pub wal_read_bandwidth: f64,
    /// Fixed latency of one durable write (flush/FUA round trip into the
    /// device's power-loss-protected buffer). This is the cost group
    /// commit amortises: one coalesced flush pays it once.
    pub wal_fsync_latency: SimDur,
    /// Group commit: coalesce every record pending at flush time into one
    /// device write (`true`), or flush strictly one record per device
    /// write (`false`, the comparison baseline).
    pub wal_group_commit: bool,
    /// Take a fuzzy checkpoint once the log since the last checkpoint
    /// exceeds this many bytes. Bounds replay work — and therefore
    /// recovery time — at the cost of periodic image writes.
    pub wal_checkpoint_every_bytes: u64,
    /// CPU cost of applying one log record during recovery replay.
    pub wal_replay_cpu_per_record: SimDur,
    /// Fixed restart cost before replay begins (process boot, device
    /// open, queue-pair re-establishment). Incurred once per recovery.
    pub wal_restart_boot_latency: SimDur,

    // --- learned-index design (design 4) knobs ---
    /// Error bound ε of the learned model's linear segments: a predicted
    /// table position is within ±ε of the true one at training time.
    /// Must be ≥ 1: a zero ε leaves float rounding nowhere to go.
    pub learned_epsilon: u32,
    /// Stale-prediction rate (mispredicts / predictions since the last
    /// training) at which the learned design retrains its model. Must be
    /// in (0, 1].
    pub learned_retrain_threshold: f64,
    /// Maximum segment count of the model's top level (the recursion
    /// stops once a level fits). Must be ≥ 2.
    pub learned_model_fanout: usize,
}

/// Upper bound on the verbs a holder issues while a page lock is held:
/// remote page alloc + split-sibling WRITE + in-place WRITE-back +
/// unlock FAA. Used by [`ClusterSpec::validate`] to lower-bound
/// `lease_duration` against `verb_timeout`.
pub const MAX_LOCK_HOLD_VERBS: u32 = 4;

impl Default for ClusterSpec {
    fn default() -> Self {
        ClusterSpec {
            machines: 2,
            servers_per_machine: 2,
            rpc_cores_per_server: 10,
            nic_bandwidth: 6.8e9,
            op_wire_overhead: SimDur::from_nanos(500),
            batched_wire_overhead: SimDur::from_nanos(60),
            atomic_wire_overhead: SimDur::from_nanos(500),
            rt_latency: SimDur::from_nanos(2_500),
            qpi_bandwidth_factor: 0.9,
            qpi_cpu_factor: 2.0,
            colocated_compute: false,
            local_latency: SimDur::from_nanos(300),
            local_bandwidth: 40e9,
            rpc_fixed_cpu: SimDur::from_nanos(6_000),
            cpu_per_node: SimDur::from_nanos(250),
            cpu_per_entry: SimDur::from_nanos(15),
            cpu_per_split: SimDur::from_nanos(2_000),
            cpu_insert_extra: SimDur::from_nanos(30_000),
            leaf_lock_hold: SimDur::from_nanos(6_000),
            rpc_client_penalty: SimDur::from_nanos(25),
            verb_timeout: SimDur::from_millis(1),
            retry_backoff_base: SimDur::from_micros(2),
            retry_backoff_cap: SimDur::from_micros(256),
            retry_limit: 16,
            lease_duration: SimDur::from_millis(5),
            durability: Durability::Off,
            wal_write_bandwidth: 2.0e9,
            wal_read_bandwidth: 3.5e9,
            wal_fsync_latency: SimDur::from_micros(10),
            wal_group_commit: true,
            wal_checkpoint_every_bytes: 16 << 20,
            wal_replay_cpu_per_record: SimDur::from_nanos(150),
            wal_restart_boot_latency: SimDur::from_millis(2),
            learned_epsilon: 8,
            learned_retrain_threshold: 0.05,
            learned_model_fanout: 64,
        }
    }
}

impl ClusterSpec {
    /// Default spec with `n` memory servers (packed two per machine as in
    /// the paper's deployment).
    pub fn with_memory_servers(n: usize) -> Self {
        assert!(n > 0);
        let servers_per_machine = 2.min(n);
        ClusterSpec {
            machines: n.div_ceil(servers_per_machine),
            servers_per_machine,
            ..ClusterSpec::default()
        }
    }

    /// Total memory servers in the cluster.
    pub fn num_servers(&self) -> usize {
        self.machines * self.servers_per_machine
    }

    /// Machine hosting memory server `s`.
    pub fn machine_of(&self, s: usize) -> usize {
        s / self.servers_per_machine
    }

    /// Whether server `s` must cross QPI to reach its NIC port
    /// (every server on a machine except the first).
    pub fn crosses_qpi(&self, s: usize) -> bool {
        !s.is_multiple_of(self.servers_per_machine)
    }

    /// Effective NIC bandwidth of server `s` in bytes/second.
    pub fn effective_bandwidth(&self, s: usize) -> f64 {
        if self.crosses_qpi(s) {
            self.nic_bandwidth * self.qpi_bandwidth_factor
        } else {
            self.nic_bandwidth
        }
    }

    /// CPU service multiplier of server `s`.
    pub fn cpu_factor(&self, s: usize) -> f64 {
        if self.crosses_qpi(s) {
            self.qpi_cpu_factor
        } else {
            1.0
        }
    }

    /// Wire occupancy of a `bytes`-sized message on server `s`'s port.
    pub fn wire_time(&self, s: usize, bytes: usize) -> SimDur {
        self.op_wire_overhead + SimDur::from_secs_f64(bytes as f64 / self.effective_bandwidth(s))
    }

    /// Wire occupancy of one message within a pipelined batch.
    pub fn batched_wire_time(&self, s: usize, bytes: usize) -> SimDur {
        self.batched_wire_overhead
            + SimDur::from_secs_f64(bytes as f64 / self.effective_bandwidth(s))
    }

    /// Local-path transfer time for `bytes`.
    pub fn local_time(&self, bytes: usize) -> SimDur {
        self.local_latency + SimDur::from_secs_f64(bytes as f64 / self.local_bandwidth)
    }

    /// Panic if the failure-model parameters violate the lease-break
    /// safety invariant (see [`ClusterSpec::lease_duration`]). Called by
    /// `Cluster::new`, so an unsafe configuration fails loudly at setup
    /// instead of silently permitting lost updates.
    pub fn validate(&self) {
        let max_hold = self.verb_timeout * MAX_LOCK_HOLD_VERBS as u64;
        assert!(
            self.lease_duration > max_hold,
            "lease_duration ({}ns) must exceed the longest legitimate lock \
             hold, {MAX_LOCK_HOLD_VERBS} verbs x verb_timeout = {}ns; a \
             shorter lease lets a contender break a *live* holder whose \
             write-back or unlock is still in flight (lost update / ghost \
             lock)",
            self.lease_duration.as_nanos(),
            max_hold.as_nanos(),
        );
        assert!(
            self.learned_epsilon >= 1,
            "learned_epsilon must be >= 1: the model's bounded search \
             window needs at least one position of slack for float \
             rounding (got {})",
            self.learned_epsilon,
        );
        assert!(
            self.learned_retrain_threshold > 0.0 && self.learned_retrain_threshold <= 1.0,
            "learned_retrain_threshold must be in (0, 1]: it is a \
             stale-prediction *rate*; 0 would retrain on every mispredict \
             before the rate is even defined (got {})",
            self.learned_retrain_threshold,
        );
        if self.durability == Durability::Wal {
            assert!(
                self.wal_write_bandwidth > 0.0 && self.wal_read_bandwidth > 0.0,
                "wal_write_bandwidth / wal_read_bandwidth must be positive \
                 when durability is Wal: every acknowledged mutation waits \
                 on a log flush, a zero-throughput device never \
                 acknowledges anything (got {} / {})",
                self.wal_write_bandwidth,
                self.wal_read_bandwidth,
            );
            assert!(
                self.wal_checkpoint_every_bytes > 0,
                "wal_checkpoint_every_bytes must be positive when \
                 durability is Wal: a zero threshold triggers a checkpoint \
                 after every append and the log never accumulates",
            );
            // Tie the checkpoint interval to the log device's throughput:
            // accumulating one interval of log must take longer than a
            // single durable write's fixed fsync cost, or the device
            // spends its whole duty cycle writing checkpoint images
            // instead of group-committed appends and the flush queue
            // grows without bound.
            let interval = SimDur::from_secs_f64(
                self.wal_checkpoint_every_bytes as f64 / self.wal_write_bandwidth,
            );
            assert!(
                interval > self.wal_fsync_latency,
                "wal_checkpoint_every_bytes ({} bytes) is too small for the \
                 configured log device: streaming one checkpoint interval \
                 of log takes {}ns, within one fsync ({}ns) — checkpoints \
                 would fire faster than individual flushes complete. Raise \
                 the interval, raise wal_write_bandwidth, or lower \
                 wal_fsync_latency",
                self.wal_checkpoint_every_bytes,
                interval.as_nanos(),
                self.wal_fsync_latency.as_nanos(),
            );
        }
        assert!(
            self.learned_model_fanout >= 2,
            "learned_model_fanout must be >= 2: the segment recursion \
             shrinks by grouping, a top level of < 2 segments per step \
             cannot terminate meaningfully (got {})",
            self.learned_model_fanout,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_deployment() {
        let spec = ClusterSpec::default();
        assert_eq!(spec.num_servers(), 4);
        assert_eq!(spec.machine_of(0), 0);
        assert_eq!(spec.machine_of(1), 0);
        assert_eq!(spec.machine_of(2), 1);
        assert!(!spec.crosses_qpi(0));
        assert!(spec.crosses_qpi(1));
        assert!(!spec.crosses_qpi(2));
    }

    #[test]
    fn with_memory_servers_counts() {
        for n in 1..=8 {
            let spec = ClusterSpec::with_memory_servers(n);
            assert!(spec.num_servers() >= n, "n={n}");
            assert!(spec.num_servers() - n < 2);
        }
        assert_eq!(ClusterSpec::with_memory_servers(1).num_servers(), 1);
        assert_eq!(ClusterSpec::with_memory_servers(8).machines, 4);
    }

    #[test]
    fn qpi_penalises_second_server() {
        let spec = ClusterSpec::default();
        assert!(spec.effective_bandwidth(1) < spec.effective_bandwidth(0));
        assert!(spec.cpu_factor(1) > spec.cpu_factor(0));
        assert!(spec.wire_time(1, 1024) > spec.wire_time(0, 1024));
    }

    #[test]
    fn default_spec_upholds_lease_invariant() {
        let spec = ClusterSpec::default();
        spec.validate();
        assert!(spec.lease_duration > spec.verb_timeout * MAX_LOCK_HOLD_VERBS as u64);
    }

    #[test]
    #[should_panic(expected = "lease_duration")]
    fn short_lease_is_rejected() {
        let spec = ClusterSpec {
            // One verb_timeout short of the safe bound: a holder's late
            // unlock FAA could land after a contender's break.
            lease_duration: SimDur::from_millis(3),
            ..ClusterSpec::default()
        };
        spec.validate();
    }

    #[test]
    #[should_panic(expected = "learned_epsilon")]
    fn zero_epsilon_is_rejected() {
        let spec = ClusterSpec {
            learned_epsilon: 0,
            ..ClusterSpec::default()
        };
        spec.validate();
    }

    #[test]
    #[should_panic(expected = "learned_retrain_threshold")]
    fn zero_retrain_threshold_is_rejected() {
        let spec = ClusterSpec {
            learned_retrain_threshold: 0.0,
            ..ClusterSpec::default()
        };
        spec.validate();
    }

    #[test]
    #[should_panic(expected = "learned_retrain_threshold")]
    fn over_unit_retrain_threshold_is_rejected() {
        let spec = ClusterSpec {
            learned_retrain_threshold: 1.5,
            ..ClusterSpec::default()
        };
        spec.validate();
    }

    #[test]
    #[should_panic(expected = "learned_model_fanout")]
    fn degenerate_model_fanout_is_rejected() {
        let spec = ClusterSpec {
            learned_model_fanout: 1,
            ..ClusterSpec::default()
        };
        spec.validate();
    }

    #[test]
    fn wal_defaults_validate_under_wal_durability() {
        let spec = ClusterSpec {
            durability: Durability::Wal,
            ..ClusterSpec::default()
        };
        spec.validate();
    }

    #[test]
    fn off_durability_ignores_wal_knobs() {
        // Back-compat: with durability Off the WAL knobs are inert and a
        // nonsensical device must not fail validation.
        let spec = ClusterSpec {
            durability: Durability::Off,
            wal_write_bandwidth: 0.0,
            wal_checkpoint_every_bytes: 0,
            ..ClusterSpec::default()
        };
        spec.validate();
    }

    #[test]
    #[should_panic(expected = "wal_write_bandwidth")]
    fn zero_device_bandwidth_is_rejected() {
        let spec = ClusterSpec {
            durability: Durability::Wal,
            wal_write_bandwidth: 0.0,
            ..ClusterSpec::default()
        };
        spec.validate();
    }

    #[test]
    #[should_panic(expected = "wal_checkpoint_every_bytes")]
    fn zero_checkpoint_interval_is_rejected() {
        let spec = ClusterSpec {
            durability: Durability::Wal,
            wal_checkpoint_every_bytes: 0,
            ..ClusterSpec::default()
        };
        spec.validate();
    }

    #[test]
    #[should_panic(expected = "too small for the configured log device")]
    fn checkpoint_interval_must_outlast_one_fsync() {
        // 1 KiB interval at 2 GB/s streams in 500ns, far inside the 10us
        // fsync: the device would checkpoint continuously.
        let spec = ClusterSpec {
            durability: Durability::Wal,
            wal_checkpoint_every_bytes: 1024,
            ..ClusterSpec::default()
        };
        spec.validate();
    }

    #[test]
    fn wire_time_scales_with_bytes() {
        let spec = ClusterSpec::default();
        let small = spec.wire_time(0, 64);
        let large = spec.wire_time(0, 1024 * 1024);
        assert!(large > small * 10);
        // 1 MiB at 6.8 GB/s ≈ 154 µs.
        assert!(large.as_micros() > 100 && large.as_micros() < 300);
    }
}
