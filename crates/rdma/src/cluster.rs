//! The simulated cluster: memory servers, their NIC ports, RPC cores,
//! registered memory, and traffic counters.

use std::cell::RefCell;
use std::collections::BTreeSet;
use std::rc::Rc;

use simnet::resource::{CpuPool, FifoLink};
use simnet::rng::DetRng;
use simnet::stats::Counter;
use simnet::Sim;

use crate::fault::{FaultStats, LinkDegrade};
use crate::pool::MemPool;
use crate::ptr::RemotePtr;
use crate::spec::ClusterSpec;

/// One memory server's simulated hardware and state.
pub(crate) struct MemServer {
    /// The server's NIC port (wire-time FIFO).
    pub nic: FifoLink,
    /// RPC handler cores.
    pub cpu: CpuPool,
    /// RDMA-registered memory.
    pub pool: RefCell<MemPool>,
    /// Bytes received over the wire (writes, RPC requests).
    pub bytes_in: Counter,
    /// Bytes sent over the wire (reads, RPC responses).
    pub bytes_out: Counter,
    /// Bytes moved over the local path (co-located accesses).
    pub local_bytes: Counter,
    /// One-sided verbs served.
    pub onesided_ops: Counter,
    /// Two-sided RPCs served.
    pub rpcs: Counter,
}

struct Inner {
    sim: Sim,
    spec: ClusterSpec,
    servers: Vec<MemServer>,
    /// Connected compute clients (drives per-RPC RC state overhead).
    active_clients: std::cell::Cell<usize>,
    /// Endpoint id allocator (stable, creation-ordered).
    next_client: std::cell::Cell<u64>,
    /// Injected-fault state (all servers up, no faults, by default).
    faults: RefCell<FaultState>,
    /// Installed verb observers (sanitizer, telemetry, ...), fired in
    /// registration order.
    observers: RefCell<Vec<Rc<dyn crate::observer::VerbObserver>>>,
    /// Mirror of `!observers.is_empty()`; a plain `Cell` read so the verb
    /// hot path pays one flag check when nothing is listening.
    observers_active: std::cell::Cell<bool>,
}

/// Mutable fault-injection state; see [`crate::fault`].
struct FaultState {
    /// Per-server liveness (a crashed server keeps its memory — the NAM
    /// architecture assumes durable/remote-recoverable regions — but is
    /// unreachable until restarted).
    server_up: Vec<bool>,
    /// Restart counter per server (catalog re-resolution keys off this).
    server_restarts: Vec<u64>,
    /// Killed compute clients; their verbs fail with `Cancelled`.
    dead_clients: BTreeSet<u64>,
    /// Clients to kill immediately after their next successful
    /// lock-acquire CAS (realises "die between lock CAS and unlock FAA"
    /// deterministically).
    kill_on_lock_acquire: BTreeSet<u64>,
    /// Predicate deciding whether a CAS `(expected, new)` has the shape
    /// of a lock acquire. Injected by the index layer that owns the
    /// lock-word encoding (the transport knows nothing about it); the
    /// kill-on-lock-acquire trigger cannot fire until one is installed.
    acquire_shape: Option<fn(u64, u64) -> bool>,
    /// Per-server link degradation, if any.
    degrade: Vec<Option<LinkDegrade>>,
    /// Drop-roll RNG; only consulted when a degraded link has a nonzero
    /// drop chance, so fault-free runs draw nothing from it.
    rng: DetRng,
    stats: FaultStats,
}

impl FaultState {
    fn new(n: usize) -> Self {
        FaultState {
            server_up: vec![true; n],
            server_restarts: vec![0; n],
            dead_clients: BTreeSet::new(),
            kill_on_lock_acquire: BTreeSet::new(),
            acquire_shape: None,
            degrade: vec![None; n],
            rng: DetRng::seed_from_u64(0),
            stats: FaultStats::default(),
        }
    }
}

/// Handle to the simulated cluster; cheap to clone.
#[derive(Clone)]
pub struct Cluster {
    inner: Rc<Inner>,
}

/// Snapshot of one memory server's counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Bytes received over the wire.
    pub bytes_in: u64,
    /// Bytes sent over the wire.
    pub bytes_out: u64,
    /// Bytes moved over the local (co-located) path.
    pub local_bytes: u64,
    /// One-sided verbs served.
    pub onesided_ops: u64,
    /// Two-sided RPCs served.
    pub rpcs: u64,
    /// Cumulative NIC wire occupancy, nanoseconds.
    pub nic_busy_nanos: u64,
    /// Cumulative RPC core occupancy, nanoseconds.
    pub cpu_busy_nanos: u64,
}

impl Cluster {
    /// Build a cluster per `spec` on the given simulation.
    pub fn new(sim: &Sim, spec: ClusterSpec) -> Self {
        assert!(
            spec.num_servers() <= RemotePtr::MAX_SERVERS,
            "remote pointers address at most 128 servers"
        );
        spec.validate();
        let spec_servers = spec.num_servers();
        let servers = (0..spec_servers)
            .map(|_| MemServer {
                nic: FifoLink::new(),
                cpu: CpuPool::new(spec.rpc_cores_per_server),
                pool: RefCell::new(MemPool::new()),
                bytes_in: Counter::new(),
                bytes_out: Counter::new(),
                local_bytes: Counter::new(),
                onesided_ops: Counter::new(),
                rpcs: Counter::new(),
            })
            .collect();
        Cluster {
            inner: Rc::new(Inner {
                sim: sim.clone(),
                spec,
                servers,
                active_clients: std::cell::Cell::new(0),
                next_client: std::cell::Cell::new(0),
                faults: RefCell::new(FaultState::new(spec_servers)),
                observers: RefCell::new(Vec::new()),
                observers_active: std::cell::Cell::new(false),
            }),
        }
    }

    /// Declare how many compute clients are connected; RPC handler
    /// service time grows by `rpc_client_penalty` per client (RC QP
    /// state pressure, see [`ClusterSpec::rpc_client_penalty`]).
    pub fn set_active_clients(&self, n: usize) {
        self.inner.active_clients.set(n);
    }

    /// Currently declared compute client count.
    pub fn active_clients(&self) -> usize {
        self.inner.active_clients.get()
    }

    /// The simulation this cluster runs on.
    pub fn sim(&self) -> &Sim {
        &self.inner.sim
    }

    /// Cluster configuration.
    pub fn spec(&self) -> &ClusterSpec {
        &self.inner.spec
    }

    /// Number of memory servers.
    pub fn num_servers(&self) -> usize {
        self.inner.servers.len()
    }

    pub(crate) fn server(&self, s: usize) -> &MemServer {
        &self.inner.servers[s]
    }

    /// Allocate a fresh endpoint (client) id.
    pub(crate) fn next_client_id(&self) -> u64 {
        let id = self.inner.next_client.get();
        self.inner.next_client.set(id + 1);
        id
    }

    // ---- fault injection (mechanism; schedules live in `chaos`) ----

    /// Seed the drop-roll RNG used by degraded links. Call before the
    /// run for reproducible probabilistic drops.
    pub fn set_fault_seed(&self, seed: u64) {
        self.inner.faults.borrow_mut().rng = DetRng::seed_from_u64(seed);
    }

    /// Crash memory server `s`: its regions become unreachable (verbs
    /// fail with `ServerUnreachable`) until [`Cluster::restart_server`].
    /// Registered memory survives the crash.
    pub fn fail_server(&self, s: usize) {
        self.inner.faults.borrow_mut().server_up[s] = false;
    }

    /// Restart a crashed memory server and bump its restart counter.
    /// In-flight RPC core queues are not drained retroactively; requests
    /// granted a core after the crash fail at the grant.
    pub fn restart_server(&self, s: usize) {
        let mut f = self.inner.faults.borrow_mut();
        if !f.server_up[s] {
            f.server_up[s] = true;
            f.server_restarts[s] += 1;
        }
    }

    /// Whether memory server `s` is up.
    pub fn server_up(&self, s: usize) -> bool {
        self.inner.faults.borrow().server_up[s]
    }

    /// How many times server `s` has been restarted.
    pub fn server_restarts(&self, s: usize) -> u64 {
        self.inner.faults.borrow().server_restarts[s]
    }

    /// Kill compute client `client`: every verb it issues from now on
    /// fails with `Cancelled`. Verbs already past their issue point
    /// complete normally (their remote effects apply — the client just
    /// never sees the completion).
    pub fn kill_client(&self, client: u64) {
        self.inner.faults.borrow_mut().dead_clients.insert(client);
    }

    /// Revive a killed client (models a replacement process adopting the
    /// same client id).
    pub fn revive_client(&self, client: u64) {
        let mut f = self.inner.faults.borrow_mut();
        f.dead_clients.remove(&client);
        f.kill_on_lock_acquire.remove(&client);
    }

    /// Whether `client` is currently killed.
    pub fn client_dead(&self, client: u64) -> bool {
        self.inner.faults.borrow().dead_clients.contains(&client)
    }

    /// Install the predicate that recognises a lock-acquire CAS shape
    /// `(expected, new)`. The transport is agnostic to any index's
    /// lock-word encoding; the layer that owns the encoding (e.g.
    /// `namdex-core`, which installs `blink::layout::lock_word::is_acquire`
    /// when building an index) injects it here so the
    /// kill-on-lock-acquire trigger can recognise acquisitions.
    /// Replaces any previously installed shape.
    pub fn set_lock_acquire_shape(&self, shape: fn(u64, u64) -> bool) {
        self.inner.faults.borrow_mut().acquire_shape = Some(shape);
    }

    /// Arm a one-shot trigger: the next time `client` wins a
    /// lock-acquire CAS, kill it immediately after the CAS's remote
    /// effect applies — deterministically realising "client dies between
    /// its lock CAS and its unlock FAA". Requires a lock-acquire shape
    /// ([`Cluster::set_lock_acquire_shape`]) so the trigger cannot
    /// silently never fire.
    pub fn arm_kill_on_lock_acquire(&self, client: u64) {
        let mut f = self.inner.faults.borrow_mut();
        assert!(
            f.acquire_shape.is_some(),
            "arm_kill_on_lock_acquire needs a lock-acquire shape; install \
             one with Cluster::set_lock_acquire_shape (index builds in \
             namdex-core do this automatically)"
        );
        f.kill_on_lock_acquire.insert(client);
    }

    /// Fire the lock-kill trigger for `client` if it is armed and the
    /// successful CAS `expected -> new` matches the installed
    /// acquire shape. Returns whether the client was just killed.
    pub(crate) fn maybe_fire_lock_kill(&self, client: u64, expected: u64, new: u64) -> bool {
        let mut f = self.inner.faults.borrow_mut();
        if !f.kill_on_lock_acquire.contains(&client) {
            return false;
        }
        match f.acquire_shape {
            Some(shape) if shape(expected, new) => {
                f.kill_on_lock_acquire.remove(&client);
                f.dead_clients.insert(client);
                f.stats.lock_kills_fired += 1;
                true
            }
            _ => false,
        }
    }

    /// Degrade server `s`'s link (drops, delay spikes, reduced
    /// bandwidth) until [`Cluster::restore_link`].
    pub fn degrade_link(&self, s: usize, degrade: LinkDegrade) {
        assert!(
            degrade.bandwidth_factor > 0.0 && degrade.bandwidth_factor <= 1.0,
            "bandwidth_factor must be in (0, 1]"
        );
        assert!(
            (0.0..=1.0).contains(&degrade.drop_chance),
            "drop_chance must be a probability"
        );
        self.inner.faults.borrow_mut().degrade[s] = Some(degrade);
    }

    /// Remove any degradation from server `s`'s link.
    pub fn restore_link(&self, s: usize) {
        self.inner.faults.borrow_mut().degrade[s] = None;
    }

    /// Current degradation of server `s`'s link, if any.
    pub fn link_degrade(&self, s: usize) -> Option<LinkDegrade> {
        self.inner.faults.borrow().degrade[s]
    }

    /// Roll the drop die for one remote verb against server `s`. Only
    /// consumes randomness when a nonzero drop chance is configured, so
    /// fault-free runs stay byte-identical to pre-fault builds.
    pub(crate) fn roll_drop(&self, s: usize) -> bool {
        let mut f = self.inner.faults.borrow_mut();
        match f.degrade[s] {
            Some(d) if d.drop_chance > 0.0 => {
                let dropped = f.rng.chance(d.drop_chance);
                if dropped {
                    f.stats.verbs_dropped += 1;
                }
                dropped
            }
            _ => false,
        }
    }

    /// Fault-effect counters.
    pub fn fault_stats(&self) -> FaultStats {
        self.inner.faults.borrow().stats
    }

    pub(crate) fn note_cancelled(&self) {
        self.inner.faults.borrow_mut().stats.verbs_cancelled += 1;
    }

    pub(crate) fn note_unreachable(&self) {
        self.inner.faults.borrow_mut().stats.verbs_unreachable += 1;
    }

    pub(crate) fn note_timeout(&self) {
        self.inner.faults.borrow_mut().stats.verbs_timed_out += 1;
    }

    // ---- verb observation ----

    /// Register `observer` to receive every completed verb and the wider
    /// event surface (see [`crate::observer`]). Observers fire in
    /// registration order; registering the same observer twice delivers
    /// its events twice.
    pub fn add_observer(&self, observer: Rc<dyn crate::observer::VerbObserver>) {
        self.inner.observers.borrow_mut().push(observer);
        self.inner.observers_active.set(true);
    }

    /// Remove all installed observers.
    pub fn clear_observers(&self) {
        self.inner.observers.borrow_mut().clear();
        self.inner.observers_active.set(false);
    }

    /// Whether any observer is installed. The verb layer checks this
    /// before assembling event payloads so an unobserved run pays only
    /// this flag read.
    #[inline]
    pub fn has_observers(&self) -> bool {
        self.inner.observers_active.get()
    }

    /// Run `f` over each installed observer, in registration order. The
    /// list is cloned out first so an observer may register/clear
    /// observers from inside its callback.
    fn each_observer(&self, f: impl Fn(&dyn crate::observer::VerbObserver)) {
        if !self.inner.observers_active.get() {
            return;
        }
        let obs = self.inner.observers.borrow().clone();
        for o in &obs {
            f(o.as_ref());
        }
    }

    /// Report a completed verb to the installed observers.
    pub(crate) fn observe(&self, ev: crate::observer::VerbEvent) {
        self.each_observer(|o| o.on_verb(&ev));
    }

    /// Report a verb attempt against a crashed server to the observers.
    pub(crate) fn observe_unreachable(
        &self,
        client: u64,
        server: usize,
        kind: crate::fault::AttemptKind,
    ) {
        let now = self.inner.sim.now();
        self.each_observer(|o| o.on_unreachable(client, server, kind, now));
    }

    /// Report that epoch GC retired `[offset, offset + len)` on `server`;
    /// later verbs touching it are use-after-free (see
    /// [`crate::observer::VerbObserver::on_free`]).
    pub fn note_freed(&self, server: usize, offset: u64, len: usize) {
        let now = self.inner.sim.now();
        self.each_observer(|o| o.on_free(server, offset, len, now));
    }

    /// Report a completed two-sided RPC to the installed observers.
    pub(crate) fn observe_rpc(&self, ev: crate::observer::RpcEvent) {
        self.each_observer(|o| o.on_rpc(&ev));
    }

    /// Report a charged verb/RPC failure (timeout or unreachable).
    pub(crate) fn observe_verb_failed(&self, client: u64, server: usize) {
        let now = self.inner.sim.now();
        self.each_observer(|o| o.on_verb_failed(client, server, now));
    }

    /// Report that `client` began an index-level operation.
    pub fn note_op_start(&self, client: u64, kind: crate::observer::OpKind) {
        let now = self.inner.sim.now();
        self.each_observer(|o| o.on_op_start(client, kind, now));
    }

    /// Report that `client` finished its current index-level operation.
    pub fn note_op_end(&self, client: u64, kind: crate::observer::OpKind, ok: bool) {
        let now = self.inner.sim.now();
        self.each_observer(|o| o.on_op_end(client, kind, now, ok));
    }

    /// Report the arguments of the index-level operation `client` just
    /// invoked (fires inside the op span, before any remote access).
    pub fn note_op_invoke(&self, client: u64, args: crate::observer::OpArgs) {
        let now = self.inner.sim.now();
        self.each_observer(|o| o.on_op_invoke(client, args, now));
    }

    /// Report the outcome of the operation `client` invoked last.
    pub fn note_op_response(&self, client: u64, outcome: &crate::observer::OpOutcome) {
        let now = self.inner.sim.now();
        self.each_observer(|o| o.on_op_response(client, outcome, now));
    }

    /// Report that `client` entered (`enter`) or left a protocol region.
    pub fn note_region(&self, client: u64, kind: crate::observer::RegionKind, enter: bool) {
        let now = self.inner.sim.now();
        self.each_observer(|o| o.on_region(client, kind, enter, now));
    }

    /// Report a cluster-scoped labelled instant (fault injection etc.).
    pub fn note_instant(&self, label: &str) {
        let now = self.inner.sim.now();
        self.each_observer(|o| o.on_instant(label, now));
    }

    // ---- control path (untimed; for loading / setup, not measurement) ----

    /// Allocate `size` bytes on server `s` without charging simulated
    /// time. Loading-phase only.
    pub fn setup_alloc(&self, s: usize, size: u64) -> RemotePtr {
        let off = self.server(s).pool.borrow_mut().alloc(size);
        RemotePtr::new(s, off)
    }

    /// Write bytes without charging simulated time. Loading-phase only.
    pub fn setup_write(&self, ptr: RemotePtr, data: &[u8]) {
        self.server(ptr.server())
            .pool
            .borrow_mut()
            .copy_in(ptr.offset(), data);
    }

    /// Read bytes without charging simulated time. Loading-phase only.
    pub fn setup_read(&self, ptr: RemotePtr, len: usize) -> Vec<u8> {
        let mut buf = vec![0u8; len];
        self.server(ptr.server())
            .pool
            .borrow()
            .copy_out(ptr.offset(), &mut buf);
        buf
    }

    /// Run `f` with mutable access to server `s`'s memory pool, untimed.
    /// Loading-phase and GC bookkeeping only.
    pub fn with_pool<R>(&self, s: usize, f: impl FnOnce(&mut MemPool) -> R) -> R {
        f(&mut self.server(s).pool.borrow_mut())
    }

    // ---- statistics ----

    /// Snapshot one server's counters.
    pub fn server_stats(&self, s: usize) -> ServerStats {
        let sv = self.server(s);
        ServerStats {
            bytes_in: sv.bytes_in.get(),
            bytes_out: sv.bytes_out.get(),
            local_bytes: sv.local_bytes.get(),
            onesided_ops: sv.onesided_ops.get(),
            rpcs: sv.rpcs.get(),
            nic_busy_nanos: sv.nic.busy_time().as_nanos(),
            cpu_busy_nanos: sv.cpu.busy_time().as_nanos(),
        }
    }

    /// Snapshot all servers' counters.
    pub fn all_stats(&self) -> Vec<ServerStats> {
        (0..self.num_servers())
            .map(|s| self.server_stats(s))
            .collect()
    }

    /// Total bytes moved over the wire (both directions, all servers).
    pub fn total_wire_bytes(&self) -> u64 {
        self.inner
            .servers
            .iter()
            .map(|s| s.bytes_in.get() + s.bytes_out.get())
            .sum()
    }

    /// Aggregate theoretical wire capacity of all servers in bytes/second
    /// (the "Max. Bandwidth" line in Fig. 9).
    pub fn aggregate_bandwidth(&self) -> f64 {
        (0..self.num_servers())
            .map(|s| self.inner.spec.effective_bandwidth(s))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn setup_round_trip() {
        let sim = Sim::new();
        let cluster = Cluster::new(&sim, ClusterSpec::default());
        assert_eq!(cluster.num_servers(), 4);
        let ptr = cluster.setup_alloc(2, 64);
        assert_eq!(ptr.server(), 2);
        cluster.setup_write(ptr, &[9, 8, 7]);
        assert_eq!(cluster.setup_read(ptr, 3), vec![9, 8, 7]);
        // Untimed: the clock did not move.
        assert_eq!(sim.now().as_nanos(), 0);
    }

    #[test]
    fn stats_start_zero() {
        let sim = Sim::new();
        let cluster = Cluster::new(&sim, ClusterSpec::default());
        let stats = cluster.server_stats(0);
        assert_eq!(stats, ServerStats::default());
        assert_eq!(cluster.total_wire_bytes(), 0);
    }

    #[test]
    fn aggregate_bandwidth_counts_qpi() {
        let sim = Sim::new();
        let cluster = Cluster::new(&sim, ClusterSpec::default());
        let spec = ClusterSpec::default();
        let expect =
            2.0 * spec.nic_bandwidth + 2.0 * spec.nic_bandwidth * spec.qpi_bandwidth_factor;
        assert!((cluster.aggregate_bandwidth() - expect).abs() < 1.0);
    }
}
