//! The simulated cluster: memory servers, their NIC ports, RPC cores,
//! registered memory, and traffic counters.

use std::cell::RefCell;
use std::collections::BTreeSet;
use std::rc::{Rc, Weak};

use simnet::resource::{CpuPool, FifoLink};
use simnet::rng::DetRng;
use simnet::stats::Counter;
use simnet::{Sim, SimTime};

use wal::{CheckpointPayload, CheckpointSource, ServerWal, WalConfig, WalRecord, WalStats};

use crate::fault::{FaultStats, LinkDegrade};
use crate::pool::MemPool;
use crate::ptr::RemotePtr;
use crate::spec::{ClusterSpec, Durability};

/// Server-local index state that must survive crashes under
/// [`Durability::Wal`]. Implemented by the layer that owns the state (the
/// NAM layer's local trees); the transport only needs wipe / snapshot /
/// replay, all in terms of the logical `(key, value)` pairs that
/// [`WalRecord::TreeUpsert`] / [`WalRecord::TreeDelete`] carry.
pub trait DurableState {
    /// Drop all in-RAM state, as a crash with volatile DRAM does.
    fn wipe(&self);
    /// Snapshot the live `(key, value)` entries for a checkpoint image.
    fn snapshot(&self) -> Vec<(u64, u64)>;
    /// Rebuild from a checkpoint's entry snapshot.
    fn restore(&self, entries: &[(u64, u64)]);
    /// Replay one logged in-place upsert (update the first live entry
    /// under `key`, inserting only when none exists).
    fn upsert(&self, key: u64, value: u64);
    /// Replay one logged fresh insert verbatim (duplicate keys allowed —
    /// entry multiplicity must match the pre-crash tree).
    fn insert(&self, key: u64, value: u64);
    /// Replay one logged delete (absent key is a no-op).
    fn delete(&self, key: u64);
}

/// Callback fired with the server id when that server finishes
/// recovering (Wal) or restarts (Off).
type RecoveredHook = Rc<dyn Fn(usize)>;

/// One completed crash-recovery cycle under [`Durability::Wal`], with the
/// measured recovery time (the RTO numerator: restart command to healthy).
#[derive(Clone, Copy, Debug)]
pub struct RecoveryRecord {
    /// Which server recovered.
    pub server: usize,
    /// When the server crashed (RAM lost).
    pub crashed_at: SimTime,
    /// When the restart was commanded (boot + replay start here).
    pub restarted_at: SimTime,
    /// When the server reported healthy (verbs succeed again).
    pub healthy_at: SimTime,
    /// Checkpoint + log bytes streamed back from the device.
    pub replay_bytes: u64,
    /// Log records re-applied.
    pub records_replayed: u64,
    /// Torn-tail bytes discarded by the CRC scan.
    pub torn_bytes: u64,
}

impl RecoveryRecord {
    /// Recovery time: restart command to healthy (boot + device read +
    /// replay CPU). Crash-to-restart detection lag is schedule policy,
    /// not recovery work, so it is excluded.
    pub fn recovery_time(&self) -> simnet::SimDur {
        self.healthy_at - self.restarted_at
    }
}

/// One memory server's simulated hardware and state.
pub(crate) struct MemServer {
    /// The server's NIC port (wire-time FIFO).
    pub nic: FifoLink,
    /// RPC handler cores.
    pub cpu: CpuPool,
    /// RDMA-registered memory.
    pub pool: RefCell<MemPool>,
    /// The server's durability subsystem (`None` under [`Durability::Off`]).
    pub wal: Option<Rc<ServerWal>>,
    /// Bytes received over the wire (writes, RPC requests).
    pub bytes_in: Counter,
    /// Bytes sent over the wire (reads, RPC responses).
    pub bytes_out: Counter,
    /// Bytes moved over the local path (co-located accesses).
    pub local_bytes: Counter,
    /// One-sided verbs served.
    pub onesided_ops: Counter,
    /// Two-sided RPCs served.
    pub rpcs: Counter,
}

struct Inner {
    sim: Sim,
    spec: ClusterSpec,
    servers: Vec<MemServer>,
    /// Connected compute clients (drives per-RPC RC state overhead).
    active_clients: std::cell::Cell<usize>,
    /// Endpoint id allocator (stable, creation-ordered).
    next_client: std::cell::Cell<u64>,
    /// Injected-fault state (all servers up, no faults, by default).
    faults: RefCell<FaultState>,
    /// Installed verb observers (sanitizer, telemetry, ...), fired in
    /// registration order.
    observers: RefCell<Vec<Rc<dyn crate::observer::VerbObserver>>>,
    /// Mirror of `!observers.is_empty()`; a plain `Cell` read so the verb
    /// hot path pays one flag check when nothing is listening.
    observers_active: std::cell::Cell<bool>,
    /// Per-server registered durable index state (checkpoint capture +
    /// crash wipe + replay target under [`Durability::Wal`]).
    durable: RefCell<Vec<Option<Rc<dyn DurableState>>>>,
    /// Servers currently mid-recovery (restart commanded, replay not yet
    /// complete); guards double restarts.
    recovering: RefCell<Vec<bool>>,
    /// Callbacks fired when a server finishes recovering (Wal) or
    /// restarts (Off) — catalog generation bumps live here.
    recovered_hooks: RefCell<Vec<RecoveredHook>>,
    /// Completed crash-recovery cycles, in completion order.
    recovery_log: RefCell<Vec<RecoveryRecord>>,
    /// Reusable verb-payload buffers shared by every endpoint on this
    /// cluster; steady-state READs recycle instead of allocating.
    arena: crate::buf::BufArena,
}

/// Mutable fault-injection state; see [`crate::fault`].
struct FaultState {
    /// Per-server liveness. What a crash does to the server's memory is
    /// mode-dependent: under [`Durability::Off`] RAM magically survives
    /// (the NAM paper's recoverable-region assumption taken on faith);
    /// under [`Durability::Wal`] RAM is wiped and only the WAL +
    /// checkpoint on the server's log device persist.
    server_up: Vec<bool>,
    /// When each currently-down server crashed (None while up).
    crashed_at: Vec<Option<SimTime>>,
    /// Restart counter per server (catalog re-resolution keys off this).
    server_restarts: Vec<u64>,
    /// Killed compute clients; their verbs fail with `Cancelled`.
    dead_clients: BTreeSet<u64>,
    /// Clients to kill immediately after their next successful
    /// lock-acquire CAS (realises "die between lock CAS and unlock FAA"
    /// deterministically).
    kill_on_lock_acquire: BTreeSet<u64>,
    /// Predicate deciding whether a CAS `(expected, new)` has the shape
    /// of a lock acquire. Injected by the index layer that owns the
    /// lock-word encoding (the transport knows nothing about it); the
    /// kill-on-lock-acquire trigger cannot fire until one is installed.
    acquire_shape: Option<fn(u64, u64) -> bool>,
    /// Per-server link degradation, if any.
    degrade: Vec<Option<LinkDegrade>>,
    /// Drop-roll RNG; only consulted when a degraded link has a nonzero
    /// drop chance, so fault-free runs draw nothing from it.
    rng: DetRng,
    stats: FaultStats,
}

impl FaultState {
    fn new(n: usize) -> Self {
        FaultState {
            server_up: vec![true; n],
            crashed_at: vec![None; n],
            server_restarts: vec![0; n],
            dead_clients: BTreeSet::new(),
            kill_on_lock_acquire: BTreeSet::new(),
            acquire_shape: None,
            degrade: vec![None; n],
            rng: DetRng::seed_from_u64(0),
            stats: FaultStats::default(),
        }
    }
}

/// Handle to the simulated cluster; cheap to clone.
#[derive(Clone)]
pub struct Cluster {
    inner: Rc<Inner>,
}

/// Checkpoint capturer for one server: pool image + allocator watermark +
/// the registered durable state's entry snapshot. Holds the cluster
/// weakly so a WAL outliving its cluster captures nothing instead of
/// leaking a cycle.
struct ServerSnapshot {
    inner: Weak<Inner>,
    server: usize,
}

impl CheckpointSource for ServerSnapshot {
    fn capture(&self) -> Option<CheckpointPayload> {
        let inner = self.inner.upgrade()?;
        let sv = &inner.servers[self.server];
        let (pool_image, allocated) = {
            let pool = sv.pool.borrow();
            (pool.image(), pool.allocated())
        };
        let state = inner.durable.borrow()[self.server].clone();
        let tree_entries = state.map(|st| st.snapshot()).unwrap_or_default();
        Some(CheckpointPayload {
            pool_image,
            allocated,
            tree_entries,
        })
    }
}

/// Snapshot of one memory server's counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Bytes received over the wire.
    pub bytes_in: u64,
    /// Bytes sent over the wire.
    pub bytes_out: u64,
    /// Bytes moved over the local (co-located) path.
    pub local_bytes: u64,
    /// One-sided verbs served.
    pub onesided_ops: u64,
    /// Two-sided RPCs served.
    pub rpcs: u64,
    /// Cumulative NIC wire occupancy, nanoseconds.
    pub nic_busy_nanos: u64,
    /// Cumulative RPC core occupancy, nanoseconds.
    pub cpu_busy_nanos: u64,
}

impl Cluster {
    /// Build a cluster per `spec` on the given simulation.
    pub fn new(sim: &Sim, spec: ClusterSpec) -> Self {
        assert!(
            spec.num_servers() <= RemotePtr::MAX_SERVERS,
            "remote pointers address at most 128 servers"
        );
        spec.validate();
        let spec_servers = spec.num_servers();
        let servers = (0..spec_servers)
            .map(|_| MemServer {
                nic: FifoLink::new(),
                cpu: CpuPool::new(spec.rpc_cores_per_server),
                pool: RefCell::new(MemPool::new()),
                wal: match spec.durability {
                    Durability::Off => None,
                    Durability::Wal => Some(ServerWal::new(
                        sim,
                        WalConfig {
                            write_bandwidth: spec.wal_write_bandwidth,
                            read_bandwidth: spec.wal_read_bandwidth,
                            fsync_latency: spec.wal_fsync_latency,
                            group_commit: spec.wal_group_commit,
                            checkpoint_every_bytes: spec.wal_checkpoint_every_bytes,
                            replay_cpu_per_record: spec.wal_replay_cpu_per_record,
                        },
                    )),
                },
                bytes_in: Counter::new(),
                bytes_out: Counter::new(),
                local_bytes: Counter::new(),
                onesided_ops: Counter::new(),
                rpcs: Counter::new(),
            })
            .collect();
        let cluster = Cluster {
            inner: Rc::new(Inner {
                sim: sim.clone(),
                spec,
                servers,
                active_clients: std::cell::Cell::new(0),
                next_client: std::cell::Cell::new(0),
                faults: RefCell::new(FaultState::new(spec_servers)),
                observers: RefCell::new(Vec::new()),
                observers_active: std::cell::Cell::new(false),
                durable: RefCell::new(vec![None; spec_servers]),
                recovering: RefCell::new(vec![false; spec_servers]),
                recovered_hooks: RefCell::new(Vec::new()),
                recovery_log: RefCell::new(Vec::new()),
                arena: crate::buf::BufArena::new(),
            }),
        };
        for (s, sv) in cluster.inner.servers.iter().enumerate() {
            if let Some(w) = &sv.wal {
                w.set_source(Rc::new(ServerSnapshot {
                    inner: Rc::downgrade(&cluster.inner),
                    server: s,
                }));
            }
        }
        cluster
    }

    /// Declare how many compute clients are connected; RPC handler
    /// service time grows by `rpc_client_penalty` per client (RC QP
    /// state pressure, see [`ClusterSpec::rpc_client_penalty`]).
    pub fn set_active_clients(&self, n: usize) {
        self.inner.active_clients.set(n);
    }

    /// Currently declared compute client count.
    pub fn active_clients(&self) -> usize {
        self.inner.active_clients.get()
    }

    /// The simulation this cluster runs on.
    pub fn sim(&self) -> &Sim {
        &self.inner.sim
    }

    /// Cluster configuration.
    pub fn spec(&self) -> &ClusterSpec {
        &self.inner.spec
    }

    /// Number of memory servers.
    pub fn num_servers(&self) -> usize {
        self.inner.servers.len()
    }

    pub(crate) fn server(&self, s: usize) -> &MemServer {
        &self.inner.servers[s]
    }

    /// The cluster's shared verb-buffer arena.
    pub fn arena(&self) -> &crate::buf::BufArena {
        &self.inner.arena
    }

    /// Allocate a fresh endpoint (client) id.
    pub(crate) fn next_client_id(&self) -> u64 {
        let id = self.inner.next_client.get();
        self.inner.next_client.set(id + 1);
        id
    }

    // ---- fault injection (mechanism; schedules live in `chaos`) ----

    /// Seed the drop-roll RNG used by degraded links. Call before the
    /// run for reproducible probabilistic drops.
    pub fn set_fault_seed(&self, seed: u64) {
        self.inner.faults.borrow_mut().rng = DetRng::seed_from_u64(seed);
    }

    /// Crash memory server `s`: its regions become unreachable (verbs
    /// fail with `ServerUnreachable`) until [`Cluster::restart_server`].
    /// Under [`Durability::Off`] registered memory magically survives;
    /// under [`Durability::Wal`] RAM is *lost* — the pool and any
    /// registered [`DurableState`] are wiped, the WAL's pending buffer
    /// vanishes (verbs awaiting durability fail), and a log flush caught
    /// mid-device-write persists only its torn byte prefix.
    pub fn fail_server(&self, s: usize) {
        let now = self.inner.sim.now();
        {
            let mut f = self.inner.faults.borrow_mut();
            if !f.server_up[s] {
                return;
            }
            f.server_up[s] = false;
            f.crashed_at[s] = Some(now);
        }
        if let Some(w) = &self.inner.servers[s].wal {
            w.crash(now);
            self.inner.servers[s].pool.borrow_mut().wipe();
            let state = self.inner.durable.borrow()[s].clone();
            if let Some(state) = state {
                state.wipe();
            }
        }
    }

    /// Restart a crashed memory server.
    /// In-flight RPC core queues are not drained retroactively; requests
    /// granted a core after the crash fail at the grant.
    ///
    /// Under [`Durability::Off`] the restart is instant (memory
    /// survived): the server is up on return, its restart counter bumped,
    /// recovered hooks fired synchronously. Under [`Durability::Wal`]
    /// this *commands* a restart: a recovery task boots the process,
    /// streams checkpoint + log back from the log device, replays, and
    /// only then marks the server up — until that instant verbs keep
    /// failing with `ServerUnreachable`. Measured cycles appear in
    /// [`Cluster::recovery_records`].
    pub fn restart_server(&self, s: usize) {
        if self.inner.servers[s].wal.is_none() {
            let fire = {
                let mut f = self.inner.faults.borrow_mut();
                if f.server_up[s] {
                    false
                } else {
                    f.server_up[s] = true;
                    f.crashed_at[s] = None;
                    f.server_restarts[s] += 1;
                    true
                }
            };
            if fire {
                self.fire_recovered(s);
            }
            return;
        }
        if self.inner.faults.borrow().server_up[s] || self.inner.recovering.borrow()[s] {
            return;
        }
        self.inner.recovering.borrow_mut()[s] = true;
        let cluster = self.clone();
        self.inner
            .sim
            .spawn(async move { cluster.recovery_task(s).await });
    }

    /// The Wal-mode recovery sequence: boot, stream checkpoint + log from
    /// the device, re-apply, mark healthy.
    async fn recovery_task(self, s: usize) {
        let sim = self.inner.sim.clone();
        let restarted_at = sim.now();
        sim.sleep(self.inner.spec.wal_restart_boot_latency).await;
        let w = self.inner.servers[s]
            .wal
            .as_ref()
            .expect("wal-mode server")
            .clone();
        let plan = w.recover();
        w.replay_read(plan.replay_bytes).await;
        sim.sleep(plan.cpu_duration).await;
        {
            let mut pool = self.inner.servers[s].pool.borrow_mut();
            pool.restore(&plan.pool_image, plan.allocated);
        }
        let state = self.inner.durable.borrow()[s].clone();
        if let Some(st) = &state {
            st.restore(&plan.tree_entries);
        }
        for rec in &plan.records {
            match rec {
                WalRecord::PoolWrite { offset, data } => {
                    self.inner.servers[s]
                        .pool
                        .borrow_mut()
                        .replay_write(*offset, data);
                }
                WalRecord::PoolWriteWord { offset, word } => {
                    self.inner.servers[s]
                        .pool
                        .borrow_mut()
                        .replay_write(*offset, &word.to_le_bytes());
                }
                WalRecord::PoolAllocTo { next } => {
                    self.inner.servers[s]
                        .pool
                        .borrow_mut()
                        .replay_alloc_to(*next);
                }
                WalRecord::TreeUpsert { key, value } => {
                    if let Some(st) = &state {
                        st.upsert(*key, *value);
                    }
                }
                WalRecord::TreeInsert { key, value } => {
                    if let Some(st) = &state {
                        st.insert(*key, *value);
                    }
                }
                WalRecord::TreeDelete { key } => {
                    if let Some(st) = &state {
                        st.delete(*key);
                    }
                }
            }
        }
        let healthy_at = sim.now();
        let crashed_at = {
            let mut f = self.inner.faults.borrow_mut();
            f.server_up[s] = true;
            f.server_restarts[s] += 1;
            f.crashed_at[s].take().unwrap_or(restarted_at)
        };
        self.inner.recovering.borrow_mut()[s] = false;
        self.inner.recovery_log.borrow_mut().push(RecoveryRecord {
            server: s,
            crashed_at,
            restarted_at,
            healthy_at,
            replay_bytes: plan.replay_bytes,
            records_replayed: plan.records.len() as u64,
            torn_bytes: plan.torn_bytes,
        });
        self.note_instant("server_recovered");
        let now = sim.now();
        self.each_observer(|o| o.on_server_recovered(s, now));
        self.fire_recovered(s);
    }

    /// Whether server `s` is mid-recovery (restart commanded, replay not
    /// yet finished). Always `false` under [`Durability::Off`].
    pub fn server_recovering(&self, s: usize) -> bool {
        self.inner.recovering.borrow()[s]
    }

    /// Register `hook` to fire whenever a server finishes recovering
    /// (Wal) or restarts (Off) — e.g. a catalog generation bump that
    /// forces clients to re-resolve.
    pub fn add_recovered_hook(&self, hook: impl Fn(usize) + 'static) {
        self.inner.recovered_hooks.borrow_mut().push(Rc::new(hook));
    }

    fn fire_recovered(&self, s: usize) {
        let hooks: Vec<RecoveredHook> = self.inner.recovered_hooks.borrow().clone();
        for h in &hooks {
            h(s);
        }
    }

    /// Completed crash-recovery cycles (Wal mode), in completion order.
    pub fn recovery_records(&self) -> Vec<RecoveryRecord> {
        self.inner.recovery_log.borrow().clone()
    }

    /// Whether memory server `s` is up.
    pub fn server_up(&self, s: usize) -> bool {
        self.inner.faults.borrow().server_up[s]
    }

    /// How many times server `s` has been restarted.
    pub fn server_restarts(&self, s: usize) -> u64 {
        self.inner.faults.borrow().server_restarts[s]
    }

    /// Kill compute client `client`: every verb it issues from now on
    /// fails with `Cancelled`. Verbs already past their issue point
    /// complete normally (their remote effects apply — the client just
    /// never sees the completion).
    pub fn kill_client(&self, client: u64) {
        self.inner.faults.borrow_mut().dead_clients.insert(client);
    }

    /// Revive a killed client (models a replacement process adopting the
    /// same client id).
    pub fn revive_client(&self, client: u64) {
        let mut f = self.inner.faults.borrow_mut();
        f.dead_clients.remove(&client);
        f.kill_on_lock_acquire.remove(&client);
    }

    /// Whether `client` is currently killed.
    pub fn client_dead(&self, client: u64) -> bool {
        self.inner.faults.borrow().dead_clients.contains(&client)
    }

    /// Install the predicate that recognises a lock-acquire CAS shape
    /// `(expected, new)`. The transport is agnostic to any index's
    /// lock-word encoding; the layer that owns the encoding (e.g.
    /// `namdex-core`, which installs `blink::layout::lock_word::is_acquire`
    /// when building an index) injects it here so the
    /// kill-on-lock-acquire trigger can recognise acquisitions.
    /// Replaces any previously installed shape.
    pub fn set_lock_acquire_shape(&self, shape: fn(u64, u64) -> bool) {
        self.inner.faults.borrow_mut().acquire_shape = Some(shape);
    }

    /// Arm a one-shot trigger: the next time `client` wins a
    /// lock-acquire CAS, kill it immediately after the CAS's remote
    /// effect applies — deterministically realising "client dies between
    /// its lock CAS and its unlock FAA". Requires a lock-acquire shape
    /// ([`Cluster::set_lock_acquire_shape`]) so the trigger cannot
    /// silently never fire.
    pub fn arm_kill_on_lock_acquire(&self, client: u64) {
        let mut f = self.inner.faults.borrow_mut();
        assert!(
            f.acquire_shape.is_some(),
            "arm_kill_on_lock_acquire needs a lock-acquire shape; install \
             one with Cluster::set_lock_acquire_shape (index builds in \
             namdex-core do this automatically)"
        );
        f.kill_on_lock_acquire.insert(client);
    }

    /// Fire the lock-kill trigger for `client` if it is armed and the
    /// successful CAS `expected -> new` matches the installed
    /// acquire shape. Returns whether the client was just killed.
    pub(crate) fn maybe_fire_lock_kill(&self, client: u64, expected: u64, new: u64) -> bool {
        let mut f = self.inner.faults.borrow_mut();
        if !f.kill_on_lock_acquire.contains(&client) {
            return false;
        }
        match f.acquire_shape {
            Some(shape) if shape(expected, new) => {
                f.kill_on_lock_acquire.remove(&client);
                f.dead_clients.insert(client);
                f.stats.lock_kills_fired += 1;
                true
            }
            _ => false,
        }
    }

    /// Degrade server `s`'s link (drops, delay spikes, reduced
    /// bandwidth) until [`Cluster::restore_link`].
    pub fn degrade_link(&self, s: usize, degrade: LinkDegrade) {
        assert!(
            degrade.bandwidth_factor > 0.0 && degrade.bandwidth_factor <= 1.0,
            "bandwidth_factor must be in (0, 1]"
        );
        assert!(
            (0.0..=1.0).contains(&degrade.drop_chance),
            "drop_chance must be a probability"
        );
        self.inner.faults.borrow_mut().degrade[s] = Some(degrade);
    }

    /// Remove any degradation from server `s`'s link.
    pub fn restore_link(&self, s: usize) {
        self.inner.faults.borrow_mut().degrade[s] = None;
    }

    /// Current degradation of server `s`'s link, if any.
    pub fn link_degrade(&self, s: usize) -> Option<LinkDegrade> {
        self.inner.faults.borrow().degrade[s]
    }

    /// Roll the drop die for one remote verb against server `s`. Only
    /// consumes randomness when a nonzero drop chance is configured, so
    /// fault-free runs stay byte-identical to pre-fault builds.
    pub(crate) fn roll_drop(&self, s: usize) -> bool {
        let mut f = self.inner.faults.borrow_mut();
        match f.degrade[s] {
            Some(d) if d.drop_chance > 0.0 => {
                let dropped = f.rng.chance(d.drop_chance);
                if dropped {
                    f.stats.verbs_dropped += 1;
                }
                dropped
            }
            _ => false,
        }
    }

    /// Fault-effect counters.
    pub fn fault_stats(&self) -> FaultStats {
        self.inner.faults.borrow().stats
    }

    pub(crate) fn note_cancelled(&self) {
        self.inner.faults.borrow_mut().stats.verbs_cancelled += 1;
    }

    pub(crate) fn note_unreachable(&self) {
        self.inner.faults.borrow_mut().stats.verbs_unreachable += 1;
    }

    pub(crate) fn note_timeout(&self) {
        self.inner.faults.borrow_mut().stats.verbs_timed_out += 1;
    }

    // ---- durability (per-server WAL; see `crate::spec::Durability`) ----

    /// Whether this cluster runs real durability ([`Durability::Wal`]).
    pub fn wal_enabled(&self) -> bool {
        self.inner.spec.durability == Durability::Wal
    }

    /// Server `s`'s WAL handle, if durability is on.
    pub(crate) fn server_wal(&self, s: usize) -> Option<Rc<ServerWal>> {
        self.inner.servers[s].wal.clone()
    }

    /// Append one WAL record on server `s` (no-op under
    /// [`Durability::Off`]). Returns the record's LSN. The caller must
    /// ensure a durability barrier runs before the mutation is
    /// acknowledged — verb paths do this automatically; RPC handlers are
    /// covered by the response-leg barrier in `Endpoint::rpc`.
    pub fn wal_append(&self, s: usize, rec: WalRecord) -> Option<u64> {
        self.inner.servers[s].wal.as_ref().map(|w| w.append(rec))
    }

    /// Register the durable index state of server `s` (replaces any
    /// previous registration). Under [`Durability::Wal`] the state is
    /// wiped on crash, snapshotted into checkpoints, and replayed into on
    /// recovery; under [`Durability::Off`] registration is inert.
    pub fn register_durable_state(&self, s: usize, state: Rc<dyn DurableState>) {
        self.inner.durable.borrow_mut()[s] = Some(state);
    }

    /// Declare setup/loading complete: every server's WAL seals its
    /// setup-time base image (the checkpoint a recovery starts from, at
    /// no device cost — it models the initial-load image the server was
    /// provisioned from). Design builds call this once the bulk load and
    /// state registration are done. No-op under [`Durability::Off`].
    pub fn seal_setup(&self) {
        for sv in &self.inner.servers {
            if let Some(w) = &sv.wal {
                w.seal_base();
            }
        }
    }

    /// Server `s`'s durability counters (`None` under [`Durability::Off`]).
    pub fn wal_stats(&self, s: usize) -> Option<WalStats> {
        self.inner.servers[s].wal.as_ref().map(|w| w.stats())
    }

    /// Durable log bytes accumulated on server `s` since its last
    /// checkpoint (`None` under [`Durability::Off`]).
    pub fn wal_log_bytes(&self, s: usize) -> Option<u64> {
        self.inner.servers[s].wal.as_ref().map(|w| w.log_bytes())
    }

    // ---- verb observation ----

    /// Register `observer` to receive every completed verb and the wider
    /// event surface (see [`crate::observer`]). Observers fire in
    /// registration order; registering the same observer twice delivers
    /// its events twice.
    pub fn add_observer(&self, observer: Rc<dyn crate::observer::VerbObserver>) {
        self.inner.observers.borrow_mut().push(observer);
        self.inner.observers_active.set(true);
    }

    /// Remove all installed observers.
    pub fn clear_observers(&self) {
        self.inner.observers.borrow_mut().clear();
        self.inner.observers_active.set(false);
    }

    /// Whether any observer is installed. The verb layer checks this
    /// before assembling event payloads so an unobserved run pays only
    /// this flag read.
    #[inline]
    pub fn has_observers(&self) -> bool {
        self.inner.observers_active.get()
    }

    /// Run `f` over each installed observer, in registration order. The
    /// list is cloned out first so an observer may register/clear
    /// observers from inside its callback.
    fn each_observer(&self, f: impl Fn(&dyn crate::observer::VerbObserver)) {
        if !self.inner.observers_active.get() {
            return;
        }
        let obs = self.inner.observers.borrow().clone();
        for o in &obs {
            f(o.as_ref());
        }
    }

    /// Report a completed verb to the installed observers.
    pub(crate) fn observe(&self, ev: crate::observer::VerbEvent) {
        self.each_observer(|o| o.on_verb(&ev));
    }

    /// Report a verb attempt against a crashed server to the observers.
    pub(crate) fn observe_unreachable(
        &self,
        client: u64,
        server: usize,
        kind: crate::fault::AttemptKind,
    ) {
        let now = self.inner.sim.now();
        self.each_observer(|o| o.on_unreachable(client, server, kind, now));
    }

    /// Report that epoch GC retired `[offset, offset + len)` on `server`;
    /// later verbs touching it are use-after-free (see
    /// [`crate::observer::VerbObserver::on_free`]).
    pub fn note_freed(&self, server: usize, offset: u64, len: usize) {
        let now = self.inner.sim.now();
        self.each_observer(|o| o.on_free(server, offset, len, now));
    }

    /// Report a completed two-sided RPC to the installed observers.
    pub(crate) fn observe_rpc(&self, ev: crate::observer::RpcEvent) {
        self.each_observer(|o| o.on_rpc(&ev));
    }

    /// Report a charged verb/RPC failure (timeout or unreachable).
    pub(crate) fn observe_verb_failed(&self, client: u64, server: usize) {
        let now = self.inner.sim.now();
        self.each_observer(|o| o.on_verb_failed(client, server, now));
    }

    /// Report that `client` began an index-level operation.
    pub fn note_op_start(&self, client: u64, kind: crate::observer::OpKind) {
        let now = self.inner.sim.now();
        self.each_observer(|o| o.on_op_start(client, kind, now));
    }

    /// Report that `client` finished its current index-level operation.
    pub fn note_op_end(&self, client: u64, kind: crate::observer::OpKind, ok: bool) {
        let now = self.inner.sim.now();
        self.each_observer(|o| o.on_op_end(client, kind, now, ok));
    }

    /// Report the arguments of the index-level operation `client` just
    /// invoked (fires inside the op span, before any remote access).
    pub fn note_op_invoke(&self, client: u64, args: crate::observer::OpArgs) {
        let now = self.inner.sim.now();
        self.each_observer(|o| o.on_op_invoke(client, args, now));
    }

    /// Report the outcome of the operation `client` invoked last.
    pub fn note_op_response(&self, client: u64, outcome: &crate::observer::OpOutcome) {
        let now = self.inner.sim.now();
        self.each_observer(|o| o.on_op_response(client, outcome, now));
    }

    /// Report that `client` entered (`enter`) or left a protocol region.
    pub fn note_region(&self, client: u64, kind: crate::observer::RegionKind, enter: bool) {
        let now = self.inner.sim.now();
        self.each_observer(|o| o.on_region(client, kind, enter, now));
    }

    /// Report that `client` evaluated a protocol-level fence on the page
    /// at `(server, offset)` (see [`crate::observer::FenceKind`]). The
    /// engine calls this through [`Cluster::has_observers`]-guarded
    /// helpers; with no observers it is never reached.
    pub fn note_fence(
        &self,
        client: u64,
        kind: crate::observer::FenceKind,
        server: usize,
        offset: u64,
    ) {
        let now = self.inner.sim.now();
        self.each_observer(|o| o.on_fence(client, kind, server, offset, now));
    }

    /// Report a cluster-scoped labelled instant (fault injection etc.).
    pub fn note_instant(&self, label: &str) {
        let now = self.inner.sim.now();
        self.each_observer(|o| o.on_instant(label, now));
    }

    // ---- control path (untimed; for loading / setup, not measurement) ----

    /// Allocate `size` bytes on server `s` without charging simulated
    /// time. Loading-phase only.
    pub fn setup_alloc(&self, s: usize, size: u64) -> RemotePtr {
        let off = self.server(s).pool.borrow_mut().alloc(size);
        RemotePtr::new(s, off)
    }

    /// Write bytes without charging simulated time. Loading-phase only.
    pub fn setup_write(&self, ptr: RemotePtr, data: &[u8]) {
        self.server(ptr.server())
            .pool
            .borrow_mut()
            .copy_in(ptr.offset(), data);
    }

    /// Read bytes without charging simulated time. Loading-phase only.
    pub fn setup_read(&self, ptr: RemotePtr, len: usize) -> Vec<u8> {
        let mut buf = vec![0u8; len];
        self.server(ptr.server())
            .pool
            .borrow()
            .copy_out(ptr.offset(), &mut buf);
        buf
    }

    /// Run `f` with mutable access to server `s`'s memory pool, untimed.
    /// Loading-phase and GC bookkeeping only.
    pub fn with_pool<R>(&self, s: usize, f: impl FnOnce(&mut MemPool) -> R) -> R {
        f(&mut self.server(s).pool.borrow_mut())
    }

    // ---- statistics ----

    /// Snapshot one server's counters.
    pub fn server_stats(&self, s: usize) -> ServerStats {
        let sv = self.server(s);
        ServerStats {
            bytes_in: sv.bytes_in.get(),
            bytes_out: sv.bytes_out.get(),
            local_bytes: sv.local_bytes.get(),
            onesided_ops: sv.onesided_ops.get(),
            rpcs: sv.rpcs.get(),
            nic_busy_nanos: sv.nic.busy_time().as_nanos(),
            cpu_busy_nanos: sv.cpu.busy_time().as_nanos(),
        }
    }

    /// Snapshot all servers' counters.
    pub fn all_stats(&self) -> Vec<ServerStats> {
        (0..self.num_servers())
            .map(|s| self.server_stats(s))
            .collect()
    }

    /// Total bytes moved over the wire (both directions, all servers).
    pub fn total_wire_bytes(&self) -> u64 {
        self.inner
            .servers
            .iter()
            .map(|s| s.bytes_in.get() + s.bytes_out.get())
            .sum()
    }

    /// Aggregate theoretical wire capacity of all servers in bytes/second
    /// (the "Max. Bandwidth" line in Fig. 9).
    pub fn aggregate_bandwidth(&self) -> f64 {
        (0..self.num_servers())
            .map(|s| self.inner.spec.effective_bandwidth(s))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn setup_round_trip() {
        let sim = Sim::new();
        let cluster = Cluster::new(&sim, ClusterSpec::default());
        assert_eq!(cluster.num_servers(), 4);
        let ptr = cluster.setup_alloc(2, 64);
        assert_eq!(ptr.server(), 2);
        cluster.setup_write(ptr, &[9, 8, 7]);
        assert_eq!(cluster.setup_read(ptr, 3), vec![9, 8, 7]);
        // Untimed: the clock did not move.
        assert_eq!(sim.now().as_nanos(), 0);
    }

    #[test]
    fn stats_start_zero() {
        let sim = Sim::new();
        let cluster = Cluster::new(&sim, ClusterSpec::default());
        let stats = cluster.server_stats(0);
        assert_eq!(stats, ServerStats::default());
        assert_eq!(cluster.total_wire_bytes(), 0);
    }

    #[test]
    fn aggregate_bandwidth_counts_qpi() {
        let sim = Sim::new();
        let cluster = Cluster::new(&sim, ClusterSpec::default());
        let spec = ClusterSpec::default();
        let expect =
            2.0 * spec.nic_bandwidth + 2.0 * spec.nic_bandwidth * spec.qpi_bandwidth_factor;
        assert!((cluster.aggregate_bandwidth() - expect).abs() < 1.0);
    }
}
