//! Failure surface of the simulated RDMA layer.
//!
//! Real RDMA verbs complete with a status; lossy fabrics, crashed
//! memory servers and killed clients all surface as failed completions.
//! This module holds the error type every verb returns, the per-link
//! degradation knobs, and the counters the cluster keeps about injected
//! faults. The *schedule* of faults lives in `crates/chaos`; this layer
//! only exposes the mechanism (`Cluster::{fail_server, kill_client,
//! degrade_link, ...}`).

use std::fmt;

use simnet::SimDur;

/// Why a verb failed to complete.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum VerbError {
    /// The verb missed its completion deadline
    /// ([`crate::ClusterSpec::verb_timeout`]): the message was dropped,
    /// or queueing/degradation pushed completion past the deadline.
    Timeout {
        /// Target memory server.
        server: usize,
    },
    /// The target memory server is crashed; its registered regions are
    /// unreachable until it restarts.
    ServerUnreachable {
        /// Target memory server.
        server: usize,
    },
    /// The issuing client was killed; the verb was never issued and had
    /// no remote effect.
    Cancelled,
    /// The remote pointer does not decode to a server of this cluster
    /// (corrupt or stale pointer).
    InvalidPointer {
        /// The raw pointer bits.
        raw: u64,
    },
    /// A protocol invariant the caller relies on did not hold (e.g. a
    /// freshly split half-empty page refusing an insert). Never
    /// retryable: the state that produced it is deterministic, so the
    /// operation surfaces it instead of panicking on a hot path.
    Invariant(&'static str),
}

impl VerbError {
    /// Whether retrying the operation may succeed (transient fault).
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            VerbError::Timeout { .. } | VerbError::ServerUnreachable { .. }
        )
    }

    /// The server involved, when the error names one.
    pub fn server(&self) -> Option<usize> {
        match self {
            VerbError::Timeout { server } | VerbError::ServerUnreachable { server } => {
                Some(*server)
            }
            _ => None,
        }
    }
}

impl fmt::Display for VerbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerbError::Timeout { server } => {
                write!(f, "verb timed out against memory server {server}")
            }
            VerbError::ServerUnreachable { server } => {
                write!(f, "memory server {server} unreachable")
            }
            VerbError::Cancelled => write!(f, "issuing client was killed"),
            VerbError::InvalidPointer { raw } => {
                write!(f, "remote pointer {raw:#018x} does not decode")
            }
            VerbError::Invariant(what) => {
                write!(f, "protocol invariant violated: {what}")
            }
        }
    }
}

impl std::error::Error for VerbError {}

/// The verb class of a failed attempt (no operands/result — the verb
/// never executed). Reported to the sanitizer's `on_unreachable` hook.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AttemptKind {
    /// An `RDMA_READ` attempt.
    Read,
    /// An `RDMA_WRITE` attempt.
    Write,
    /// An `RDMA_CAS` attempt.
    Cas,
    /// An `RDMA_FETCH_AND_ADD` attempt.
    Faa,
    /// An `RDMA_ALLOC` attempt.
    Alloc,
    /// A two-sided RPC attempt.
    Rpc,
}

/// Degradation applied to one memory server's link.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LinkDegrade {
    /// Probability that a remote verb's message is dropped (it then
    /// fails with [`VerbError::Timeout`] at its deadline).
    pub drop_chance: f64,
    /// Extra one-way delay added to every remote verb (delay spike).
    pub extra_delay: SimDur,
    /// Multiplier on the link's bandwidth (`0 < factor <= 1`).
    pub bandwidth_factor: f64,
}

impl Default for LinkDegrade {
    fn default() -> Self {
        LinkDegrade {
            drop_chance: 0.0,
            extra_delay: SimDur::ZERO,
            bandwidth_factor: 1.0,
        }
    }
}

/// Counters of fault effects the cluster has applied.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Verbs refused because the issuing client was dead.
    pub verbs_cancelled: u64,
    /// Verbs failed because the target server was down.
    pub verbs_unreachable: u64,
    /// Verbs that missed their completion deadline.
    pub verbs_timed_out: u64,
    /// Verb messages dropped by link degradation (subset of timeouts).
    pub verbs_dropped: u64,
    /// Clients killed by an armed kill-on-lock-acquire trigger.
    pub lock_kills_fired: u64,
}
