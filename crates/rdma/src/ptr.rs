//! The paper's 8-byte remote pointer (§4.1).
//!
//! > "a remote pointer is a 8-byte field which stores `(nullbit, node-ID,
//! > offset)`. The nullbit indicates whether a remote pointer is a
//! > NULL-pointer or not and the node-ID encodes the address of the remote
//! > memory server (using 7 Bit). The remaining 7 Byte encode an offset
//! > into the remote memory."
//!
//! Bit layout here: bit 63 is the nullbit (always 0 for valid pointers),
//! bits 56–62 the server id, bits 0–55 the offset. Allocators never hand
//! out offset 0, so the all-zero word is the NULL pointer — zeroed pages
//! decode as null links, and every valid pointer fits in 63 bits, which
//! lets remote pointers double as B-link tree values (`blink::MAX_VALUE`).

use blink::Ptr;
use std::fmt;

/// An RDMA-addressable location: `(server id, byte offset)`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub struct RemotePtr(u64);

impl RemotePtr {
    /// Maximum addressable servers (7-bit node id).
    pub const MAX_SERVERS: usize = 128;
    /// Maximum encodable offset (7 bytes).
    pub const MAX_OFFSET: u64 = (1 << 56) - 1;
    /// The NULL pointer (all zeros).
    pub const NULL: RemotePtr = RemotePtr(0);

    /// Build a pointer. `offset` must be nonzero (offset 0 is reserved so
    /// the zero word can mean NULL) and fit in 56 bits; `server < 128`.
    pub fn new(server: usize, offset: u64) -> Self {
        assert!(
            server < Self::MAX_SERVERS,
            "server id {server} exceeds 7 bits"
        );
        assert!(offset != 0, "offset 0 is reserved for NULL");
        assert!(offset <= Self::MAX_OFFSET, "offset exceeds 7 bytes");
        RemotePtr(((server as u64) << 56) | offset)
    }

    /// Reconstruct from raw bits (e.g. bits read out of a page).
    pub fn from_raw(raw: u64) -> Self {
        debug_assert_eq!(raw >> 63, 0, "nullbit set on a non-null decode");
        RemotePtr(raw)
    }

    /// Reconstruct from a B-link page pointer word.
    pub fn from_page_ptr(p: Ptr) -> Self {
        Self::from_raw(p.raw())
    }

    /// Raw 8-byte encoding.
    pub fn raw(self) -> u64 {
        self.0
    }

    /// As a B-link page pointer word (for storing in index nodes).
    pub fn as_page_ptr(self) -> Ptr {
        Ptr(self.0)
    }

    /// Whether this is the NULL pointer.
    pub fn is_null(self) -> bool {
        self.0 == 0
    }

    /// Memory server holding the target (panics on NULL).
    pub fn server(self) -> usize {
        debug_assert!(!self.is_null(), "dereferencing NULL remote pointer");
        ((self.0 >> 56) & 0x7f) as usize
    }

    /// Defensive decode of the server id against a cluster of
    /// `num_servers`. NULL, a set nullbit, or an out-of-range server id
    /// (a corrupt or stale pointer — e.g. read from a page mid-recovery)
    /// return a typed error instead of panicking downstream when used to
    /// index the server table.
    pub fn checked_server(self, num_servers: usize) -> Result<usize, PtrDecodeError> {
        if self.0 == 0 || self.0 >> 63 != 0 {
            return Err(PtrDecodeError { raw: self.0 });
        }
        let s = ((self.0 >> 56) & 0x7f) as usize;
        if s >= num_servers {
            Err(PtrDecodeError { raw: self.0 })
        } else {
            Ok(s)
        }
    }

    /// Byte offset within the server's registered region.
    pub fn offset(self) -> u64 {
        self.0 & Self::MAX_OFFSET
    }

    /// A pointer `delta` bytes further into the same region.
    pub fn offset_by(self, delta: u64) -> Self {
        Self::new(self.server(), self.offset() + delta)
    }
}

/// A remote pointer that does not name a server of this cluster.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PtrDecodeError {
    /// The raw pointer bits that failed to decode.
    pub raw: u64,
}

impl fmt::Display for PtrDecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "remote pointer {:#018x} does not decode", self.raw)
    }
}

impl std::error::Error for PtrDecodeError {}

impl fmt::Debug for RemotePtr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_null() {
            write!(f, "RemotePtr(NULL)")
        } else {
            write!(f, "RemotePtr(s{}+{:#x})", self.server(), self.offset())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let p = RemotePtr::new(5, 0x1234);
        assert_eq!(p.server(), 5);
        assert_eq!(p.offset(), 0x1234);
        assert_eq!(RemotePtr::from_raw(p.raw()), p);
        assert!(!p.is_null());
    }

    #[test]
    fn null_is_zero() {
        assert_eq!(RemotePtr::NULL.raw(), 0);
        assert!(RemotePtr::NULL.is_null());
        assert!(RemotePtr::from_raw(0).is_null());
    }

    #[test]
    fn fits_blink_value_space() {
        let p = RemotePtr::new(127, RemotePtr::MAX_OFFSET);
        assert!(
            p.raw() <= blink::MAX_VALUE,
            "pointer must be storable as a value"
        );
    }

    #[test]
    fn page_ptr_round_trip() {
        let p = RemotePtr::new(3, 4096);
        let page_ptr = p.as_page_ptr();
        assert_eq!(RemotePtr::from_page_ptr(page_ptr), p);
    }

    #[test]
    fn offset_by_advances() {
        let p = RemotePtr::new(2, 100);
        assert_eq!(p.offset_by(24).offset(), 124);
        assert_eq!(p.offset_by(24).server(), 2);
    }

    #[test]
    fn checked_server_accepts_in_range() {
        let p = RemotePtr::new(3, 4096);
        assert_eq!(p.checked_server(4), Ok(3));
    }

    #[test]
    fn checked_server_rejects_out_of_range_null_and_nullbit() {
        let p = RemotePtr::new(5, 4096);
        assert_eq!(p.checked_server(4), Err(PtrDecodeError { raw: p.raw() }));
        assert!(RemotePtr::NULL.checked_server(4).is_err());
        let tagged = RemotePtr(1 << 63 | 42);
        assert!(tagged.checked_server(4).is_err());
    }

    #[test]
    #[should_panic(expected = "reserved for NULL")]
    fn zero_offset_rejected() {
        let _ = RemotePtr::new(0, 0);
    }

    #[test]
    #[should_panic(expected = "7 bits")]
    fn large_server_rejected() {
        let _ = RemotePtr::new(128, 1);
    }
}
