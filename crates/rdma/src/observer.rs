//! Verb-level observation hooks (the `sanitizer` feature).
//!
//! When the `sanitizer` feature is enabled, every one-sided verb an
//! [`crate::Endpoint`] completes — READ, WRITE, CAS, FETCH_AND_ADD, ALLOC
//! — reports `(server, byte-range, kind, virtual time, issuing client)` to
//! an installed [`VerbObserver`] at the instant its memory effect applies.
//! The protocol sanitizer crate implements the observer to enforce the
//! optimistic-lock-coupling invariants; this module only defines the
//! reporting surface so the verb layer stays free of checking policy.
//!
//! Observers run synchronously on the simulated completion path and must
//! not charge simulated time or re-enter the verb layer; they may inspect
//! server memory through the untimed control path
//! ([`crate::Cluster::setup_read`]) — all pool borrows are released before
//! an event fires.

use simnet::SimTime;

/// The operation a [`VerbEvent`] describes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum VerbKind {
    /// One-sided `RDMA_READ` of `len` bytes.
    Read,
    /// One-sided `RDMA_WRITE` of `len` bytes.
    Write,
    /// One-sided `RDMA_CAS`: the swap happened iff `prev == expected`.
    Cas {
        /// Comparand.
        expected: u64,
        /// Value installed on success.
        new: u64,
        /// Word value before the operation.
        prev: u64,
    },
    /// One-sided `RDMA_FETCH_AND_ADD`.
    Faa {
        /// Addend.
        add: u64,
        /// Word value before the operation.
        prev: u64,
    },
    /// `RDMA_ALLOC` of a fresh region.
    Alloc,
}

/// One completed verb, reported at its completion instant.
#[derive(Clone, Copy, Debug)]
pub struct VerbEvent {
    /// Memory server the verb targeted.
    pub server: usize,
    /// Start offset of the affected byte range within the server's pool.
    pub offset: u64,
    /// Length of the affected byte range (8 for atomics).
    pub len: usize,
    /// Operation and its operands/result.
    pub kind: VerbKind,
    /// Virtual time the verb was issued by the client.
    pub issued: SimTime,
    /// Virtual time the verb completed (= when its effect applied).
    pub time: SimTime,
    /// The issuing client (endpoint id).
    pub client: u64,
}

pub use crate::fault::AttemptKind;

/// Receiver for verb events and reclamation notices.
pub trait VerbObserver {
    /// A verb completed and its memory effect has been applied.
    fn on_verb(&self, ev: &VerbEvent);

    /// Epoch GC retired `[offset, offset + len)` on `server`; any later
    /// verb touching the region is a use-after-free.
    fn on_free(&self, server: usize, offset: u64, len: usize, time: SimTime);

    /// `client` attempted a verb against a crashed `server` and received
    /// `ServerUnreachable`. The verb had no remote effect. Default: ignore.
    fn on_unreachable(&self, client: u64, server: usize, kind: AttemptKind, time: SimTime) {
        let _ = (client, server, kind, time);
    }
}
