//! Verb-level observation hooks.
//!
//! Every one-sided verb an [`crate::Endpoint`] completes — READ, WRITE,
//! CAS, FETCH_AND_ADD, ALLOC — reports `(server, byte-range, kind,
//! virtual time, issuing client)` to each installed [`VerbObserver`] at
//! the instant its memory effect applies. Two-sided RPCs, failed verbs,
//! index-operation boundaries, protocol regions (lock wait, backoff) and
//! free-text instants flow through the same hook. The protocol sanitizer
//! implements the observer to enforce optimistic-lock-coupling
//! invariants; the telemetry crate implements it to build causal spans
//! and Perfetto traces. This module only defines the reporting surface
//! so the verb layer stays free of checking/accounting policy.
//!
//! Multiple observers may be registered ([`crate::Cluster::add_observer`]);
//! they fire in registration order. With none registered the hot path
//! reduces to a single flag check ([`crate::Cluster::has_observers`]).
//!
//! Observers run synchronously on the simulated completion path and must
//! not charge simulated time or re-enter the verb layer; they may inspect
//! server memory through the untimed control path
//! ([`crate::Cluster::setup_read`]) — all pool borrows are released before
//! an event fires.

use simnet::SimTime;

/// The operation a [`VerbEvent`] describes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum VerbKind {
    /// One-sided `RDMA_READ` of `len` bytes.
    Read,
    /// One-sided `RDMA_WRITE` of `len` bytes.
    Write,
    /// One-sided `RDMA_CAS`: the swap happened iff `prev == expected`.
    Cas {
        /// Comparand.
        expected: u64,
        /// Value installed on success.
        new: u64,
        /// Word value before the operation.
        prev: u64,
    },
    /// One-sided `RDMA_FETCH_AND_ADD`.
    Faa {
        /// Addend.
        add: u64,
        /// Word value before the operation.
        prev: u64,
    },
    /// `RDMA_ALLOC` of a fresh region.
    Alloc,
}

/// One completed verb, reported at its completion instant.
#[derive(Clone, Copy, Debug)]
pub struct VerbEvent {
    /// Memory server the verb targeted.
    pub server: usize,
    /// Start offset of the affected byte range within the server's pool.
    pub offset: u64,
    /// Length of the affected byte range (8 for atomics).
    pub len: usize,
    /// Operation and its operands/result.
    pub kind: VerbKind,
    /// Virtual time the verb was issued by the client.
    pub issued: SimTime,
    /// Virtual time the verb completed (= when its effect applied).
    pub time: SimTime,
    /// The issuing client (endpoint id).
    pub client: u64,
    /// Nanoseconds of `[issued, time)` the verb spent queued behind
    /// earlier traffic on the target NIC port (zero for local verbs).
    pub queue_nanos: u64,
}

/// One completed two-sided RPC, reported at its completion instant.
#[derive(Clone, Copy, Debug)]
pub struct RpcEvent {
    /// The issuing client (endpoint id).
    pub client: u64,
    /// Memory server whose handler pool ran the RPC.
    pub server: usize,
    /// Virtual time the request was issued by the client.
    pub issued: SimTime,
    /// Virtual time the response arrived back at the client.
    pub time: SimTime,
    /// Nanoseconds of `[issued, time)` spent queued: NIC FIFO on both
    /// legs plus waiting for a free handler core.
    pub queue_nanos: u64,
    /// Nanoseconds of `[issued, time)` the handler core spent executing
    /// the request (server occupancy).
    pub server_nanos: u64,
}

/// The index-level operation an op span describes (see
/// [`VerbObserver::on_op_start`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OpKind {
    /// Point lookup.
    Lookup,
    /// Range scan.
    Range,
    /// Insert / update.
    Insert,
    /// Delete.
    Delete,
    /// Epoch garbage-collection pass.
    Gc,
}

impl OpKind {
    /// Stable lower-case label (used for trace/metric names).
    pub fn label(self) -> &'static str {
        match self {
            OpKind::Lookup => "lookup",
            OpKind::Range => "range",
            OpKind::Insert => "insert",
            OpKind::Delete => "delete",
            OpKind::Gc => "gc",
        }
    }
}

/// Arguments of an index-level operation, reported at invoke time (see
/// [`VerbObserver::on_op_invoke`]). Keys and values are the plain `u64`s
/// of the simulated index API.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OpArgs {
    /// Point lookup of `key`.
    Lookup {
        /// Key probed.
        key: u64,
    },
    /// Range scan over `[lo, hi]` inclusive.
    Range {
        /// Low key (inclusive).
        lo: u64,
        /// High key (inclusive).
        hi: u64,
    },
    /// Insert of `(key, value)`.
    Insert {
        /// Key inserted.
        key: u64,
        /// Value inserted.
        value: u64,
    },
    /// Delete of `key`.
    Delete {
        /// Key deleted.
        key: u64,
    },
}

/// Result of a completed index-level operation, reported at response
/// time (see [`VerbObserver::on_op_response`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum OpOutcome {
    /// Lookup returned the value (or `None` if the key was absent).
    Lookup(Option<u64>),
    /// Range scan returned these rows, in key order.
    Range(Vec<(u64, u64)>),
    /// Insert succeeded.
    Insert,
    /// Delete returned whether a live entry was removed.
    Delete(bool),
    /// The operation returned an error; its effects are indeterminate
    /// (it may or may not have been applied).
    Failed,
}

/// A protocol region a client can enter within an op (see
/// [`VerbObserver::on_region`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RegionKind {
    /// Spinning on a locked/contended node (re-reads, CAS retries).
    LockWait,
    /// Sleeping in exponential backoff between op attempts.
    Backoff,
}

impl RegionKind {
    /// Stable label (used for trace/metric names).
    pub fn label(self) -> &'static str {
        match self {
            RegionKind::LockWait => "lock_wait",
            RegionKind::Backoff => "backoff",
        }
    }
}

/// A protocol-level fence the index engine evaluated (see
/// [`VerbObserver::on_fence`]). These notes carry no simulated cost and
/// exist so race detectors can tell a *validated* optimistic read (the
/// engine re-checked a version/fence before letting the bytes escape
/// into a result) from an unvalidated one.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FenceKind {
    /// A version/fence re-check (`covers()`, `find_child()`, lock-word
    /// inspection) was *evaluated* on the page at `(server, offset)`,
    /// whatever its outcome — a failed check that discards the bytes is
    /// still a performed re-check.
    Revalidate,
    /// The bytes read from `(server, offset)` were discarded without
    /// flowing into an op result (e.g. an unconsumed prefetched page).
    Discard,
    /// A client-resident cached artifact derived from `(server, offset)`
    /// — a cached inner page, a leaf route, a learned-model prediction —
    /// was served without touching the wire.
    CachedUse,
    /// The client reconciled its cached state against the cluster
    /// restart epoch (cache/model wholesale-flush check). `server` and
    /// `offset` are zero; the event covers all of the client's cached
    /// artifacts.
    EpochCheck,
}

pub use crate::fault::AttemptKind;

/// Receiver for verb events and reclamation notices.
///
/// Only [`on_verb`](Self::on_verb) and [`on_free`](Self::on_free) are
/// required; every other hook defaults to a no-op so existing observers
/// (the sanitizer) keep compiling as the reporting surface grows.
pub trait VerbObserver {
    /// A verb completed and its memory effect has been applied.
    fn on_verb(&self, ev: &VerbEvent);

    /// Epoch GC retired `[offset, offset + len)` on `server`; any later
    /// verb touching the region is a use-after-free.
    fn on_free(&self, server: usize, offset: u64, len: usize, time: SimTime);

    /// `client` attempted a verb against a crashed `server` and received
    /// `ServerUnreachable`. The verb had no remote effect. Fires at issue
    /// time, before the failure is charged. Default: ignore.
    fn on_unreachable(&self, client: u64, server: usize, kind: AttemptKind, time: SimTime) {
        let _ = (client, server, kind, time);
    }

    /// A two-sided RPC completed (response received). Default: ignore.
    fn on_rpc(&self, ev: &RpcEvent) {
        let _ = ev;
    }

    /// A verb or RPC by `client` against `server` failed (timeout or
    /// unreachable) after its failure latency was charged. Default: ignore.
    fn on_verb_failed(&self, client: u64, server: usize, time: SimTime) {
        let _ = (client, server, time);
    }

    /// `client` began an index-level operation. Default: ignore.
    fn on_op_start(&self, client: u64, kind: OpKind, time: SimTime) {
        let _ = (client, kind, time);
    }

    /// `client` finished the operation started by the matching
    /// [`on_op_start`](Self::on_op_start); `ok` is false when it returned
    /// an error. Default: ignore.
    fn on_op_end(&self, client: u64, kind: OpKind, time: SimTime, ok: bool) {
        let _ = (client, kind, time, ok);
    }

    /// `client` invoked an index-level operation with these arguments.
    /// Fires inside the matching [`on_op_start`](Self::on_op_start) span,
    /// before any remote access is issued. History checkers use the
    /// `[invoke, response]` interval as the operation's concurrency
    /// window. Default: ignore.
    fn on_op_invoke(&self, client: u64, args: OpArgs, time: SimTime) {
        let _ = (client, args, time);
    }

    /// The operation invoked by the matching
    /// [`on_op_invoke`](Self::on_op_invoke) returned to the caller with
    /// `outcome`. Default: ignore.
    fn on_op_response(&self, client: u64, outcome: &OpOutcome, time: SimTime) {
        let _ = (client, outcome, time);
    }

    /// `client` entered (`enter == true`) or left a protocol region.
    /// Regions of different kinds do not nest. Default: ignore.
    fn on_region(&self, client: u64, kind: RegionKind, enter: bool, time: SimTime) {
        let _ = (client, kind, enter, time);
    }

    /// A cluster-scoped event (fault injection, recovery) with a
    /// human-readable label. Default: ignore.
    fn on_instant(&self, label: &str, time: SimTime) {
        let _ = (label, time);
    }

    /// `client` evaluated a protocol-level fence: a version/fence
    /// re-check on a page, a discard of never-escaping bytes, a served
    /// cached artifact, or a restart-epoch reconciliation. Fires
    /// synchronously from the index engine with no simulated cost; race
    /// detectors use it to close (or open) validation windows on
    /// optimistic reads. Default: ignore.
    fn on_fence(&self, client: u64, kind: FenceKind, server: usize, offset: u64, time: SimTime) {
        let _ = (client, kind, server, offset, time);
    }

    /// `server` finished crash recovery: its memory now holds the
    /// replayed durable prefix — mutations that applied before the
    /// crash but never reached the log have been *undone*. Observers
    /// holding shadow copies of server state (the sanitizer's lock
    /// words) must resync from memory. Fires only under
    /// `Durability::Wal`; Off-mode restarts preserve RAM and change
    /// nothing. Default: ignore.
    fn on_server_recovered(&self, server: usize, time: SimTime) {
        let _ = (server, time);
    }
}
