#![warn(missing_docs)]

//! # rdma-sim — simulated RDMA verbs over a modelled cluster
//!
//! A deterministic stand-in for an InfiniBand/RoCE fabric (the paper's
//! testbed is an 8-machine FDR 4× cluster with dual-port Connect-IB NICs).
//! The crate provides:
//!
//! * [`RemotePtr`] — the paper's 8-byte remote pointer: `(nullbit,
//!   node-ID (7 bit), offset (7 byte))` (§4.1),
//! * [`MemPool`] — a memory server's RDMA-registered region with
//!   `RDMA_ALLOC`-style bump allocation,
//! * [`Cluster`] — the machines, NIC ports, RPC handler cores, and QPI
//!   placement model,
//! * [`Endpoint`] — the client-side verb API: one-sided `READ` / `WRITE`
//!   / `CAS` / `FETCH_AND_ADD` plus a two-sided SEND/RECV RPC.
//!
//! ## Fidelity model
//!
//! Verb *timing* flows through fluid resources: each memory server's NIC
//! port is a FIFO link (wire time = per-message overhead + bytes /
//! effective bandwidth) and its RPC handlers are a k-core FIFO pool.
//! Verb *effects* (byte copies, compare-and-swap, fetch-and-add) apply
//! atomically at the verb's completion instant, so protocol-level races —
//! failed lock CAS, version bumps observed by concurrent readers, B-link
//! sibling chases after an in-flight split — genuinely occur between
//! verbs, exactly the behaviours the paper's protocols must handle.
//!
//! Memory servers co-resident on one machine share its QPI: the server
//! not attached to the NIC socket pays a bandwidth and CPU penalty,
//! reproducing the effect §6.1 identifies as the coarse-grained design's
//! saturation point.

pub mod buf;
pub mod cluster;
pub mod endpoint;
pub mod fault;
pub mod observer;
pub mod pool;
pub mod ptr;
pub mod spec;

pub use buf::{BufArena, PageBuf};
pub use cluster::{Cluster, DurableState, RecoveryRecord, ServerStats};
pub use endpoint::{Endpoint, RpcReply};
pub use fault::{AttemptKind, FaultStats, LinkDegrade, VerbError};
pub use observer::{
    FenceKind, OpArgs, OpKind, OpOutcome, RegionKind, RpcEvent, VerbEvent, VerbKind, VerbObserver,
};
pub use pool::MemPool;
pub use ptr::{PtrDecodeError, RemotePtr};
pub use spec::{ClusterSpec, Durability, MAX_LOCK_HOLD_VERBS};
// The durability subsystem's own vocabulary, re-exported so index layers
// log records and read counters without depending on `wal` directly.
pub use wal::{WalRecord, WalStats};
