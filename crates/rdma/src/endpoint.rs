//! Client-side verb API.
//!
//! An [`Endpoint`] is one compute thread's connection into the cluster
//! (conceptually its set of reliable-connection queue pairs). Verbs charge
//! simulated time through the target server's NIC link (and CPU pool for
//! RPCs) and apply their memory effects atomically at completion.
//!
//! If the endpoint's machine hosts the target memory server (co-location,
//! Appendix A.3), one-sided verbs take the local-memory path: no NIC
//! occupancy, local latency/bandwidth, counted separately.
//!
//! ## Completion status
//!
//! Every verb returns `Result<_, VerbError>`, mirroring real RDMA work
//! completions:
//!
//! * a verb issued by a killed client fails immediately with
//!   [`VerbError::Cancelled`] and has no remote effect — but a verb
//!   *already in flight* when its client dies completes normally (its
//!   remote effect applies; only the completion is never consumed),
//!   which is how a client can die between its lock CAS and its unlock
//!   FAA, orphaning a remote lock;
//! * a verb against a crashed memory server fails with
//!   [`VerbError::ServerUnreachable`] after a round-trip's detection
//!   delay (both at issue and, for crashes that land mid-flight, at
//!   completion — the effect is then *not* applied);
//! * a verb whose completion would miss `issue + verb_timeout` — link
//!   degradation, a dropped message, or NIC queueing — parks until the
//!   deadline and fails with [`VerbError::Timeout`]. Dropped and
//!   deadline-refused messages never apply their effect. The deadline is
//!   computed analytically against the FIFO NIC model, so a refused verb
//!   does not occupy the wire.

use simnet::{Sim, SimDur, SimTime};

use wal::{WaitOutcome, WalRecord};

use crate::cluster::Cluster;
use crate::fault::{AttemptKind, VerbError};
use crate::observer::{RpcEvent, VerbEvent, VerbKind};
use crate::ptr::RemotePtr;

/// What an RPC handler returns: the caller-visible value plus the costs
/// the simulator must charge.
pub struct RpcReply<R> {
    /// Value delivered to the caller.
    pub value: R,
    /// CPU service time the handler consumed (before any QPI factor).
    pub cpu: SimDur,
    /// Size of the response message in bytes.
    pub resp_bytes: usize,
}

/// A compute thread's connection into the cluster.
#[derive(Clone)]
pub struct Endpoint {
    cluster: Cluster,
    /// The physical machine this endpoint runs on; `None` = a dedicated
    /// compute machine (never local to any memory server).
    machine: Option<usize>,
    /// Stable client id (creation-ordered); clones share the id, as they
    /// represent the same logical compute thread.
    client: u64,
}

impl Endpoint {
    /// Endpoint on a dedicated compute machine.
    pub fn new(cluster: &Cluster) -> Self {
        Endpoint {
            cluster: cluster.clone(),
            machine: None,
            client: cluster.next_client_id(),
        }
    }

    /// Endpoint co-located on physical machine `machine` (Appendix A.3).
    pub fn colocated(cluster: &Cluster, machine: usize) -> Self {
        Endpoint {
            cluster: cluster.clone(),
            machine: Some(machine),
            client: cluster.next_client_id(),
        }
    }

    /// The cluster this endpoint talks to.
    pub fn cluster(&self) -> &Cluster {
        &self.cluster
    }

    /// This endpoint's stable client id.
    pub fn client_id(&self) -> u64 {
        self.client
    }

    fn sim(&self) -> Sim {
        self.cluster.sim().clone()
    }

    /// Whether accesses to server `s` take the local path.
    pub fn is_local(&self, s: usize) -> bool {
        self.machine == Some(self.cluster.spec().machine_of(s))
    }

    /// Report a completed verb to the cluster's observers. With none
    /// installed this is a flag check and nothing more.
    fn emit(
        &self,
        server: usize,
        offset: u64,
        len: usize,
        kind: VerbKind,
        issued: simnet::SimTime,
        queue_nanos: u64,
    ) {
        if !self.cluster.has_observers() {
            return;
        }
        self.cluster.observe(VerbEvent {
            server,
            offset,
            len,
            kind,
            issued,
            time: self.cluster.sim().now(),
            client: self.client,
            queue_nanos,
        });
    }

    // ------------------------------------------------- failure paths ----

    /// Refuse the verb at issue if this client has been killed.
    fn check_alive(&self) -> Result<(), VerbError> {
        if self.cluster.client_dead(self.client) {
            self.cluster.note_cancelled();
            return Err(VerbError::Cancelled);
        }
        Ok(())
    }

    /// Defensively decode `ptr` against this cluster.
    fn decode(&self, ptr: RemotePtr) -> Result<usize, VerbError> {
        ptr.checked_server(self.cluster.num_servers())
            .map_err(|e| VerbError::InvalidPointer { raw: e.raw })
    }

    /// Fail against a crashed server: detection costs one round trip
    /// (the NIC reports a retry-exhausted / receiver-not-ready error).
    async fn fail_unreachable(&self, s: usize, kind: AttemptKind) -> VerbError {
        self.cluster.note_unreachable();
        self.cluster.observe_unreachable(self.client, s, kind);
        self.sim().sleep(self.cluster.spec().rt_latency).await;
        self.cluster.observe_verb_failed(self.client, s);
        VerbError::ServerUnreachable { server: s }
    }

    /// Park until the verb's deadline fires, then report the timeout.
    async fn fail_timeout(&self, s: usize, deadline: SimTime) -> VerbError {
        self.cluster.note_timeout();
        self.sim().sleep_until(deadline).await;
        self.cluster.observe_verb_failed(self.client, s);
        VerbError::Timeout { server: s }
    }

    /// Charge the remote wire path of a one-sided verb: drop roll,
    /// analytic deadline check against the NIC FIFO, wire occupancy, and
    /// the round trip (plus any degradation delay). Returns at the
    /// verb's completion instant with the nanoseconds the verb waited
    /// behind earlier NIC traffic; applies no memory effect.
    async fn charge_remote(
        &self,
        s: usize,
        overhead: SimDur,
        payload: usize,
        deadline: SimTime,
    ) -> Result<u64, VerbError> {
        let sim = self.sim();
        let spec = self.cluster.spec();
        let mut bw = spec.effective_bandwidth(s);
        let mut extra = SimDur::ZERO;
        if let Some(d) = self.cluster.link_degrade(s) {
            bw *= d.bandwidth_factor;
            extra = d.extra_delay;
        }
        if self.cluster.roll_drop(s) {
            return Err(self.fail_timeout(s, deadline).await);
        }
        let wire = overhead + SimDur::from_secs_f64(payload as f64 / bw);
        let server = self.cluster.server(s);
        let queue = server.nic.queue_delay(sim.now());
        let projected = sim.now() + queue + wire + spec.rt_latency + extra;
        if projected > deadline {
            return Err(self.fail_timeout(s, deadline).await);
        }
        server.nic.acquire(&sim, wire).await;
        sim.sleep(spec.rt_latency + extra).await;
        Ok(queue.as_nanos())
    }

    /// This verb's completion deadline.
    fn deadline(&self) -> SimTime {
        self.cluster.sim().now() + self.cluster.spec().verb_timeout
    }

    /// Make a just-applied mutation durable before it is acknowledged:
    /// append its WAL record on server `s` and park until the group-commit
    /// flush covering it lands. No-op (and no await) under
    /// `Durability::Off`. A crash while parked fails the verb like any
    /// other unreachable-server completion — the effect may or may not
    /// survive recovery, and the caller must not treat it as acknowledged.
    /// `rec` is a thunk so the default [`crate::spec::Durability::Off`]
    /// path never constructs (or heap-allocates) the record at all.
    async fn make_durable(
        &self,
        s: usize,
        rec: impl FnOnce() -> WalRecord,
        kind: AttemptKind,
    ) -> Result<(), VerbError> {
        let Some(w) = self.cluster.server_wal(s) else {
            return Ok(());
        };
        let lsn = w.append(rec());
        match w.wait_durable(lsn).await {
            WaitOutcome::Durable => Ok(()),
            WaitOutcome::Crashed => Err(self.fail_unreachable(s, kind).await),
        }
    }

    /// Await durability of everything appended so far on server `s`
    /// (no-op under `Durability::Off`). Index layers call this after
    /// mutating server state through paths that log records themselves
    /// (e.g. a co-located write path) and before acknowledging to the
    /// application.
    pub async fn durability_barrier(&self, s: usize) -> Result<(), VerbError> {
        let Some(w) = self.cluster.server_wal(s) else {
            return Ok(());
        };
        let lsn = w.appended_lsn();
        if lsn == 0 || w.durable_lsn() >= lsn {
            return Ok(());
        }
        match w.wait_durable(lsn).await {
            WaitOutcome::Durable => Ok(()),
            WaitOutcome::Crashed => Err(self.fail_unreachable(s, AttemptKind::Rpc).await),
        }
    }

    // ------------------------------------------------- one-sided verbs ----

    /// One-sided `RDMA_READ` of `len` bytes.
    ///
    /// The payload arrives in a recycled [`crate::buf::PageBuf`] from the
    /// cluster's arena — steady-state descents re-use the same buffers
    /// instead of allocating per verb.
    pub async fn read(&self, ptr: RemotePtr, len: usize) -> Result<crate::buf::PageBuf, VerbError> {
        let sim = self.sim();
        let issued = sim.now();
        self.check_alive()?;
        let s = self.decode(ptr)?;
        if !self.cluster.server_up(s) {
            return Err(self.fail_unreachable(s, AttemptKind::Read).await);
        }
        let deadline = self.deadline();
        let server = self.cluster.server(s);
        server.onesided_ops.inc();
        let queue;
        if self.is_local(s) {
            server.local_bytes.add(len as u64);
            sim.sleep(self.cluster.spec().local_time(len)).await;
            queue = 0;
        } else {
            server.bytes_out.add(len as u64);
            queue = self
                .charge_remote(s, self.cluster.spec().op_wire_overhead, len, deadline)
                .await?;
        }
        if !self.cluster.server_up(s) {
            return Err(self.fail_unreachable(s, AttemptKind::Read).await);
        }
        // Effect at completion: copy the bytes as they are *now*.
        let mut buf = self.cluster.arena().checkout(len);
        server.pool.borrow().copy_out(ptr.offset(), &mut buf);
        self.emit(s, ptr.offset(), len, VerbKind::Read, issued, queue);
        Ok(buf)
    }

    /// Fan out one-sided READs (selectively signalled, §4.3): all wires
    /// are reserved immediately and the caller waits for the last
    /// completion, so transfers to different servers overlap.
    pub async fn read_many(
        &self,
        reqs: &[(RemotePtr, usize)],
    ) -> Result<Vec<crate::buf::PageBuf>, VerbError> {
        let sim = self.sim();
        let issued = sim.now();
        self.check_alive()?;
        let mut servers = Vec::with_capacity(reqs.len());
        for &(ptr, _) in reqs {
            servers.push(self.decode(ptr)?);
        }
        for &s in &servers {
            if !self.cluster.server_up(s) {
                return Err(self.fail_unreachable(s, AttemptKind::Read).await);
            }
        }
        let deadline = self.deadline();
        // Roll every drop die up front, before any wire time is reserved:
        // one dropped message stalls the whole selectively-signalled batch
        // (the final completion never arrives), and a refused batch must
        // not occupy the wire — FIFO reservations cannot be rolled back.
        let mut dropped = None;
        for &s in &servers {
            if !self.is_local(s) && self.cluster.roll_drop(s) {
                dropped = Some(s);
            }
        }
        if let Some(s) = dropped {
            for &t in &servers {
                self.cluster.server(t).onesided_ops.inc();
            }
            return Err(self.fail_timeout(s, deadline).await);
        }
        // Project every completion against the FIFO NIC model without
        // reserving, so a batch that would miss its deadline never touches
        // the wire either. `projected` tracks per-server queue depth as
        // this batch's own requests stack up behind one another.
        let mut projected: Vec<(usize, SimTime)> = Vec::new();
        let mut wires: Vec<Option<SimDur>> = Vec::with_capacity(reqs.len());
        // Per-request NIC queue wait (behind earlier traffic *and* this
        // batch's own earlier requests to the same server).
        let mut queues: Vec<u64> = Vec::with_capacity(reqs.len());
        let mut latest = sim.now();
        let mut slowest = servers[0];
        let mut any_remote = false;
        for (&(_, len), &s) in reqs.iter().zip(&servers) {
            let server = self.cluster.server(s);
            server.onesided_ops.inc();
            let done;
            if self.is_local(s) {
                done = sim.now() + self.cluster.spec().local_time(len);
                wires.push(None);
                queues.push(0);
            } else {
                any_remote = true;
                let spec = self.cluster.spec();
                let mut bw = spec.effective_bandwidth(s);
                let mut extra = SimDur::ZERO;
                if let Some(d) = self.cluster.link_degrade(s) {
                    bw *= d.bandwidth_factor;
                    extra = d.extra_delay;
                }
                let wire = spec.batched_wire_overhead + SimDur::from_secs_f64(len as f64 / bw);
                let i = match projected.iter().position(|&(ps, _)| ps == s) {
                    Some(i) => i,
                    None => {
                        projected.push((s, server.nic.busy_until().max(sim.now())));
                        projected.len() - 1
                    }
                };
                queues.push((projected[i].1 - sim.now()).as_nanos());
                projected[i].1 += wire;
                done = projected[i].1 + extra;
                wires.push(Some(wire));
            }
            if done > latest {
                latest = done;
                slowest = s;
            }
        }
        let completion = if any_remote {
            latest + self.cluster.spec().rt_latency
        } else {
            latest
        };
        if completion > deadline {
            // Attribute the timeout to the server whose projected
            // completion pushed the batch past its deadline.
            return Err(self.fail_timeout(slowest, deadline).await);
        }
        // The batch is admitted: commit reservations and byte counters.
        // No await separates projection from reservation, so the
        // reserved times equal the projected ones exactly.
        for (&(_, len), (&s, wire)) in reqs.iter().zip(servers.iter().zip(&wires)) {
            let server = self.cluster.server(s);
            if let Some(wire) = wire {
                server.bytes_out.add(len as u64);
                server.nic.reserve(sim.now(), *wire);
            } else {
                server.local_bytes.add(len as u64);
            }
        }
        sim.sleep_until(latest).await;
        if any_remote {
            sim.sleep(self.cluster.spec().rt_latency).await;
        }
        for &s in &servers {
            if !self.cluster.server_up(s) {
                return Err(self.fail_unreachable(s, AttemptKind::Read).await);
            }
        }
        let bufs: Vec<crate::buf::PageBuf> = reqs
            .iter()
            .map(|&(ptr, len)| {
                let mut buf = self.cluster.arena().checkout(len);
                self.cluster
                    .server(ptr.server())
                    .pool
                    .borrow()
                    .copy_out(ptr.offset(), &mut buf);
                buf
            })
            .collect();
        for (&(ptr, len), &queue) in reqs.iter().zip(&queues) {
            self.emit(
                ptr.server(),
                ptr.offset(),
                len,
                VerbKind::Read,
                issued,
                queue,
            );
        }
        Ok(bufs)
    }

    /// One-sided `RDMA_WRITE` of `data`.
    pub async fn write(&self, ptr: RemotePtr, data: &[u8]) -> Result<(), VerbError> {
        let sim = self.sim();
        let issued = sim.now();
        self.check_alive()?;
        let s = self.decode(ptr)?;
        if !self.cluster.server_up(s) {
            return Err(self.fail_unreachable(s, AttemptKind::Write).await);
        }
        let deadline = self.deadline();
        let server = self.cluster.server(s);
        server.onesided_ops.inc();
        let queue;
        if self.is_local(s) {
            server.local_bytes.add(data.len() as u64);
            sim.sleep(self.cluster.spec().local_time(data.len())).await;
            queue = 0;
        } else {
            server.bytes_in.add(data.len() as u64);
            queue = self
                .charge_remote(
                    s,
                    self.cluster.spec().op_wire_overhead,
                    data.len(),
                    deadline,
                )
                .await?;
        }
        if !self.cluster.server_up(s) {
            return Err(self.fail_unreachable(s, AttemptKind::Write).await);
        }
        server.pool.borrow_mut().copy_in(ptr.offset(), data);
        // Observers (sanitizer, telemetry) see the effect when it
        // applies — before the durability wait, during which concurrent
        // verbs can already read the new bytes.
        self.emit(s, ptr.offset(), data.len(), VerbKind::Write, issued, queue);
        self.make_durable(
            s,
            || WalRecord::PoolWrite {
                offset: ptr.offset(),
                data: data.to_vec(),
            },
            AttemptKind::Write,
        )
        .await?;
        Ok(())
    }

    /// Charge the cost of a remote atomic (8 bytes each way). Returns
    /// the NIC queue wait in nanoseconds.
    async fn atomic_cost(&self, s: usize, deadline: SimTime) -> Result<u64, VerbError> {
        let sim = self.sim();
        let server = self.cluster.server(s);
        server.onesided_ops.inc();
        if self.is_local(s) {
            server.local_bytes.add(8);
            sim.sleep(self.cluster.spec().local_time(8)).await;
            Ok(0)
        } else {
            server.bytes_in.add(8);
            server.bytes_out.add(8);
            self.charge_remote(s, self.cluster.spec().atomic_wire_overhead, 8, deadline)
                .await
        }
    }

    /// One-sided `RDMA_CAS` on an 8-byte word. Returns the previous
    /// value; the swap happened iff it equals `expected`.
    pub async fn cas(&self, ptr: RemotePtr, expected: u64, new: u64) -> Result<u64, VerbError> {
        let issued = self.sim().now();
        self.check_alive()?;
        let s = self.decode(ptr)?;
        if !self.cluster.server_up(s) {
            return Err(self.fail_unreachable(s, AttemptKind::Cas).await);
        }
        let deadline = self.deadline();
        let queue = self.atomic_cost(s, deadline).await?;
        if !self.cluster.server_up(s) {
            return Err(self.fail_unreachable(s, AttemptKind::Cas).await);
        }
        let prev = self
            .cluster
            .server(s)
            .pool
            .borrow_mut()
            .cas(ptr.offset(), expected, new);
        // Observed at apply time (see `write`): a racing CAS can fail
        // against the new word while this one still awaits its flush.
        self.emit(
            s,
            ptr.offset(),
            8,
            VerbKind::Cas {
                expected,
                new,
                prev,
            },
            issued,
            queue,
        );
        if prev == expected {
            // Only a successful swap mutates state; log its post-word.
            // `PoolWriteWord` keeps the 8-byte payload on the stack.
            self.make_durable(
                s,
                || WalRecord::PoolWriteWord {
                    offset: ptr.offset(),
                    word: new,
                },
                AttemptKind::Cas,
            )
            .await?;
        }
        // Fault-injection hook: a client armed with kill-on-lock-acquire
        // dies the instant its acquire CAS lands — after the remote
        // effect, before any later verb — orphaning the lock it just won.
        // What counts as an acquire is a predicate injected by the index
        // layer (`Cluster::set_lock_acquire_shape`); the transport knows
        // nothing about any particular lock-word encoding.
        if prev == expected {
            self.cluster
                .maybe_fire_lock_kill(self.client, expected, new);
        }
        Ok(prev)
    }

    /// One-sided `RDMA_FETCH_AND_ADD` on an 8-byte word; returns the
    /// previous value.
    pub async fn fetch_add(&self, ptr: RemotePtr, add: u64) -> Result<u64, VerbError> {
        let issued = self.sim().now();
        self.check_alive()?;
        let s = self.decode(ptr)?;
        if !self.cluster.server_up(s) {
            return Err(self.fail_unreachable(s, AttemptKind::Faa).await);
        }
        let deadline = self.deadline();
        let queue = self.atomic_cost(s, deadline).await?;
        if !self.cluster.server_up(s) {
            return Err(self.fail_unreachable(s, AttemptKind::Faa).await);
        }
        let prev = self
            .cluster
            .server(s)
            .pool
            .borrow_mut()
            .fetch_add(ptr.offset(), add);
        self.emit(
            s,
            ptr.offset(),
            8,
            VerbKind::Faa { add, prev },
            issued,
            queue,
        );
        self.make_durable(
            s,
            || WalRecord::PoolWriteWord {
                offset: ptr.offset(),
                word: prev.wrapping_add(add),
            },
            AttemptKind::Faa,
        )
        .await?;
        Ok(prev)
    }

    /// `RDMA_ALLOC` (Listing 4): reserve `size` bytes on server `s`.
    /// Costs one round trip (a tiny control message on the wire), and
    /// fails like every other verb: drop and deadline refusals, link
    /// degradation, and a crash that lands mid-flight all void the
    /// reservation — the allocation effect applies only at completion.
    pub async fn alloc(&self, s: usize, size: u64) -> Result<RemotePtr, VerbError> {
        let sim = self.sim();
        let issued = sim.now();
        self.check_alive()?;
        if !self.cluster.server_up(s) {
            return Err(self.fail_unreachable(s, AttemptKind::Alloc).await);
        }
        let deadline = self.deadline();
        let queue;
        if self.is_local(s) {
            sim.sleep(self.cluster.spec().local_latency).await;
            queue = 0;
        } else {
            queue = self
                .charge_remote(s, self.cluster.spec().op_wire_overhead, 0, deadline)
                .await?;
        }
        if !self.cluster.server_up(s) {
            return Err(self.fail_unreachable(s, AttemptKind::Alloc).await);
        }
        // Effect at completion: the bump reservation happens only once
        // the request has survived the wire and the server is still up.
        let ptr = self.cluster.setup_alloc(s, size);
        let watermark = self.cluster.server(s).pool.borrow().allocated();
        self.emit(
            s,
            ptr.offset(),
            size as usize,
            VerbKind::Alloc,
            issued,
            queue,
        );
        self.make_durable(
            s,
            || WalRecord::PoolAllocTo { next: watermark },
            AttemptKind::Alloc,
        )
        .await?;
        Ok(ptr)
    }

    /// Co-located fast path (Appendix A.3): the compute thread executes
    /// work against a local memory server directly — `busy` of its own
    /// CPU plus the local-path transfer of `bytes`; no NIC, no handler
    /// core. Panics if the server is not local to this endpoint.
    pub async fn local_work(&self, s: usize, busy: SimDur, bytes: usize) -> Result<(), VerbError> {
        assert!(self.is_local(s), "local_work on a remote server");
        self.check_alive()?;
        if !self.cluster.server_up(s) {
            return Err(self.fail_unreachable(s, AttemptKind::Read).await);
        }
        let sim = self.sim();
        let server = self.cluster.server(s);
        server.local_bytes.add(bytes as u64);
        sim.sleep(busy + self.cluster.spec().local_time(bytes))
            .await;
        Ok(())
    }

    // ------------------------------------------------- two-sided RPC ----

    /// Two-sided RPC (SEND/RECV over a reliable connection, served from a
    /// shared receive queue): ships `req_bytes`, queues for a handler
    /// core, runs `handler` at grant time, holds the core for the
    /// handler-reported CPU time (scaled by the server's QPI factor), and
    /// ships the handler-reported response.
    ///
    /// Failure semantics are at-least-once: once the request leg lands,
    /// the handler runs (and its server-side effects stick) even if the
    /// response is lost to a crash or deadline — the caller then sees an
    /// error and cannot tell whether the handler executed.
    pub async fn rpc<R>(
        &self,
        s: usize,
        req_bytes: usize,
        handler: impl FnOnce() -> RpcReply<R>,
    ) -> Result<R, VerbError> {
        let sim = self.sim();
        let issued = sim.now();
        self.check_alive()?;
        if !self.cluster.server_up(s) {
            return Err(self.fail_unreachable(s, AttemptKind::Rpc).await);
        }
        let deadline = self.deadline();
        let spec = self.cluster.spec().clone();
        let server = self.cluster.server(s);
        server.rpcs.inc();
        let local = self.is_local(s);
        // Time spent queued (NIC FIFO on both legs + waiting for a
        // handler core) and executing on the handler core, for the
        // completion event.
        let mut queue_nanos: u64 = 0;

        // Request leg.
        if local {
            server.local_bytes.add(req_bytes as u64);
            sim.sleep(spec.local_time(req_bytes)).await;
        } else {
            let mut bw = spec.effective_bandwidth(s);
            let mut extra = SimDur::ZERO;
            if let Some(d) = self.cluster.link_degrade(s) {
                bw *= d.bandwidth_factor;
                extra = d.extra_delay;
            }
            if self.cluster.roll_drop(s) {
                return Err(self.fail_timeout(s, deadline).await);
            }
            let wire = spec.op_wire_overhead + SimDur::from_secs_f64(req_bytes as f64 / bw);
            let queue = server.nic.queue_delay(sim.now());
            let projected = sim.now() + queue + wire + spec.rt_latency / 2;
            if projected + extra > deadline {
                return Err(self.fail_timeout(s, deadline).await);
            }
            server.bytes_in.add(req_bytes as u64);
            server.nic.acquire(&sim, wire).await;
            sim.sleep(spec.rt_latency / 2 + extra).await;
            queue_nanos += queue.as_nanos();
        }
        if !self.cluster.server_up(s) {
            return Err(self.fail_unreachable(s, AttemptKind::Rpc).await);
        }

        // Handler: queue for a core, run, hold the core for the work done.
        // RC connection state adds per-client pressure (see
        // `ClusterSpec::rpc_client_penalty`).
        let cpu_wait_from = sim.now();
        let grant = server.cpu.acquire(&sim).await;
        queue_nanos += (sim.now() - cpu_wait_from).as_nanos();
        if !self.cluster.server_up(s) {
            // The server crashed while the request sat in its queue.
            grant.complete(&sim, SimDur::ZERO).await;
            return Err(self.fail_unreachable(s, AttemptKind::Rpc).await);
        }
        if sim.now() > deadline {
            grant.complete(&sim, SimDur::ZERO).await;
            return Err(self.fail_timeout(s, deadline).await);
        }
        // Snapshot the WAL position so the post-handler barrier covers
        // exactly the records this handler logs.
        let wal_pre = self
            .cluster
            .server_wal(s)
            .map(|w| (w.appended_lsn(), w.epoch()));
        let reply = handler();
        let state_penalty = spec.rpc_client_penalty * self.cluster.active_clients() as u64;
        let service =
            SimDur::from_secs_f64((reply.cpu + state_penalty).as_secs_f64() * spec.cpu_factor(s));
        grant.complete(&sim, service).await;
        let server_nanos = service.as_nanos();
        if !self.cluster.server_up(s) {
            return Err(self.fail_unreachable(s, AttemptKind::Rpc).await);
        }
        // WAL-before-ack: everything the handler logged must be durable
        // before the response leg releases (group commit coalesces
        // concurrent handlers' records into shared flushes).
        if let Some((pre_lsn, pre_epoch)) = wal_pre {
            let w = self
                .cluster
                .server_wal(s)
                .expect("wal is fixed per cluster");
            if w.epoch() != pre_epoch {
                return Err(self.fail_unreachable(s, AttemptKind::Rpc).await);
            }
            let post = w.appended_lsn();
            if post > pre_lsn {
                match w.wait_durable(post).await {
                    WaitOutcome::Durable => {}
                    WaitOutcome::Crashed => {
                        return Err(self.fail_unreachable(s, AttemptKind::Rpc).await)
                    }
                }
            }
        }

        // Response leg.
        if local {
            server.local_bytes.add(reply.resp_bytes as u64);
            sim.sleep(spec.local_time(reply.resp_bytes)).await;
        } else {
            let mut bw = spec.effective_bandwidth(s);
            let mut extra = SimDur::ZERO;
            if let Some(d) = self.cluster.link_degrade(s) {
                bw *= d.bandwidth_factor;
                extra = d.extra_delay;
            }
            if self.cluster.roll_drop(s) {
                return Err(self.fail_timeout(s, deadline).await);
            }
            let wire = spec.op_wire_overhead + SimDur::from_secs_f64(reply.resp_bytes as f64 / bw);
            let queue = server.nic.queue_delay(sim.now());
            let projected = sim.now() + queue + wire + spec.rt_latency / 2;
            if projected + extra > deadline {
                return Err(self.fail_timeout(s, deadline).await);
            }
            server.bytes_out.add(reply.resp_bytes as u64);
            server.nic.acquire(&sim, wire).await;
            sim.sleep(spec.rt_latency / 2 + extra).await;
            queue_nanos += queue.as_nanos();
        }
        if self.cluster.has_observers() {
            self.cluster.observe_rpc(RpcEvent {
                client: self.client,
                server: s,
                issued,
                time: sim.now(),
                queue_nanos,
                server_nanos,
            });
        }
        Ok(reply.value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::LinkDegrade;
    use crate::spec::ClusterSpec;
    use std::cell::Cell;
    use std::rc::Rc;

    fn harness() -> (Sim, Cluster) {
        let sim = Sim::new();
        let cluster = Cluster::new(&sim, ClusterSpec::default());
        (sim, cluster)
    }

    #[test]
    fn read_returns_written_bytes_and_costs_time() {
        let (sim, cluster) = harness();
        let ptr = cluster.setup_alloc(0, 64);
        cluster.setup_write(ptr, &[42; 64]);
        let ep = Endpoint::new(&cluster);
        let done = Rc::new(Cell::new(0u64));
        let d = done.clone();
        let s = sim.clone();
        sim.spawn(async move {
            let data = ep.read(ptr, 64).await.unwrap();
            assert_eq!(data, vec![42; 64]);
            d.set(s.now().as_nanos());
        });
        sim.run();
        // At least the round-trip latency passed.
        assert!(done.get() >= 2_500, "took {}ns", done.get());
        assert_eq!(cluster.server_stats(0).bytes_out, 64);
        assert_eq!(cluster.server_stats(0).onesided_ops, 1);
    }

    #[test]
    fn write_then_read() {
        let (sim, cluster) = harness();
        let ptr = cluster.setup_alloc(1, 16);
        let ep = Endpoint::new(&cluster);
        sim.spawn({
            let ep = ep.clone();
            async move {
                ep.write(ptr, &[7; 16]).await.unwrap();
                let data = ep.read(ptr, 16).await.unwrap();
                assert_eq!(data, vec![7; 16]);
            }
        });
        sim.run();
        let stats = cluster.server_stats(1);
        assert_eq!(stats.bytes_in, 16);
        assert_eq!(stats.bytes_out, 16);
    }

    #[test]
    fn cas_success_and_failure_race() {
        let (sim, cluster) = harness();
        let ptr = cluster.setup_alloc(0, 8);
        // Two clients CAS 0 -> themselves; exactly one must win.
        let wins = Rc::new(Cell::new(0u32));
        for id in 1..=2u64 {
            let ep = Endpoint::new(&cluster);
            let w = wins.clone();
            sim.spawn(async move {
                let old = ep.cas(ptr, 0, id).await.unwrap();
                if old == 0 {
                    w.set(w.get() + 1);
                }
            });
        }
        sim.run();
        assert_eq!(wins.get(), 1, "exactly one CAS winner");
    }

    #[test]
    fn fetch_add_accumulates() {
        let (sim, cluster) = harness();
        let ptr = cluster.setup_alloc(0, 8);
        for _ in 0..10 {
            let ep = Endpoint::new(&cluster);
            sim.spawn(async move {
                ep.fetch_add(ptr, 2).await.unwrap();
            });
        }
        sim.run();
        assert_eq!(cluster.setup_read(ptr, 8), 20u64.to_le_bytes().to_vec());
    }

    #[test]
    fn rpc_runs_handler_and_charges_cpu() {
        let (sim, cluster) = harness();
        let ep = Endpoint::new(&cluster);
        let got = Rc::new(Cell::new(0u64));
        let g = got.clone();
        sim.spawn(async move {
            let v = ep
                .rpc(0, 32, || RpcReply {
                    value: 99u64,
                    cpu: SimDur::from_micros(5),
                    resp_bytes: 128,
                })
                .await
                .unwrap();
            g.set(v);
        });
        let end = sim.run();
        assert_eq!(got.get(), 99);
        let stats = cluster.server_stats(0);
        assert_eq!(stats.rpcs, 1);
        assert_eq!(stats.bytes_in, 32);
        assert_eq!(stats.bytes_out, 128);
        assert_eq!(stats.cpu_busy_nanos, 5_000);
        assert!(end.as_nanos() >= 5_000 + 2_500);
    }

    #[test]
    fn rpc_cpu_saturates_with_cores() {
        let (sim, cluster) = harness();
        // 30 concurrent RPCs of 10us on a 10-core server: three waves.
        let last = Rc::new(Cell::new(0u64));
        for _ in 0..30 {
            let ep = Endpoint::new(&cluster);
            let l = last.clone();
            let s = sim.clone();
            sim.spawn(async move {
                ep.rpc(0, 16, || RpcReply {
                    value: (),
                    cpu: SimDur::from_micros(10),
                    resp_bytes: 16,
                })
                .await
                .unwrap();
                l.set(l.get().max(s.now().as_micros()));
            });
        }
        sim.run();
        assert!(last.get() >= 30, "three service waves of 10us each");
    }

    #[test]
    fn qpi_server_slower() {
        let (sim, cluster) = harness();
        let p0 = cluster.setup_alloc(0, 1024);
        let p1 = cluster.setup_alloc(1, 1024); // server 1 crosses QPI
        let t0 = Rc::new(Cell::new(0u64));
        let t1 = Rc::new(Cell::new(0u64));
        for (ptr, cell) in [(p0, t0.clone()), (p1, t1.clone())] {
            let ep = Endpoint::new(&cluster);
            let s = sim.clone();
            sim.spawn(async move {
                let begin = s.now();
                // Many large reads so wire time dominates latency.
                for _ in 0..100 {
                    ep.read(ptr, 1024).await.unwrap();
                }
                cell.set((s.now() - begin).as_nanos());
            });
        }
        sim.run();
        assert!(t1.get() > t0.get(), "QPI-crossing server must be slower");
    }

    #[test]
    fn read_many_overlaps_servers() {
        let (sim, cluster) = harness();
        let ptrs: Vec<_> = (0..4)
            .map(|s| (cluster.setup_alloc(s, 1024), 1024usize))
            .collect();
        let seq = Rc::new(Cell::new(0u64));
        let par = Rc::new(Cell::new(0u64));
        {
            let ep = Endpoint::new(&cluster);
            let ptrs = ptrs.clone();
            let par = par.clone();
            let s = sim.clone();
            sim.spawn(async move {
                let begin = s.now();
                let bufs = ep.read_many(&ptrs).await.unwrap();
                assert_eq!(bufs.len(), 4);
                par.set((s.now() - begin).as_nanos());
            });
        }
        sim.run();
        {
            let sim2 = Sim::new();
            let cluster2 = Cluster::new(&sim2, ClusterSpec::default());
            let ptrs2: Vec<_> = (0..4)
                .map(|s| (cluster2.setup_alloc(s, 1024), 1024usize))
                .collect();
            let ep = Endpoint::new(&cluster2);
            let seq = seq.clone();
            let s = sim2.clone();
            sim2.spawn(async move {
                let begin = s.now();
                for &(p, l) in &ptrs2 {
                    ep.read(p, l).await.unwrap();
                }
                seq.set((s.now() - begin).as_nanos());
            });
            sim2.run();
        }
        assert!(
            par.get() < seq.get(),
            "fanned-out reads ({}) must beat sequential ({})",
            par.get(),
            seq.get()
        );
    }

    #[test]
    fn local_work_counts_bytes_and_time() {
        let sim = Sim::new();
        let cluster = Cluster::new(&sim, ClusterSpec::default());
        let ep = Endpoint::colocated(&cluster, 0);
        let s = sim.clone();
        sim.spawn(async move {
            ep.local_work(0, SimDur::from_micros(7), 64).await.unwrap();
            assert!(s.now().as_nanos() >= 7_000);
        });
        sim.run();
        let stats = cluster.server_stats(0);
        assert_eq!(stats.local_bytes, 64);
        assert_eq!(stats.cpu_busy_nanos, 0, "local work uses compute cores");
        assert_eq!(stats.nic_busy_nanos, 0);
    }

    #[test]
    #[should_panic(expected = "local_work on a remote server")]
    fn local_work_rejects_remote() {
        let sim = Sim::new();
        let cluster = Cluster::new(&sim, ClusterSpec::default());
        let ep = Endpoint::new(&cluster);
        sim.spawn(async move {
            ep.local_work(0, SimDur::ZERO, 0).await.unwrap();
        });
        sim.run();
    }

    #[test]
    fn rpc_client_state_penalty_applies() {
        let run = |clients: usize| {
            let sim = Sim::new();
            let cluster = Cluster::new(&sim, ClusterSpec::default());
            cluster.set_active_clients(clients);
            let ep = Endpoint::new(&cluster);
            sim.spawn(async move {
                ep.rpc(0, 16, || RpcReply {
                    value: (),
                    cpu: SimDur::from_micros(5),
                    resp_bytes: 16,
                })
                .await
                .unwrap();
            });
            sim.run();
            cluster.server_stats(0).cpu_busy_nanos
        };
        let lone = run(1);
        let crowded = run(240);
        assert!(
            crowded > lone + 2_000,
            "240 clients must add RC state pressure: {lone} vs {crowded}"
        );
    }

    #[test]
    fn batched_reads_cheaper_per_message() {
        let spec = ClusterSpec::default();
        assert!(spec.batched_wire_time(0, 1024) < spec.wire_time(0, 1024));
    }

    #[test]
    fn colocated_read_skips_nic() {
        let sim = Sim::new();
        let cluster = Cluster::new(&sim, ClusterSpec::default());
        let ptr = cluster.setup_alloc(0, 64); // server 0 lives on machine 0
        cluster.setup_write(ptr, &[5; 64]);
        let ep = Endpoint::colocated(&cluster, 0);
        assert!(ep.is_local(0));
        assert!(ep.is_local(1), "both servers of machine 0 are local");
        assert!(!ep.is_local(2));
        sim.spawn(async move {
            let data = ep.read(ptr, 64).await.unwrap();
            assert_eq!(data[0], 5);
        });
        sim.run();
        let stats = cluster.server_stats(0);
        assert_eq!(stats.bytes_out, 0, "local path must not touch the wire");
        assert_eq!(stats.local_bytes, 64);
        assert_eq!(stats.nic_busy_nanos, 0);
    }

    // ---- failure surface ----

    #[test]
    fn crashed_server_is_unreachable_until_restart() {
        let (sim, cluster) = harness();
        let ptr = cluster.setup_alloc(2, 64);
        cluster.setup_write(ptr, &[3; 64]);
        cluster.fail_server(2);
        let ep = Endpoint::new(&cluster);
        let c = cluster.clone();
        let s = sim.clone();
        sim.spawn(async move {
            let begin = s.now();
            let err = ep.read(ptr, 64).await.unwrap_err();
            assert_eq!(err, VerbError::ServerUnreachable { server: 2 });
            assert!(err.is_retryable());
            // Detection charged a round trip.
            assert!((s.now() - begin).as_nanos() >= 2_500);
            c.restart_server(2);
            assert_eq!(c.server_restarts(2), 1);
            // Memory survived the crash.
            let data = ep.read(ptr, 64).await.unwrap();
            assert_eq!(data, vec![3; 64]);
        });
        sim.run();
        assert_eq!(cluster.fault_stats().verbs_unreachable, 1);
    }

    #[test]
    fn crash_mid_flight_voids_the_effect() {
        let (sim, cluster) = harness();
        let ptr = cluster.setup_alloc(0, 8);
        let ep = Endpoint::new(&cluster);
        {
            let cluster = cluster.clone();
            let sim_c = sim.clone();
            sim.spawn(async move {
                // Crash the server while the write is on the wire.
                sim_c.sleep(SimDur::from_nanos(100)).await;
                cluster.fail_server(0);
            });
        }
        sim.spawn(async move {
            let err = ep.write(ptr, &7u64.to_le_bytes()).await.unwrap_err();
            assert_eq!(err, VerbError::ServerUnreachable { server: 0 });
        });
        sim.run();
        assert_eq!(cluster.setup_read(ptr, 8), vec![0; 8], "no effect applied");
    }

    #[test]
    fn killed_client_gets_cancelled() {
        let (sim, cluster) = harness();
        let ptr = cluster.setup_alloc(0, 8);
        let ep = Endpoint::new(&cluster);
        cluster.kill_client(ep.client_id());
        sim.spawn(async move {
            let err = ep.cas(ptr, 0, 1).await.unwrap_err();
            assert_eq!(err, VerbError::Cancelled);
            assert!(!err.is_retryable());
        });
        sim.run();
        assert_eq!(cluster.setup_read(ptr, 8), vec![0; 8], "no effect applied");
        assert_eq!(cluster.fault_stats().verbs_cancelled, 1);
    }

    #[test]
    fn kill_on_lock_acquire_fires_between_cas_and_faa() {
        let (sim, cluster) = harness();
        let ptr = cluster.setup_alloc(0, 8);
        let ep = Endpoint::new(&cluster);
        // The transport is encoding-agnostic: the index layer injects
        // what an acquire CAS looks like before arming the trigger.
        cluster.set_lock_acquire_shape(blink::layout::lock_word::is_acquire);
        cluster.arm_kill_on_lock_acquire(ep.client_id());
        let c = cluster.clone();
        sim.spawn(async move {
            // The acquire CAS itself succeeds...
            let word = blink::layout::lock_word::locked_by(0, ep.client_id());
            let prev = ep.cas(ptr, 0, word).await.unwrap();
            assert_eq!(prev, 0);
            assert!(c.client_dead(ep.client_id()), "trigger fired");
            // ...and the unlock FAA never happens.
            let err = ep.fetch_add(ptr, 1).await.unwrap_err();
            assert_eq!(err, VerbError::Cancelled);
        });
        sim.run();
        // The lock word is orphaned in the locked state.
        let word = u64::from_le_bytes(cluster.setup_read(ptr, 8).try_into().unwrap());
        assert!(blink::layout::lock_word::is_locked(word));
        assert_eq!(cluster.fault_stats().lock_kills_fired, 1);
    }

    #[test]
    fn crash_mid_flight_voids_an_alloc() {
        let (sim, cluster) = harness();
        let before = cluster.server(0).pool.borrow().allocated();
        let ep = Endpoint::new(&cluster);
        {
            let cluster = cluster.clone();
            let sim_c = sim.clone();
            sim.spawn(async move {
                // Crash the server while the alloc request is on the wire.
                sim_c.sleep(SimDur::from_nanos(100)).await;
                cluster.fail_server(0);
            });
        }
        sim.spawn(async move {
            let err = ep.alloc(0, 256).await.unwrap_err();
            assert_eq!(err, VerbError::ServerUnreachable { server: 0 });
        });
        sim.run();
        assert_eq!(
            cluster.server(0).pool.borrow().allocated(),
            before,
            "a failed alloc must not leak its reservation"
        );
    }

    #[test]
    fn dropped_alloc_times_out_without_reserving() {
        let (sim, cluster) = harness();
        let before = cluster.server(0).pool.borrow().allocated();
        cluster.set_fault_seed(7);
        cluster.degrade_link(
            0,
            LinkDegrade {
                drop_chance: 1.0,
                ..LinkDegrade::default()
            },
        );
        let ep = Endpoint::new(&cluster);
        sim.spawn(async move {
            let err = ep.alloc(0, 256).await.unwrap_err();
            assert_eq!(err, VerbError::Timeout { server: 0 });
        });
        sim.run();
        assert_eq!(cluster.server(0).pool.borrow().allocated(), before);
    }

    #[test]
    fn refused_read_many_batch_never_touches_the_wire() {
        let (sim, cluster) = harness();
        cluster.set_fault_seed(7);
        // Only server 2's link drops; servers 0 and 1 are clean, yet the
        // refused batch must not occupy their NICs either.
        cluster.degrade_link(
            2,
            LinkDegrade {
                drop_chance: 1.0,
                ..LinkDegrade::default()
            },
        );
        let reqs: Vec<_> = (0..3)
            .map(|s| (cluster.setup_alloc(s, 512), 512usize))
            .collect();
        let ep = Endpoint::new(&cluster);
        sim.spawn(async move {
            let err = ep.read_many(&reqs).await.unwrap_err();
            assert_eq!(err, VerbError::Timeout { server: 2 });
        });
        sim.run();
        for s in 0..3 {
            let stats = cluster.server_stats(s);
            assert_eq!(stats.nic_busy_nanos, 0, "server {s} wire stayed idle");
            assert_eq!(stats.bytes_out, 0, "server {s} shipped no bytes");
        }
    }

    #[test]
    fn dropped_verbs_time_out_at_the_deadline() {
        let (sim, cluster) = harness();
        let ptr = cluster.setup_alloc(0, 64);
        cluster.set_fault_seed(7);
        cluster.degrade_link(
            0,
            LinkDegrade {
                drop_chance: 1.0,
                ..LinkDegrade::default()
            },
        );
        let ep = Endpoint::new(&cluster);
        let s = sim.clone();
        sim.spawn(async move {
            let begin = s.now();
            let err = ep.read(ptr, 64).await.unwrap_err();
            assert_eq!(err, VerbError::Timeout { server: 0 });
            let spec = ep.cluster().spec().clone();
            assert_eq!((s.now() - begin).as_nanos(), spec.verb_timeout.as_nanos());
        });
        sim.run();
        let fs = cluster.fault_stats();
        assert_eq!(fs.verbs_dropped, 1);
        assert_eq!(fs.verbs_timed_out, 1);
        assert_eq!(
            cluster.server_stats(0).nic_busy_nanos,
            0,
            "never on the wire"
        );
    }

    #[test]
    fn degraded_bandwidth_slows_reads() {
        let elapsed = |degrade: Option<LinkDegrade>| {
            let sim = Sim::new();
            let cluster = Cluster::new(&sim, ClusterSpec::default());
            let ptr = cluster.setup_alloc(0, 4096);
            if let Some(d) = degrade {
                cluster.degrade_link(0, d);
            }
            let ep = Endpoint::new(&cluster);
            let s = sim.clone();
            let t = Rc::new(Cell::new(0u64));
            let t2 = t.clone();
            sim.spawn(async move {
                for _ in 0..50 {
                    ep.read(ptr, 4096).await.unwrap();
                }
                t2.set(s.now().as_nanos());
            });
            sim.run();
            t.get()
        };
        let clean = elapsed(None);
        let slow = elapsed(Some(LinkDegrade {
            bandwidth_factor: 0.25,
            extra_delay: SimDur::from_nanos(400),
            ..LinkDegrade::default()
        }));
        assert!(
            slow > clean,
            "degraded link must be slower: {clean} vs {slow}"
        );
    }

    #[test]
    fn wal_crash_wipes_ram_and_recovery_replays_acked_writes() {
        use crate::spec::Durability;
        let sim = Sim::new();
        let cluster = Cluster::new(
            &sim,
            ClusterSpec {
                durability: Durability::Wal,
                ..ClusterSpec::default()
            },
        );
        let ptr = cluster.setup_alloc(0, 64);
        cluster.seal_setup();
        let ep = Endpoint::new(&cluster);
        let c = cluster.clone();
        let s = sim.clone();
        sim.spawn(async move {
            // An acknowledged write is durable by definition.
            ep.write(ptr, &[8; 64]).await.unwrap();
            c.fail_server(0);
            // RAM is gone at the crash instant: the pool reset to empty.
            c.with_pool(0, |p| {
                assert_eq!(p.allocated(), crate::pool::MemPool::ALIGN)
            });
            c.restart_server(0);
            assert!(!c.server_up(0), "recovery takes measurable time");
            assert!(c.server_recovering(0));
            while !c.server_up(0) {
                s.sleep(SimDur::from_micros(100)).await;
            }
            // Replay restored the acknowledged write.
            let data = ep.read(ptr, 64).await.unwrap();
            assert_eq!(data, vec![8; 64]);
        });
        sim.run();
        let recs = cluster.recovery_records();
        assert_eq!(recs.len(), 1);
        assert!(recs[0].recovery_time() >= cluster.spec().wal_restart_boot_latency);
        assert!(recs[0].replay_bytes > 0);
        assert_eq!(cluster.server_restarts(0), 1);
        assert_eq!(sim.live_tasks(), 0);
    }

    #[test]
    fn wal_mode_charges_log_flushes_on_mutating_verbs() {
        use crate::spec::Durability;
        let elapsed = |durability: Durability| {
            let sim = Sim::new();
            let cluster = Cluster::new(
                &sim,
                ClusterSpec {
                    durability,
                    ..ClusterSpec::default()
                },
            );
            let ptr = cluster.setup_alloc(0, 8);
            cluster.seal_setup();
            let ep = Endpoint::new(&cluster);
            let s = sim.clone();
            let t = Rc::new(Cell::new(0u64));
            let t2 = t.clone();
            sim.spawn(async move {
                for i in 0..10u64 {
                    ep.fetch_add(ptr, i).await.unwrap();
                }
                t2.set(s.now().as_nanos());
            });
            sim.run();
            t.get()
        };
        let off = elapsed(Durability::Off);
        let on = elapsed(Durability::Wal);
        // Ten sequential FAAs each wait one fsync (10us default).
        assert!(
            on >= off + 10 * 10_000,
            "durable acks must pay the log device: {off}ns vs {on}ns"
        );
    }

    #[test]
    fn invalid_pointer_is_a_typed_error() {
        let (sim, cluster) = harness();
        // Server id 9 does not exist in a 4-server cluster.
        let bogus = RemotePtr::new(9, 4096);
        let ep = Endpoint::new(&cluster);
        sim.spawn(async move {
            let err = ep.read(bogus, 8).await.unwrap_err();
            assert_eq!(err, VerbError::InvalidPointer { raw: bogus.raw() });
            assert!(!err.is_retryable());
        });
        sim.run();
    }
}
