//! Client-side verb API.
//!
//! An [`Endpoint`] is one compute thread's connection into the cluster
//! (conceptually its set of reliable-connection queue pairs). Verbs charge
//! simulated time through the target server's NIC link (and CPU pool for
//! RPCs) and apply their memory effects atomically at completion.
//!
//! If the endpoint's machine hosts the target memory server (co-location,
//! Appendix A.3), one-sided verbs take the local-memory path: no NIC
//! occupancy, local latency/bandwidth, counted separately.

use simnet::{Sim, SimDur};

use crate::cluster::Cluster;
#[cfg(feature = "sanitizer")]
use crate::observer::{VerbEvent, VerbKind};
use crate::ptr::RemotePtr;

/// What an RPC handler returns: the caller-visible value plus the costs
/// the simulator must charge.
pub struct RpcReply<R> {
    /// Value delivered to the caller.
    pub value: R,
    /// CPU service time the handler consumed (before any QPI factor).
    pub cpu: SimDur,
    /// Size of the response message in bytes.
    pub resp_bytes: usize,
}

/// A compute thread's connection into the cluster.
#[derive(Clone)]
pub struct Endpoint {
    cluster: Cluster,
    /// The physical machine this endpoint runs on; `None` = a dedicated
    /// compute machine (never local to any memory server).
    machine: Option<usize>,
    /// Stable client id (creation-ordered); clones share the id, as they
    /// represent the same logical compute thread.
    client: u64,
}

impl Endpoint {
    /// Endpoint on a dedicated compute machine.
    pub fn new(cluster: &Cluster) -> Self {
        Endpoint {
            cluster: cluster.clone(),
            machine: None,
            client: cluster.next_client_id(),
        }
    }

    /// Endpoint co-located on physical machine `machine` (Appendix A.3).
    pub fn colocated(cluster: &Cluster, machine: usize) -> Self {
        Endpoint {
            cluster: cluster.clone(),
            machine: Some(machine),
            client: cluster.next_client_id(),
        }
    }

    /// The cluster this endpoint talks to.
    pub fn cluster(&self) -> &Cluster {
        &self.cluster
    }

    /// This endpoint's stable client id.
    pub fn client_id(&self) -> u64 {
        self.client
    }

    fn sim(&self) -> Sim {
        self.cluster.sim().clone()
    }

    /// Whether accesses to server `s` take the local path.
    pub fn is_local(&self, s: usize) -> bool {
        self.machine == Some(self.cluster.spec().machine_of(s))
    }

    /// Report a completed verb to the cluster's observer.
    #[cfg(feature = "sanitizer")]
    fn emit(
        &self,
        server: usize,
        offset: u64,
        len: usize,
        kind: VerbKind,
        issued: simnet::SimTime,
    ) {
        self.cluster.observe(VerbEvent {
            server,
            offset,
            len,
            kind,
            issued,
            time: self.cluster.sim().now(),
            client: self.client,
        });
    }

    // ------------------------------------------------- one-sided verbs ----

    /// One-sided `RDMA_READ` of `len` bytes.
    pub async fn read(&self, ptr: RemotePtr, len: usize) -> Vec<u8> {
        let sim = self.sim();
        #[cfg(feature = "sanitizer")]
        let issued = sim.now();
        let s = ptr.server();
        let server = self.cluster.server(s);
        server.onesided_ops.inc();
        if self.is_local(s) {
            server.local_bytes.add(len as u64);
            sim.sleep(self.cluster.spec().local_time(len)).await;
        } else {
            server.bytes_out.add(len as u64);
            let wire = self.cluster.wire_time(s, len);
            server.nic.acquire(&sim, wire).await;
            sim.sleep(self.cluster.spec().rt_latency).await;
        }
        // Effect at completion: copy the bytes as they are *now*.
        let mut buf = vec![0u8; len];
        server.pool.borrow().copy_out(ptr.offset(), &mut buf);
        #[cfg(feature = "sanitizer")]
        self.emit(s, ptr.offset(), len, VerbKind::Read, issued);
        buf
    }

    /// Fan out one-sided READs (selectively signalled, §4.3): all wires
    /// are reserved immediately and the caller waits for the last
    /// completion, so transfers to different servers overlap.
    pub async fn read_many(&self, reqs: &[(RemotePtr, usize)]) -> Vec<Vec<u8>> {
        let sim = self.sim();
        #[cfg(feature = "sanitizer")]
        let issued = sim.now();
        let mut latest = sim.now();
        let mut any_remote = false;
        for &(ptr, len) in reqs {
            let s = ptr.server();
            let server = self.cluster.server(s);
            server.onesided_ops.inc();
            if self.is_local(s) {
                server.local_bytes.add(len as u64);
                latest = latest.max(sim.now() + self.cluster.spec().local_time(len));
            } else {
                any_remote = true;
                server.bytes_out.add(len as u64);
                let wire = self.cluster.spec().batched_wire_time(s, len);
                latest = latest.max(server.nic.reserve(sim.now(), wire));
            }
        }
        sim.sleep_until(latest).await;
        if any_remote {
            sim.sleep(self.cluster.spec().rt_latency).await;
        }
        let bufs: Vec<Vec<u8>> = reqs
            .iter()
            .map(|&(ptr, len)| {
                let mut buf = vec![0u8; len];
                self.cluster
                    .server(ptr.server())
                    .pool
                    .borrow()
                    .copy_out(ptr.offset(), &mut buf);
                buf
            })
            .collect();
        #[cfg(feature = "sanitizer")]
        for &(ptr, len) in reqs {
            self.emit(ptr.server(), ptr.offset(), len, VerbKind::Read, issued);
        }
        bufs
    }

    /// One-sided `RDMA_WRITE` of `data`.
    pub async fn write(&self, ptr: RemotePtr, data: &[u8]) {
        let sim = self.sim();
        #[cfg(feature = "sanitizer")]
        let issued = sim.now();
        let s = ptr.server();
        let server = self.cluster.server(s);
        server.onesided_ops.inc();
        if self.is_local(s) {
            server.local_bytes.add(data.len() as u64);
            sim.sleep(self.cluster.spec().local_time(data.len())).await;
        } else {
            server.bytes_in.add(data.len() as u64);
            let wire = self.cluster.wire_time(s, data.len());
            server.nic.acquire(&sim, wire).await;
            sim.sleep(self.cluster.spec().rt_latency).await;
        }
        server.pool.borrow_mut().copy_in(ptr.offset(), data);
        #[cfg(feature = "sanitizer")]
        self.emit(s, ptr.offset(), data.len(), VerbKind::Write, issued);
    }

    async fn atomic_cost(&self, s: usize) {
        let sim = self.sim();
        let server = self.cluster.server(s);
        server.onesided_ops.inc();
        if self.is_local(s) {
            server.local_bytes.add(8);
            sim.sleep(self.cluster.spec().local_time(8)).await;
        } else {
            server.bytes_in.add(8);
            server.bytes_out.add(8);
            let spec = self.cluster.spec();
            let wire = spec.atomic_wire_overhead
                + SimDur::from_secs_f64(8.0 / spec.effective_bandwidth(s));
            server.nic.acquire(&sim, wire).await;
            sim.sleep(spec.rt_latency).await;
        }
    }

    /// One-sided `RDMA_CAS` on an 8-byte word. Returns the previous
    /// value; the swap happened iff it equals `expected`.
    pub async fn cas(&self, ptr: RemotePtr, expected: u64, new: u64) -> u64 {
        let s = ptr.server();
        #[cfg(feature = "sanitizer")]
        let issued = self.sim().now();
        self.atomic_cost(s).await;
        let prev = self
            .cluster
            .server(s)
            .pool
            .borrow_mut()
            .cas(ptr.offset(), expected, new);
        #[cfg(feature = "sanitizer")]
        self.emit(
            s,
            ptr.offset(),
            8,
            VerbKind::Cas {
                expected,
                new,
                prev,
            },
            issued,
        );
        prev
    }

    /// One-sided `RDMA_FETCH_AND_ADD` on an 8-byte word; returns the
    /// previous value.
    pub async fn fetch_add(&self, ptr: RemotePtr, add: u64) -> u64 {
        let s = ptr.server();
        #[cfg(feature = "sanitizer")]
        let issued = self.sim().now();
        self.atomic_cost(s).await;
        let prev = self
            .cluster
            .server(s)
            .pool
            .borrow_mut()
            .fetch_add(ptr.offset(), add);
        #[cfg(feature = "sanitizer")]
        self.emit(s, ptr.offset(), 8, VerbKind::Faa { add, prev }, issued);
        prev
    }

    /// `RDMA_ALLOC` (Listing 4): reserve `size` bytes on server `s`.
    /// Costs one round trip.
    pub async fn alloc(&self, s: usize, size: u64) -> RemotePtr {
        let sim = self.sim();
        #[cfg(feature = "sanitizer")]
        let issued = sim.now();
        let ptr = self.cluster.setup_alloc(s, size);
        if self.is_local(s) {
            sim.sleep(self.cluster.spec().local_latency).await;
        } else {
            sim.sleep(self.cluster.spec().rt_latency).await;
        }
        #[cfg(feature = "sanitizer")]
        self.emit(s, ptr.offset(), size as usize, VerbKind::Alloc, issued);
        ptr
    }

    /// Co-located fast path (Appendix A.3): the compute thread executes
    /// work against a local memory server directly — `busy` of its own
    /// CPU plus the local-path transfer of `bytes`; no NIC, no handler
    /// core. Panics if the server is not local to this endpoint.
    pub async fn local_work(&self, s: usize, busy: SimDur, bytes: usize) {
        assert!(self.is_local(s), "local_work on a remote server");
        let sim = self.sim();
        let server = self.cluster.server(s);
        server.local_bytes.add(bytes as u64);
        sim.sleep(busy + self.cluster.spec().local_time(bytes))
            .await;
    }

    // ------------------------------------------------- two-sided RPC ----

    /// Two-sided RPC (SEND/RECV over a reliable connection, served from a
    /// shared receive queue): ships `req_bytes`, queues for a handler
    /// core, runs `handler` at grant time, holds the core for the
    /// handler-reported CPU time (scaled by the server's QPI factor), and
    /// ships the handler-reported response.
    pub async fn rpc<R>(
        &self,
        s: usize,
        req_bytes: usize,
        handler: impl FnOnce() -> RpcReply<R>,
    ) -> R {
        let sim = self.sim();
        let spec = self.cluster.spec().clone();
        let server = self.cluster.server(s);
        server.rpcs.inc();
        let local = self.is_local(s);

        // Request leg.
        if local {
            server.local_bytes.add(req_bytes as u64);
            sim.sleep(spec.local_time(req_bytes)).await;
        } else {
            server.bytes_in.add(req_bytes as u64);
            let wire = self.cluster.wire_time(s, req_bytes);
            server.nic.acquire(&sim, wire).await;
            sim.sleep(spec.rt_latency / 2).await;
        }

        // Handler: queue for a core, run, hold the core for the work done.
        // RC connection state adds per-client pressure (see
        // `ClusterSpec::rpc_client_penalty`).
        let grant = server.cpu.acquire(&sim).await;
        let reply = handler();
        let state_penalty = spec.rpc_client_penalty * self.cluster.active_clients() as u64;
        let service =
            SimDur::from_secs_f64((reply.cpu + state_penalty).as_secs_f64() * spec.cpu_factor(s));
        grant.complete(&sim, service).await;

        // Response leg.
        if local {
            server.local_bytes.add(reply.resp_bytes as u64);
            sim.sleep(spec.local_time(reply.resp_bytes)).await;
        } else {
            server.bytes_out.add(reply.resp_bytes as u64);
            let wire = self.cluster.wire_time(s, reply.resp_bytes);
            server.nic.acquire(&sim, wire).await;
            sim.sleep(spec.rt_latency / 2).await;
        }
        reply.value
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::ClusterSpec;
    use std::cell::Cell;
    use std::rc::Rc;

    fn harness() -> (Sim, Cluster) {
        let sim = Sim::new();
        let cluster = Cluster::new(&sim, ClusterSpec::default());
        (sim, cluster)
    }

    #[test]
    fn read_returns_written_bytes_and_costs_time() {
        let (sim, cluster) = harness();
        let ptr = cluster.setup_alloc(0, 64);
        cluster.setup_write(ptr, &[42; 64]);
        let ep = Endpoint::new(&cluster);
        let done = Rc::new(Cell::new(0u64));
        let d = done.clone();
        let s = sim.clone();
        sim.spawn(async move {
            let data = ep.read(ptr, 64).await;
            assert_eq!(data, vec![42; 64]);
            d.set(s.now().as_nanos());
        });
        sim.run();
        // At least the round-trip latency passed.
        assert!(done.get() >= 2_500, "took {}ns", done.get());
        assert_eq!(cluster.server_stats(0).bytes_out, 64);
        assert_eq!(cluster.server_stats(0).onesided_ops, 1);
    }

    #[test]
    fn write_then_read() {
        let (sim, cluster) = harness();
        let ptr = cluster.setup_alloc(1, 16);
        let ep = Endpoint::new(&cluster);
        sim.spawn({
            let ep = ep.clone();
            async move {
                ep.write(ptr, &[7; 16]).await;
                let data = ep.read(ptr, 16).await;
                assert_eq!(data, vec![7; 16]);
            }
        });
        sim.run();
        let stats = cluster.server_stats(1);
        assert_eq!(stats.bytes_in, 16);
        assert_eq!(stats.bytes_out, 16);
    }

    #[test]
    fn cas_success_and_failure_race() {
        let (sim, cluster) = harness();
        let ptr = cluster.setup_alloc(0, 8);
        // Two clients CAS 0 -> themselves; exactly one must win.
        let wins = Rc::new(Cell::new(0u32));
        for id in 1..=2u64 {
            let ep = Endpoint::new(&cluster);
            let w = wins.clone();
            sim.spawn(async move {
                let old = ep.cas(ptr, 0, id).await;
                if old == 0 {
                    w.set(w.get() + 1);
                }
            });
        }
        sim.run();
        assert_eq!(wins.get(), 1, "exactly one CAS winner");
    }

    #[test]
    fn fetch_add_accumulates() {
        let (sim, cluster) = harness();
        let ptr = cluster.setup_alloc(0, 8);
        for _ in 0..10 {
            let ep = Endpoint::new(&cluster);
            sim.spawn(async move {
                ep.fetch_add(ptr, 2).await;
            });
        }
        sim.run();
        assert_eq!(cluster.setup_read(ptr, 8), 20u64.to_le_bytes().to_vec());
    }

    #[test]
    fn rpc_runs_handler_and_charges_cpu() {
        let (sim, cluster) = harness();
        let ep = Endpoint::new(&cluster);
        let got = Rc::new(Cell::new(0u64));
        let g = got.clone();
        sim.spawn(async move {
            let v = ep
                .rpc(0, 32, || RpcReply {
                    value: 99u64,
                    cpu: SimDur::from_micros(5),
                    resp_bytes: 128,
                })
                .await;
            g.set(v);
        });
        let end = sim.run();
        assert_eq!(got.get(), 99);
        let stats = cluster.server_stats(0);
        assert_eq!(stats.rpcs, 1);
        assert_eq!(stats.bytes_in, 32);
        assert_eq!(stats.bytes_out, 128);
        assert_eq!(stats.cpu_busy_nanos, 5_000);
        assert!(end.as_nanos() >= 5_000 + 2_500);
    }

    #[test]
    fn rpc_cpu_saturates_with_cores() {
        let (sim, cluster) = harness();
        // 30 concurrent RPCs of 10us on a 10-core server: three waves.
        let last = Rc::new(Cell::new(0u64));
        for _ in 0..30 {
            let ep = Endpoint::new(&cluster);
            let l = last.clone();
            let s = sim.clone();
            sim.spawn(async move {
                ep.rpc(0, 16, || RpcReply {
                    value: (),
                    cpu: SimDur::from_micros(10),
                    resp_bytes: 16,
                })
                .await;
                l.set(l.get().max(s.now().as_micros()));
            });
        }
        sim.run();
        assert!(last.get() >= 30, "three service waves of 10us each");
    }

    #[test]
    fn qpi_server_slower() {
        let (sim, cluster) = harness();
        let p0 = cluster.setup_alloc(0, 1024);
        let p1 = cluster.setup_alloc(1, 1024); // server 1 crosses QPI
        let t0 = Rc::new(Cell::new(0u64));
        let t1 = Rc::new(Cell::new(0u64));
        for (ptr, cell) in [(p0, t0.clone()), (p1, t1.clone())] {
            let ep = Endpoint::new(&cluster);
            let s = sim.clone();
            sim.spawn(async move {
                let begin = s.now();
                // Many large reads so wire time dominates latency.
                for _ in 0..100 {
                    ep.read(ptr, 1024).await;
                }
                cell.set((s.now() - begin).as_nanos());
            });
        }
        sim.run();
        assert!(t1.get() > t0.get(), "QPI-crossing server must be slower");
    }

    #[test]
    fn read_many_overlaps_servers() {
        let (sim, cluster) = harness();
        let ptrs: Vec<_> = (0..4)
            .map(|s| (cluster.setup_alloc(s, 1024), 1024usize))
            .collect();
        let seq = Rc::new(Cell::new(0u64));
        let par = Rc::new(Cell::new(0u64));
        {
            let ep = Endpoint::new(&cluster);
            let ptrs = ptrs.clone();
            let par = par.clone();
            let s = sim.clone();
            sim.spawn(async move {
                let begin = s.now();
                let bufs = ep.read_many(&ptrs).await;
                assert_eq!(bufs.len(), 4);
                par.set((s.now() - begin).as_nanos());
            });
        }
        sim.run();
        {
            let sim2 = Sim::new();
            let cluster2 = Cluster::new(&sim2, ClusterSpec::default());
            let ptrs2: Vec<_> = (0..4)
                .map(|s| (cluster2.setup_alloc(s, 1024), 1024usize))
                .collect();
            let ep = Endpoint::new(&cluster2);
            let seq = seq.clone();
            let s = sim2.clone();
            sim2.spawn(async move {
                let begin = s.now();
                for &(p, l) in &ptrs2 {
                    ep.read(p, l).await;
                }
                seq.set((s.now() - begin).as_nanos());
            });
            sim2.run();
        }
        assert!(
            par.get() < seq.get(),
            "fanned-out reads ({}) must beat sequential ({})",
            par.get(),
            seq.get()
        );
    }

    #[test]
    fn local_work_counts_bytes_and_time() {
        let sim = Sim::new();
        let cluster = Cluster::new(&sim, ClusterSpec::default());
        let ep = Endpoint::colocated(&cluster, 0);
        let s = sim.clone();
        sim.spawn(async move {
            ep.local_work(0, SimDur::from_micros(7), 64).await;
            assert!(s.now().as_nanos() >= 7_000);
        });
        sim.run();
        let stats = cluster.server_stats(0);
        assert_eq!(stats.local_bytes, 64);
        assert_eq!(stats.cpu_busy_nanos, 0, "local work uses compute cores");
        assert_eq!(stats.nic_busy_nanos, 0);
    }

    #[test]
    #[should_panic(expected = "local_work on a remote server")]
    fn local_work_rejects_remote() {
        let sim = Sim::new();
        let cluster = Cluster::new(&sim, ClusterSpec::default());
        let ep = Endpoint::new(&cluster);
        sim.spawn(async move {
            ep.local_work(0, SimDur::ZERO, 0).await;
        });
        sim.run();
    }

    #[test]
    fn rpc_client_state_penalty_applies() {
        let run = |clients: usize| {
            let sim = Sim::new();
            let cluster = Cluster::new(&sim, ClusterSpec::default());
            cluster.set_active_clients(clients);
            let ep = Endpoint::new(&cluster);
            sim.spawn(async move {
                ep.rpc(0, 16, || RpcReply {
                    value: (),
                    cpu: SimDur::from_micros(5),
                    resp_bytes: 16,
                })
                .await;
            });
            sim.run();
            cluster.server_stats(0).cpu_busy_nanos
        };
        let lone = run(1);
        let crowded = run(240);
        assert!(
            crowded > lone + 2_000,
            "240 clients must add RC state pressure: {lone} vs {crowded}"
        );
    }

    #[test]
    fn batched_reads_cheaper_per_message() {
        let spec = ClusterSpec::default();
        assert!(spec.batched_wire_time(0, 1024) < spec.wire_time(0, 1024));
    }

    #[test]
    fn colocated_read_skips_nic() {
        let sim = Sim::new();
        let cluster = Cluster::new(&sim, ClusterSpec::default());
        let ptr = cluster.setup_alloc(0, 64); // server 0 lives on machine 0
        cluster.setup_write(ptr, &[5; 64]);
        let ep = Endpoint::colocated(&cluster, 0);
        assert!(ep.is_local(0));
        assert!(ep.is_local(1), "both servers of machine 0 are local");
        assert!(!ep.is_local(2));
        sim.spawn(async move {
            let data = ep.read(ptr, 64).await;
            assert_eq!(data[0], 5);
        });
        sim.run();
        let stats = cluster.server_stats(0);
        assert_eq!(stats.bytes_out, 0, "local path must not touch the wire");
        assert_eq!(stats.local_bytes, 64);
        assert_eq!(stats.nic_busy_nanos, 0);
    }
}
