//! Wing & Gong linearizability checking against a sequential
//! `BTreeMap`-style multi-map spec, with Lowe's partitioning
//! optimization.
//!
//! ## Spec shape
//!
//! The workload ([`crate::scenario`]) is constructed so that every
//! insert of a key uses the *same canonical value* (`value_of(key)`)
//! and no two in-flight inserts of one `(key, value)` pair exist
//! (retry-absorption is value-based, so colliding pairs would make
//! exactly-once undecidable). Under that discipline the sequential
//! state of a key collapses to a **live-entry counter**:
//!
//! * `insert`           → `n + 1`
//! * `delete -> true`   → legal iff `n > 0`, then `n - 1`
//! * `delete -> false`  → legal iff `n == 0`
//! * `lookup -> Some(v)`→ legal iff `n > 0` (and `v` must be canonical)
//! * `lookup -> None`   → legal iff `n == 0`
//! * scan rows of a key → exactly `n` copies of the canonical value
//!
//! Preloaded keys are immutable (the workload never inserts or deletes
//! them): a scan must report each in-window loaded key exactly once
//! with its loaded value, checked eagerly; loaded keys then drop out of
//! the search entirely.
//!
//! ## Failed and pending operations
//!
//! A mutating op that returned an error — or never returned (client
//! killed) — may or may not have taken effect; the checker branches
//! over both behaviors, which is exactly the Wing & Gong treatment of
//! pending invocations (an unapplied failed op linearizes as a no-op,
//! which is equivalent to removing it). Failed *reads* observe nothing
//! and are dropped during preprocessing.
//!
//! Under fault injection the `delete -> bool` flag is additionally
//! *relaxed* (see [`Spec::strict_delete_flag`]): a delete whose first
//! attempt applied but whose response was lost retries and honestly
//! reports `false` — the retry found nothing — so under message loss
//! the flag is best-effort and only the *effect* (`n → n - 1` at most
//! once) is checked. Without faults no op-level retry exists and the
//! flag is held exact.
//!
//! Fault runs also relax *inserts*, because retry absorption is a
//! `(key, value)` probe: if the first attempt applied (response lost)
//! and a concurrent delete then removed the entry, the retry's probe
//! finds nothing and legitimately re-installs it — the documented
//! at-least-once caveat shared by all three designs. The checker models
//! this with per-delete `Resurrect` pseudo-ops that may re-apply an
//! insert *only when the key is empty*; two coexisting copies (the
//! duplicate-insert mutation's signature) remain a violation.
//!
//! ## Search
//!
//! Per Lowe, point ops partition by key: each key's subhistory is
//! checked independently over its counter (Wing & Gong DFS, memoized on
//! `(applied-op mask, counter)`). Scans are handled two ways:
//!
//! * a scan that is *sequentially after* every other response (the
//!   harness's quiescent verification scan) is decomposed into per-key
//!   `Observe(count)` ops, keeping the fast partitioned path;
//! * a scan concurrent with point ops forces whole-history mode: one
//!   DFS over all ops with the full `key -> counter` map as state,
//!   memoized on `(mask, exact state)`. Scan workloads are kept tiny
//!   for exactly this reason.

use crate::history::Event;
use rdma_sim::observer::{OpArgs, OpOutcome};
use std::collections::{BTreeMap, BTreeSet};

/// The sequential spec the history is validated against.
pub struct Spec {
    /// Immutable preloaded entries: key → value. The workload must
    /// never insert or delete these keys.
    pub loaded: BTreeMap<u64, u64>,
    /// Canonical value for workload keys: every insert of `key` carries
    /// `value_of(key)`.
    pub value_of: fn(u64) -> u64,
    /// Hold `delete -> bool` exact (no-fault runs) or best-effort
    /// (fault runs, where op-level retries can launder the flag).
    pub strict_delete_flag: bool,
}

/// A linearizability violation, with enough detail to read the failure.
#[derive(Clone, Debug)]
pub struct LinViolation {
    /// Offending key for partitioned findings; `None` for whole-history
    /// or preprocessing findings.
    pub key: Option<u64>,
    /// Human-readable description.
    pub detail: String,
}

impl std::fmt::Display for LinViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.key {
            Some(k) => write!(f, "linearizability violation on key {k}: {}", self.detail),
            None => write!(f, "linearizability violation: {}", self.detail),
        }
    }
}

/// How the history was checked (for coverage reporting).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CheckStats {
    /// Number of per-key subhistories searched.
    pub point_keys: usize,
    /// Whether whole-history mode was required (concurrent scans).
    pub whole_history: bool,
    /// Total ops checked (after dropping failed reads).
    pub ops: usize,
}

// ---------------------------------------------------------------------------
// Internal op forms.
// ---------------------------------------------------------------------------

#[derive(Clone, Copy, Debug)]
enum PKind {
    Insert {
        ok: bool,
    },
    /// `res == None`: failed/pending (effect indeterminate).
    Delete {
        res: Option<bool>,
        strict: bool,
    },
    Lookup {
        found: bool,
    },
    /// Count observation decomposed from a quiescent scan.
    Observe {
        count: u32,
    },
    /// Optional conditional re-application of a retried insert (fault
    /// runs only): insert retries absorb by probing for the `(key,
    /// value)` pair, so if a concurrent delete removed the first
    /// attempt's entry before the retry probed, the retry legitimately
    /// re-installs it. Linearizes as either a no-op or, *iff the key is
    /// currently empty*, as a fresh insert. The emptiness condition is
    /// what keeps the duplicate-insert mutation detectable: a mutated
    /// retry re-applies unconditionally, producing two coexisting
    /// copies, which no Resurrect sequence can reach.
    Resurrect,
}

#[derive(Clone, Copy, Debug)]
struct POp {
    invoke: u64,
    response: u64,
    kind: PKind,
}

/// Counter values reachable by linearizing `kind` at counter `n`.
fn behaviors(kind: PKind, n: u32, out: &mut Vec<u32>) {
    out.clear();
    match kind {
        PKind::Insert { ok: true } => out.push(n + 1),
        PKind::Insert { ok: false } => {
            out.push(n); // never applied
            out.push(n + 1); // applied before the failure
        }
        PKind::Delete {
            res: Some(true),
            strict: _,
        } => {
            if n > 0 {
                out.push(n - 1);
            }
        }
        PKind::Delete {
            res: Some(false),
            strict,
        } => {
            if strict {
                if n == 0 {
                    out.push(0);
                }
            } else {
                // Relaxed: the flag may be laundered by a retry; only
                // the at-most-once effect is checked.
                out.push(n);
                if n > 0 {
                    out.push(n - 1);
                }
            }
        }
        PKind::Delete {
            res: None,
            strict: _,
        } => {
            out.push(n);
            if n > 0 {
                out.push(n - 1);
            }
        }
        PKind::Lookup { found: true } => {
            if n > 0 {
                out.push(n);
            }
        }
        PKind::Lookup { found: false } => {
            if n == 0 {
                out.push(0);
            }
        }
        PKind::Observe { count } => {
            if n == count {
                out.push(n);
            }
        }
        PKind::Resurrect => {
            out.push(n); // retry absorbed (or never reached the probe)
            if n == 0 {
                out.push(1); // pair absent at the probe: re-applied
            }
        }
    }
}

/// Wing & Gong DFS over one key's subhistory: does a legal linearization
/// exist? Memoized on `(applied mask, counter)` — exact, no hashing, so
/// a "seen" hit can never mask a real linearization.
fn linearizable_key(init: u32, ops: &[POp]) -> bool {
    let n = ops.len();
    assert!(n <= 64, "per-key subhistory too large ({n} ops)");
    let full: u64 = if n == 64 { !0u64 } else { (1u64 << n) - 1 };
    let mut memo: BTreeSet<(u64, u32)> = BTreeSet::new();
    let mut beh = Vec::with_capacity(2);
    // Explicit stack of (mask, count) states to try.
    let mut stack = vec![(0u64, init)];
    while let Some((mask, count)) = stack.pop() {
        if mask == full {
            return true;
        }
        if !memo.insert((mask, count)) {
            continue;
        }
        let min_resp = (0..n)
            .filter(|i| mask & (1 << i) == 0)
            .map(|i| ops[i].response)
            .min()
            .unwrap_or(u64::MAX);
        for (i, op) in ops.iter().enumerate() {
            if mask & (1 << i) != 0 || op.invoke > min_resp {
                continue;
            }
            behaviors(op.kind, count, &mut beh);
            for &c2 in &beh {
                stack.push((mask | (1 << i), c2));
            }
        }
    }
    false
}

// ---------------------------------------------------------------------------
// Whole-history mode (concurrent scans).
// ---------------------------------------------------------------------------

#[derive(Clone, Debug)]
enum WKind {
    Point {
        key: u64,
        kind: PKind,
    },
    /// Scan over `[lo, hi]` that observed `counts` live entries per
    /// workload key (loaded keys already validated and stripped).
    Scan {
        lo: u64,
        hi: u64,
        counts: BTreeMap<u64, u32>,
    },
}

#[derive(Clone, Debug)]
struct WOp {
    invoke: u64,
    response: u64,
    kind: WKind,
}

fn linearizable_whole(ops: &[WOp], keys: &[u64], init: &[u32]) -> bool {
    let n = ops.len();
    assert!(n <= 64, "whole-history too large ({n} ops)");
    let full: u64 = if n == 64 { !0u64 } else { (1u64 << n) - 1 };
    let idx_of = |key: u64| keys.binary_search(&key).expect("untracked key");
    let mut memo: BTreeSet<(u64, Vec<u32>)> = BTreeSet::new();
    let mut beh = Vec::with_capacity(2);
    let mut stack: Vec<(u64, Vec<u32>)> = vec![(0, init.to_vec())];
    while let Some((mask, state)) = stack.pop() {
        if mask == full {
            return true;
        }
        if !memo.insert((mask, state.clone())) {
            continue;
        }
        let min_resp = (0..n)
            .filter(|i| mask & (1 << i) == 0)
            .map(|i| ops[i].response)
            .min()
            .unwrap_or(u64::MAX);
        for (i, op) in ops.iter().enumerate() {
            if mask & (1 << i) != 0 || op.invoke > min_resp {
                continue;
            }
            match &op.kind {
                WKind::Point { key, kind } => {
                    let ki = idx_of(*key);
                    behaviors(*kind, state[ki], &mut beh);
                    for &c2 in &beh {
                        let mut s2 = state.clone();
                        s2[ki] = c2;
                        stack.push((mask | (1 << i), s2));
                    }
                }
                WKind::Scan { lo, hi, counts } => {
                    let legal = keys.iter().enumerate().all(|(ki, &k)| {
                        if k < *lo || k > *hi {
                            true
                        } else {
                            state[ki] == counts.get(&k).copied().unwrap_or(0)
                        }
                    });
                    if legal {
                        stack.push((mask | (1 << i), state.clone()));
                    }
                }
            }
        }
    }
    false
}

// ---------------------------------------------------------------------------
// Preprocessing + top-level check.
// ---------------------------------------------------------------------------

fn nanos(t: simnet::SimTime) -> u64 {
    t.as_nanos()
}

/// Check `events` against `spec`. `Ok` carries coverage stats; `Err`
/// the first violation found.
pub fn check(events: &[Event], spec: &Spec) -> Result<CheckStats, LinViolation> {
    let viol = |key: Option<u64>, detail: String| LinViolation { key, detail };

    // Per-key point ops and scans, preprocessed.
    let mut point: BTreeMap<u64, Vec<POp>> = BTreeMap::new();
    struct Scan {
        invoke: u64,
        response: u64,
        lo: u64,
        hi: u64,
        counts: BTreeMap<u64, u32>,
    }
    let mut scans: Vec<Scan> = Vec::new();
    let mut ops_checked = 0usize;
    // Latest point-op/scan response, for the quiescent-scan test.
    let mut max_point_resp = 0u64;

    for ev in events {
        let (invoke, response) = (nanos(ev.invoke), nanos(ev.response));
        let key_of = |k: u64| -> Result<(), LinViolation> {
            if spec.loaded.contains_key(&k) {
                return Err(viol(
                    Some(k),
                    "workload mutated a preloaded key (scenario bug)".into(),
                ));
            }
            Ok(())
        };
        match (&ev.args, &ev.outcome) {
            (OpArgs::Insert { key, .. }, OpOutcome::Insert) => {
                key_of(*key)?;
                point.entry(*key).or_default().push(POp {
                    invoke,
                    response,
                    kind: PKind::Insert { ok: true },
                });
            }
            (OpArgs::Insert { key, .. }, OpOutcome::Failed) => {
                key_of(*key)?;
                point.entry(*key).or_default().push(POp {
                    invoke,
                    response,
                    kind: PKind::Insert { ok: false },
                });
            }
            (OpArgs::Delete { key }, OpOutcome::Delete(found)) => {
                key_of(*key)?;
                point.entry(*key).or_default().push(POp {
                    invoke,
                    response,
                    kind: PKind::Delete {
                        res: Some(*found),
                        strict: spec.strict_delete_flag,
                    },
                });
            }
            (OpArgs::Delete { key }, OpOutcome::Failed) => {
                key_of(*key)?;
                point.entry(*key).or_default().push(POp {
                    invoke,
                    response,
                    kind: PKind::Delete {
                        res: None,
                        strict: spec.strict_delete_flag,
                    },
                });
            }
            (OpArgs::Lookup { key }, OpOutcome::Lookup(got)) => {
                if let Some(&lv) = spec.loaded.get(key) {
                    // Loaded keys are immutable: the lookup must see
                    // exactly the loaded value.
                    if *got != Some(lv) {
                        return Err(viol(
                            Some(*key),
                            format!("lookup of immutable loaded key returned {got:?}, expected Some({lv})"),
                        ));
                    }
                    ops_checked += 1;
                    continue;
                }
                if let Some(v) = got {
                    let want = (spec.value_of)(*key);
                    if *v != want {
                        return Err(viol(
                            Some(*key),
                            format!("lookup returned value {v}, canonical is {want}"),
                        ));
                    }
                }
                point.entry(*key).or_default().push(POp {
                    invoke,
                    response,
                    kind: PKind::Lookup {
                        found: got.is_some(),
                    },
                });
            }
            // Failed reads observed nothing; drop them.
            (OpArgs::Lookup { .. }, OpOutcome::Failed)
            | (OpArgs::Range { .. }, OpOutcome::Failed) => {
                ops_checked += 1;
                continue;
            }
            (OpArgs::Range { lo, hi }, OpOutcome::Range(rows)) => {
                // Rows must be sorted and in-window; loaded keys must
                // appear exactly once with the loaded value; workload
                // rows must carry the canonical value.
                let mut counts: BTreeMap<u64, u32> = BTreeMap::new();
                let mut loaded_seen: BTreeMap<u64, u32> = BTreeMap::new();
                let mut prev: Option<u64> = None;
                for &(k, v) in rows {
                    if k < *lo || k > *hi {
                        return Err(viol(
                            Some(k),
                            format!("scan [{lo}, {hi}] returned out-of-window key {k}"),
                        ));
                    }
                    if let Some(p) = prev {
                        if k < p {
                            return Err(viol(
                                Some(k),
                                format!("scan rows out of order: {k} after {p}"),
                            ));
                        }
                    }
                    prev = Some(k);
                    if let Some(&lv) = spec.loaded.get(&k) {
                        if v != lv {
                            return Err(viol(
                                Some(k),
                                format!("scan saw loaded key with value {v}, expected {lv}"),
                            ));
                        }
                        *loaded_seen.entry(k).or_insert(0) += 1;
                    } else {
                        let want = (spec.value_of)(k);
                        if v != want {
                            return Err(viol(
                                Some(k),
                                format!("scan saw value {v}, canonical is {want}"),
                            ));
                        }
                        *counts.entry(k).or_insert(0) += 1;
                    }
                }
                for (&k, &c) in &loaded_seen {
                    if c != 1 {
                        return Err(viol(
                            Some(k),
                            format!("immutable loaded key appeared {c} times in scan"),
                        ));
                    }
                }
                for (&k, &lv) in spec.loaded.range(*lo..=*hi) {
                    if !loaded_seen.contains_key(&k) {
                        let _ = lv;
                        return Err(viol(
                            Some(k),
                            "immutable loaded key missing from scan".into(),
                        ));
                    }
                }
                scans.push(Scan {
                    invoke,
                    response,
                    lo: *lo,
                    hi: *hi,
                    counts,
                });
                continue;
            }
            (args, outcome) => {
                return Err(viol(
                    None,
                    format!("malformed history event: {args:?} -> {outcome:?}"),
                ));
            }
        }
        max_point_resp = max_point_resp.max(response);
        ops_checked += 1;
    }

    // Fault runs: model the at-least-once insert-retry re-application
    // (see `PKind::Resurrect`). Each delete of a key — whatever it
    // reported, since retries launder the flag — may have removed the
    // first attempt's entry and thereby enabled one re-application by
    // the insert's retry, so the key's single insert gets one optional
    // Resurrect per delete, scoped to the insert's own real-time window.
    if !spec.strict_delete_flag {
        for ops in point.values_mut() {
            let removals = ops
                .iter()
                .filter(|o| matches!(o.kind, PKind::Delete { .. }))
                .count();
            if removals == 0 {
                continue;
            }
            let ins = ops
                .iter()
                .find(|o| matches!(o.kind, PKind::Insert { .. }))
                .copied();
            if let Some(ins) = ins {
                for _ in 0..removals {
                    ops.push(POp {
                        invoke: ins.invoke,
                        response: ins.response,
                        kind: PKind::Resurrect,
                    });
                }
            }
        }
    }

    // Quiescent scans (invoked after every point response, and after
    // every earlier scan's response) decompose into per-key observations.
    let mut whole_history = false;
    let mut prior_scan_resp = 0u64;
    let mut sequential = true;
    for s in &scans {
        if s.invoke < max_point_resp.max(prior_scan_resp) {
            sequential = false;
        }
        prior_scan_resp = prior_scan_resp.max(s.response);
    }

    if sequential {
        for s in &scans {
            // Every workload key in the window gets an Observe — keys
            // with no rows observe count 0, which catches lost entries.
            let mut window_keys: BTreeSet<u64> = s.counts.keys().copied().collect();
            for (&k, _) in point.range(s.lo..=s.hi) {
                window_keys.insert(k);
            }
            for k in window_keys {
                if k < s.lo || k > s.hi {
                    continue;
                }
                point.entry(k).or_default().push(POp {
                    invoke: s.invoke,
                    response: s.response,
                    kind: PKind::Observe {
                        count: s.counts.get(&k).copied().unwrap_or(0),
                    },
                });
                ops_checked += 1;
            }
        }
        let point_keys = point.len();
        for (key, ops) in &point {
            if !linearizable_key(0, ops) {
                return Err(viol(
                    Some(*key),
                    format!("no legal linearization of {} ops: {ops:?}", ops.len()),
                ));
            }
        }
        Ok(CheckStats {
            point_keys,
            whole_history,
            ops: ops_checked,
        })
    } else {
        whole_history = true;
        // Flatten everything into one search.
        let mut keys: BTreeSet<u64> = point.keys().copied().collect();
        for s in &scans {
            keys.extend(s.counts.keys().copied());
        }
        let keys: Vec<u64> = keys.into_iter().collect();
        let init = vec![0u32; keys.len()];
        let mut ops: Vec<WOp> = Vec::new();
        for (key, pops) in &point {
            for p in pops {
                ops.push(WOp {
                    invoke: p.invoke,
                    response: p.response,
                    kind: WKind::Point {
                        key: *key,
                        kind: p.kind,
                    },
                });
            }
        }
        for s in scans {
            ops.push(WOp {
                invoke: s.invoke,
                response: s.response,
                kind: WKind::Scan {
                    lo: s.lo,
                    hi: s.hi,
                    counts: s.counts,
                },
            });
        }
        if !linearizable_whole(&ops, &keys, &init) {
            return Err(viol(
                None,
                format!(
                    "no legal linearization of whole history ({} ops over {} keys)",
                    ops.len(),
                    keys.len()
                ),
            ));
        }
        Ok(CheckStats {
            point_keys: 0,
            whole_history,
            ops: ops_checked,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn op(invoke: u64, response: u64, kind: PKind) -> POp {
        POp {
            invoke,
            response,
            kind,
        }
    }

    #[test]
    fn sequential_counter_histories() {
        // insert, delete(true), lookup(none) — all sequential: legal.
        let ops = vec![
            op(0, 1, PKind::Insert { ok: true }),
            op(
                2,
                3,
                PKind::Delete {
                    res: Some(true),
                    strict: true,
                },
            ),
            op(4, 5, PKind::Lookup { found: false }),
        ];
        assert!(linearizable_key(0, &ops));
        // delete(true) on an empty key: illegal.
        let bad = vec![op(
            0,
            1,
            PKind::Delete {
                res: Some(true),
                strict: true,
            },
        )];
        assert!(!linearizable_key(0, &bad));
    }

    #[test]
    fn concurrency_allows_reordering() {
        // lookup(found) concurrent with the insert: legal — the lookup
        // linearizes after the insert inside the overlap.
        let ops = vec![
            op(0, 10, PKind::Insert { ok: true }),
            op(5, 8, PKind::Lookup { found: true }),
        ];
        assert!(linearizable_key(0, &ops));
        // lookup strictly before the insert: illegal.
        let ops = vec![
            op(10, 12, PKind::Insert { ok: true }),
            op(0, 5, PKind::Lookup { found: true }),
        ];
        assert!(!linearizable_key(0, &ops));
    }

    #[test]
    fn duplicate_insert_is_caught_by_observation() {
        // One successful insert, but a quiescent scan saw two copies —
        // the CG duplicate-insert mutation's signature.
        let ops = vec![
            op(0, 10, PKind::Insert { ok: true }),
            op(20, 25, PKind::Observe { count: 2 }),
        ];
        assert!(!linearizable_key(0, &ops));
        // Observing one copy is fine.
        let ops = vec![
            op(0, 10, PKind::Insert { ok: true }),
            op(20, 25, PKind::Observe { count: 1 }),
        ];
        assert!(linearizable_key(0, &ops));
    }

    #[test]
    fn failed_insert_branches_both_ways() {
        // A failed insert may or may not have landed: both observation
        // counts are legal.
        for seen in [0, 1] {
            let ops = vec![
                op(0, 10, PKind::Insert { ok: false }),
                op(20, 25, PKind::Observe { count: seen }),
            ];
            assert!(linearizable_key(0, &ops), "count {seen}");
        }
        let ops = vec![
            op(0, 10, PKind::Insert { ok: false }),
            op(20, 25, PKind::Observe { count: 2 }),
        ];
        assert!(!linearizable_key(0, &ops));
    }

    #[test]
    fn relaxed_delete_flag_permits_retry_laundering() {
        // insert ok; delete reports false but actually removed the
        // entry (retry after lost response); scan sees nothing.
        let ops = |strict| {
            vec![
                op(0, 1, PKind::Insert { ok: true }),
                op(
                    2,
                    30,
                    PKind::Delete {
                        res: Some(false),
                        strict,
                    },
                ),
                op(40, 45, PKind::Observe { count: 0 }),
            ]
        };
        assert!(!linearizable_key(0, &ops(true)));
        assert!(linearizable_key(0, &ops(false)));
    }

    #[test]
    fn resurrect_permits_delete_then_reapply_but_not_coexisting_dups() {
        // Observed in chaos runs: insert's first attempt applies
        // (response lost), a concurrent delete removes it, the retry's
        // probe finds nothing and re-applies — final count is 1 even
        // though a delete succeeded after the apply. Without Resurrect
        // this has no counter linearization.
        let base = vec![
            op(
                383,
                460,
                PKind::Delete {
                    res: Some(true),
                    strict: false,
                },
            ),
            op(540, 557, PKind::Lookup { found: false }),
            op(0, 1080, PKind::Insert { ok: true }),
            op(1682, 1740, PKind::Observe { count: 1 }),
        ];
        assert!(!linearizable_key(0, &base));
        let mut with_res = base.clone();
        with_res.push(op(0, 1080, PKind::Resurrect));
        assert!(linearizable_key(0, &with_res));
        // But the mutation's signature — two copies coexisting — stays
        // unreachable: Resurrect only fires on an empty key.
        let dup = vec![
            op(0, 1080, PKind::Insert { ok: true }),
            op(
                383,
                460,
                PKind::Delete {
                    res: Some(true),
                    strict: false,
                },
            ),
            op(0, 1080, PKind::Resurrect),
            op(1682, 1740, PKind::Observe { count: 2 }),
        ];
        assert!(!linearizable_key(0, &dup));
    }

    #[test]
    fn whole_history_scan_constraints() {
        // Scan concurrent with an insert: may see 0 or 1 copies.
        let mk = |seen: u32| {
            let ops = vec![
                WOp {
                    invoke: 0,
                    response: 10,
                    kind: WKind::Point {
                        key: 8,
                        kind: PKind::Insert { ok: true },
                    },
                },
                WOp {
                    invoke: 5,
                    response: 9,
                    kind: WKind::Scan {
                        lo: 0,
                        hi: 100,
                        counts: if seen == 0 {
                            BTreeMap::new()
                        } else {
                            [(8u64, seen)].into_iter().collect()
                        },
                    },
                },
            ];
            linearizable_whole(&ops, &[8], &[0])
        };
        assert!(mk(0));
        assert!(mk(1));
        assert!(!mk(2));
    }
}
