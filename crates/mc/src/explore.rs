//! Budgeted schedule-space exploration: the policy × fault × design
//! matrix, bounded-exhaustive DFS cells, and the mutation-testing
//! harness that proves the checker catches real (historical) bugs.

use crate::counterexample::{classify, minimize, Counterexample, ViolationClass};
use crate::policy::next_dfs_prefix;
use crate::scenario::{run_scenario, DesignKind, FaultMode, PolicyKind, RunReport, Scenario};
use simnet::rng::mix3;
use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

/// Exploration budget and matrix shape.
#[derive(Clone, Debug)]
pub struct ExploreConfig {
    /// Base seed; schedule `i` of a cell uses `mix3(base, cell, i)`.
    pub seed_base: u64,
    /// Random-walk schedules per cell.
    pub walk_schedules: u64,
    /// PCT schedules per cell.
    pub pct_schedules: u64,
    /// PCT bug depth (`d`).
    pub pct_depth: u32,
    /// Schedule cap for each bounded-DFS cell (0 disables DFS cells).
    pub dfs_schedules: u64,
    /// DFS preemption bound.
    pub dfs_preemption_bound: u32,
    /// Restrict the matrix to one design (CLI `--design`).
    pub only_design: Option<DesignKind>,
    /// Where counterexample artifacts are written.
    pub out_dir: PathBuf,
}

impl ExploreConfig {
    /// The `--quick` budget: small enough for CI, large enough that
    /// both mutations are found (pinned by the mutation tests).
    pub fn quick(out_dir: PathBuf) -> ExploreConfig {
        ExploreConfig {
            seed_base: 0xD15C0,
            walk_schedules: 12,
            pct_schedules: 12,
            pct_depth: 3,
            dfs_schedules: 40,
            dfs_preemption_bound: 2,
            only_design: None,
            out_dir,
        }
    }

    /// The full (default) budget.
    pub fn full(out_dir: PathBuf) -> ExploreConfig {
        ExploreConfig {
            walk_schedules: 60,
            pct_schedules: 60,
            dfs_schedules: 200,
            ..ExploreConfig::quick(out_dir)
        }
    }
}

/// Results of one matrix cell.
#[derive(Clone, Debug)]
pub struct CellStats {
    /// Cell label, e.g. `cg/chaos/walk`.
    pub label: String,
    /// Schedules executed.
    pub schedules: u64,
    /// Distinct decision-trace digests seen (interleaving coverage).
    pub distinct_schedules: u64,
    /// Total choice points resolved across the cell.
    pub choice_points: u64,
    /// Violating schedules found.
    pub violations: u64,
    /// First violation's artifact path, when one was found and saved.
    pub counterexample: Option<PathBuf>,
}

/// A finished exploration.
#[derive(Debug, Default)]
pub struct ExploreReport {
    /// Per-cell statistics, in matrix order.
    pub cells: Vec<CellStats>,
}

impl ExploreReport {
    /// Total violations across all cells.
    pub fn violations(&self) -> u64 {
        self.cells.iter().map(|c| c.violations).sum()
    }

    /// Total schedules across all cells.
    pub fn schedules(&self) -> u64 {
        self.cells.iter().map(|c| c.schedules).sum()
    }

    /// Render a compact per-cell table.
    pub fn table(&self) -> String {
        let mut s = String::new();
        s.push_str("cell                     schedules  distinct  choice-pts  violations\n");
        for c in &self.cells {
            s.push_str(&format!(
                "{:<24} {:>9} {:>9} {:>11} {:>11}\n",
                c.label, c.schedules, c.distinct_schedules, c.choice_points, c.violations
            ));
        }
        s
    }
}

fn violation_detail(report: &RunReport) -> String {
    match classify(report) {
        Some(ViolationClass::Linearizability) => report
            .lin
            .as_ref()
            .err()
            .map(|v| v.to_string())
            .unwrap_or_default(),
        Some(ViolationClass::Racecheck) => format!(
            "{} by client {} at server {} offset {}",
            report.race_violations[0].rule,
            report.race_violations[0].client,
            report.race_violations[0].server,
            report.race_violations[0].offset
        ),
        Some(ViolationClass::Sanitizer) => format!(
            "{:?} at server {} offset {}",
            report.san_violations[0].kind,
            report.san_violations[0].server,
            report.san_violations[0].offset
        ),
        Some(ViolationClass::LockLeak) => format!(
            "lock held at quiescence by live client {} (server {}, offset {})",
            report.held_leaks[0].owner, report.held_leaks[0].server, report.held_leaks[0].offset
        ),
        Some(ViolationClass::TaskLeak) => {
            format!("{} tasks still live at quiescence", report.task_leak)
        }
        None => String::new(),
    }
}

/// Minimize, save and replay-verify the first violation of a cell.
/// Returns the artifact path; panics if the minimized trace fails to
/// reproduce (that would mean the sim is nondeterministic — a bug far
/// worse than the one being reported).
fn save_counterexample(sc: &Scenario, report: &RunReport, out_dir: &Path, label: &str) -> PathBuf {
    let class = classify(report).expect("caller found a violation");
    let minimized = minimize(sc, &report.decisions, class);
    let cx = Counterexample {
        scenario: sc.clone(),
        class,
        detail: violation_detail(report),
        decisions: minimized,
    };
    assert!(
        cx.replay().is_some(),
        "minimized counterexample failed to reproduce ({label}) — sim nondeterminism?"
    );
    let path = out_dir.join(format!("{}.trace", label.replace('/', "-")));
    cx.save(&path).expect("write counterexample");
    path
}

struct CellRun {
    stats: CellStats,
    first_violation: Option<(Scenario, RunReport)>,
}

fn run_cell(
    label: String,
    schedules: impl Iterator<Item = (Scenario, PolicyKind)>,
    stop_at_first_violation: bool,
) -> CellRun {
    let mut stats = CellStats {
        label,
        schedules: 0,
        distinct_schedules: 0,
        choice_points: 0,
        violations: 0,
        counterexample: None,
    };
    let mut digests: BTreeSet<u64> = BTreeSet::new();
    let mut first = None;
    for (sc, policy) in schedules {
        let report = run_scenario(&sc, &policy);
        stats.schedules += 1;
        stats.choice_points += report.decisions.len() as u64;
        digests.insert(report.schedule_digest);
        if classify(&report).is_some() {
            stats.violations += 1;
            if first.is_none() {
                first = Some((sc, report));
                if stop_at_first_violation {
                    break;
                }
            }
        }
    }
    stats.distinct_schedules = digests.len() as u64;
    CellRun {
        stats,
        first_violation: first,
    }
}

/// Bounded-exhaustive DFS over a tiny scenario: replay FIFO first, then
/// repeatedly take the next unexplored prefix (preemption-bounded),
/// until the space is exhausted or the schedule budget runs out.
fn run_dfs_cell(label: String, sc: Scenario, cfg: &ExploreConfig) -> CellRun {
    let mut stats = CellStats {
        label,
        schedules: 0,
        distinct_schedules: 0,
        choice_points: 0,
        violations: 0,
        counterexample: None,
    };
    let mut digests: BTreeSet<u64> = BTreeSet::new();
    let mut first = None;
    let mut prefix: Vec<u32> = Vec::new();
    loop {
        if stats.schedules >= cfg.dfs_schedules {
            break;
        }
        let report = run_scenario(
            &sc,
            &PolicyKind::Replay {
                decisions: prefix.clone(),
            },
        );
        stats.schedules += 1;
        stats.choice_points += report.decisions.len() as u64;
        digests.insert(report.schedule_digest);
        // The executed trace (prefix + FIFO tail, with real candidate
        // counts) drives the next-prefix enumeration.
        let trace: Vec<(u32, u32)> = report.trace_counts.clone();
        if classify(&report).is_some() {
            stats.violations += 1;
            if first.is_none() {
                first = Some((sc.clone(), report));
            }
        }
        match next_dfs_prefix(&trace, cfg.dfs_preemption_bound) {
            Some(p) => prefix = p,
            None => break,
        }
    }
    stats.distinct_schedules = digests.len() as u64;
    CellRun {
        stats,
        first_violation: first,
    }
}

fn designs(cfg: &ExploreConfig) -> Vec<DesignKind> {
    match cfg.only_design {
        Some(d) => vec![d],
        None => DesignKind::ALL.to_vec(),
    }
}

/// Run the full exploration matrix. Every violation's first occurrence
/// per cell is minimized, written to `cfg.out_dir` and replay-verified.
pub fn explore(cfg: &ExploreConfig) -> ExploreReport {
    let mut report = ExploreReport::default();
    let mut cell_idx: u64 = 0;
    for design in designs(cfg) {
        for fault in [FaultMode::None, FaultMode::Chaos, FaultMode::CrashRecover] {
            for (pname, pct) in [("walk", false), ("pct", true)] {
                let label = format!("{}/{}/{}", design.name(), fault.name(), pname);
                let idx = cell_idx;
                cell_idx += 1;
                let base = cfg.seed_base;
                let n = if pct {
                    cfg.pct_schedules
                } else {
                    cfg.walk_schedules
                };
                let depth = cfg.pct_depth;
                let schedules = (0..n).map(move |i| {
                    let sc = Scenario::point_ops(design, fault, mix3(base, idx, 0));
                    let seed = mix3(base, idx, i + 1);
                    let policy = if pct {
                        PolicyKind::Pct { seed, depth }
                    } else {
                        PolicyKind::RandomWalk { seed }
                    };
                    (sc, policy)
                });
                let mut run = run_cell(label.clone(), schedules, false);
                if let Some((sc, vr)) = &run.first_violation {
                    run.stats.counterexample =
                        Some(save_counterexample(sc, vr, &cfg.out_dir, &label));
                }
                report.cells.push(run.stats);
            }
        }
        // Bounded-exhaustive DFS on a tiny scan workload (whole-history
        // linearizability) — exhaustiveness only makes sense when the
        // schedule space is small, so the scenario is minimal.
        if cfg.dfs_schedules > 0 {
            let label = format!("{}/nofault/dfs", design.name());
            let sc = Scenario {
                clients: 2,
                ops_per_client: 2,
                ..Scenario::with_scans(design, FaultMode::None, mix3(cfg.seed_base, 777, 0))
            };
            let mut run = run_dfs_cell(label.clone(), sc, cfg);
            if let Some((sc, vr)) = &run.first_violation {
                run.stats.counterexample = Some(save_counterexample(sc, vr, &cfg.out_dir, &label));
            }
            report.cells.push(run.stats);
        }
    }
    report
}

/// Outcome of one mutation hunt.
#[derive(Debug)]
pub struct MutationResult {
    /// Mutation label (`cg-duplicate-insert`, `lease-epoch-elision`).
    pub label: String,
    /// Schedules explored before the first detection.
    pub schedules_to_detect: u64,
    /// The violation class that caught it.
    pub class: ViolationClass,
    /// Minimized, replay-verified artifact path.
    pub counterexample: PathBuf,
    /// Length of the minimized decision trace.
    pub minimized_len: usize,
}

/// Hunt one re-introduced bug: run schedules from `make` until a
/// violation of `want` appears, then minimize + save + replay-verify.
/// Panics if `budget` schedules pass without a detection — the whole
/// point of the harness is that it *must* find these.
fn hunt(
    label: &str,
    budget: u64,
    want: ViolationClass,
    out_dir: &Path,
    make: impl Fn(u64) -> (Scenario, PolicyKind),
) -> MutationResult {
    for i in 0..budget {
        let (sc, policy) = make(i);
        let report = run_scenario(&sc, &policy);
        if classify(&report) == Some(want) {
            let path = save_counterexample(&sc, &report, out_dir, label);
            let minimized_len = Counterexample::load(&path)
                .expect("just saved")
                .decisions
                .len();
            return MutationResult {
                label: label.to_string(),
                schedules_to_detect: i + 1,
                class: want,
                counterexample: path,
                minimized_len,
            };
        }
    }
    panic!("mutation `{label}` not detected within {budget} schedules — checker is blind to it");
}

/// Mutation-testing mode: with the `mutations` feature on, the index
/// layer carries two historical bugs; prove the checker finds both.
///
/// * **A — CG duplicate insert on lost-response retry**: an insert RPC
///   lands, the response drops, the client retries and the mutated
///   engine re-applies instead of absorbing. Caught as a
///   linearizability violation (the quiescent scan observes two live
///   entries where the spec admits at most one). Needs message loss,
///   so it is hunted under [`FaultMode::Chaos`] on CG.
/// * **B — lease break without epoch bump**: reclaiming an expired
///   lease preserves the epoch byte, so a reader that raced the break
///   can validate against a stale epoch. Caught by the sanitizer's
///   CAS-shape check (`VersionProtocol`). Needs an orphaned lock, so it
///   is hunted under [`FaultMode::Chaos`] on FG (kill-on-lock-acquire
///   plus the verifier scan's lease reclaim).
///
/// Four further *race* mutations (env-gated via `NAMDEX_RACE_MUT` so
/// each is hunted in isolation from one `mutations` binary) re-open
/// classic optimistic-lock-coupling holes; all four must be caught by
/// the happens-before detector ([`ViolationClass::Racecheck`]):
///
/// * **descend-no-covers** — the descent trusts the leaf it READ
///   without the `covers()` fence, so a racy snapshot escapes into
///   lookup results unvalidated.
/// * **cached-no-fence** — the cache layer skips the restart-epoch
///   flush, serving cached artifacts against a rebuilt pool (hunted
///   under [`FaultMode::CrashRecover`] with the cache enabled).
/// * **learned-no-reread** — the learned design reads predicted leaves
///   raw instead of through the self-validating spin-read, so a
///   mid-critical-section (torn) snapshot can escape.
/// * **unlock-before-write** — the commit path publishes the unlock
///   FAA before the in-place WRITE, so the deferred WRITE races with
///   the next acquirer's critical section.
pub fn run_mutation_hunts(budget: u64, out_dir: &Path) -> Vec<MutationResult> {
    assert!(
        namdex_core::mutations_enabled(),
        "mutation hunts require the `mutations` feature (cargo run -p mc --features mutations)"
    );
    let a = hunt(
        "cg-duplicate-insert",
        budget,
        ViolationClass::Linearizability,
        out_dir,
        |i| {
            (
                Scenario::point_ops(DesignKind::Cg, FaultMode::Chaos, mix3(0xA_B06, i, 0)),
                PolicyKind::RandomWalk {
                    seed: mix3(0xA_B06, i, 1),
                },
            )
        },
    );
    let b = hunt(
        "lease-epoch-elision",
        budget,
        ViolationClass::Sanitizer,
        out_dir,
        |i| {
            (
                Scenario::point_ops(DesignKind::Fg, FaultMode::Chaos, mix3(0xB_B06, i, 0)),
                PolicyKind::RandomWalk {
                    seed: mix3(0xB_B06, i, 1),
                },
            )
        },
    );
    let mut results = vec![a, b];
    for m in namdex_core::RaceMut::ALL {
        results.push(hunt_race_mutation(m, budget, out_dir));
    }
    results
}

/// Clears `NAMDEX_RACE_MUT` on scope exit so one process can hunt each
/// race mutation in isolation (the gate re-reads the env on every call).
struct RaceMutGuard;

impl Drop for RaceMutGuard {
    fn drop(&mut self) {
        std::env::remove_var("NAMDEX_RACE_MUT");
    }
}

fn hunt_race_mutation(m: namdex_core::RaceMut, budget: u64, out_dir: &Path) -> MutationResult {
    std::env::set_var("NAMDEX_RACE_MUT", m.key());
    let _guard = RaceMutGuard;
    let (design, fault, cache, base) = match m {
        // Races need contention, not faults: clean runs, hot keys.
        namdex_core::RaceMut::DescendNoCovers => (DesignKind::Fg, FaultMode::None, None, 0xC_B06),
        // Stale cached artifacts need a restart and a cache to be stale.
        namdex_core::RaceMut::CachedNoFence => (
            DesignKind::Fg,
            FaultMode::CrashRecover,
            Some(0usize),
            0xD_B06,
        ),
        namdex_core::RaceMut::LearnedNoReread => {
            (DesignKind::Learned, FaultMode::None, None, 0xE_B06)
        }
        namdex_core::RaceMut::UnlockBeforeWrite => (DesignKind::Fg, FaultMode::None, None, 0xF_B06),
    };
    hunt(m.key(), budget, ViolationClass::Racecheck, out_dir, |i| {
        (
            Scenario::point_ops(design, fault, mix3(base, i, 0)).with_cache(cache),
            PolicyKind::RandomWalk {
                seed: mix3(base, i, 1),
            },
        )
    })
}
