//! Counterexample artifacts: a violating schedule serialized to a file
//! that replays the exact interleaving, plus greedy minimization.
//!
//! Determinism makes the decision trace a complete witness: the
//! workload, fault plan and fault-RNG draws are all pure functions of
//! the scenario fields plus the schedule, so `(Scenario, decisions)`
//! reproduces the violating run bit-for-bit. Past the end of the
//! recorded decisions the replayer plays FIFO, which is what makes
//! *truncation* a sound minimization move: a shorter prefix is still a
//! legal schedule, just one that deviates from FIFO in fewer places.

use crate::scenario::{run_scenario, DesignKind, FaultMode, PolicyKind, RunReport, Scenario};
use std::fmt::Write as _;
use std::path::Path;

/// Which checked property a run violated.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ViolationClass {
    /// History rejected by the linearizability checker.
    Linearizability,
    /// Happens-before race detector finding (unvalidated optimistic
    /// read, write-write race, stale-epoch cached use).
    Racecheck,
    /// Sanitizer protocol finding (race, version tamper, ...).
    Sanitizer,
    /// Lock held by a live owner at quiescence.
    LockLeak,
    /// Tasks still live after the sim drained.
    TaskLeak,
}

impl ViolationClass {
    /// Stable name (file format).
    pub fn name(self) -> &'static str {
        match self {
            ViolationClass::Linearizability => "linearizability",
            ViolationClass::Racecheck => "racecheck",
            ViolationClass::Sanitizer => "sanitizer",
            ViolationClass::LockLeak => "lock-leak",
            ViolationClass::TaskLeak => "task-leak",
        }
    }

    /// Parse [`Self::name`] output.
    pub fn parse(s: &str) -> Option<ViolationClass> {
        [
            ViolationClass::Linearizability,
            ViolationClass::Racecheck,
            ViolationClass::Sanitizer,
            ViolationClass::LockLeak,
            ViolationClass::TaskLeak,
        ]
        .into_iter()
        .find(|c| c.name() == s)
    }
}

/// The most severe violation in `report`, if any. Severity order:
/// linearizability (user-visible wrong answers) > racecheck (a racy
/// snapshot escaped validation — the precursor of a wrong answer) >
/// sanitizer (protocol broken even if answers happened to be right) >
/// leaks.
pub fn classify(report: &RunReport) -> Option<ViolationClass> {
    if report.lin.is_err() {
        Some(ViolationClass::Linearizability)
    } else if !report.race_violations.is_empty() {
        Some(ViolationClass::Racecheck)
    } else if !report.san_violations.is_empty() {
        Some(ViolationClass::Sanitizer)
    } else if !report.held_leaks.is_empty() {
        Some(ViolationClass::LockLeak)
    } else if report.task_leak > 0 {
        Some(ViolationClass::TaskLeak)
    } else {
        None
    }
}

/// A serializable counterexample: scenario + violation + schedule.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Counterexample {
    /// The scenario the schedule violates.
    pub scenario: Scenario,
    /// What the run violated.
    pub class: ViolationClass,
    /// One-line description of the original finding.
    pub detail: String,
    /// The (minimized) decision trace.
    pub decisions: Vec<u32>,
}

impl Counterexample {
    /// Serialize to the `namdex-mc counterexample v2` text format
    /// (v2 added the `cache` line when scenarios grew a client-side
    /// cache knob).
    pub fn to_text(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "# namdex-mc counterexample v2");
        let _ = writeln!(s, "design: {}", self.scenario.design.name());
        let _ = writeln!(s, "fault: {}", self.scenario.fault.name());
        let _ = writeln!(s, "seed: {}", self.scenario.seed);
        let _ = writeln!(s, "clients: {}", self.scenario.clients);
        let _ = writeln!(s, "ops_per_client: {}", self.scenario.ops_per_client);
        let _ = writeln!(s, "with_scans: {}", self.scenario.with_scans);
        let cache = match self.scenario.cache_capacity {
            None => "none".to_string(),
            Some(c) => c.to_string(),
        };
        let _ = writeln!(s, "cache: {cache}");
        let _ = writeln!(s, "violation: {}", self.class.name());
        let _ = writeln!(s, "detail: {}", self.detail.replace('\n', " "));
        let decisions: Vec<String> = self.decisions.iter().map(|d| d.to_string()).collect();
        let _ = writeln!(s, "decisions: {}", decisions.join(","));
        s
    }

    /// Parse the text format back. Returns `None` on any malformed
    /// line, missing field, or version mismatch.
    pub fn from_text(text: &str) -> Option<Counterexample> {
        let mut lines = text.lines();
        if lines.next()?.trim() != "# namdex-mc counterexample v2" {
            return None;
        }
        let mut field = |name: &str| -> Option<String> {
            let line = lines.next()?;
            let rest = line.strip_prefix(name)?.strip_prefix(':')?;
            Some(rest.trim().to_string())
        };
        let design = DesignKind::parse(&field("design")?)?;
        let fault = FaultMode::parse(&field("fault")?)?;
        let seed = field("seed")?.parse().ok()?;
        let clients = field("clients")?.parse().ok()?;
        let ops_per_client = field("ops_per_client")?.parse().ok()?;
        let with_scans = field("with_scans")?.parse().ok()?;
        let cache_capacity = match field("cache")?.as_str() {
            "none" => None,
            c => Some(c.parse().ok()?),
        };
        let class = ViolationClass::parse(&field("violation")?)?;
        let detail = field("detail")?;
        let raw = field("decisions")?;
        let decisions = if raw.is_empty() {
            Vec::new()
        } else {
            raw.split(',')
                .map(|d| d.trim().parse().ok())
                .collect::<Option<Vec<u32>>>()?
        };
        Some(Counterexample {
            scenario: Scenario {
                design,
                fault,
                seed,
                clients,
                ops_per_client,
                with_scans,
                cache_capacity,
            },
            class,
            detail,
            decisions,
        })
    }

    /// Write the artifact to `path`.
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)?;
        }
        std::fs::write(path, self.to_text())
    }

    /// Load an artifact from `path`.
    pub fn load(path: &Path) -> std::io::Result<Counterexample> {
        let text = std::fs::read_to_string(path)?;
        Counterexample::from_text(&text).ok_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("malformed counterexample file {}", path.display()),
            )
        })
    }

    /// Replay this counterexample; `Some(report)` if the violation
    /// class still reproduces, `None` if it does not.
    pub fn replay(&self) -> Option<RunReport> {
        let report = run_scenario(
            &self.scenario,
            &PolicyKind::Replay {
                decisions: self.decisions.clone(),
            },
        );
        (classify(&report) == Some(self.class)).then_some(report)
    }
}

fn reproduces(sc: &Scenario, decisions: &[u32], class: ViolationClass) -> bool {
    let report = run_scenario(
        sc,
        &PolicyKind::Replay {
            decisions: decisions.to_vec(),
        },
    );
    classify(&report) == Some(class)
}

/// Greedy trace minimization by truncation: drop the FIFO tail (zeros
/// replay implicitly), then halve the prefix while the violation still
/// reproduces, then shave single decisions off the end. Each kept
/// candidate is verified by a full replay, so the result is always a
/// reproducing schedule.
pub fn minimize(sc: &Scenario, decisions: &[u32], class: ViolationClass) -> Vec<u32> {
    let mut best: Vec<u32> = decisions.to_vec();
    // Trailing zeros are the FIFO default — always droppable.
    while best.last() == Some(&0) {
        best.pop();
    }
    if !best.is_empty() && !reproduces(sc, &best, class) {
        // The zero-stripped trace must reproduce (replay pads FIFO);
        // if the sim disagrees something is nondeterministic — keep the
        // original rather than return a broken artifact.
        return decisions.to_vec();
    }
    // Exponential: halve while it still reproduces.
    while best.len() >= 2 {
        let half: Vec<u32> = best[..best.len() / 2].to_vec();
        if reproduces(sc, &half, class) {
            best = half;
        } else {
            break;
        }
    }
    // Linear: shave the tail one decision at a time.
    while !best.is_empty() {
        let shorter: Vec<u32> = best[..best.len() - 1].to_vec();
        if reproduces(sc, &shorter, class) {
            best = shorter;
        } else {
            break;
        }
    }
    while best.last() == Some(&0) {
        best.pop();
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_format_roundtrips() {
        let cx = Counterexample {
            scenario: Scenario::point_ops(DesignKind::Cg, FaultMode::Chaos, 42),
            class: ViolationClass::Linearizability,
            detail: "duplicate insert observed".into(),
            decisions: vec![0, 2, 1, 0, 3],
        };
        let text = cx.to_text();
        assert_eq!(Counterexample::from_text(&text), Some(cx));
    }

    #[test]
    fn malformed_text_is_rejected() {
        assert_eq!(Counterexample::from_text(""), None);
        assert_eq!(Counterexample::from_text("# wrong header\n"), None);
        let cx = Counterexample {
            scenario: Scenario::point_ops(DesignKind::Fg, FaultMode::None, 1),
            class: ViolationClass::Sanitizer,
            detail: "x".into(),
            decisions: vec![],
        };
        // Empty decision list roundtrips too.
        assert_eq!(Counterexample::from_text(&cx.to_text()), Some(cx));
    }
}
