//! Schedule-space model checker for the simulated NAM index designs.
//!
//! The simulator is deterministic but, until now, explored exactly one
//! interleaving per seed: the executor's FIFO wake order. This crate
//! turns the scheduler into a *search space*:
//!
//! * [`policy`] — strategies for resolving executor choice points
//!   (random walk, PCT priority scheduling, bounded-exhaustive DFS,
//!   exact replay), each recording a decision trace that names the
//!   schedule;
//! * [`history`] — an observer that records every index op's
//!   invoke/response window;
//! * [`lin`] — a Wing & Gong linearizability checker (with Lowe's
//!   per-key partitioning) validating each explored schedule against a
//!   sequential map spec;
//! * [`scenario`] — tiny deterministic workloads over the three
//!   designs, with sanitizer, leak and quiescence checks folded into a
//!   single [`scenario::RunReport`];
//! * [`counterexample`] — violating schedules serialized as replayable,
//!   greedily minimized artifacts;
//! * [`explore`](mod@explore) — the budgeted exploration matrix and the mutation
//!   hunts (feature `mutations`) that prove the checker catches two
//!   known historical bugs.
//!
//! Run it via `cargo xtask mc --quick` or the `mc_explore` binary.

pub mod counterexample;
pub mod explore;
pub mod history;
pub mod lin;
pub mod policy;
pub mod scenario;

pub use counterexample::{classify, minimize, Counterexample, ViolationClass};
pub use explore::{explore, run_mutation_hunts, CellStats, ExploreConfig, ExploreReport};
pub use history::{Event, HistoryRecorder};
pub use lin::{CheckStats, LinViolation, Spec};
pub use policy::{new_trace, next_dfs_prefix, Pct, RandomWalk, Replay, SharedTrace};
pub use scenario::{run_scenario, DesignKind, FaultMode, PolicyKind, RunReport, Scenario};
