//! Command-line front end for the schedule-space model checker.
//!
//! ```text
//! mc_explore explore  [--quick] [--design cg|fg|hybrid|learned] [--out DIR] [--seed N]
//! mc_explore mutation [--quick] [--out DIR]        (needs --features mutations)
//! mc_explore replay FILE
//! ```
//!
//! Exit codes: `0` success (explore: zero violations; mutation: every
//! seeded bug — the two historical ones plus the four env-gated race
//! mutations — detected; replay: violation reproduced), `1` violations
//! found (explore) or replay failed to reproduce, `2` usage error.

use mc::explore::{explore, run_mutation_hunts, ExploreConfig};
use mc::Counterexample;
use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  mc_explore explore  [--quick] [--design cg|fg|hybrid|learned] [--out DIR] [--seed N]\n  mc_explore mutation [--quick] [--out DIR]\n  mc_explore replay FILE"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        return usage();
    };
    match cmd.as_str() {
        "explore" => cmd_explore(&args[1..]),
        "mutation" => cmd_mutation(&args[1..]),
        "replay" => cmd_replay(&args[1..]),
        _ => usage(),
    }
}

struct Flags {
    quick: bool,
    design: Option<mc::DesignKind>,
    out: PathBuf,
    seed: Option<u64>,
}

fn parse_flags(args: &[String]) -> Option<Flags> {
    let mut flags = Flags {
        quick: false,
        design: None,
        out: PathBuf::from("target/mc"),
        seed: None,
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => flags.quick = true,
            "--design" => flags.design = Some(mc::DesignKind::parse(it.next()?)?),
            "--out" => flags.out = PathBuf::from(it.next()?),
            "--seed" => flags.seed = it.next()?.parse().ok(),
            _ => return None,
        }
    }
    Some(flags)
}

fn cmd_explore(args: &[String]) -> ExitCode {
    let Some(flags) = parse_flags(args) else {
        return usage();
    };
    let mut cfg = if flags.quick {
        ExploreConfig::quick(flags.out)
    } else {
        ExploreConfig::full(flags.out)
    };
    cfg.only_design = flags.design;
    if let Some(seed) = flags.seed {
        cfg.seed_base = seed;
    }
    let report = explore(&cfg);
    print!("{}", report.table());
    println!(
        "total: {} schedules, {} violations",
        report.schedules(),
        report.violations()
    );
    for cell in &report.cells {
        if let Some(path) = &cell.counterexample {
            println!("counterexample [{}]: {}", cell.label, path.display());
        }
    }
    if report.violations() == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn cmd_mutation(args: &[String]) -> ExitCode {
    let Some(flags) = parse_flags(args) else {
        return usage();
    };
    if !namdex_core::mutations_enabled() {
        eprintln!("mutation mode needs `--features mutations` (this build has them off)");
        return ExitCode::from(2);
    }
    let budget = if flags.quick { 32 } else { 128 };
    // run_mutation_hunts panics if a mutation escapes the budget, which
    // is the assertion this mode exists for.
    let results = run_mutation_hunts(budget, &flags.out);
    for r in &results {
        println!(
            "mutation {} detected as {} after {} schedule(s); minimized trace: {} decision(s) at {}",
            r.label,
            r.class.name(),
            r.schedules_to_detect,
            r.minimized_len,
            r.counterexample.display()
        );
    }
    ExitCode::SUCCESS
}

fn cmd_replay(args: &[String]) -> ExitCode {
    let [file] = args else {
        return usage();
    };
    let cx = match Counterexample::load(&PathBuf::from(file)) {
        Ok(cx) => cx,
        Err(e) => {
            eprintln!("cannot load {file}: {e}");
            return ExitCode::from(2);
        }
    };
    println!(
        "replaying {} / {} / seed {} — expecting {} ({})",
        cx.scenario.design.name(),
        cx.scenario.fault.name(),
        cx.scenario.seed,
        cx.class.name(),
        cx.detail
    );
    match cx.replay() {
        Some(report) => {
            println!(
                "reproduced: {} after {} choice points",
                cx.class.name(),
                report.decisions.len()
            );
            ExitCode::SUCCESS
        }
        None => {
            eprintln!(
                "violation did NOT reproduce — wrong build flags (mutations?) or stale trace"
            );
            ExitCode::FAILURE
        }
    }
}
