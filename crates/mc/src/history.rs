//! History recording: invoke/response events off the observer bus.
//!
//! The recorder implements [`VerbObserver`] and subscribes to the
//! cluster's always-compiled observation hooks; the index layer reports
//! every `Design::{lookup, range, insert, delete}` invocation
//! ([`rdma_sim::OpArgs`]) and its result ([`rdma_sim::OpOutcome`]).
//! Each client runs its ops sequentially, so one pending slot per
//! client suffices; an op whose response never arrives (the client was
//! killed mid-await and its task cancelled) is closed out as
//! [`OpOutcome::Failed`] with an open-ended response time, which the
//! linearizability checker treats as "may or may not have taken
//! effect".

use rdma_sim::observer::{OpArgs, OpOutcome, VerbEvent, VerbObserver};
use rdma_sim::Cluster;
use simnet::SimTime;
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

/// One index-level operation with its concurrency window.
#[derive(Clone, Debug)]
pub struct Event {
    /// Issuing client (endpoint id).
    pub client: u64,
    /// Operation and arguments.
    pub args: OpArgs,
    /// Result; [`OpOutcome::Failed`] means indeterminate effects.
    pub outcome: OpOutcome,
    /// Virtual time of the invocation.
    pub invoke: SimTime,
    /// Virtual time the result returned to the caller;
    /// [`SimTime::MAX`] when it never did (the op is *pending*).
    pub response: SimTime,
}

#[derive(Default)]
struct Inner {
    pending: BTreeMap<u64, (OpArgs, SimTime)>,
    events: Vec<Event>,
}

/// Observer that turns op invoke/response notes into a history.
pub struct HistoryRecorder {
    state: RefCell<Inner>,
}

impl HistoryRecorder {
    /// Build a recorder and register it on `cluster`'s observer bus.
    pub fn install(cluster: &Cluster) -> Rc<HistoryRecorder> {
        let rec = Rc::new(HistoryRecorder {
            state: RefCell::new(Inner::default()),
        });
        cluster.add_observer(rec.clone());
        rec
    }

    /// The recorded history: completed events in response order, then
    /// any still-pending invocations closed out as `Failed` with an
    /// open-ended (`SimTime::MAX`) response.
    pub fn history(&self) -> Vec<Event> {
        let st = self.state.borrow();
        let mut events = st.events.clone();
        for (&client, &(args, invoke)) in &st.pending {
            events.push(Event {
                client,
                args,
                outcome: OpOutcome::Failed,
                invoke,
                response: SimTime::MAX,
            });
        }
        events
    }

    /// Number of completed events recorded so far.
    pub fn len(&self) -> usize {
        self.state.borrow().events.len()
    }

    /// Whether no event has completed yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl VerbObserver for HistoryRecorder {
    fn on_verb(&self, _ev: &VerbEvent) {}

    fn on_free(&self, _server: usize, _offset: u64, _len: usize, _time: SimTime) {}

    fn on_op_invoke(&self, client: u64, args: OpArgs, time: SimTime) {
        let prev = self.state.borrow_mut().pending.insert(client, (args, time));
        debug_assert!(prev.is_none(), "client {client} has overlapping ops");
    }

    fn on_op_response(&self, client: u64, outcome: &OpOutcome, time: SimTime) {
        let mut st = self.state.borrow_mut();
        if let Some((args, invoke)) = st.pending.remove(&client) {
            st.events.push(Event {
                client,
                args,
                outcome: outcome.clone(),
                invoke,
                response: time,
            });
        }
    }
}
